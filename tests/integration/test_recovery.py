"""Integration tests for replay-based recovery (Section 2.7.6)."""

import pytest

from repro.cord import CordConfig, CordDetector
from repro.detectors import IdealDetector
from repro.engine import run_program
from repro.injection import InjectionInterceptor, ReplayInjection
from repro.program import AddressSpace, Program
from repro.program.ops import ComputeOp, ReadOp, WriteOp
from repro.recovery import (
    SerializedScheduler,
    recover_with_serialization,
    replay_until,
)
from repro.sync import Mutex, acquire, release


def lost_update_program(rounds=6):
    """Four threads incrementing a counter; the lock is injectable."""
    space = AddressSpace()
    mutex = Mutex.allocate(space, "m")
    counter = space.alloc("counter", align_to_line=True)

    def body(tid):
        for _ in range(rounds):
            yield from acquire(mutex)
            value = yield ReadOp(counter)
            yield ComputeOp(4)  # widen the racy window
            yield WriteOp(counter, (value or 0) + 1)
            yield from release(mutex)

    program = Program([body] * 4, space, name="lost-update")
    program.counter_address = counter
    program.expected_total = 4 * rounds
    return program


def final_counter(trace, address):
    writes = [
        e.value for e in trace.events
        if e.is_write and e.address == address
    ]
    return writes[-1] if writes else 0


def find_manifesting_injection(program):
    """An injection whose lost update corrupts the final counter."""
    for target in range(40):
        interceptor = InjectionInterceptor(target)
        trace = run_program(program, seed=31, interceptor=interceptor)
        if trace.hung or interceptor.removed is None:
            continue
        outcome = CordDetector(CordConfig(d=16), 4).run(trace)
        corrupted = (
            final_counter(trace, program.counter_address)
            != program.expected_total
        )
        if outcome.problem_detected and corrupted:
            return interceptor, trace, outcome
    pytest.skip("no corrupting injection found")


class TestSerializedScheduler:
    def test_run_to_block(self):
        scheduler = SerializedScheduler()
        assert scheduler.pick([0, 1, 2]) == 0
        assert scheduler.pick([0, 1, 2]) == 0  # sticks with current
        assert scheduler.pick([1, 2]) == 1     # current gone: next

    def test_explicit_order(self):
        scheduler = SerializedScheduler(order=[2, 0, 1])
        assert scheduler.pick([0, 1, 2]) == 2


class TestRecovery:
    def test_recovery_masks_the_lost_update(self):
        program = lost_update_program()
        interceptor, trace, outcome = find_manifesting_injection(program)
        race = sorted(outcome.flagged)[0]

        result = recover_with_serialization(
            program,
            outcome.log,
            race,
            ReplayInjection(interceptor.removed),
            trace=trace,
        )
        assert result.completed
        # The corrupted production run lost an update; the recovered
        # (serialized-near-the-problem) run does not.
        assert final_counter(
            trace, program.counter_address
        ) != program.expected_total
        assert final_counter(
            result.trace, program.counter_address
        ) == program.expected_total

    def test_recovered_run_completes_the_whole_program(self):
        program = lost_update_program()
        interceptor, trace, outcome = find_manifesting_injection(
            program
        )
        race = sorted(outcome.flagged)[0]
        result = recover_with_serialization(
            program,
            outcome.log,
            race,
            ReplayInjection(interceptor.removed),
            trace=trace,
        )
        # Control flow here is value-independent, so the recovered run
        # retires exactly the instructions the recorded run did.
        assert result.trace.final_icounts == trace.final_icounts
        assert not result.trace.hung

    def test_replay_until_stops_before_boundary(self):
        program = lost_update_program()
        interceptor, trace, outcome = find_manifesting_injection(
            program
        )
        race = sorted(outcome.flagged)[0]
        engine, _steps = replay_until(
            program,
            outcome.log,
            race,
            ReplayInjection(interceptor.removed),
        )
        # The racy access itself has not executed yet.
        assert engine.icount(race[0]) <= race[1]
        assert not engine.all_finished()

    def test_boundary_outside_log_rejected(self):
        from repro.common.errors import ReplayDivergenceError

        program = lost_update_program()
        trace = run_program(program, seed=2)
        outcome = CordDetector(CordConfig(), 4).run(trace)
        with pytest.raises(ReplayDivergenceError):
            replay_until(program, outcome.log, (0, 10**9))
