"""Integration tests for the Eraser-style lockset comparator.

The trade the paper's happens-before approach makes, demonstrated:
lockset catches missing-lock defects even when no race dynamically
manifested, but false-alarms on barrier/flag-synchronized sharing that
CORD correctly stays silent on.
"""

import pytest

from repro.detectors import IdealDetector, LocksetDetector
from repro.engine import run_program
from repro.injection import InjectionInterceptor
from repro.program import AddressSpace, Program
from repro.program.ops import ComputeOp, ReadOp, WriteOp
from repro.sync import (
    Barrier,
    Flag,
    Mutex,
    acquire,
    barrier_wait,
    flag_set,
    flag_wait,
    release,
)
from repro.workloads import WorkloadParams, get_workload

from tests.conftest import build_counter_program


class TestLockDiscipline:
    def test_consistent_locking_is_silent(self):
        # A pure lock-disciplined program (no barrier-ordered accesses):
        # every shared word is touched under the same mutex, so no
        # candidate lockset ever empties.
        space = AddressSpace()
        mutex = Mutex.allocate(space, "m")
        word = space.alloc("w", align_to_line=True)

        def body(tid):
            for _ in range(4):
                yield from acquire(mutex)
                value = yield ReadOp(word)
                yield WriteOp(word, (value or 0) + 1)
                yield from release(mutex)

        trace = run_program(Program([body] * 4, space), seed=3)
        outcome = LocksetDetector(4).run(trace)
        assert outcome.raw_count == 0

    def test_barrier_ordered_read_is_erasers_false_alarm(self):
        # The conftest counter program ends with an unlocked read that is
        # ordered by the final barrier: happens-before proves it safe,
        # Eraser cannot -- the paper's "no false alarms" motivation.
        trace = run_program(build_counter_program(), seed=3)
        assert IdealDetector(4).run(trace).raw_count == 0
        assert LocksetDetector(4).run(trace).raw_count > 0

    def test_missing_lock_flagged_even_without_manifestation(self):
        # A lockset detector's unique power: it reports the *potential*
        # race as soon as the same word is touched under inconsistent
        # locksets, whether or not the interleaving exposed it.
        space = AddressSpace()
        mutex = Mutex.allocate(space, "m")
        word = space.alloc("w", align_to_line=True)

        def disciplined(tid):
            yield from acquire(mutex)
            value = yield ReadOp(word)
            yield WriteOp(word, (value or 0) + 1)
            yield from release(mutex)

        def undisciplined(tid):
            # Delay so the disciplined thread establishes the word (and
            # its candidate lockset) first; the serial interleaving never
            # lets the race manifest dynamically.
            yield ComputeOp(20)
            value = yield ReadOp(word)
            yield WriteOp(word, (value or 0) + 1)

        program = Program([disciplined, undisciplined], space)
        from repro.engine import RoundRobinScheduler

        trace = run_program(program, scheduler=RoundRobinScheduler())
        ideal = IdealDetector(2).run(trace)
        lockset = LocksetDetector(2).run(trace)
        assert lockset.problem_detected
        # (The happens-before oracle may or may not flag it depending on
        # interleaving; lockset does not care.)


class TestFalseAlarms:
    def test_flag_handoff_false_alarm(self):
        # Producer/consumer via a flag: perfectly synchronized, yet the
        # consumer's write-side touch with no locks empties the lockset.
        space = AddressSpace()
        flag = Flag.allocate(space, "f")
        word = space.alloc("w", align_to_line=True)

        def producer(tid):
            yield WriteOp(word, 42)
            yield from flag_set(flag, 1)

        def consumer(tid):
            yield from flag_wait(flag, 1)
            value = yield ReadOp(word)
            yield WriteOp(word, (value or 0) + 1)

        program = Program([producer, consumer], space)
        trace = run_program(program, seed=1)
        assert IdealDetector(2).run(trace).raw_count == 0  # truly ordered
        assert LocksetDetector(2).run(trace).raw_count > 0  # false alarm

    def test_barrier_workloads_false_alarm(self):
        # ocean's grid rows are written by their owner every other sweep
        # and read by neighbors in between, all barrier-ordered: the
        # rewrite reaches Eraser's Shared-Modified state with an empty
        # lockset -- a false alarm; CORD (like Ideal) stays silent.
        program = get_workload("ocean").build(
            WorkloadParams(scale=0.25, compute_grain=8)
        )
        trace = run_program(program, seed=2)
        assert IdealDetector(4).run(trace).raw_count == 0
        assert LocksetDetector(4).run(trace).raw_count > 0


class TestOnInjectedRuns:
    def test_lockset_catches_lock_removals(self):
        # Injected missing-lock instances break lockset consistency on
        # the protected words in most runs, manifested or not.
        program = build_counter_program(rounds=4)
        caught = 0
        applicable = 0
        for target in range(16):
            interceptor = InjectionInterceptor(target)
            trace = run_program(
                program, seed=5, interceptor=interceptor
            )
            if (
                interceptor.removed is None
                or interceptor.removed.kind != "lock"
                or trace.hung
            ):
                continue
            applicable += 1
            outcome = LocksetDetector(4).run(trace)
            if outcome.problem_detected:
                caught += 1
        assert applicable >= 3
        assert caught >= applicable // 2
