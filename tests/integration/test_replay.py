"""Integration tests for deterministic replay (Section 2.7.1 / 3.3)."""

import pytest

from repro.common.errors import ReplayDivergenceError
from repro.cord import (
    CordConfig,
    CordDetector,
    OrderLog,
    replay_trace,
    verify_replay,
)
from repro.engine import run_program
from repro.injection import InjectionInterceptor, ReplayInjection

from tests.conftest import build_counter_program


def record(program, seed, interceptor=None, d=16):
    trace = run_program(program, seed=seed, interceptor=interceptor)
    outcome = CordDetector(CordConfig(d=d), program.n_threads).run(trace)
    return trace, outcome


class TestCleanReplay:
    @pytest.mark.parametrize("seed", range(8))
    def test_replay_equivalent_across_seeds(self, seed):
        program = build_counter_program()
        trace, outcome = record(program, seed)
        replayed = replay_trace(program, outcome.log)
        verdict = verify_replay(trace, replayed)
        assert verdict.equivalent, verdict.detail

    @pytest.mark.parametrize("d", [1, 4, 16, 256])
    def test_replay_works_for_every_d(self, d):
        # Order recording correctness is independent of the DRD window.
        program = build_counter_program()
        trace, outcome = record(program, seed=5, d=d)
        replayed = replay_trace(program, outcome.log)
        assert verify_replay(trace, replayed).equivalent

    def test_replay_through_binary_codec(self):
        # Encode to the 8-byte hardware format and back before replaying.
        program = build_counter_program()
        trace, outcome = record(program, seed=2)
        decoded = OrderLog.decode(outcome.log.encode())
        replayed = replay_trace(program, decoded)
        assert verify_replay(trace, replayed).equivalent

    def test_replayed_values_match(self):
        # Value determinism: replayed reads observe identical values.
        program = build_counter_program()
        trace, outcome = record(program, seed=3)
        replayed = replay_trace(program, outcome.log)
        original_values = {
            (e.thread, e.icount): e.value for e in trace.events
        }
        for event in replayed.events:
            assert original_values[(event.thread, event.icount)] == \
                event.value


class TestInjectedReplay:
    def test_injected_runs_replay_with_recorded_spec(self):
        program = build_counter_program()
        replay_checked = 0
        for target in range(0, 24, 2):
            interceptor = InjectionInterceptor(target)
            trace = run_program(
                program, seed=9, interceptor=interceptor
            )
            if trace.hung or interceptor.removed is None:
                continue
            outcome = CordDetector(CordConfig(), 4).run(trace)
            replayed = replay_trace(
                program, outcome.log,
                ReplayInjection(interceptor.removed),
            )
            verdict = verify_replay(trace, replayed)
            assert verdict.equivalent, (target, verdict.detail)
            replay_checked += 1
        assert replay_checked >= 5

    def test_replay_without_injection_spec_diverges(self):
        # Replaying an injected run *without* re-applying the removal
        # must be detected (per-thread sequences differ).
        program = build_counter_program()
        interceptor = InjectionInterceptor(1)
        trace = run_program(program, seed=9, interceptor=interceptor)
        assert interceptor.removed is not None
        outcome = CordDetector(CordConfig(), 4).run(trace)
        try:
            replayed = replay_trace(program, outcome.log)
        except ReplayDivergenceError:
            return  # instruction counts no longer line up: also fine
        assert not verify_replay(trace, replayed).equivalent


class TestDivergenceDetection:
    def test_log_for_wrong_thread_count(self):
        program = build_counter_program()
        log = OrderLog()
        log.append(1, 7, 3)  # thread 7 does not exist
        with pytest.raises(ReplayDivergenceError):
            replay_trace(program, log)

    def test_truncated_log_detected(self):
        program = build_counter_program()
        trace, outcome = record(program, seed=4)
        truncated = OrderLog()
        for entry in list(outcome.log)[: len(outcome.log) // 2]:
            truncated.append(entry.clock, entry.thread, entry.count)
        with pytest.raises(ReplayDivergenceError):
            replay_trace(program, truncated)

    def test_inflated_count_detected(self):
        program = build_counter_program()
        trace, outcome = record(program, seed=4)
        corrupted = OrderLog()
        entries = list(outcome.log)
        for i, entry in enumerate(entries):
            count = entry.count + (500 if i == len(entries) - 1 else 0)
            corrupted.append(entry.clock, entry.thread, count)
        with pytest.raises(ReplayDivergenceError):
            replay_trace(program, corrupted)


class TestConcurrentFragmentFreedom:
    def test_equal_clock_fragments_may_reorder(self):
        # The paper: fragments with equal clocks are non-conflicting and
        # can replay in any order.  Verify the replayed global order can
        # differ from the recorded one while staying equivalent.
        program = build_counter_program()
        trace, outcome = record(program, seed=6)
        replayed = replay_trace(program, outcome.log)
        assert verify_replay(trace, replayed).equivalent
        # Global orders usually differ (replay is clock-sorted).
        recorded_order = [e.key() for e in trace.events]
        replayed_order = [e.key() for e in replayed.events]
        assert sorted(recorded_order) == sorted(replayed_order)
