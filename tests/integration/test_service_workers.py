"""Multi-host kill/partition matrix for the campaign service.

Real subprocess topology: one ``cord-serve`` instance plus
``cord-worker`` agents attached over the unix socket, with *no shared
trace store* -- every artifact moves through the replication ops.  The
core claim under test: whatever a fault does to a worker (hard exit
mid-lease, a stall past the lease deadline, a partition window, a
corrupted transfer), the campaign result stays byte-identical to the
serial CLI path and to single-host ``cord-serve``, durably replicated
runs are never re-recorded (``simulated == 0`` on pre-warmed roots),
and duplicate completions are deduped rather than double-committed.

Worker-side faults are tick-gated at the lease-lifecycle transitions
``granted -> executed -> pushed -> completed`` (one tick each per
lease), so the matrix places each fault at every transition of the
armed worker's first lease in turn.
"""

import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.resilience.faults import (
    SVC_KILL_EXIT_CODE,
    WORKER_VANISH_EXIT_CODE,
)
from repro.service.client import ServiceClient, ServiceUnavailable

from .test_service_recovery import (  # noqa: F401  (warm fixture reuse)
    SPEC,
    _env,
    _prewarmed_root,
    warm,
)

#: Fast-failover pool knobs every server in this suite runs with:
#: suspect after ~0.5s of silence, dead after 1.25s, leases expire
#: after 3s, workers poll hard.
POOL_ENV = {
    "REPRO_SVC_HEARTBEAT_S": "0.25",
    "REPRO_SVC_LEASE_S": "3",
    "REPRO_SVC_WORKER_POLL_S": "0.05",
}


def _start_server(root, **extra):
    merged = dict(POOL_ENV)
    merged.update(extra)
    return subprocess.Popen(
        [sys.executable, "-m", "repro.service", "serve", "--root",
         str(root)],
        env=_env(**merged),
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )


def _start_worker(server_root, worker_root, name, **extra):
    worker_root = Path(worker_root)
    worker_root.mkdir(parents=True, exist_ok=True)
    log = open(worker_root / "agent.log", "w")
    try:
        return subprocess.Popen(
            [sys.executable, "-m", "repro.service", "worker",
             "--socket", str(Path(server_root) / "service.sock"),
             "--root", str(worker_root), "--name", name,
             "--connect-timeout", "5"],
            env=_env(**extra),
            stdout=log,
            stderr=log,
        )
    finally:
        log.close()


def _client(root):
    return ServiceClient(
        socket_path=Path(root) / "service.sock", connect_timeout=10.0
    )


def _wait_attached(client, n, timeout=30.0):
    """Block until ``n`` workers are attached and live."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        workers = client.wait_ready()["workers"]
        if workers["live"] >= n:
            return workers
        time.sleep(0.05)
    raise AssertionError("%d worker(s) never attached" % n)


def _reap(*procs):
    for proc in procs:
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=10)


def _submit_and_check(client, warm_report, timeout_s=180):
    response = client.submit(
        SPEC.workload, runs=SPEC.runs, seed=SPEC.seed, scale=SPEC.scale,
    )
    assert response.get("ok"), response
    final = client.result(response["job"], timeout_s=timeout_s)
    assert final["ok"] is True, final
    assert final["state"] == "committed"
    # The headline contract, every topology and every fault: the
    # report does not move a byte.
    assert final["report"] == warm_report
    return final


# -- happy path: distributed == single-host == CLI ----------------------------


def test_distributed_result_byte_identical(tmp_path, warm):
    """Two workers, no shared store, no faults: byte-identity plus a
    fully remote execution (zero local fallbacks)."""
    root = tmp_path / "server"
    server = _start_server(root)
    workers = [
        _start_worker(root, tmp_path / "wk1", "wk1"),
        _start_worker(root, tmp_path / "wk2", "wk2"),
    ]
    try:
        client = _client(root)
        attached = _wait_attached(client, 2)
        assert attached["mode"] == "distributed"

        final = _submit_and_check(client, warm["report"])
        remote = final["stats"].get("remote", {})
        assert remote.get("remote_completions", 0) > 0
        assert remote.get("local_completions", 0) == 0

        # Replication carried every artifact back to the server store.
        health = client.health()["workers"]
        assert health["replication"]["pushes"] > 0
        assert health["replication"].get("corrupt_rejected", 0) == 0

        client.drain()
        # Workers observe the drain via heartbeat/lease and exit 0.
        for proc in workers:
            assert proc.wait(timeout=30) == 0
        assert server.wait(timeout=30) == 0
    finally:
        _reap(server, *workers)


def test_zero_workers_degrades_to_local_transparently(tmp_path, warm):
    """No workers attached: the same submit API yields the same bytes
    through in-process execution, and health reports the degradation."""
    root = tmp_path / "server"
    server = _start_server(root)
    try:
        client = _client(root)
        health = client.wait_ready()["workers"]
        assert health["mode"] == "local"
        assert health["attached"] == 0

        final = _submit_and_check(client, warm["report"])
        assert "remote" not in final["stats"]

        client.drain()
        assert server.wait(timeout=30) == 0
    finally:
        _reap(server)


# -- the kill/partition matrix ------------------------------------------------

TRANSITIONS = ["granted", "executed", "pushed", "completed"]


@pytest.mark.parametrize("tick", [1, 2, 3, 4],
                         ids=lambda t: TRANSITIONS[t - 1])
@pytest.mark.parametrize("fault", [
    "worker_vanish", "lease_stall", "net_partition", "replica_corrupt",
])
def test_fault_matrix_byte_identity(tmp_path, warm, fault, tick):
    """One armed worker, each fault at each lease transition in turn.

    The pre-warmed server root holds every recording, so ``simulated ==
    0`` asserts that no durably replicated run was ever re-recorded, no
    matter where the fault lands; the job must finish (reassignment or
    local fallback) with the byte-identical report.
    """
    root = _prewarmed_root(tmp_path, warm)
    server = _start_server(root)
    worker = _start_worker(
        root, tmp_path / "wk1", "armed",
        REPRO_FAULTS="%s:%d" % (fault, tick),
        REPRO_FAULT_STALL_SECONDS="5",
        REPRO_FAULT_PARTITION_REQUESTS="4",
    )
    try:
        client = _client(root)
        _wait_attached(client, 1)
        final = _submit_and_check(client, warm["report"])
        # Durably replicated runs are never re-recorded.
        assert final["stats"].get("simulated", 0) == 0

        if fault == "worker_vanish":
            # The armed worker must actually have died at its tick...
            assert worker.wait(timeout=60) == WORKER_VANISH_EXIT_CODE
            # ...and the pool must have noticed and fallen back.
            stats = client.health()["workers"]["stats"]
            assert (
                stats.get("workers_lost", 0)
                + stats.get("leases_expired", 0)
            ) >= 1
            assert stats.get("local_completions", 0) >= 1

        client.drain()
        if fault != "worker_vanish":
            assert worker.wait(timeout=60) == 0
        assert server.wait(timeout=30) == 0
    finally:
        _reap(server, worker)


def test_lease_stall_is_expired_and_deduped(tmp_path, warm):
    """A stall past the lease deadline forces the full failover ladder:
    expiry, reassignment (or local fallback), then the stalled
    completion arriving late -- adopted or deduped, never recommitted."""
    root = _prewarmed_root(tmp_path, warm)
    server = _start_server(root)
    worker = _start_worker(
        root, tmp_path / "wk1", "staller",
        REPRO_FAULTS="lease_stall:2",  # stall after executing its lease
        REPRO_FAULT_STALL_SECONDS="5",
    )
    try:
        client = _client(root)
        _wait_attached(client, 1)
        final = _submit_and_check(client, warm["report"])
        assert final["stats"].get("simulated", 0) == 0

        stats = client.health()["workers"]["stats"]
        assert stats.get("leases_expired", 0) >= 1
        # The stalled worker's late completion was adopted (stale) or
        # deduped (duplicate) -- one of the two, never a double commit.
        assert (
            stats.get("stale_completions", 0)
            + stats.get("duplicate_completions", 0)
            + stats.get("unknown_lease_completions", 0)
            + stats.get("late_completions", 0)
        ) >= 1

        client.drain()
        assert worker.wait(timeout=60) == 0
        assert server.wait(timeout=30) == 0
    finally:
        _reap(server, worker)


def test_worker_killed_mid_lease_reassigned_to_survivor(tmp_path, warm):
    """SIGKILL the worker that holds a lease; the survivor finishes the
    job and the report does not move."""
    root = _prewarmed_root(tmp_path, warm)
    server = _start_server(root)
    workers = {
        "wk1": _start_worker(root, tmp_path / "wk1", "wk1"),
        "wk2": _start_worker(root, tmp_path / "wk2", "wk2"),
    }
    try:
        client = _client(root)
        _wait_attached(client, 2)
        response = client.submit(
            SPEC.workload, runs=SPEC.runs, seed=SPEC.seed, scale=SPEC.scale,
        )
        assert response.get("ok"), response

        # Kill whichever worker first holds a lease.
        victim_pid = None
        deadline = time.monotonic() + 60
        while victim_pid is None and time.monotonic() < deadline:
            for entry in client.health()["workers"]["workers"]:
                if entry["leases"] > 0:
                    victim_pid = entry["pid"]
                    break
            else:
                time.sleep(0.01)
        if victim_pid is not None:  # the job may already have finished
            os.kill(victim_pid, signal.SIGKILL)

        final = client.result(response["job"], timeout_s=180)
        assert final["ok"] is True
        assert final["report"] == warm["report"]
        assert final["stats"].get("simulated", 0) == 0

        client.drain()
        assert server.wait(timeout=30) == 0
    finally:
        _reap(server, *workers.values())


# -- graceful drain -----------------------------------------------------------


def test_sigterm_worker_drains_its_lease_before_exit(tmp_path, warm):
    """SIGTERM mid-lease: the worker finishes the lease it holds,
    deregisters, and exits 0; the job completes (locally if need be)."""
    root = _prewarmed_root(tmp_path, warm)
    server = _start_server(root)
    worker = _start_worker(root, tmp_path / "wk1", "drainer")
    try:
        client = _client(root)
        _wait_attached(client, 1)
        response = client.submit(
            SPEC.workload, runs=SPEC.runs, seed=SPEC.seed, scale=SPEC.scale,
        )
        assert response.get("ok"), response

        # SIGTERM the worker as soon as it holds a lease.
        deadline = time.monotonic() + 60
        while time.monotonic() < deadline:
            entries = client.health()["workers"]["workers"]
            if any(entry["leases"] > 0 for entry in entries):
                break
            time.sleep(0.01)
        worker.send_signal(signal.SIGTERM)
        assert worker.wait(timeout=60) == 0  # drained, not killed

        final = client.result(response["job"], timeout_s=180)
        assert final["ok"] is True
        assert final["report"] == warm["report"]
        # A graceful drain released the lease: no expiry was needed
        # and the worker deregistered itself.
        stats = client.health()["workers"]["stats"]
        assert stats.get("workers_deregistered", 0) == 1
        assert stats.get("workers_lost", 0) == 0

        client.drain()
        assert server.wait(timeout=30) == 0
    finally:
        _reap(server, worker)


# -- restart / WAL interplay --------------------------------------------------


def test_restart_adopts_remotely_committed_result(tmp_path, warm):
    """A result committed via remote workers is adopted by a restarted
    server with zero re-recording -- and zero workers attached."""
    root = tmp_path / "server"
    server = _start_server(root)
    worker = _start_worker(root, tmp_path / "wk1", "wk1")
    try:
        client = _client(root)
        _wait_attached(client, 1)
        final = _submit_and_check(client, warm["report"])
        assert final["stats"].get("remote", {}).get(
            "remote_completions", 0
        ) > 0
        client.drain()
        assert worker.wait(timeout=60) == 0
        assert server.wait(timeout=30) == 0

        # Life 2: no workers this time.  The same spec must be served
        # from the replicated, durable result document untouched.
        server = _start_server(root)
        client.wait_ready()
        final = _submit_and_check(client, warm["report"])
        assert final["stats"]["result_hit"] == 1
        assert final["stats"]["simulated"] == 0
        client.drain()
        assert server.wait(timeout=30) == 0
    finally:
        _reap(server, worker)


def test_server_killed_mid_remote_job_resumes_byte_identical(tmp_path,
                                                             warm):
    """``svc_kill`` mid-job while lease records interleave with job
    transitions in the WAL: the restarted server replays both record
    types and completes the job (no workers attached) byte-identically."""
    root = _prewarmed_root(tmp_path, warm)
    client = _client(root)
    # Tick 4 lands among the accepted/sharded/lease appends -- the WAL
    # tail the restart replays mixes job and lease records.
    server = _start_server(root, REPRO_FAULTS="svc_kill:4")
    worker = _start_worker(root, tmp_path / "wk1", "wk1")
    try:
        client.wait_ready()
        _wait_attached(client, 1)
        try:
            client.submit(
                SPEC.workload, runs=SPEC.runs, seed=SPEC.seed,
                scale=SPEC.scale,
            )
        except (ServiceUnavailable, OSError):
            pass  # the server died before replying; the WAL has the job
        assert server.wait(timeout=60) == SVC_KILL_EXIT_CODE

        server = _start_server(root)
        health = client.wait_ready()
        jobs = health["jobs_list"]
        assert len(jobs) == 1
        final = client.result(jobs[0]["job"], timeout_s=180)
        assert final["ok"] is True
        assert final["report"] == warm["report"]
        assert final["stats"].get("simulated", 0) == 0

        client.drain()
        assert server.wait(timeout=30) == 0
    finally:
        _reap(server, worker)
