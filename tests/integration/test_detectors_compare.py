"""Cross-detector comparison properties on injected workload runs.

These encode the *orderings* the paper's Figures 12-17 rest on:
Ideal >= InfCache >= L2Cache >= L1Cache, vector >= CORD at any D,
CORD-D16 >= CORD-D1, and everything sound w.r.t. the oracle.
"""

import pytest

from repro.detectors.registry import standard_suite, suite_by_name
from repro.engine import run_program
from repro.injection import InjectionInterceptor
from repro.workloads import WorkloadParams, get_workload

TINY = WorkloadParams(scale=0.35, compute_grain=8)

APPS = ("fft", "ocean", "raytrace", "fmm")


def run_all(trace, n_threads):
    outcomes = {}
    for spec in standard_suite():
        outcomes[spec.name] = spec.build(n_threads).run(trace)
    return outcomes


def injected_traces(app, n=8):
    spec = get_workload(app)
    program = spec.build(TINY)
    traces = []
    for target in range(0, n * 4, 4):
        interceptor = InjectionInterceptor(target)
        trace = run_program(program, seed=13, interceptor=interceptor)
        traces.append(trace)
    return program, traces


@pytest.mark.parametrize("app", APPS)
class TestOrderings:
    def test_soundness_everywhere(self, app):
        program, traces = injected_traces(app)
        for trace in traces:
            outcomes = run_all(trace, program.n_threads)
            oracle = outcomes["Ideal"]
            for name, outcome in outcomes.items():
                # Vector detectors are access-level sound; scalar CORD is
                # run-level sound (see campaign._check_soundness).
                if name.startswith("CORD"):
                    if outcome.problem_detected:
                        assert oracle.problem_detected, (name, trace.seed)
                else:
                    assert outcome.flagged <= oracle.flagged, (
                        name, trace.seed,
                    )

    def test_history_limit_ordering(self, app):
        program, traces = injected_traces(app)
        totals = {name: 0 for name in
                  ("Ideal", "InfCache", "L2Cache", "L1Cache")}
        for trace in traces:
            outcomes = run_all(trace, program.n_threads)
            for name in totals:
                totals[name] += outcomes[name].raw_count
        assert totals["Ideal"] >= totals["InfCache"]
        assert totals["InfCache"] >= totals["L2Cache"]
        assert totals["L2Cache"] >= totals["L1Cache"]

    def test_d_sweep_ordering(self, app):
        program, traces = injected_traces(app)
        totals = {d: 0 for d in (1, 4, 16, 256)}
        for trace in traces:
            outcomes = run_all(trace, program.n_threads)
            for d in totals:
                totals[d] += outcomes["CORD-D%d" % d].raw_count
        assert totals[1] <= totals[4] <= totals[16] <= totals[256]

    def test_vector_dominates_cord(self, app):
        # The vector-clock comparison config with the same buffering
        # must flag at least whatever CORD flags (clock precision only
        # ever removes detections).
        program, traces = injected_traces(app)
        vector_total = 0
        cord_total = 0
        for trace in traces:
            outcomes = run_all(trace, program.n_threads)
            vector_total += outcomes["L2Cache"].raw_count
            cord_total += outcomes["CORD-D16"].raw_count
        assert cord_total <= vector_total


class TestSuiteRegistry:
    def test_standard_suite_names(self):
        names = [spec.name for spec in standard_suite()]
        assert names == [
            "Ideal", "InfCache", "L2Cache", "L1Cache",
            "CORD-D1", "CORD-D4", "CORD-D16", "CORD-D256",
        ]

    def test_reduced_suite(self):
        names = [
            spec.name
            for spec in standard_suite(
                include_d_sweep=False, include_cache_sweep=False
            )
        ]
        assert names == ["Ideal", "L2Cache", "CORD-D16"]

    def test_suite_by_name(self):
        suite = suite_by_name(standard_suite())
        assert suite["Ideal"].name == "Ideal"

    def test_detectors_are_fresh_per_build(self):
        spec = suite_by_name(standard_suite())["CORD-D16"]
        a = spec.build(4)
        b = spec.build(4)
        assert a is not b
        assert a.name == "CORD-D16"
