"""Kill-anywhere integration suite: the checkpointed sweep under death.

The crash-consistency contract (``docs/resilience.md`` section 6): a
checkpointed D-sensitivity sweep can lose its driver process at *any*
journal transition -- ``kill -9`` (``driver_kill``), power loss with
the journal tail unflushed (``power_cut``), or SIGTERM
(``sigterm_drain`` / the real signal) -- and re-running over the same
cache directory completes with a report and a cache tree byte-identical
to an uninterrupted run's.  On top of that, a trace whose ``recorded``
journal entry was durable before the kill is *never* re-simulated.

These tests drive the real CLI in subprocesses so the deaths are real
(``os._exit``) and the exit codes (87/88/71) travel the real path.  The
driver-kill matrix covers every transition of the journal; to keep that
affordable each matrix point starts from a cache pre-warmed with the
clean run's *recorded traces* (simulation is the expensive step and is
orthogonal to journaling -- the cold-store recording behavior has its
own tests below).
"""

import hashlib
import os
import re
import shutil
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.resilience.journal import WAL_SUFFIX, replay

_REPO = Path(__file__).resolve().parents[2]
_SWEEP_ARGS = ["sweep", "--apps", "fft", "-n", "1", "--scale", "0.25"]
_TIMEOUT = 180

_DRIVER_KILL = 87
_POWER_CUT = 88
_INTERRUPTED = 71

_RECORDING_RE = re.compile(
    r"recording: (\d+) simulated, (\d+) replayed from store"
)


def _run_sweep(cache, extra_env=None, extra_args=()):
    """One CLI sweep invocation in a hygienic subprocess."""
    env = {
        key: value
        for key, value in os.environ.items()
        if not key.startswith("REPRO_")
    }
    env["PYTHONPATH"] = str(_REPO / "src")
    env["REPRO_FSYNC"] = "0"  # tmpdir churn; durability is the OS's job
    env.update(extra_env or {})
    return subprocess.run(
        [sys.executable, "-m", "repro.cli"]
        + _SWEEP_ARGS + ["--cache", str(cache)] + list(extra_args),
        capture_output=True,
        text=True,
        env=env,
        timeout=_TIMEOUT,
    )


def _tree_digest(cache):
    """Byte digest of every durable artifact, excluding bookkeeping.

    The journal directory is per-run history (an interrupted run
    legitimately leaves more journals behind) and quarantine holds
    post-mortem debris; everything else must be byte-identical between
    an interrupted-and-resumed run and an uninterrupted one.
    """
    cache = Path(cache)
    digest = {}
    for path in sorted(cache.rglob("*")):
        if not path.is_file():
            continue
        rel = path.relative_to(cache)
        if rel.parts[0] == "journal" or "quarantine" in rel.parts:
            continue
        digest[str(rel)] = hashlib.sha256(
            path.read_bytes()
        ).hexdigest()
    return digest


def _journal_paths(cache):
    jdir = Path(cache) / "journal"
    if not jdir.is_dir():
        return []
    return sorted(jdir.iterdir())


def _simulated_count(stderr):
    match = _RECORDING_RE.search(stderr)
    assert match, "no recording accounting on stderr:\n%s" % stderr
    return int(match.group(1))


def _warm_cache(clean_cache, target):
    """A fresh cache root pre-seeded with the clean run's recorded traces.

    Only ``trace-*`` entries are copied: analysis artifacts and the
    journal stay cold, so every journal transition of a fresh run still
    happens -- just without paying for simulation at each matrix point.
    """
    target = Path(target)
    traces = target / "traces"
    traces.mkdir(parents=True)
    for path in (Path(clean_cache) / "traces").iterdir():
        if path.is_file() and path.name.startswith("trace-"):
            shutil.copy2(path, traces / path.name)
    return target


@pytest.fixture(scope="module")
def clean(tmp_path_factory):
    """The uninterrupted reference run (cold cache)."""
    cache = tmp_path_factory.mktemp("clean-cache")
    result = _run_sweep(cache)
    assert result.returncode == 0, result.stderr
    journals = _journal_paths(cache)
    assert len(journals) == 1 and journals[0].name.endswith(".done")
    state = replay(journals[0])
    assert state.finished
    return {
        "cache": cache,
        "stdout": result.stdout,
        "stderr": result.stderr,
        "tree": _tree_digest(cache),
        "n_records": state.n_records,
        "state": state,
    }


class TestCleanReference:
    def test_journal_covers_full_lifecycle(self, clean):
        state = clean["state"]
        task = state.task("fft/run0")
        assert task.scheduled and task.recorded and task.committed
        # begin + (scheduled, recorded, committed) + per-config
        # analyses (Ideal + the 8-point D sweep) + end.
        assert len(task.analyzed) == 9
        assert clean["n_records"] == 3 + 2 + 9

    def test_cold_run_simulates(self, clean):
        assert _simulated_count(clean["stderr"]) >= 1

    def test_report_is_the_sweep(self, clean):
        assert "Sensitivity sweep over D" in clean["stdout"]


class TestDriverKillMatrix:
    def test_kill_at_every_transition_resumes_bit_identical(
        self, clean, tmp_path
    ):
        """The tentpole property: kill -9 anywhere, resume, same bytes."""
        for position in range(1, clean["n_records"] + 1):
            cache = _warm_cache(clean["cache"],
                                tmp_path / ("k%02d" % position))
            killed = _run_sweep(
                cache,
                extra_env={
                    "REPRO_FAULTS": "driver_kill:%d" % position
                },
            )
            assert killed.returncode == _DRIVER_KILL, (
                "transition %d: expected the driver-kill exit, got %d\n%s"
                % (position, killed.returncode, killed.stderr)
            )
            # The wal survived the kill and replays exactly the records
            # flushed before death (driver_kill fires post-flush).
            wals = [
                p for p in _journal_paths(cache)
                if p.name.endswith(WAL_SUFFIX)
            ]
            assert len(wals) == 1
            assert replay(wals[0]).n_records == position

            resumed = _run_sweep(cache)
            assert resumed.returncode == 0, (
                "transition %d: resume failed\n%s"
                % (position, resumed.stderr)
            )
            assert "(resumed)" in resumed.stderr
            assert resumed.stdout == clean["stdout"], (
                "transition %d: resumed report differs" % position
            )
            assert _tree_digest(cache) == clean["tree"], (
                "transition %d: resumed cache tree differs" % position
            )
            # The journal was sealed on the resumed completion.
            assert any(
                p.name.endswith(".done") for p in _journal_paths(cache)
            )


class TestPowerCut:
    def test_unflushed_tail_is_lost_but_run_resumes(
        self, clean, tmp_path
    ):
        position = 6  # mid-analysis
        cache = _warm_cache(clean["cache"], tmp_path / "cut")
        cut = _run_sweep(
            cache,
            extra_env={"REPRO_FAULTS": "power_cut:%d" % position},
        )
        assert cut.returncode == _POWER_CUT, cut.stderr
        # The fault exits *before* the flush: the record it fired on
        # never reached the file, so replay sees strictly fewer records.
        wals = [
            p for p in _journal_paths(cache)
            if p.name.endswith(WAL_SUFFIX)
        ]
        assert len(wals) == 1
        assert replay(wals[0]).n_records < position

        resumed = _run_sweep(cache)
        assert resumed.returncode == 0, resumed.stderr
        assert resumed.stdout == clean["stdout"]
        assert _tree_digest(cache) == clean["tree"]

    def test_power_cut_at_first_record(self, clean, tmp_path):
        # Losing even the begin record must not strand the run.
        cache = _warm_cache(clean["cache"], tmp_path / "cut0")
        cut = _run_sweep(
            cache, extra_env={"REPRO_FAULTS": "power_cut:1"}
        )
        assert cut.returncode == _POWER_CUT
        resumed = _run_sweep(cache)
        assert resumed.returncode == 0, resumed.stderr
        assert resumed.stdout == clean["stdout"]
        assert _tree_digest(cache) == clean["tree"]


class TestSigtermDrain:
    def test_injected_drain_exits_resumable(self, clean, tmp_path):
        cache = _warm_cache(clean["cache"], tmp_path / "drain")
        drained = _run_sweep(
            cache, extra_env={"REPRO_FAULTS": "sigterm_drain:6"}
        )
        assert drained.returncode == _INTERRUPTED, drained.stderr
        assert "--resume" in drained.stderr

        resumed = _run_sweep(cache)
        assert resumed.returncode == 0, resumed.stderr
        assert resumed.stdout == clean["stdout"]
        assert _tree_digest(cache) == clean["tree"]

    def test_real_sigterm_drains_to_71(self, clean, tmp_path):
        """An actual SIGTERM mid-run takes the same resumable path."""
        cache = tmp_path / "sigterm"
        env = {
            key: value
            for key, value in os.environ.items()
            if not key.startswith("REPRO_")
        }
        env["PYTHONPATH"] = str(_REPO / "src")
        env["REPRO_FSYNC"] = "0"
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.cli"]
            + _SWEEP_ARGS + ["--cache", str(cache)],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
            env=env,
        )
        try:
            # Signal once the journal exists (the run is mid-flight).
            deadline = time.time() + _TIMEOUT
            while time.time() < deadline:
                if any(
                    p.name.endswith(WAL_SUFFIX)
                    for p in _journal_paths(cache)
                ):
                    break
                if proc.poll() is not None:
                    break
                time.sleep(0.02)
            if proc.poll() is None:
                proc.send_signal(signal.SIGTERM)
            _, stderr = proc.communicate(timeout=_TIMEOUT)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate()
        # The run either drained resumable (the interesting case) or
        # finished before the signal landed (a fast-machine race --
        # still a pass for the contract under test).
        assert proc.returncode in (0, _INTERRUPTED), stderr
        if proc.returncode == _INTERRUPTED:
            resumed = _run_sweep(cache)
            assert resumed.returncode == 0, resumed.stderr
            assert resumed.stdout == clean["stdout"]
            assert _tree_digest(cache) == clean["tree"]


class TestNeverReRecords:
    """A trace whose ``recorded`` journal entry committed is never
    re-simulated, no matter how the driver died (cold store: this is
    about the recording step itself)."""

    def test_kill_after_recorded_skips_simulation_on_resume(
        self, clean, tmp_path
    ):
        # Record 3 is "recorded fft/run0"; driver_kill fires after the
        # flush, so the entry -- and the trace the store wrote just
        # before it -- are durable.
        cache = tmp_path / "after"
        killed = _run_sweep(
            cache, extra_env={"REPRO_FAULTS": "driver_kill:3"}
        )
        assert killed.returncode == _DRIVER_KILL
        resumed = _run_sweep(cache)
        assert resumed.returncode == 0, resumed.stderr
        assert _simulated_count(resumed.stderr) == 0
        assert resumed.stdout == clean["stdout"]

    def test_kill_before_recorded_resimulates_identically(
        self, clean, tmp_path
    ):
        # Killed while appending "scheduled": nothing was recorded, so
        # the resume pays the simulation -- and still lands on the
        # same bytes.
        cache = tmp_path / "before"
        killed = _run_sweep(
            cache, extra_env={"REPRO_FAULTS": "driver_kill:2"}
        )
        assert killed.returncode == _DRIVER_KILL
        resumed = _run_sweep(cache)
        assert resumed.returncode == 0, resumed.stderr
        assert _simulated_count(resumed.stderr) >= 1
        assert resumed.stdout == clean["stdout"]
        assert _tree_digest(cache) == clean["tree"]


class TestResumeSafety:
    def test_explicit_resume_with_wrong_identity_refused(
        self, clean, tmp_path
    ):
        # Same cache, different sweep identity (seed): resuming the
        # existing run id must be refused (exit 66, corrupt-store
        # domain) instead of silently mixing results.
        cache = tmp_path / "mismatch"
        shutil.copytree(clean["cache"], cache)
        done = [
            p for p in _journal_paths(cache)
            if p.name.endswith(".done")
        ]
        run_id = done[0].name[: -len(".done")]
        result = _run_sweep(
            cache,
            extra_args=["--seed", "7", "--resume", run_id],
        )
        assert result.returncode == 66, result.stderr
        assert "identity" in result.stderr

    def test_finished_run_reruns_from_caches(self, clean, tmp_path):
        # A second invocation over a sealed cache recomputes nothing:
        # no simulation, same report, a second sealed journal.
        cache = tmp_path / "again"
        shutil.copytree(clean["cache"], cache)
        again = _run_sweep(cache)
        assert again.returncode == 0, again.stderr
        assert again.stdout == clean["stdout"]
        assert _simulated_count(again.stderr) == 0
        assert _tree_digest(cache) == clean["tree"]
