"""Integration tests for the directory-based CORD extension."""

import pytest

from repro.common.errors import ConfigError
from repro.cord import (
    CordConfig,
    CordDetector,
    DirectoryCordDetector,
    replay_trace,
    verify_replay,
)
from repro.engine import run_program
from repro.injection import InjectionInterceptor
from repro.workloads import WorkloadParams, get_workload

from tests.conftest import build_counter_program

TINY = WorkloadParams(scale=0.3, compute_grain=8)

APPS = ("ocean", "raytrace", "fmm")


def run_pair(trace, n_threads, d=16):
    snoop = CordDetector(CordConfig(d=d), n_threads).run(trace)
    directory_detector = DirectoryCordDetector(
        CordConfig(d=d), n_threads
    )
    directory = directory_detector.run(trace)
    return snoop, directory, directory_detector


class TestEquivalenceWithSnooping:
    @pytest.mark.parametrize("app", APPS)
    def test_same_races_and_log(self, app):
        program = get_workload(app).build(TINY)
        trace = run_program(program, seed=4)
        snoop, directory, _det = run_pair(trace, program.n_threads)
        assert snoop.flagged == directory.flagged
        assert [
            (e.clock, e.thread, e.count) for e in snoop.log
        ] == [(e.clock, e.thread, e.count) for e in directory.log]

    @pytest.mark.parametrize("app", APPS)
    def test_same_detection_on_injected_runs(self, app):
        program = get_workload(app).build(TINY)
        for target in (1, 7, 13):
            interceptor = InjectionInterceptor(target)
            trace = run_program(
                program, seed=9, interceptor=interceptor
            )
            snoop, directory, _det = run_pair(trace, program.n_threads)
            assert snoop.flagged == directory.flagged

    def test_replay_from_directory_log(self):
        program = build_counter_program()
        trace = run_program(program, seed=3)
        detector = DirectoryCordDetector(CordConfig(), 4)
        outcome = detector.run(trace)
        replayed = replay_trace(program, outcome.log)
        assert verify_replay(trace, replayed).equivalent


class TestDirectoryState:
    def test_directory_matches_caches(self):
        program = get_workload("ocean").build(TINY)
        trace = run_program(program, seed=5)
        detector = DirectoryCordDetector(CordConfig(), 4)
        detector.run(trace)
        detector.verify_directory()  # raises on any desync

    def test_directory_tracks_pressure(self):
        # A small cache must show eviction-driven sharer removal.
        program = get_workload("barnes").build(TINY)
        trace = run_program(program, seed=5)
        detector = DirectoryCordDetector(
            CordConfig(cache_size=2 * 1024), 4
        )
        outcome = detector.run(trace)
        detector.verify_directory()
        assert outcome.counters["evictions"] > 0


class TestTrafficModel:
    def test_point_to_point_counts(self):
        program = get_workload("raytrace").build(TINY)
        trace = run_program(program, seed=6)
        _snoop, directory, detector = run_pair(
            trace, program.n_threads
        )
        assert detector.home_requests == directory.counters[
            "home_requests"
        ]
        # Each check costs 1 home request + 2 per remote sharer; total
        # messages are consistent with the component counters (plus one
        # write-back message per eviction).
        expected = (
            detector.home_requests
            + 2 * detector.sharer_forwards
            + directory.counters["evictions"]
        )
        assert directory.counters["directory_messages"] == expected

    def test_low_sharing_lines_are_cheap(self):
        # Private data has no sharers: forwards per check stay low
        # compared to a broadcast (which always disturbs P-1 caches).
        program = get_workload("raytrace").build(TINY)
        trace = run_program(program, seed=6)
        _snoop, directory, detector = run_pair(
            trace, program.n_threads
        )
        broadcast_equivalent = 3 * directory.counters["race_checks"]
        assert detector.sharer_forwards < broadcast_equivalent


class TestRestrictions:
    def test_window_mode_rejected(self):
        with pytest.raises(ConfigError):
            DirectoryCordDetector(CordConfig(use_window=True), 4)
