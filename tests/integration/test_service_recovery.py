"""Crash-recovery matrix for the campaign server.

The core robustness claim: a server killed at *any* job-state WAL
transition restarts, replays the WAL, resumes every acknowledged job,
and finishes it to a report byte-identical to the serial CLI path --
without re-recording any trace that was already durable.

The matrix arms the ``svc_kill`` chaos fault at each WAL tick of a
fresh server's first job in turn (see the tick map below), lets the
real subprocess die with exit code 89, restarts it on the same root,
and checks the contract end to end.  Roots are pre-warmed with the
campaign's *recordings only* (``trace-*`` store files, never the
``value-*`` analysis/result documents), so "no re-recording" is
assertable as ``simulated == 0`` while sizing, analysis, and the
result commit still genuinely re-execute.

WAL ticks of a fresh server's first job::

    1  svc-begin          (never killed: nothing accepted yet)
    2  accepted           (durable before the submit reply)
    3  sharded
    4  recording
    5  analyzing
    6  committed          (after the result document is durable)
"""

import os
import shutil
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.injection.campaign import (
    CampaignConfig,
    format_campaign_report,
    run_campaign,
)
from repro.resilience.checkpoint import INTERRUPTED_EXIT_CODE
from repro.resilience.faults import SVC_KILL_EXIT_CODE
from repro.service.client import ServiceClient, ServiceUnavailable
from repro.service.executor import execute_job
from repro.service.jobs import CampaignSpec
from repro.workloads.registry import get_workload

SPEC = CampaignSpec(workload="fft", runs=4, seed=13, scale=0.5)

SRC = str(Path(__file__).resolve().parents[2] / "src")


def _env(**extra):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [SRC] + [p for p in env.get("PYTHONPATH", "").split(os.pathsep) if p]
    )
    env["REPRO_FSYNC"] = "0"  # tmpfs-friendly; durability order still holds
    env.pop("REPRO_FAULTS", None)
    env.update(extra)
    return env


def _start(root, **extra):
    return subprocess.Popen(
        [sys.executable, "-m", "repro.service", "serve", "--root",
         str(root)],
        env=_env(**extra),
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )


def _client(root):
    return ServiceClient(socket_path=Path(root) / "service.sock")


@pytest.fixture(scope="module")
def warm(tmp_path_factory):
    """Expected report + a template store holding the spec's recordings."""
    template = tmp_path_factory.mktemp("svc-template")
    os.environ.setdefault("REPRO_FSYNC", "0")
    outcome = execute_job(SPEC, template)
    workload = get_workload(SPEC.workload)
    campaign = run_campaign(
        workload.program_factory(SPEC.workload_params()),
        SPEC.workload,
        CampaignConfig(n_runs=SPEC.runs, base_seed=SPEC.seed),
    )
    expected = format_campaign_report(campaign)
    assert outcome["report"] == expected  # executor vs in-process CLI path
    return {"traces": template / "traces", "report": expected}


def _prewarmed_root(tmp_path, warm) -> Path:
    """A fresh server root seeded with recordings but no analysis/results."""
    root = tmp_path / "root"
    traces = root / "traces"
    traces.mkdir(parents=True)
    copied = 0
    for entry in warm["traces"].iterdir():
        if entry.name.startswith("trace-"):
            shutil.copy2(entry, traces / entry.name)
            copied += 1
    assert copied >= SPEC.runs  # every run's recording (plus sizing runs)
    return root


def _submit_may_die(client):
    """Submit SPEC; None when the server died before replying."""
    try:
        response = client.submit(
            SPEC.workload, runs=SPEC.runs, seed=SPEC.seed, scale=SPEC.scale,
            tenant="matrix",
        )
    except ServiceUnavailable:
        return None
    return response.get("job")


@pytest.mark.parametrize("tick,killed_after", [
    (2, "accepted"),
    (3, "sharded"),
    (4, "recording"),
    (5, "analyzing"),
    (6, "committed"),
])
def test_kill_at_every_wal_transition(tmp_path, warm, tick, killed_after):
    root = _prewarmed_root(tmp_path, warm)
    client = _client(root)

    # Life 1: armed to die right after the `killed_after` WAL append.
    proc = _start(root, REPRO_FAULTS="svc_kill:%d" % tick)
    client.wait_ready()
    job_id = _submit_may_die(client)
    assert proc.wait(timeout=60) == SVC_KILL_EXIT_CODE

    # Life 2: plain restart on the same root resumes from the WAL.
    proc = _start(root)
    try:
        health = client.wait_ready()
        jobs = health["jobs_list"]
        assert len(jobs) == 1, (
            "the accepted job must survive a kill after %r" % killed_after
        )
        if job_id is not None:  # the submit reply made it out
            assert jobs[0]["job"] == job_id
        job_id = jobs[0]["job"]

        final = client.result(job_id, timeout_s=120)
        assert final["ok"] is True
        assert final["state"] == "committed"
        # Byte-identical to the CLI path, every kill position.
        assert final["report"] == warm["report"]
        # Durable recordings were never redone (the root held them all).
        assert final["stats"].get("simulated", 0) == 0
        assert client.status(job_id)["resumed"] is True

        client.drain()
        assert proc.wait(timeout=30) == 0
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=10)


def test_sigterm_drains_and_resume_is_byte_identical(tmp_path, warm):
    """SIGTERM mid-job: exit 71, restart resumes, report unchanged.

    No pre-warming here -- the job records for real, so the kill lands
    mid-recording and the resumed life must skip exactly the runs that
    became durable before the signal.
    """
    root = tmp_path / "root"
    client = _client(root)
    proc = _start(root)
    try:
        client.wait_ready()
        response = client.submit(
            SPEC.workload, runs=SPEC.runs, seed=SPEC.seed, scale=SPEC.scale,
        )
        job_id = response["job"]
        deadline = time.monotonic() + 60
        while client.status(job_id)["state"] in ("accepted", "sharded"):
            assert time.monotonic() < deadline
            time.sleep(0.01)
        proc.send_signal(signal.SIGTERM)
        assert proc.wait(timeout=60) == INTERRUPTED_EXIT_CODE

        proc = _start(root)
        client.wait_ready()
        final = client.result(job_id, timeout_s=120)
        assert final["ok"] is True
        assert final["report"] == warm["report"]
        assert client.status(job_id)["resumed"] is True

        client.drain()
        assert proc.wait(timeout=30) == 0
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=10)


def test_store_corruption_mid_job_self_heals(tmp_path, warm):
    """``store_corrupt_mid_job`` tears a durable recording between the
    record and analyze phases; the store must quarantine it, re-record
    deterministically, and the report must not move a byte."""
    root = _prewarmed_root(tmp_path, warm)
    client = _client(root)
    proc = _start(root, REPRO_FAULTS="store_corrupt_mid_job")
    try:
        client.wait_ready()
        response = client.submit(
            SPEC.workload, runs=SPEC.runs, seed=SPEC.seed, scale=SPEC.scale,
        )
        final = client.result(response["job"], timeout_s=120)
        assert final["ok"] is True
        assert final["report"] == warm["report"]
        # Exactly the torn entry was re-recorded; the rest replayed.
        store_stats = final["stats"].get("store", {})
        assert store_stats.get("quarantined", 0) >= 1
        client.drain()
        assert proc.wait(timeout=30) == 0
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=10)


def test_restart_replays_interleaved_lease_records(tmp_path, warm):
    """A WAL mixing job transitions with worker lease-epoch records --
    grants, an expiry/requeue/re-grant at epoch 2, a duplicate late
    completion, and a torn tail mid-lease -- must replay cleanly: the
    restarted server resumes the job and commits the byte-identical
    report with zero re-recording."""
    from repro.service.jobs import Job, JobRegistry

    root = _prewarmed_root(tmp_path, warm)
    registry = JobRegistry(root)
    registry.begin()
    job_id = registry.allocate_job_id(SPEC)
    registry.log_accepted(Job(job_id=job_id, tenant="matrix", spec=SPEC))
    registry.log_state(job_id, "sharded")
    registry.log_state(job_id, "recording")
    for event, task, epoch in [
        ("grant", "record/0", 1),
        ("grant", "record/1", 1),
        ("expire", "record/0", 1),
        ("requeue", "record/0", 1),
        ("grant", "record/0", 2),
        ("done", "record/1", 1),
        ("duplicate", "record/0", 1),
    ]:
        registry.log_lease({
            "event": event, "job": job_id, "task": task,
            "epoch": epoch, "worker": "wk0001-gone",
        })
    # Tear the tail mid-lease: at worst the newest lease record is
    # forgotten, never the job.
    wal = root / "service" / "jobs.wal"
    wal.write_bytes(wal.read_bytes()[:-5])

    proc = _start(root)
    client = _client(root)
    try:
        health = client.wait_ready()
        jobs = health["jobs_list"]
        assert [entry["job"] for entry in jobs] == [job_id]

        final = client.result(job_id, timeout_s=120)
        assert final["ok"] is True
        assert final["state"] == "committed"
        assert final["report"] == warm["report"]
        assert final["stats"].get("simulated", 0) == 0
        assert client.status(job_id)["resumed"] is True

        client.drain()
        assert proc.wait(timeout=30) == 0
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=10)
