"""Integration tests for the figure/table drivers (small configurations)."""

import pytest

from repro.experiments import (
    Suite,
    SuiteConfig,
    figure10,
    figure11,
    figure12,
    figure13,
    figure14,
    figure15,
    figure16,
    figure17,
    order_recording_summary,
    table1,
)
from repro.workloads import WorkloadParams

#: Small but non-trivial suite: three apps, few runs (fast CI shape).
SMALL = SuiteConfig(
    runs_per_app=5,
    workloads=("fft", "raytrace", "ocean"),
    params=WorkloadParams(scale=0.35, compute_grain=8),
)


@pytest.fixture(scope="module")
def suite():
    s = Suite(SMALL)
    s.campaigns()
    return s


class TestTable1:
    def test_rows(self):
        table = table1()
        assert len(table.rows) == 12
        assert table.rows[0][0] == "barnes"
        rendered = table.render()
        assert "Table 1" in rendered
        assert "teapot" in rendered


class TestDetectionFigures:
    def test_figure10(self, suite):
        fig = figure10(suite)
        assert set(fig.rows) == set(SMALL.workloads)
        assert 0.0 < fig.average[0] <= 1.0
        assert "Figure 10" in fig.render()

    def test_figure12_13_consistency(self, suite):
        f12 = figure12(suite)
        f13 = figure13(suite)
        # Raw detection is much sparser than problem detection.
        assert f13.average_of("vs Ideal") <= f12.average_of("vs Ideal")
        for fig in (f12, f13):
            for values in fig.rows.values():
                assert all(0.0 <= v <= 1.0 for v in values)

    def test_figure14_15_ordering(self, suite):
        f14 = figure14(suite)
        f15 = figure15(suite)
        for fig in (f14, f15):
            avg = dict(zip(fig.series, fig.average))
            assert avg["InfCache"] >= avg["L2Cache"] >= avg["L1Cache"]

    def test_figure16_17_ordering(self, suite):
        f16 = figure16(suite)
        f17 = figure17(suite)
        for fig in (f16, f17):
            avg = dict(zip(fig.series, fig.average))
            assert avg["CORD-D1"] <= avg["CORD-D4"]
            assert avg["CORD-D4"] <= avg["CORD-D16"] + 1e-9
            assert avg["CORD-D16"] <= avg["CORD-D256"] + 1e-9

    def test_render_contains_average(self, suite):
        assert "Average" in figure10(suite).render()

    def test_value_accessors(self, suite):
        fig = figure10(suite)
        assert fig.value("fft", "manifested") == fig.rows["fft"][0]


class TestFigure11:
    def test_small_overhead_all_apps(self):
        fig = figure11(
            params=WorkloadParams(scale=0.5),
            workloads=("lu", "cholesky", "raytrace"),
        )
        for app, values in fig.rows.items():
            assert 1.0 <= values[0] < 1.10, app
        assert fig.average[0] < 1.05

    def test_cholesky_is_costlier_than_raytrace(self):
        fig = figure11(workloads=("cholesky", "raytrace"))
        assert fig.value("cholesky", "relative time") >= \
            fig.value("raytrace", "relative time")


class TestOrderRecordingSummary:
    def test_all_apps_replay(self):
        summary = order_recording_summary(
            params=WorkloadParams(scale=0.3, compute_grain=8),
            workloads=("fft", "lu", "water-sp"),
        )
        assert summary.all_ok
        rendered = summary.render()
        assert "clean replay" in rendered
        for row in summary.rows:
            assert row.log_bytes_clean < (1 << 20)  # paper: < 1 MB


class TestSuite:
    def test_campaigns_cached(self, suite):
        first = suite.campaign("fft")
        second = suite.campaign("fft")
        assert first is second

    def test_pooled_rates_bounded(self, suite):
        rate = suite.average_problem_rate("CORD-D16", "Ideal")
        assert 0.0 <= rate <= 1.0
