"""Exhaustive interleaving exploration (bounded model checking).

Hypothesis samples schedules; for *small* programs we can do better and
enumerate every reachable interleaving with a DFS over scheduler choices.
On every single schedule of the test programs we assert:

* the engine is deterministic (same choice sequence, same trace);
* a properly synchronized program yields zero Ideal/CORD reports in
  *every* interleaving (the definition of properly labeled);
* record/replay round-trips on *every* interleaving;
* for a racy program, the soundness relation holds everywhere.

This is the strongest evidence short of proof that the detector's
guarantees do not depend on scheduler luck.
"""

import pytest

from repro.cord import CordConfig, CordDetector, replay_trace, verify_replay
from repro.detectors import IdealDetector
from repro.engine.executor import ExecutionEngine
from repro.program import AddressSpace, Program
from repro.program.ops import ReadOp, WriteOp
from repro.sync import Flag, Mutex, acquire, flag_set, flag_wait, release


def collect(program):
    """Enumerate every distinct trace reachable by scheduler choice.

    DFS over branch points: whenever more than one thread is runnable,
    continue with the first and queue the alternatives as new prefixes,
    re-executing from scratch per prefix (the programs are tiny).
    """
    traces = []
    seen = set()
    pending = [[]]
    while pending:
        prefix = pending.pop()
        engine = ExecutionEngine(program)
        valid = True
        for choice in prefix:
            if choice not in engine.runnable_threads():
                valid = False
                break
            engine.step(choice)
        if not valid:
            continue
        choices = list(prefix)
        while True:
            if engine.all_finished():
                key = tuple(e.key() for e in engine.events)
                if key not in seen:
                    seen.add(key)
                    traces.append(engine.build_trace())
                break
            runnable = engine.runnable_threads()
            if not runnable:
                traces.append(engine.build_trace(hung=True))
                break
            for alternative in runnable[1:]:
                pending.append(choices + [alternative])
            choices.append(runnable[0])
            engine.step(runnable[0])
        assert len(traces) < 6000, "state space too large for this test"
    return traces


def locked_pair_program():
    space = AddressSpace()
    mutex = Mutex.allocate(space, "m")
    word = space.alloc("w", align_to_line=True)
    private = space.alloc_array("private", 2)

    def body(tid):
        # Private prologue: creates real interleaving branch points
        # before the serialized critical sections.
        yield WriteOp(private[tid], tid)
        yield ReadOp(private[tid])
        yield from acquire(mutex)
        value = yield ReadOp(word)
        yield WriteOp(word, (value or 0) + 1)
        yield from release(mutex)
        yield WriteOp(private[tid], tid + 10)

    return Program([body] * 2, space, name="locked-pair"), word


def flag_handoff_program():
    space = AddressSpace()
    flag = Flag.allocate(space, "f")
    word = space.alloc("w", align_to_line=True)

    def producer(tid):
        yield WriteOp(word, 7)
        yield from flag_set(flag, 1)

    def consumer(tid):
        yield from flag_wait(flag, 1)
        value = yield ReadOp(word)
        yield WriteOp(word, (value or 0) + 1)

    return Program([producer, consumer], space, name="handoff"), word


def racy_pair_program():
    space = AddressSpace()
    word = space.alloc("w", align_to_line=True)

    def body(tid):
        value = yield ReadOp(word)
        yield WriteOp(word, (value or 0) + 1)

    return Program([body] * 2, space, name="racy-pair"), word


class TestExhaustiveLockedPair:
    @pytest.fixture(scope="class")
    def traces(self):
        program, _ = locked_pair_program()
        return program, collect(program)

    def test_space_is_nontrivial(self, traces):
        _program, all_traces = traces
        assert len(all_traces) > 10

    def test_mutual_exclusion_everywhere(self, traces):
        program, all_traces = traces
        for trace in all_traces:
            assert not trace.hung
            counter_writes = [
                e.value for e in trace.events
                if e.is_write and not e.is_sync
                and e.value in (1, 2)
            ]
            assert counter_writes[-1] == 2  # no lost update anywhere

    def test_no_detector_report_in_any_interleaving(self, traces):
        program, all_traces = traces
        for trace in all_traces:
            assert IdealDetector(2).run(trace).raw_count == 0
            assert CordDetector(CordConfig(d=16), 2).run(
                trace
            ).raw_count == 0

    def test_replay_roundtrips_every_interleaving(self, traces):
        program, all_traces = traces
        for trace in all_traces:
            outcome = CordDetector(CordConfig(d=16), 2).run(trace)
            replayed = replay_trace(program, outcome.log)
            verdict = verify_replay(trace, replayed)
            assert verdict.equivalent, verdict.detail


class TestExhaustiveFlagHandoff:
    @pytest.fixture(scope="class")
    def traces(self):
        program, _ = flag_handoff_program()
        return program, collect(program)

    def test_consumer_always_sees_producer_value(self, traces):
        _program, all_traces = traces
        for trace in all_traces:
            consumer_read = [
                e for e in trace.events
                if e.thread == 1 and not e.is_sync and not e.is_write
            ][0]
            assert consumer_read.value == 7

    def test_always_silent_and_replayable(self, traces):
        program, all_traces = traces
        for trace in all_traces:
            assert IdealDetector(2).run(trace).raw_count == 0
            outcome = CordDetector(CordConfig(d=16), 2).run(trace)
            assert outcome.raw_count == 0
            replayed = replay_trace(program, outcome.log)
            assert verify_replay(trace, replayed).equivalent


class TestExhaustiveRacyPair:
    @pytest.fixture(scope="class")
    def traces(self):
        program, _ = racy_pair_program()
        return program, collect(program)

    def test_every_interleaving_is_racy_to_ideal(self, traces):
        # Two unsynchronized RMWs conflict in every schedule.
        _program, all_traces = traces
        for trace in all_traces:
            assert IdealDetector(2).run(trace).problem_detected

    def test_soundness_and_replay_everywhere(self, traces):
        program, all_traces = traces
        for trace in all_traces:
            ideal = IdealDetector(2).run(trace)
            outcome = CordDetector(CordConfig(d=16), 2).run(trace)
            if outcome.problem_detected:
                assert ideal.problem_detected
            replayed = replay_trace(program, outcome.log)
            assert verify_replay(trace, replayed).equivalent

    def test_cord_detects_in_most_interleavings(self, traces):
        # The racy pair is the "nearly simultaneous" case CORD is built
        # to catch: it reports in the (large) majority of schedules.
        _program, all_traces = traces
        detected = sum(
            1
            for trace in all_traces
            if CordDetector(CordConfig(d=16), 2).run(
                trace
            ).problem_detected
        )
        assert detected >= len(all_traces) * 0.5
