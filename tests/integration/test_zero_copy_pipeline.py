"""Integration: the zero-copy trace plane end to end.

Three layers:

* ``record_injected_once`` serves recordings from a shared-memory map
  before the store, falls back layer by layer (corrupt segment ->
  store -> re-record), and every layer returns identical recordings.
* The pooled :class:`Suite` publishes warm recordings over shared
  memory, workers attach zero-copy, and the resulting campaign caches
  are byte-identical to the serial and cold paths (the acceptance
  criterion for the v3/mmap/shared-memory stack).
* A warm store-backed sweep performs zero eager deserializations
  (every read is an mmap hit).
"""

import glob
import os
import shutil

import pytest

from repro.experiments.runner import Suite, SuiteConfig, trace_namespace
from repro.injection.campaign import (
    CampaignConfig,
    plan_campaign_runs,
    record_injected_once,
)
from repro.trace import (
    PackedTraceStore,
    SharedTraceHandle,
    SharedTraceMap,
    publish_trace,
    sharedmem_available,
    unpublish_trace,
)
from repro.workloads import WorkloadParams, get_workload

PARAMS = WorkloadParams(scale=0.25)


def _factory(name="fft"):
    return get_workload(name).program_factory(PARAMS)


def test_shared_map_served_before_store(tmp_path):
    if not sharedmem_available():
        pytest.skip("shared memory unavailable")
    store = PackedTraceStore(tmp_path)
    baseline = record_injected_once(
        _factory(), seed=11, target_index=2,
        store=store, namespace="fft/ns",
    )
    blob, extra = store.export_run("fft/ns", (11, 2, 0.1))
    handle, shm = publish_trace(blob)
    try:
        shared = SharedTraceMap({(11, 2, 0.1): (handle, extra)})
        fresh_store = PackedTraceStore(tmp_path)
        served = record_injected_once(
            _factory(), seed=11, target_index=2,
            store=fresh_store, namespace="fft/ns", shared=shared,
        )
        assert shared.stats["shm_attach_hits"] == 1
        # The store was never consulted: shared memory won.
        assert fresh_store.stats["run_hits"] == 0
        assert served.packed.zero_copy
        assert served.packed.columns_equal(baseline.packed)
        assert served.removed == baseline.removed
        assert served.injected == baseline.injected
        assert served.n_threads == baseline.n_threads
    finally:
        unpublish_trace(shm)


def test_shared_map_corruption_falls_back_to_store(tmp_path):
    if not sharedmem_available():
        pytest.skip("shared memory unavailable")
    store = PackedTraceStore(tmp_path)
    baseline = record_injected_once(
        _factory(), seed=11, target_index=2,
        store=store, namespace="fft/ns",
    )
    blob, extra = store.export_run("fft/ns", (11, 2, 0.1))
    handle, shm = publish_trace(blob)
    try:
        tampered = SharedTraceHandle(handle.name, handle.size, "0" * 64)
        shared = SharedTraceMap({(11, 2, 0.1): (tampered, extra)})
        fallback_store = PackedTraceStore(tmp_path)
        served = record_injected_once(
            _factory(), seed=11, target_index=2,
            store=fallback_store, namespace="fft/ns", shared=shared,
        )
        assert shared.stats["shm_digest_mismatch"] == 1
        assert fallback_store.stats["run_hits"] == 1
        assert served.packed.columns_equal(baseline.packed)
    finally:
        unpublish_trace(shm)


def test_warm_store_reads_are_all_mmap_hits(tmp_path):
    # Record a few runs cold, then replay them warm: the acceptance
    # criterion is zero per-task full deserializations on the warm pass.
    store = PackedTraceStore(tmp_path)
    namespace = "fft/warm"
    keys = [(seed, seed % 3, 0.1) for seed in (5, 6, 7)]
    for seed, target, switch in keys:
        record_injected_once(
            _factory(), seed=seed, target_index=target,
            switch_probability=switch, store=store, namespace=namespace,
        )
    warm = PackedTraceStore(tmp_path)
    for seed, target, switch in keys:
        recorded = record_injected_once(
            _factory(), seed=seed, target_index=target,
            switch_probability=switch, store=warm, namespace=namespace,
        )
        assert recorded.packed.zero_copy
    assert warm.stats["mmap_hits"] == len(keys)
    assert warm.stats["eager_decodes"] == 0
    assert warm.stats["run_misses"] == 0


def _campaign_caches(cache_dir):
    return {
        os.path.basename(path): open(path, "rb").read()
        for path in glob.glob(os.path.join(cache_dir, "campaign-*.pkl"))
    }


def _reset_campaign_caches(cache_dir):
    for path in glob.glob(os.path.join(cache_dir, "campaign-*.pkl")):
        os.remove(path)
    shutil.rmtree(os.path.join(cache_dir, "journal"), ignore_errors=True)


def test_pooled_suite_shared_memory_byte_identical(tmp_path):
    if not sharedmem_available():
        pytest.skip("shared memory unavailable")
    cache_dir = str(tmp_path / "cache")
    config = SuiteConfig(
        runs_per_app=3, workloads=["fft", "lu"], params=PARAMS
    )

    # Cold pooled pass: records every trace, nothing published yet.
    # (Shared-memory publication belongs to the campaign-level
    # scheduler; the run-level pipeline maps traces off the store mmap
    # instead, so pin the scheduler this test is about.)
    cold = Suite(config, jobs=2, cache_dir=cache_dir,
                 scheduler="campaigns")
    cold.campaigns()
    cold_caches = _campaign_caches(cache_dir)
    assert cold_caches

    # Warm pooled pass over the recorded store: the parent publishes
    # every recording and the workers attach zero-copy.
    _reset_campaign_caches(cache_dir)
    warm = Suite(config, jobs=2, cache_dir=cache_dir,
                 scheduler="campaigns")
    warm.campaigns()
    assert warm.warnings["shm_published"] == 2 * 3
    assert _campaign_caches(cache_dir) == cold_caches

    # Warm serial pass (store only, no pool, no shared memory).
    _reset_campaign_caches(cache_dir)
    serial = Suite(config, jobs=1, cache_dir=cache_dir)
    serial.campaigns()
    assert _campaign_caches(cache_dir) == cold_caches

    # No segments leaked past the fan-out.
    assert not glob.glob("/dev/shm/psm_*")


def test_plan_matches_recorded_keys(tmp_path):
    # The planner must reproduce exactly the keys the campaign records
    # under -- otherwise publication would silently miss everything.
    store = PackedTraceStore(tmp_path / "traces")
    config = SuiteConfig(runs_per_app=3, workloads=["fft"], params=PARAMS)
    suite = Suite(config, jobs=1, cache_dir=str(tmp_path))
    suite.campaigns()
    namespace = trace_namespace("fft", PARAMS)
    plan = plan_campaign_runs(
        "fft",
        CampaignConfig(n_runs=3, base_seed=config.base_seed),
        store,
        namespace,
    )
    assert plan is not None and len(plan) == 3
    for components in plan:
        assert store.export_run(namespace, components) is not None
