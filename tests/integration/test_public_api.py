"""Public API surface tests: everything documented must work as shown."""

import importlib

import pytest

import repro


class TestApiSurface:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version(self):
        assert repro.__version__

    def test_subpackages_import(self):
        for module in (
            "repro.analysis",
            "repro.cachesim",
            "repro.clocks",
            "repro.cord",
            "repro.detectors",
            "repro.engine",
            "repro.experiments",
            "repro.injection",
            "repro.meta",
            "repro.program",
            "repro.recovery",
            "repro.sync",
            "repro.timingsim",
            "repro.trace",
            "repro.workloads",
            "repro.cli",
        ):
            importlib.import_module(module)


class TestReadmeQuickstart:
    def test_quickstart_snippet(self):
        # The exact flow from README.md's Quickstart section.
        from repro import (
            CordConfig,
            CordDetector,
            WorkloadParams,
            get_workload,
            replay_trace,
            run_program,
            verify_replay,
        )

        program = get_workload("raytrace").build(
            WorkloadParams(scale=0.3)
        )
        trace = run_program(program, seed=42)
        outcome = CordDetector(
            CordConfig(d=16), program.n_threads
        ).run(trace)
        assert outcome.raw_count == 0
        assert outcome.log_bytes % 8 == 0
        replayed = replay_trace(program, outcome.log)
        assert verify_replay(trace, replayed).equivalent

    def test_module_docstring_quickstart(self):
        # repro.__doc__ contains a quickstart too; run its key claims.
        assert "CORD" in repro.__doc__
        assert "replay" in repro.__doc__
