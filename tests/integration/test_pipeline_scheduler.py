"""Integration tests: the run-level pipelined scheduler under chaos.

The tentpole contract of the run-level scheduler
(:meth:`Suite._run_pipelined`): campaigns decompose into sizing /
record / analyze tasks streamed through one supervisor queue, and
*everything observable stays byte-identical to the serial path* --
results, campaign caches, journals -- no matter which scheduler ran,
which workers died, or where a drain request landed.  The batch
analysis tier degrades per run: one poisoned batch pass costs only a
log entry, never a wrong byte.
"""

import glob
import os

import pytest

from repro.common.errors import InterruptedRunError
from repro.experiments.runner import (
    SCHEDULER_MODES,
    Suite,
    SuiteConfig,
)
from repro.injection.campaign import analyze_recorded_batch
from repro.resilience import faults
from repro.resilience.guard import GUARD_LOG, guarded_outcomes_batch
from repro.resilience.journal import WAL_SUFFIX, replay
from repro.workloads import WorkloadParams

_PARAMS = WorkloadParams(scale=0.25)

#: Deliberately imbalanced mix: ocean is several times heavier than fft
#: at this scale, which is exactly the shape campaign-level pooling
#: handles worst and run-level pipelining handles best.
_CONFIG = SuiteConfig(
    runs_per_app=3,
    workloads=("fft", "ocean"),
    params=_PARAMS,
)


@pytest.fixture(autouse=True)
def _fault_hygiene(monkeypatch):
    for var in ("REPRO_FAULTS", "REPRO_MAX_RETRIES", "REPRO_SCHED",
                "REPRO_BATCH_RUNS", "REPRO_NO_SHM"):
        monkeypatch.delenv(var, raising=False)
    monkeypatch.setenv("REPRO_FSYNC", "0")
    faults.reset()
    GUARD_LOG.clear()
    yield
    faults.reset()
    GUARD_LOG.clear()


def _digest(suite):
    out = {}
    for name, campaign in suite.campaigns().items():
        out[name] = (
            campaign.sync_instances,
            tuple(campaign.detector_names),
            [
                (
                    run.run_index,
                    run.seed,
                    run.target_index,
                    tuple(sorted(run.flagged.items())),
                    tuple(sorted(run.problem.items())),
                )
                for run in campaign.runs
            ],
        )
    return out


def _campaign_caches(cache_dir):
    return {
        os.path.basename(path): open(path, "rb").read()
        for path in glob.glob(str(cache_dir / "campaign-*.pkl"))
    }


class TestSchedulerEquivalence:
    """Serial, campaign-pooled, and run-level runs are byte-identical."""

    def test_all_schedulers_agree(self, tmp_path):
        arms = {
            "serial": Suite(_CONFIG, jobs=1, cache_dir=tmp_path / "s",
                            scheduler="campaigns"),
            "campaigns": Suite(_CONFIG, jobs=2,
                               cache_dir=tmp_path / "c",
                               scheduler="campaigns"),
            "runs": Suite(_CONFIG, jobs=2, cache_dir=tmp_path / "r",
                          scheduler="runs"),
        }
        digests = {name: _digest(suite) for name, suite in arms.items()}
        assert digests["runs"] == digests["serial"]
        assert digests["campaigns"] == digests["serial"]
        caches = {
            name: _campaign_caches(tmp_path / name[0])
            for name in arms
        }
        assert caches["serial"]
        assert caches["runs"] == caches["serial"]
        assert caches["campaigns"] == caches["serial"]

    def test_batch_size_does_not_change_bytes(self, tmp_path,
                                              monkeypatch):
        reference = Suite(_CONFIG, jobs=2, cache_dir=tmp_path / "a",
                          scheduler="runs")
        reference.campaigns()
        monkeypatch.setenv("REPRO_BATCH_RUNS", "1")
        one_by_one = Suite(_CONFIG, jobs=2, cache_dir=tmp_path / "b",
                           scheduler="runs")
        one_by_one.campaigns()
        assert _campaign_caches(tmp_path / "b") == _campaign_caches(
            tmp_path / "a"
        )

    def test_warm_and_partial_cache_accounting(self, tmp_path):
        cache = tmp_path / "warm"
        cold = Suite(_CONFIG, jobs=2, cache_dir=cache,
                     scheduler="runs")
        cold.campaigns()
        reference = _campaign_caches(cache)

        # Fully warm: served without any fan-out at all.
        warm = Suite(_CONFIG, jobs=2, cache_dir=cache,
                     scheduler="runs")
        warm.campaigns()
        assert warm.last_report is None

        # Partially warm: the evicted campaign recomputes from the
        # recorded traces (no record tasks), the cache hit shows up as
        # its own report row, and the rewritten bytes are identical.
        evicted = cold._cache_path("fft")
        evicted.unlink()
        partial = Suite(_CONFIG, jobs=2, cache_dir=cache,
                        scheduler="runs")
        partial.campaigns()
        paths = {out.path for out in partial.last_report.outcomes}
        assert "cache" in paths
        assert not any(
            out.name.startswith("rec:")
            for out in partial.last_report.outcomes
        )
        assert _campaign_caches(cache) == reference

    def test_unknown_scheduler_rejected(self):
        with pytest.raises(ValueError):
            Suite(_CONFIG, jobs=1, scheduler="bogus")
        assert "runs" in SCHEDULER_MODES

    def test_env_selects_scheduler(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCHED", "runs")
        assert Suite(_CONFIG, jobs=1).scheduler == "runs"


class TestPipelineUnderChaos:
    """Killed workers and drain requests against the run-level path."""

    def test_worker_kill_leaves_identical_state(self, tmp_path,
                                                monkeypatch):
        clean_dir = tmp_path / "clean"
        clean = _digest(Suite(_CONFIG, jobs=2, cache_dir=clean_dir,
                              scheduler="runs"))

        monkeypatch.setenv("REPRO_FAULTS", "worker_kill:1")
        faults.arm()
        faulted_dir = tmp_path / "faulted"
        suite = Suite(_CONFIG, jobs=2, cache_dir=faulted_dir,
                      scheduler="runs")
        assert _digest(suite) == clean
        assert suite.last_report.degraded
        assert _campaign_caches(faulted_dir) == _campaign_caches(
            clean_dir
        )

    def test_drain_is_resumable_and_bit_identical(self, tmp_path,
                                                  monkeypatch):
        clean_dir = tmp_path / "clean"
        baseline = _digest(Suite(_CONFIG, jobs=2, cache_dir=clean_dir,
                                 scheduler="runs"))

        # Land the drain request mid-campaign: after the workload rows
        # and the first few per-run rows have hit the journal.
        cache = tmp_path / "interrupted"
        monkeypatch.setenv("REPRO_FAULTS", "sigterm_drain:6")
        faults.arm()
        suite = Suite(_CONFIG, jobs=2, cache_dir=cache,
                      scheduler="runs")
        with pytest.raises(InterruptedRunError) as excinfo:
            suite.campaigns()
        run_id = excinfo.value.run_id
        assert run_id is not None
        assert suite.last_report.interrupted
        assert not any(
            out.status == "failed"
            for out in suite.last_report.outcomes
        )
        assert list(cache.rglob("*.tmp.*")) == []

        # The journal replays: workload rows scheduled, nothing lies
        # about completion.
        wal = cache / "journal" / (run_id + WAL_SUFFIX)
        assert wal.exists()
        state = replay(wal)
        assert state.task("fft").scheduled
        assert not state.finished

        # Resume over the same cache completes bit-identically.
        faults.arm("")
        resumed = Suite(_CONFIG, jobs=2, cache_dir=cache,
                        scheduler="runs")
        assert _digest(resumed) == baseline
        assert resumed.warnings["resumed"] == 1
        assert _campaign_caches(cache) == _campaign_caches(clean_dir)
        assert replay(cache / "journal" / (run_id + ".done")).finished

    def test_every_drain_point_resumes(self, tmp_path, monkeypatch):
        # Sweep the drain tick across the journal's first transitions:
        # wherever SIGTERM lands, the resume completes byte-identically.
        clean_dir = tmp_path / "clean"
        Suite(_CONFIG, jobs=2, cache_dir=clean_dir,
              scheduler="runs").campaigns()
        clean = _campaign_caches(clean_dir)
        for tick in (1, 4, 9):
            cache = tmp_path / ("drain%d" % tick)
            monkeypatch.setenv(
                "REPRO_FAULTS", "sigterm_drain:%d" % tick
            )
            faults.arm()
            with pytest.raises(InterruptedRunError):
                Suite(_CONFIG, jobs=2, cache_dir=cache,
                      scheduler="runs").campaigns()
            faults.arm("")
            monkeypatch.delenv("REPRO_FAULTS")
            resumed = Suite(_CONFIG, jobs=2, cache_dir=cache,
                            scheduler="runs")
            resumed.campaigns()
            assert resumed.warnings["resumed"] == 1
            assert _campaign_caches(cache) == clean


class TestBatchTierDegradation:
    """A poisoned batch pass degrades one batch, not the suite."""

    def _items(self, count=2):
        from repro.detectors.registry import standard_suite
        from repro.engine import run_program
        from repro.workloads.registry import get_workload

        items = []
        for i in range(count):
            program = get_workload("fft").build(_PARAMS)
            trace = run_program(program, seed=31 + i)
            items.append(
                (standard_suite(), program.n_threads, trace.packed)
            )
        return items

    def test_batch_raise_degrades_alone(self, monkeypatch):
        items = self._items()
        baseline = [
            {
                name: (out.flagged, out.raw_count,
                       out.problem_detected, dict(out.counters))
                for name, out in outcome_map.items()
            }
            for outcome_map in guarded_outcomes_batch(items)
        ]
        monkeypatch.setenv("REPRO_FAULTS", "batch_raise:1")
        faults.arm()
        got = [
            {
                name: (out.flagged, out.raw_count,
                       out.problem_detected, dict(out.counters))
                for name, out in outcome_map.items()
            }
            for outcome_map in guarded_outcomes_batch(self._items())
        ]
        assert got == baseline
        # Without numpy the batch tier gates itself off before the
        # fault point, so nothing fires and nothing is logged.
        from repro.trace.kernels import kernels_enabled

        assert GUARD_LOG.count("batch") == (
            1 if kernels_enabled() else 0
        )

    def test_batch_raise_through_suite_is_transparent(self, tmp_path,
                                                      monkeypatch):
        clean_dir = tmp_path / "clean"
        Suite(_CONFIG, jobs=1, cache_dir=clean_dir,
              scheduler="campaigns").campaigns()
        monkeypatch.setenv("REPRO_FAULTS", "batch_raise:1")
        faults.arm()
        faulted_dir = tmp_path / "faulted"
        Suite(_CONFIG, jobs=2, cache_dir=faulted_dir,
              scheduler="runs").campaigns()
        assert _campaign_caches(faulted_dir) == _campaign_caches(
            clean_dir
        )
