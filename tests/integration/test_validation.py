"""Integration tests for workload validation/characterization."""

import pytest

from repro.workloads import WorkloadParams
from repro.workloads.validation import (
    ValidationReport,
    characterize,
    validate_workloads,
)

FAST = WorkloadParams(scale=0.3, compute_grain=8)


class TestCharacterize:
    def test_profile_fields(self):
        profile = characterize("raytrace", FAST)
        assert profile.name == "raytrace"
        assert profile.input_label == "teapot"
        assert profile.events > 100
        assert profile.instructions > profile.events
        assert 0 < profile.sync_percent < 50
        assert profile.lock_instances > 0
        assert profile.wait_instances > 0
        assert profile.footprint_kb > 1
        assert 0 < profile.sharing_percent <= 100


class TestValidateWorkloads:
    @pytest.fixture(scope="class")
    def report(self):
        return validate_workloads(
            names=("fft", "lu", "water-sp"),
            params=FAST,
            seeds=(1, 2),
        )

    def test_all_race_free(self, report):
        assert report.all_race_free
        assert not report.failures

    def test_profiles_cover_names(self, report):
        assert [p.name for p in report.profiles] == [
            "fft", "lu", "water-sp",
        ]

    def test_render(self, report):
        out = report.render()
        assert "race-free" in out
        assert "fft" in out

    def test_detects_planted_race(self):
        # A deliberately racy "workload" must fail validation: patch a
        # temporary spec into the registry lookup path.
        from repro.program import AddressSpace, Program
        from repro.program.ops import ReadOp, WriteOp
        from repro.workloads import registry
        from repro.workloads.base import WorkloadSpec

        def build(params):
            space = AddressSpace()
            word = space.alloc("w", align_to_line=True)

            def body(tid):
                value = yield ReadOp(word)
                yield WriteOp(word, (value or 0) + 1)

            return Program([body] * 2, space, name="racy")

        spec = WorkloadSpec("racy", "-", "deliberately racy", build)
        registry._BY_NAME["racy"] = spec
        try:
            report = validate_workloads(
                names=("racy",), params=FAST, seeds=(1, 2, 3, 4)
            )
            assert not report.all_race_free
            assert "racy" in report.failures
        finally:
            del registry._BY_NAME["racy"]


class TestCliCharacterize:
    def test_single_app(self, capsys):
        from repro.cli import main

        assert main(["characterize", "water-sp", "--scale", "0.3"]) == 0
        out = capsys.readouterr().out
        assert "water-sp" in out
        assert "yes" in out
