"""Integration tests for the record-once / analyze-many pipeline.

The contract: an N-configuration sweep simulates each (workload, seed,
injection) pair exactly once, every configuration analyzes the shared
packed trace, and the reports are bit-identical to the legacy protocol
that gave every configuration its own simulations.
"""

import pytest

import repro.injection.campaign as campaign_mod
from repro.cord import CordConfig, CordDetector, replay_trace, verify_replay
from repro.detectors.registry import DetectorSpec
from repro.experiments.runner import Suite, SuiteConfig, trace_namespace
from repro.experiments.sensitivity import cache_sensitivity, d_sensitivity
from repro.injection.campaign import (
    CampaignConfig,
    analyze_recorded,
    record_injected_once,
    run_campaign,
    run_campaign_per_config,
)
from repro.trace.store import PackedTraceStore
from repro.workloads import WorkloadParams, get_workload

_PARAMS = WorkloadParams(scale=0.3)
_D_VALUES = (1, 8, 64)


def _factory(workload="fft", params=_PARAMS):
    return get_workload(workload).program_factory(params)


def _run_key(run):
    return (
        run.run_index,
        run.seed,
        run.target_index,
        run.injected,
        run.removed,
        run.hung,
        run.n_events,
        tuple(sorted(run.flagged.items())),
        tuple(sorted(run.problem.items())),
    )


class TestCampaignEquivalence:
    def test_shared_equals_per_config(self):
        config = CampaignConfig(n_runs=4, base_seed=11)
        shared = run_campaign(_factory(), "fft", config)
        legacy = run_campaign_per_config(_factory(), "fft", config)
        assert shared.sync_instances == legacy.sync_instances
        assert [_run_key(r) for r in shared.runs] == [
            _run_key(r) for r in legacy.runs
        ]

    def test_store_does_not_change_results(self, tmp_path):
        config = CampaignConfig(n_runs=4, base_seed=11)
        bare = run_campaign(_factory(), "fft", config)
        stored = run_campaign(
            _factory(),
            "fft",
            config,
            trace_store=PackedTraceStore(tmp_path),
            trace_namespace=trace_namespace("fft", _PARAMS),
        )
        warm = run_campaign(
            _factory(),
            "fft",
            config,
            trace_store=PackedTraceStore(tmp_path),
            trace_namespace=trace_namespace("fft", _PARAMS),
        )
        assert [_run_key(r) for r in bare.runs] == [
            _run_key(r) for r in stored.runs
        ]
        assert [_run_key(r) for r in bare.runs] == [
            _run_key(r) for r in warm.runs
        ]

    def test_warm_store_skips_simulation(self, tmp_path, monkeypatch):
        config = CampaignConfig(n_runs=3, base_seed=11)
        store = PackedTraceStore(tmp_path)
        namespace = trace_namespace("fft", _PARAMS)
        cold = run_campaign(
            _factory(), "fft", config,
            trace_store=store, trace_namespace=namespace,
        )

        def explode(*args, **kwargs):
            raise AssertionError("warm campaign re-simulated")

        monkeypatch.setattr(campaign_mod, "run_program", explode)
        monkeypatch.setattr(
            campaign_mod, "count_sync_instances", explode
        )
        warm = run_campaign(
            _factory(), "fft", config,
            trace_store=store, trace_namespace=namespace,
        )
        assert [_run_key(r) for r in cold.runs] == [
            _run_key(r) for r in warm.runs
        ]

    def test_detector_subset_shares_recordings(self, tmp_path):
        # Different detector sets must hit the same recorded traces:
        # keys depend on the run identity, never on who analyzes it.
        store = PackedTraceStore(tmp_path)
        namespace = trace_namespace("fft", _PARAMS)
        config_full = CampaignConfig(n_runs=3, base_seed=11)
        run_campaign(
            _factory(), "fft", config_full,
            trace_store=store, trace_namespace=namespace,
        )
        n_files = len(list(tmp_path.iterdir()))
        config_cord = CampaignConfig(
            n_runs=3,
            base_seed=11,
            detectors=[
                DetectorSpec(
                    "Cord",
                    lambda n: CordDetector(CordConfig(), n),
                )
            ],
            check_soundness=False,
        )
        subset = run_campaign(
            _factory(), "fft", config_cord,
            trace_store=store, trace_namespace=namespace,
        )
        assert len(list(tmp_path.iterdir())) == n_files  # all hits
        assert len(subset.runs) == 3


class TestRecordedRun:
    def test_record_then_analyze_matches_run_campaign(self):
        recorded = record_injected_once(_factory(), seed=5, target_index=0)
        result = analyze_recorded(
            recorded,
            CampaignConfig().detector_suite(),
        )
        assert result.n_events == len(recorded.packed)
        assert set(result.flagged) == {
            spec.name for spec in CampaignConfig().detector_suite()
        }

    def test_stored_recording_replays_identically(self, tmp_path):
        # The full offline loop: record to disk, load, re-derive the
        # order log, replay, and verify against the recorded trace.
        store = PackedTraceStore(tmp_path)
        recorded = record_injected_once(
            _factory(), seed=5, target_index=0,
            store=store, namespace="fft/replay",
        )
        loaded = record_injected_once(
            _factory(), seed=5, target_index=0,
            store=store, namespace="fft/replay",
        )
        assert loaded.packed.columns_equal(recorded.packed)
        program = _factory()(loaded.seed)
        n_threads = program.n_threads
        outcome = CordDetector(CordConfig(), n_threads).run_packed(
            loaded.packed
        )
        from repro.injection.injector import ReplayInjection

        replayed = replay_trace(
            program,
            outcome.log,
            interceptor=ReplayInjection(loaded.removed),
        )
        assert verify_replay(loaded.packed.to_trace(), replayed).equivalent


class TestSweepModes:
    def test_d_sweep_modes_identical(self):
        kwargs = dict(
            workloads=("fft",),
            d_values=_D_VALUES,
            runs_per_app=3,
            params=_PARAMS,
        )
        shared = d_sensitivity(**kwargs)
        legacy = d_sensitivity(mode="per-config", **kwargs)
        assert shared.points == legacy.points
        assert shared.problem_rates == legacy.problem_rates
        assert shared.raw_rates == legacy.raw_rates

    def test_cache_sweep_modes_identical(self):
        kwargs = dict(
            workloads=("fft",),
            cache_sizes=(4096, None),
            runs_per_app=3,
            params=_PARAMS,
        )
        shared = cache_sensitivity(**kwargs)
        legacy = cache_sensitivity(mode="per-config", **kwargs)
        assert shared.problem_rates == legacy.problem_rates
        assert shared.raw_rates == legacy.raw_rates

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            d_sensitivity(
                workloads=("fft",),
                d_values=(1,),
                runs_per_app=1,
                params=_PARAMS,
                mode="turbo",
            )

    def test_sweep_with_store_matches_and_persists(self, tmp_path):
        kwargs = dict(
            workloads=("fft",),
            d_values=_D_VALUES,
            runs_per_app=3,
            params=_PARAMS,
        )
        bare = d_sensitivity(**kwargs)
        store = PackedTraceStore(tmp_path)
        cold = d_sensitivity(trace_store=store, **kwargs)
        assert list(tmp_path.iterdir())  # recordings persisted
        warm = d_sensitivity(trace_store=store, **kwargs)
        for sweep in (cold, warm):
            assert sweep.problem_rates == bare.problem_rates
            assert sweep.raw_rates == bare.raw_rates


class TestSuiteIntegration:
    def test_suite_populates_trace_store(self, tmp_path):
        config = SuiteConfig(
            runs_per_app=2,
            workloads=("fft",),
            params=WorkloadParams(scale=0.25),
        )
        suite = Suite(config, jobs=1, cache_dir=tmp_path)
        suite.campaigns()
        store_dir = suite.trace_store_dir
        assert store_dir is not None and store_dir.is_dir()
        assert any(p.name.startswith("trace-") for p in store_dir.iterdir())

    def test_suite_without_cache_has_no_store(self, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        suite = Suite(
            SuiteConfig(workloads=("fft",)), jobs=1, cache_dir=None
        )
        assert suite.trace_store() is None
