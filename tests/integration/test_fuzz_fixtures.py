"""Checked-in fuzz witnesses: every one must pass the real detectors.

The corpus under ``tests/fixtures/golden/fuzz/`` holds shrunk witness
programs the fuzzer produced against *deliberately broken* detector
variants (:mod:`repro.fuzz.broken`).  They are kept as permanent
regression fixtures: each is replayed here under all four detector
families plus the kernel and fused tiers, its behavior digests are
pinned, and the full disagreement oracle must stay silent -- if a real
detector ever starts disagreeing on one of these minimal programs, the
corpus catches it at its smallest reproduction.

Regenerate (deterministic -- same seeds, same corpus)::

    PYTHONPATH=src python tests/integration/test_fuzz_fixtures.py --regen
"""

import sys
from pathlib import Path

import pytest

from repro.fuzz import check_program, load_corpus
from repro.fuzz.broken import broken_spec
from repro.fuzz.hunt import hunt
from repro.fuzz.witness import behavior_digests, save_witness

FIXTURE_DIR = Path(__file__).parent.parent / "fixtures" / "golden" / "fuzz"

#: The hunts that build the corpus: (broken variant, hunt seed, programs).
CORPUS_HUNTS = (
    ("hb-oblivious", 2006, 10),
    ("sync-flagger", 7, 20),
)

#: Cap per hunt so the corpus stays reviewable.
MAX_PER_HUNT = 3

CORPUS = load_corpus(str(FIXTURE_DIR))


def test_corpus_exists():
    assert CORPUS, (
        "no fuzz witness corpus -- run `PYTHONPATH=src python "
        "tests/integration/test_fuzz_fixtures.py --regen`"
    )


@pytest.mark.parametrize(
    "witness", CORPUS, ids=[w.name for w in CORPUS]
)
class TestEveryWitness:
    def test_shrunk_small(self, witness):
        # The acceptance bar: shrinking must land at/below 12 ops.
        assert witness.program.op_count <= 12

    def test_real_detectors_agree(self, witness):
        # All four families plus the kernel/fused tiers and replay:
        # the full oracle on a healthy build reports nothing.
        found = check_program(witness.program, witness.seed)
        assert not found, [str(d) for d in found]

    def test_planted_fault_still_fires(self, witness):
        # The witness is only meaningful while it still catches the
        # variant it was shrunk against.
        assert witness.broken_variant, "witness lost its provenance"
        found = check_program(
            witness.program, witness.seed,
            extra_scalar_specs=[broken_spec(witness.broken_variant)],
            check_tiers=False,
        )
        assert any(
            d.invariant == witness.invariant for d in found
        ), "planted %r no longer fails" % witness.broken_variant

    def test_behavior_digests_pinned(self, witness):
        # Detector behavior on the witness execution is frozen: any
        # drift in what Ideal/Vector/Epoch/CORD report shows up here.
        assert witness.digests, "witness carries no digests"
        actual = behavior_digests(witness.program, witness.seed)
        assert actual == witness.digests


def regenerate():
    FIXTURE_DIR.mkdir(parents=True, exist_ok=True)
    for stale in FIXTURE_DIR.glob("*.json"):
        stale.unlink()
    seen_programs = set()
    for variant, seed, n_programs in CORPUS_HUNTS:
        report = hunt(
            n_programs=n_programs,
            seed=seed,
            broken_variant=variant,
            check_tiers=False,
        )
        kept = 0
        for witness in report.witnesses:
            key = (witness.invariant, str(witness.program.to_json()))
            if key in seen_programs or kept >= MAX_PER_HUNT:
                continue
            seen_programs.add(key)
            kept += 1
            path = save_witness(witness, str(FIXTURE_DIR))
            print(
                "wrote %s (%d ops, variant %s)"
                % (path, witness.program.op_count, variant)
            )
        if not kept:
            raise SystemExit(
                "hunt for %r found no witnesses -- corpus would "
                "regress" % variant
            )


if __name__ == "__main__":
    if "--regen" in sys.argv:
        regenerate()
    else:
        print(__doc__)
