"""Integration tests for trace serialization and scheduled migrations."""

import pytest

from repro.common.errors import LogFormatError, StoreCorruptError
from repro.cord import CordConfig, CordDetector, replay_trace, verify_replay
from repro.detectors import IdealDetector
from repro.engine import run_program
from repro.trace import decode_packed_trace, decode_trace, encode_trace
from repro.trace.store import frame_payload, unframe_payload

from tests.conftest import build_counter_program


class TestTraceSerialization:
    def test_roundtrip(self):
        program = build_counter_program()
        trace = run_program(program, seed=5)
        restored = decode_trace(encode_trace(trace))
        assert restored.name == trace.name
        assert restored.final_icounts == trace.final_icounts
        assert restored.hung == trace.hung
        assert restored.seed == trace.seed
        assert [e.key() for e in restored.events] == [
            e.key() for e in trace.events
        ]
        assert [e.value for e in restored.events] == [
            e.value for e in trace.events
        ]

    def test_detector_agrees_on_restored_trace(self):
        program = build_counter_program()
        trace = run_program(program, seed=6)
        restored = decode_trace(encode_trace(trace))
        original = CordDetector(CordConfig(), 4).run(trace)
        again = CordDetector(CordConfig(), 4).run(restored)
        assert original.flagged == again.flagged
        assert [
            (e.clock, e.thread, e.count) for e in original.log
        ] == [(e.clock, e.thread, e.count) for e in again.log]

    def test_bad_magic_rejected(self):
        with pytest.raises(LogFormatError):
            decode_trace(b"NOTATRACE" + b"\x00" * 32)

    def test_truncated_payload_rejected(self):
        program = build_counter_program()
        data = encode_trace(run_program(program, seed=5))
        with pytest.raises(LogFormatError):
            decode_trace(data[:-5])

    def test_hung_and_seedless_flags_roundtrip(self):
        from repro.trace import Trace

        trace = Trace([], [0, 0], name="empty", hung=True, seed=None)
        restored = decode_trace(encode_trace(trace))
        assert restored.hung
        assert restored.seed is None
        assert len(restored.events) == 0


class TestByteMutationRobustness:
    """Corrupt bytes decode faithfully or raise -- never garbage.

    Two layers share the contract.  The bare codec
    (:func:`decode_packed_trace`) must map *any* single-byte mutation or
    truncation to either a structurally sound trace or
    :class:`LogFormatError` -- never a raw ``struct.error``, a
    ``UnicodeDecodeError``, or a corrupt-length-driven allocation.  The
    store frame (:func:`frame_payload`) then closes the remaining hole
    (payload flips the codec cannot see): under the frame, *every*
    mutation raises :class:`StoreCorruptError`.
    """

    @pytest.fixture(scope="class")
    def blob(self):
        return encode_trace(run_program(build_counter_program(), seed=9))

    def test_codec_mutations_decode_or_raise(self, blob):
        n_events = len(decode_packed_trace(blob))
        for offset in range(len(blob)):
            mutated = bytearray(blob)
            mutated[offset] ^= 0xFF
            try:
                packed = decode_packed_trace(bytes(mutated))
            except LogFormatError:
                continue
            # The mutation survived decoding (a payload flip the codec
            # cannot detect): the result must still be structurally
            # sound -- right length, consistent columns.
            assert len(packed) == n_events
            assert all(
                len(column) == n_events for column in packed.columns()
            )

    def test_codec_truncations_always_raise(self, blob):
        for cut in range(len(blob)):
            with pytest.raises(LogFormatError):
                decode_packed_trace(blob[:cut])

    def test_framed_mutations_always_raise(self, blob):
        framed = frame_payload(blob)
        for offset in range(len(framed)):
            mutated = bytearray(framed)
            mutated[offset] ^= 0xFF
            with pytest.raises(StoreCorruptError):
                unframe_payload(bytes(mutated))

    def test_framed_roundtrip_is_exact(self, blob):
        restored = decode_packed_trace(unframe_payload(frame_payload(blob)))
        assert restored.columns_equal(decode_packed_trace(blob))


class TestScheduledMigrations:
    def test_migrated_run_stays_sound(self):
        program = build_counter_program()
        trace = run_program(program, seed=7)
        ideal = IdealDetector(4).run(trace)
        detector = CordDetector(CordConfig(d=16), 4)
        # Bounce thread 0 between processors mid-run, and move thread 2
        # late; the +D rule must prevent any self-race false positives.
        schedule = [
            (len(trace.events) // 4, 0, 1),
            (len(trace.events) // 2, 0, 0),
            (3 * len(trace.events) // 4, 2, 3),
        ]
        outcome = detector.run_with_migrations(trace, schedule)
        assert outcome.flagged <= ideal.flagged

    def test_migrated_run_still_replays(self):
        program = build_counter_program()
        trace = run_program(program, seed=8)
        detector = CordDetector(CordConfig(d=16), 4)
        schedule = [(len(trace.events) // 3, 1, 2)]
        outcome = detector.run_with_migrations(trace, schedule)
        replayed = replay_trace(program, outcome.log)
        verdict = verify_replay(trace, replayed)
        assert verdict.equivalent, verdict.detail

    def test_migration_counts_in_log(self):
        program = build_counter_program()
        trace = run_program(program, seed=8)
        plain = CordDetector(CordConfig(d=16), 4).run(trace)
        migrated_detector = CordDetector(CordConfig(d=16), 4)
        migrated = migrated_detector.run_with_migrations(
            trace, [(10, 0, 1), (20, 0, 2)]
        )
        # Each migration adds one clock change, hence log entries.
        assert len(migrated.log) >= len(plain.log)
