"""Structural assertions per workload analogue.

The figure shapes rest on each analogue exhibiting its application's
characteristic sharing/synchronization structure; these tests pin those
characteristics so refactors cannot silently degrade them.
"""

import pytest

from repro.engine import run_program
from repro.program.ops import FlagSetOp, FlagWaitOp, LockOp
from repro.engine.interceptor import SyncInterceptor
from repro.trace import compute_stats
from repro.workloads import WorkloadParams, get_workload

PARAMS = WorkloadParams(scale=0.5)


class OpCensus(SyncInterceptor):
    """Counts injectable primitive invocations by kind and address."""

    def __init__(self, space):
        self.space = space
        self.locks = {}
        self.waits = {}

    def on_sync_instance(self, thread, op):
        name = self.space.name_of(op.address)
        table = self.locks if isinstance(op, LockOp) else self.waits
        table[name] = table.get(name, 0) + 1
        return False


def census(name, seed=3):
    program = get_workload(name).build(PARAMS)
    interceptor = OpCensus(program.address_space)
    trace = run_program(program, seed=seed, interceptor=interceptor)
    return program, trace, interceptor


class TestSyncCharacter:
    def test_cholesky_is_most_sync_intensive(self):
        # The Figure 11 worst case depends on this.
        fractions = {}
        for name in ("cholesky", "raytrace", "lu", "ocean"):
            trace = run_program(get_workload(name).build(PARAMS), seed=2)
            fractions[name] = compute_stats(trace).sync_fraction
        assert fractions["cholesky"] == max(fractions.values())

    def test_water_n2_locks_denser_than_water_sp(self):
        # The O(n^2) variant accumulates under per-molecule locks for
        # every pair; the spatial variant only at cell boundaries.
        _p, n2_trace, n2 = census("water-n2")
        _p, sp_trace, sp = census("water-sp")
        n2_rate = sum(n2.locks.values()) / len(n2_trace.events)
        sp_rate = sum(sp.locks.values()) / len(sp_trace.events)
        assert n2_rate > sp_rate

    def test_barrier_apps_have_no_app_level_locks(self):
        # lu is barriers-plus-norms-lock only; its lock census should
        # name only barrier mutexes and the norms lock.
        _p, _t, interceptor = census("lu")
        for name in interceptor.locks:
            assert name in ("step.mutex", "norms"), name


class TestSharingCharacter:
    def test_raytrace_scene_is_read_only_shared(self):
        program, trace, _i = census("raytrace")
        space = program.address_space
        scene_writes = [
            e for e in trace.events
            if e.is_write and space.name_of(e.address) == "scene"
        ]
        # Scene array base is named; no write ever touches its base (or,
        # by construction, any of its words).
        assert not scene_writes

    def test_radix_output_lines_are_write_shared(self):
        # The permutation interleaves threads' ranks within lines --
        # word-disjoint, line-shared writes (what per-word bits handle).
        program, trace, _i = census("radix")
        line_writers = {}
        for event in trace.events:
            if event.is_write and not event.is_sync:
                line_writers.setdefault(
                    event.address & ~63, set()
                ).add(event.thread)
        assert any(len(w) >= 3 for w in line_writers.values())

    def test_pipeline_flags_in_fft_and_fmm(self):
        # The Figure 8-style producer pattern: each thread performs many
        # sync writes to its own stream/upward flag.
        for name, prefix in (("fft", "streamflag"), ("fmm", "upflag")):
            program = get_workload(name).build(PARAMS)
            space = program.address_space
            trace = run_program(program, seed=4)
            sets_per_flag = {}
            for event in trace.events:
                label = space.name_of(event.address)
                if label.startswith(prefix) and event.is_write:
                    sets_per_flag[label] = sets_per_flag.get(label, 0) + 1
            assert len(sets_per_flag) == 4, name
            assert min(sets_per_flag.values()) >= 10, name

    def test_long_range_blocks_exist(self):
        # barnes/lu/fft carry the lock-protected phase-spanning block
        # that feeds Figures 14/15.
        for name, lock_name in (
            ("barnes", "bounds"),
            ("lu", "norms"),
            ("fft", "plan"),
        ):
            _p, _t, interceptor = census(name)
            assert any(
                key == lock_name for key in interceptor.locks
            ), (name, interceptor.locks)


class TestQueueCharacter:
    @pytest.mark.parametrize(
        "name,queue", [("raytrace", "tiles"), ("cholesky", "queue")]
    )
    def test_task_queues_serialize_all_threads(self, name, queue):
        _p, trace, interceptor = census(name)
        assert interceptor.locks.get(queue, 0) > trace.n_threads

    def test_radiosity_steals(self):
        # Every thread eventually pops from foreign queues: the per-run
        # lock census shows each queue lock acquired more often than one
        # thread's own tasks would require.
        program, trace, interceptor = census("radiosity")
        queue_locks = {
            k: v for k, v in interceptor.locks.items()
            if k.startswith("queue")
        }
        assert len(queue_locks) == 4
        # Each queue is touched ~tasks+steal-probes times; at minimum
        # every queue must be visited by several threads' probes.
        assert min(queue_locks.values()) >= 4
