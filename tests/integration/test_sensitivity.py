"""Integration tests for the sensitivity-sweep drivers."""

import pytest

from repro.experiments.sensitivity import (
    SweepResult,
    cache_sensitivity,
    d_sensitivity,
)
from repro.workloads import WorkloadParams

FAST = WorkloadParams(scale=0.3, compute_grain=8)


class TestSweepResult:
    def test_render(self):
        sweep = SweepResult("D", [1, 4], [0.3, 0.6], [0.1, 0.2])
        out = sweep.render()
        assert "Sensitivity sweep over D" in out
        assert "60.0%" in out

    def test_monotonicity_check(self):
        up = SweepResult("x", [1, 2], [0.3, 0.6], [0, 0])
        down = SweepResult("x", [1, 2], [0.6, 0.3], [0, 0])
        assert up.is_monotone_nondecreasing()
        assert not down.is_monotone_nondecreasing()


class TestDSweep:
    @pytest.fixture(scope="class")
    def sweep(self):
        return d_sensitivity(
            workloads=("fft",),
            d_values=(1, 4, 16),
            runs_per_app=5,
            params=FAST,
        )

    def test_shape(self, sweep):
        assert sweep.points == [1, 4, 16]
        assert len(sweep.problem_rates) == 3
        assert all(0.0 <= r <= 1.0 for r in sweep.problem_rates)

    def test_raw_rates_grow_with_d(self, sweep):
        assert sweep.raw_rates[0] <= sweep.raw_rates[-1]


class TestCacheSweep:
    def test_infinite_at_least_as_good_as_tiny(self):
        sweep = cache_sensitivity(
            workloads=("fft",),
            cache_sizes=(2048, None),
            runs_per_app=5,
            params=FAST,
        )
        assert sweep.points == ["2048B", "inf"]
        assert sweep.problem_rates[0] <= sweep.problem_rates[1] + 1e-9
