"""Integration tests for the timing model (Figure 11's machinery)."""

import pytest

from repro.common.errors import ConfigError
from repro.engine import run_program
from repro.timingsim import (
    AccessKind,
    DataCacheModel,
    TimingParams,
    estimate_overhead,
)
from repro.workloads import WorkloadParams, get_workload

from tests.conftest import build_counter_program

TINY = WorkloadParams(scale=0.25, compute_grain=8)


class TestTimingParams:
    def test_defaults_follow_paper(self):
        params = TimingParams()
        assert params.memory_cycles == 600.0
        assert params.cache_to_cache_cycles == 20.0
        assert params.l1_size == 8 * 1024
        assert params.l2_size == 32 * 1024

    def test_validation(self):
        with pytest.raises(ConfigError):
            TimingParams(window_events=0)
        with pytest.raises(ConfigError):
            TimingParams(memory_cycles=-1)


class TestDataCacheModel:
    def classify(self, trace):
        return DataCacheModel(4, TimingParams()).classify(trace)

    def test_cold_misses_then_hits(self):
        trace = run_program(build_counter_program(), seed=1)
        classified = self.classify(trace)
        assert classified[0].kind == AccessKind.MEMORY
        kinds = {c.kind for c in classified}
        assert AccessKind.L1_HIT in kinds

    def test_sharing_produces_cache_to_cache(self):
        trace = run_program(build_counter_program(), seed=1)
        kinds = {c.kind for c in self.classify(trace)}
        assert AccessKind.CACHE_TO_CACHE in kinds

    def test_write_to_shared_line_upgrades(self):
        trace = run_program(build_counter_program(), seed=1)
        kinds = {c.kind for c in self.classify(trace)}
        assert AccessKind.UPGRADE in kinds

    def test_bus_transactions_on_misses_only(self):
        trace = run_program(build_counter_program(), seed=1)
        for info in self.classify(trace):
            if info.kind in (AccessKind.L1_HIT, AccessKind.L2_HIT):
                assert info.addr_bus_tx == 0
            else:
                assert info.addr_bus_tx == 1


class TestOverheadEstimate:
    def test_overhead_is_small_and_positive(self):
        spec = get_workload("ocean")
        trace = run_program(spec.build(TINY), seed=1)
        result = estimate_overhead(trace)
        assert 1.0 <= result.relative_time < 1.2
        assert result.n_windows >= 1
        assert result.extra_check_tx >= 0

    def test_more_sync_means_more_overhead(self):
        quiet = run_program(get_workload("raytrace").build(TINY), seed=1)
        busy = run_program(get_workload("cholesky").build(TINY), seed=1)
        assert (
            estimate_overhead(busy).relative_time
            >= estimate_overhead(quiet).relative_time
        )

    def test_deterministic(self):
        trace = run_program(get_workload("lu").build(TINY), seed=1)
        a = estimate_overhead(trace)
        b = estimate_overhead(trace)
        assert a.cord_cycles == b.cord_cycles

    def test_window_size_changes_granularity(self):
        trace = run_program(get_workload("lu").build(TINY), seed=1)
        coarse = estimate_overhead(trace, TimingParams(window_events=5000))
        fine = estimate_overhead(trace, TimingParams(window_events=100))
        assert fine.n_windows > coarse.n_windows

    def test_empty_trace(self):
        from repro.trace import Trace

        result = estimate_overhead(Trace([], [0, 0, 0, 0]))
        assert result.relative_time == 1.0
