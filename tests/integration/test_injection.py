"""Integration tests for fault injection and campaigns (Section 3.4)."""

import pytest

from repro.common.errors import SimulationError
from repro.detectors.registry import DetectorSpec, standard_suite
from repro.engine import run_program
from repro.injection import (
    CampaignConfig,
    InjectionInterceptor,
    count_sync_instances,
    run_campaign,
    run_injected_once,
)
from repro.workloads import WorkloadParams, get_workload

from tests.conftest import build_counter_program

TINY = WorkloadParams(scale=0.25, compute_grain=8)


class TestInjectionInterceptor:
    def test_removes_exactly_one_instance(self):
        program = build_counter_program()
        baseline = count_sync_instances(program, seed=1)
        interceptor = InjectionInterceptor(0)
        run_program(program, seed=1, interceptor=interceptor)
        assert interceptor.removed is not None
        assert interceptor.seen >= baseline - 2  # injection may perturb

    def test_target_beyond_instances_removes_nothing(self):
        program = build_counter_program()
        interceptor = InjectionInterceptor(10_000)
        trace = run_program(program, seed=1, interceptor=interceptor)
        assert interceptor.removed is None
        assert not trace.hung

    def test_removed_spec_identifies_kind(self):
        program = build_counter_program()
        kinds = set()
        for target in range(20):
            interceptor = InjectionInterceptor(target)
            run_program(program, seed=1, interceptor=interceptor)
            if interceptor.removed:
                kinds.add(interceptor.removed.kind)
        assert kinds == {"lock", "wait"}

    def test_lock_removal_takes_unlock_too(self):
        # Removing a lock instance must not trigger the engine's
        # "unlock without hold" error: the pair is removed together.
        program = build_counter_program()
        for target in range(12):
            interceptor = InjectionInterceptor(target)
            run_program(program, seed=2, interceptor=interceptor)


class TestBarrierInjection:
    def test_some_barrier_removals_hang(self):
        # Lost arrival-count updates can deadlock the barrier; the
        # watchdog must convert that into a hung (not crashed) run.
        program = build_counter_program(rounds=6)
        saw_hung = False
        for target in range(30):
            interceptor = InjectionInterceptor(target)
            trace = run_program(program, seed=3, interceptor=interceptor)
            saw_hung = saw_hung or trace.hung
        assert saw_hung


class TestCampaign:
    def test_counter_campaign_shape(self):
        result = run_campaign(
            lambda seed: build_counter_program(),
            "counter",
            CampaignConfig(n_runs=6),
        )
        assert len(result.runs) == 6
        assert result.sync_instances > 0
        assert set(result.detector_names) >= {"Ideal", "CORD-D16"}
        assert 0.0 <= result.manifestation_rate <= 1.0

    def test_rates_bounded_by_oracle(self):
        result = run_campaign(
            lambda seed: build_counter_program(),
            "counter",
            CampaignConfig(n_runs=8),
        )
        for name in result.detector_names:
            assert result.problems_detected(name) <= \
                result.problems_detected("Ideal")
            assert 0.0 <= result.problem_rate(name) <= 1.0
            assert result.races_detected(name) <= \
                result.races_detected("Ideal")

    def test_campaign_deterministic(self):
        config = CampaignConfig(n_runs=4)
        a = run_campaign(
            lambda seed: build_counter_program(), "counter", config
        )
        b = run_campaign(
            lambda seed: build_counter_program(), "counter", config
        )
        assert [r.flagged for r in a.runs] == [r.flagged for r in b.runs]

    def test_workload_campaign_runs(self):
        spec = get_workload("raytrace")
        result = run_campaign(
            spec.program_factory(TINY),
            "raytrace",
            CampaignConfig(n_runs=4),
        )
        assert result.n_manifested >= 1

    def test_soundness_check_catches_planted_false_positive(self):
        # A detector that flags a non-race must abort the campaign.
        class LiarDetector:
            name = "Liar"

            def __init__(self):
                from repro.detectors.base import DetectionOutcome

                self.outcome = DetectionOutcome("Liar")

            def run(self, trace):
                self.outcome.flagged.add((0, 0))
                return self.outcome

        specs = list(standard_suite(False, False))
        specs.append(DetectorSpec("Liar", lambda n: LiarDetector()))
        with pytest.raises(SimulationError):
            run_injected_once(
                lambda seed: build_counter_program(),
                seed=1,
                target_index=10_000,  # no injection: clean run
                detectors=specs,
            )
