"""Integration tests for the event-driven timing model."""

import pytest

from repro.engine import run_program
from repro.timingsim import (
    TimingParams,
    estimate_overhead,
    estimate_overhead_detailed,
)
from repro.workloads import WorkloadParams, get_workload

# Default compute grain: the detailed model's contention is sensitive to
# shared-access density per cycle, which the default calibrates.
TINY = WorkloadParams(scale=0.4)


class TestDetailedModel:
    def test_overhead_small_and_nonnegative(self):
        trace = run_program(get_workload("ocean").build(TINY), seed=1)
        result = estimate_overhead_detailed(trace)
        assert 1.0 <= result.relative_time < 1.3
        assert result.baseline_cycles > 0

    def test_cord_adds_bus_traffic(self):
        trace = run_program(get_workload("fmm").build(TINY), seed=1)
        result = estimate_overhead_detailed(trace)
        assert result.addr_bus_busy_cord > result.addr_bus_busy_baseline

    def test_deterministic(self):
        trace = run_program(get_workload("lu").build(TINY), seed=1)
        a = estimate_overhead_detailed(trace)
        b = estimate_overhead_detailed(trace)
        assert a.cord_cycles == b.cord_cycles
        assert a.retirement_stalls == b.retirement_stalls

    def test_agrees_with_analytic_on_ordering(self):
        cheap = run_program(get_workload("raytrace").build(TINY), seed=1)
        pricey = run_program(get_workload("cholesky").build(TINY), seed=1)
        for estimator in (
            lambda t: estimate_overhead(t).relative_time,
            lambda t: estimate_overhead_detailed(t).relative_time,
        ):
            assert estimator(cheap) <= estimator(pricey) + 1e-6

    def test_empty_trace(self):
        from repro.trace import Trace

        result = estimate_overhead_detailed(Trace([], [0, 0, 0, 0]))
        assert result.relative_time == 1.0

    def test_custom_params_respected(self):
        trace = run_program(get_workload("lu").build(TINY), seed=1)
        slow_bus = estimate_overhead_detailed(
            trace, TimingParams(addr_bus_service_cycles=64.0)
        )
        fast_bus = estimate_overhead_detailed(
            trace, TimingParams(addr_bus_service_cycles=1.0)
        )
        assert slow_bus.overhead >= fast_bus.overhead
