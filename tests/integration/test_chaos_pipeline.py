"""Chaos-harness integration tests: the pipeline under injected faults.

The resilience contract (``docs/resilience.md``): with any single fault
from the harness armed -- a killed worker, a hung worker, a torn store
write, a crashing accelerated path -- a campaign or sweep still
completes and produces results *bit-identical* to the fault-free run,
and everything swallowed along the way is counted or quarantined, never
silent.
"""

import pytest

from repro.detectors.epoch import EpochDetector
from repro.detectors.registry import DetectorSpec
from repro.experiments.runner import Suite, SuiteConfig
from repro.experiments.sensitivity import d_sensitivity
from repro.injection.campaign import CampaignConfig, run_campaign
from repro.resilience import faults
from repro.resilience.guard import GUARD_LOG
from repro.trace.store import PackedTraceStore
from repro.workloads import WorkloadParams
from repro.workloads.registry import get_workload

_PARAMS = WorkloadParams(scale=0.25)

_SUITE_CONFIG = SuiteConfig(
    runs_per_app=2,
    workloads=("fft", "lu"),
    params=_PARAMS,
)


@pytest.fixture(autouse=True)
def _fault_hygiene(monkeypatch):
    """Each test starts disarmed with a clean degradation log."""
    for var in ("REPRO_FAULTS", "REPRO_FAULT_STALL_SECONDS",
                "REPRO_TASK_TIMEOUT", "REPRO_MAX_RETRIES",
                "REPRO_CROSS_CHECK", "REPRO_NO_FUSED"):
        monkeypatch.delenv(var, raising=False)
    faults.reset()
    GUARD_LOG.clear()
    yield
    faults.reset()
    GUARD_LOG.clear()


def _sweep(trace_store=None):
    """The acceptance workload: an 8-point D sweep over one app."""
    return d_sensitivity(
        workloads=("fft",),
        runs_per_app=2,
        params=_PARAMS,
        trace_store=trace_store,
    )


def _sweep_key(result):
    return (
        tuple(result.points),
        tuple(result.problem_rates),
        tuple(result.raw_rates),
    )


@pytest.fixture(scope="module")
def baseline_sweep():
    faults.arm("")  # hard-disarm regardless of inherited state
    key = _sweep_key(_sweep())
    faults.reset()
    return key


def _suite_digest(suite):
    out = {}
    for name, campaign in suite.campaigns().items():
        out[name] = [
            (
                run.seed,
                run.target_index,
                run.hung,
                run.n_events,
                tuple(sorted(run.flagged.items())),
                tuple(sorted(run.problem.items())),
            )
            for run in campaign.runs
        ]
    return out


@pytest.fixture(scope="module")
def baseline_suite_digest():
    faults.arm("")
    digest = _suite_digest(Suite(_SUITE_CONFIG, jobs=1))
    faults.reset()
    return digest


class TestSweepUnderChaos:
    """Faults inside the analysis ladder and the trace store."""

    def test_fused_path_fault_is_transparent(self, monkeypatch,
                                             baseline_sweep):
        monkeypatch.setenv("REPRO_FAULTS", "fused_raise:1")
        faults.arm()
        assert _sweep_key(_sweep()) == baseline_sweep
        assert GUARD_LOG.count("fused") == 1

    def test_kernel_path_fault_is_transparent(self, monkeypatch,
                                              baseline_sweep):
        # Pin the entry tier to the kernel path so the fault point is
        # actually reached, then blow up the first kernel pass.
        monkeypatch.setenv("REPRO_NO_FUSED", "1")
        monkeypatch.setenv("REPRO_FAULTS", "kernel_raise:1")
        faults.arm()
        assert _sweep_key(_sweep()) == baseline_sweep
        assert GUARD_LOG.count("kernel") == 1

    def test_torn_store_writes_heal(self, tmp_path, baseline_sweep):
        # Sweep 1 records with two torn writes (the chaos fault halves
        # the frame): in-memory results are unaffected.
        faults.arm("store_truncate:2")
        store = PackedTraceStore(tmp_path)
        assert _sweep_key(_sweep(trace_store=store)) == baseline_sweep

        # Sweep 2 over the same directory trips over the torn entries:
        # each is detected, quarantined with a reason file, re-recorded
        # -- and the results are still bit-identical.
        faults.arm("")
        healed = PackedTraceStore(tmp_path)
        assert _sweep_key(_sweep(trace_store=healed)) == baseline_sweep
        assert healed.stats["quarantined"] == 2
        quarantined = sorted(
            p.name for p in healed.quarantine_dir.iterdir()
        )
        entries = [n for n in quarantined if not n.endswith(".reason.txt")]
        reasons = [n for n in quarantined if n.endswith(".reason.txt")]
        assert len(entries) == 2
        assert sorted(n + ".reason.txt" for n in entries) == reasons

        # Sweep 3: the healed store serves clean hits, nothing new
        # quarantined.
        third = PackedTraceStore(tmp_path)
        assert _sweep_key(_sweep(trace_store=third)) == baseline_sweep
        assert third.stats["quarantined"] == 0


class TestSuiteFanOutUnderChaos:
    """Worker-level faults under the supervised campaign fan-out."""

    def test_killed_workers_are_retried(self, monkeypatch,
                                        baseline_suite_digest):
        monkeypatch.setenv("REPRO_FAULTS", "worker_kill:1")
        faults.arm()
        suite = Suite(_SUITE_CONFIG, jobs=2)
        assert _suite_digest(suite) == baseline_suite_digest
        report = suite.last_report
        assert report is not None and report.ok and report.degraded
        assert all(out.path == "pool-retry" for out in report.outcomes)

    def test_hung_workers_are_reaped_and_retried(self, monkeypatch,
                                                 baseline_suite_digest):
        monkeypatch.setenv("REPRO_FAULTS", "worker_stall:1")
        monkeypatch.setenv("REPRO_FAULT_STALL_SECONDS", "10")
        monkeypatch.setenv("REPRO_TASK_TIMEOUT", "1.0")
        faults.arm()
        suite = Suite(_SUITE_CONFIG, jobs=2)
        assert _suite_digest(suite) == baseline_suite_digest
        report = suite.last_report
        assert report is not None and report.ok and report.degraded
        for out in report.outcomes:
            assert "WorkerTimeoutError" in out.errors[0]

    def test_fault_free_fanout_is_clean(self, baseline_suite_digest):
        suite = Suite(_SUITE_CONFIG, jobs=2)
        assert _suite_digest(suite) == baseline_suite_digest
        report = suite.last_report
        assert report is not None and not report.degraded


class TestCrossCheckMode:
    """REPRO_CROSS_CHECK=1: eager ladder equivalence on real campaigns."""

    #: One spec per detector family: the vector-clock oracle, the
    #: cache-limited vector scheme, the FastTrack-style epoch detector,
    #: and CORD itself.
    @staticmethod
    def _family_specs():
        from repro.detectors.registry import standard_suite, suite_by_name

        by_name = suite_by_name(standard_suite())
        return [
            by_name["Ideal"],
            by_name["InfCache"],
            DetectorSpec("Epoch", lambda n: EpochDetector(n)),
            by_name["CORD-D16"],
        ]

    def _campaign(self):
        return run_campaign(
            get_workload("fft").program_factory(_PARAMS),
            "fft",
            CampaignConfig(
                n_runs=2, detectors=self._family_specs()
            ),
        )

    def test_all_families_pass_cross_check(self, monkeypatch):
        plain = self._campaign()
        monkeypatch.setenv("REPRO_CROSS_CHECK", "1")
        checked = self._campaign()
        for a, b in zip(plain.runs, checked.runs):
            assert a.flagged == b.flagged
            assert a.problem == b.problem
