"""Ablation tests: each CORD design element, removed, must visibly fail.

The paper motivates each mechanism with a failure mode (Figures 2, 6, 7,
and Section 2.7.4).  These tests switch each mechanism off and assert the
failure actually appears -- evidence that the reproduction implements the
mechanism, not just the benchmark numbers.
"""

import pytest

from repro.common.errors import ConfigError
from repro.common.types import AccessClass, AccessMode
from repro.cord import CordConfig, CordDetector
from repro.detectors import IdealDetector
from repro.trace import MemoryEvent, Trace


def make_event(index, thread, address, write, sync, icount):
    return MemoryEvent(
        index,
        thread,
        address,
        AccessMode.WRITE if write else AccessMode.READ,
        AccessClass.SYNC if sync else AccessClass.DATA,
        icount,
    )


def displacement_trace():
    """Figure 6's shape: sync var displaced, then synchronized sharing."""
    events = []
    index = 0

    def add(thread, address, write, sync, icount):
        nonlocal index
        events.append(
            make_event(index, thread, address, write, sync, icount)
        )
        index += 1

    # With the tiny 4-set/2-way cache below, L and the displacers map to
    # set 0 while X sits in set 1: A's release of L is displaced to
    # memory but its write of X stays cached -- exactly Figure 6.
    X, L = 0x100040, 0x8000000
    add(0, X, True, False, 0)     # A writes X
    add(0, L, True, True, 1)      # A releases L
    for i in range(1, 9):
        add(0, 0x200000 + 256 * i, True, False, 1 + i)
    add(1, L, False, True, 0)     # B acquires L (from memory)
    add(1, X, False, False, 1)    # B reads X -- properly synchronized
    icounts = [10, 2]
    return Trace(events, icounts)


TINY_CACHE = dict(cache_size=2 * 64 * 4, associativity=2)


class TestMemoryTimestampAblation:
    def test_with_memts_no_false_race(self):
        trace = displacement_trace()
        outcome = CordDetector(
            CordConfig(d=4, **TINY_CACHE), 2
        ).run(trace)
        assert outcome.raw_count == 0

    def test_without_memts_false_race_appears(self):
        # Figure 6: "Neglecting a synchronization race results in
        # detection of a false data race on X."
        trace = displacement_trace()
        outcome = CordDetector(
            CordConfig(d=4, use_memory_timestamps=False, **TINY_CACHE), 2
        ).run(trace)
        ideal = IdealDetector(2).run(trace)
        assert ideal.raw_count == 0
        assert outcome.raw_count > 0  # the false positive the paper fears

    def test_without_memts_ordering_is_lost(self):
        # B's clock never learns about A's displaced release.
        trace = displacement_trace()
        with_memts = CordDetector(
            CordConfig(d=4, **TINY_CACHE), 2
        )
        with_memts.run(trace)
        without = CordDetector(
            CordConfig(d=4, use_memory_timestamps=False, **TINY_CACHE), 2
        )
        without.run(trace)
        assert without.clocks[1] < with_memts.clocks[1]


class TestMigrationAblation:
    def migration_trace(self):
        X = 0x100000
        events = [
            make_event(0, 0, X, True, False, 0),
            make_event(1, 0, X, False, False, 1),
        ]
        return Trace(events, [2])

    def test_fix_prevents_self_race(self):
        detector = CordDetector(CordConfig(d=16), 1)
        trace = self.migration_trace()
        detector.process(trace.events[0])
        detector.migrate_thread(0, 1, icount=1)
        detector.process(trace.events[1])
        assert detector.outcome.raw_count == 0

    def test_without_fix_self_race_appears(self):
        # Section 2.7.4: the thread's own stale timestamps on the old
        # processor "appear to belong to another thread".
        detector = CordDetector(
            CordConfig(d=16, migration_fix=False), 1
        )
        trace = self.migration_trace()
        detector.process(trace.events[0])
        detector.migrate_thread(0, 1, icount=1)
        detector.process(trace.events[1])
        assert detector.outcome.raw_count > 0  # false self-race


class TestEntriesPerLineAblation:
    def layered_trace(self):
        """Figure 2's situation: a timestamp change erases line history."""
        events = []
        index = 0
        line = 0x100000

        def add(thread, address, write, sync, icount):
            nonlocal index
            events.append(
                make_event(index, thread, address, write, sync, icount)
            )
            index += 1

        # Thread 0 writes word 0, syncs (clock changes), writes word 1,
        # syncs, writes word 2: three epochs on one line.
        add(0, line + 0, True, False, 0)
        add(0, 0x8000000, True, True, 1)
        add(0, line + 4, True, False, 2)
        add(0, 0x8000040, True, True, 3)
        add(0, line + 8, True, False, 4)
        # Thread 1 races with the *oldest* word.
        add(1, line + 0, True, False, 0)
        return Trace(events, [5, 1])

    def _coverage_before_race(self, entries_per_line):
        # Inspect thread 0's resident history at the moment thread 1's
        # racy access checks it (the final event retires it afterwards).
        detector = CordDetector(
            CordConfig(d=1, entries_per_line=entries_per_line), 2
        )
        trace = self.layered_trace()
        for event in trace.events[:-1]:
            detector.process(event)
        slot = detector.snoop.cache_of(0).peek(0x100000)
        return {
            word
            for word in range(3)
            if detector.store.conflicting_timestamps(slot, word, True)
        }

    def test_two_entries_keep_recent_history(self):
        # With two entries, the middle epoch survives; only the oldest
        # epoch's history (word 0) has been erased (Figure 2).
        assert self._coverage_before_race(2) == {1, 2}

    def test_one_entry_erases_more(self):
        assert self._coverage_before_race(1) == {2}

    def test_detection_monotone_in_entries(self):
        trace = self.layered_trace()
        counts = []
        for entries in (1, 2, 8):
            outcome = CordDetector(
                CordConfig(d=1, entries_per_line=entries), 2
            ).run(trace)
            counts.append(outcome.raw_count)
        assert counts[0] <= counts[1] <= counts[2]


class TestThreadOvercommitGuard:
    def test_more_threads_than_processors_rejected(self):
        with pytest.raises(ConfigError):
            CordDetector(CordConfig(n_processors=2), 3)

    def test_exact_fit_allowed(self):
        CordDetector(CordConfig(n_processors=4), 4)
