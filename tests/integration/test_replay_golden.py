"""Golden record -> replay determinism tests.

For every workload in the registry this suite records a trace under a
fixed seed, runs the CORD detector, replays the execution from the order
log, and compares *digests* of everything observable -- the recorded
event stream, the encoded order log, the race report, the replayed event
stream, final clocks, and the detector's broadcast counters -- against
fixtures checked in under ``tests/fixtures/golden/``.

The fixtures pin detector behavior bit-for-bit: any change to the hot
path (metadata layout, fast-path ordering, cache replacement, event
plumbing) that alters a single race verdict, log entry, or replayed
instruction flips a digest and fails loudly.  Performance work must keep
this suite green without regenerating fixtures.

Regenerating (only after an *intentional* semantic change):

    PYTHONPATH=src python tests/integration/test_replay_golden.py --regen
"""

import hashlib
import json
import sys
from pathlib import Path

import pytest

from repro.cord import CordConfig, CordDetector, replay_trace, verify_replay
from repro.engine import run_program
from repro.workloads import WorkloadParams
from repro.workloads.registry import workload_names, get_workload

FIXTURE_DIR = Path(__file__).resolve().parents[1] / "fixtures" / "golden"

#: Recording parameters; changing any of these requires --regen.
GOLDEN_SEED = 2006
GOLDEN_PARAMS = dict(scale=0.5)


def _sha(text: str) -> str:
    return hashlib.sha256(text.encode()).hexdigest()


def event_stream_digest(trace) -> str:
    """Digest of the full global event stream (order-sensitive)."""
    lines = [
        "%d %d %d %d %d %d %d"
        % (e.index, e.thread, e.address, int(e.mode), int(e.klass),
           e.icount, e.value)
        for e in trace.events
    ]
    lines.append("final=%s hung=%d" % (trace.final_icounts, trace.hung))
    return _sha("\n".join(lines))


def race_report_digest(outcome) -> str:
    """Digest of the flagged access set and per-race diagnostics."""
    lines = sorted(
        "%r %d %r %r" % (r.access, r.address, r.other_thread, r.detail)
        for r in outcome.races
    )
    lines.append("flagged=%r" % sorted(outcome.flagged))
    return _sha("\n".join(lines))


#: Counters that must stay identical across any optimization: they pin
#: the fast-path decisions, broadcast traffic, and log shape exactly.
PINNED_COUNTERS = (
    "race_checks",
    "fast_hits",
    "memts_orderings",
    "memts_update_broadcasts",
    "clock_changes",
    "log_entries",
    "log_bytes",
    "evictions",
)


def golden_run(workload: str) -> dict:
    """Record, detect, and replay one workload; return its digests."""
    params = WorkloadParams(**GOLDEN_PARAMS)
    spec = get_workload(workload)
    program = spec.build(params)
    trace = run_program(program, seed=GOLDEN_SEED)
    outcome = CordDetector(CordConfig(), program.n_threads).run(trace)
    replayed = replay_trace(program, outcome.log)
    verdict = verify_replay(trace, replayed)
    return {
        "workload": workload,
        "n_events": len(trace.events),
        "trace_sha": event_stream_digest(trace),
        "log_sha": hashlib.sha256(outcome.log.encode()).hexdigest(),
        "races_sha": race_report_digest(outcome),
        "replay_sha": event_stream_digest(replayed),
        "replay_equivalent": verdict.equivalent,
        "final_clocks": list(outcome.final_clocks),
        "counters": {k: outcome.counters[k] for k in PINNED_COUNTERS},
    }


def fixture_path(workload: str) -> Path:
    return FIXTURE_DIR / ("%s.json" % workload)


@pytest.mark.parametrize("workload", workload_names())
def test_golden_record_replay(workload):
    path = fixture_path(workload)
    if not path.exists():
        pytest.fail(
            "no golden fixture for %r -- run "
            "`PYTHONPATH=src python tests/integration/test_replay_golden.py"
            " --regen`" % workload
        )
    expected = json.loads(path.read_text())
    actual = golden_run(workload)

    # The replayed execution must be conflict-equivalent to the recording
    # (the paper's replay-correctness property), independent of fixtures.
    assert actual["replay_equivalent"], workload

    for key in ("n_events", "trace_sha", "log_sha", "races_sha",
                "replay_sha", "final_clocks", "counters"):
        assert actual[key] == expected[key], (
            "golden mismatch for %s[%s]: detector behavior changed "
            "(expected %r, got %r)"
            % (workload, key, expected[key], actual[key])
        )


def test_all_workloads_have_fixtures():
    missing = [w for w in workload_names() if not fixture_path(w).exists()]
    assert not missing, "fixtures missing for: %s" % ", ".join(missing)


def regenerate(only=None):
    """Rewrite fixtures -- all of them, or just the names in ``only``.

    Scoping matters when a new workload joins the registry: its fixture
    must be created without rewriting (and silently re-pinning) the
    existing ones.
    """
    FIXTURE_DIR.mkdir(parents=True, exist_ok=True)
    for workload in only or workload_names():
        result = golden_run(workload)
        if not result["replay_equivalent"]:
            raise SystemExit(
                "refusing to pin a non-equivalent replay for %r" % workload
            )
        path = fixture_path(workload)
        path.write_text(json.dumps(result, indent=1, sort_keys=True) + "\n")
        print("wrote %s (%d events)" % (path, result["n_events"]))


if __name__ == "__main__":
    if "--regen" in sys.argv:
        names = [a for a in sys.argv[1:] if a != "--regen"]
        regenerate(only=names or None)
    else:
        print(__doc__)
