"""Backpressure, quotas, fairness, and job-control on a live server.

The admission contract under flood: past the configured limits every
submission is *rejected deterministically* with a machine-readable code
and a ``retry_after`` hint -- never queued unboundedly, never silently
dropped -- while every submission that *was* acknowledged runs to a
committed report, including across a drain/restart in mid-flood.  Plus
the tenant-facing features riding on the same machinery: per-tenant
quotas, cross-tenant recording/result dedup accounting, cancellation of
queued and running jobs, and per-job deadlines.
"""

import os
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.resilience.checkpoint import INTERRUPTED_EXIT_CODE
from repro.service import protocol
from repro.service.client import ServiceClient

SRC = str(Path(__file__).resolve().parents[2] / "src")

RETRY_AFTER = 0.05


def _env(**extra):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [SRC] + [p for p in env.get("PYTHONPATH", "").split(os.pathsep) if p]
    )
    env["REPRO_FSYNC"] = "0"
    env["REPRO_SVC_RETRY_AFTER_S"] = str(RETRY_AFTER)
    env.pop("REPRO_FAULTS", None)
    env.update(extra)
    return env


class _Server:
    def __init__(self, root, **extra):
        self.root = Path(root)
        self.proc = subprocess.Popen(
            [sys.executable, "-m", "repro.service", "serve", "--root",
             str(root)],
            env=_env(**extra),
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        self.client = ServiceClient(socket_path=self.root / "service.sock")
        self.client.wait_ready()

    def stop(self, expect_code=0):
        if self.proc.poll() is None:
            self.client.drain()
        assert self.proc.wait(timeout=60) == expect_code

    def kill(self):
        if self.proc.poll() is None:
            self.proc.kill()
            self.proc.wait(timeout=10)


@pytest.fixture
def server_factory(tmp_path):
    servers = []

    def start(subdir="root", **extra):
        server = _Server(tmp_path / subdir, **extra)
        servers.append(server)
        return server

    yield start
    for server in servers:
        server.kill()


def _submit_until_accepted(client, seed, tenant, rejections):
    deadline = time.monotonic() + 60
    while True:
        response = client.submit(
            "fft", runs=2, seed=seed, scale=0.5, tenant=tenant,
        )
        if response.get("ok"):
            return response["job"]
        rejections.append(response)
        assert time.monotonic() < deadline
        time.sleep(float(response.get("retry_after", RETRY_AFTER)))


def test_flood_backpressure_zero_dropped(server_factory):
    """Flood a 2-slot server with 6 jobs from 2 tenants.

    Every rejection must be retryable-with-hint; every accepted job must
    commit; nothing may be silently dropped or silently queued past the
    bound.
    """
    server = server_factory(
        REPRO_SVC_QUEUE_MAX="2",
        REPRO_SVC_CONCURRENCY="1",
    )
    client = server.client
    rejections = []
    accepted = {}
    for index in range(6):
        tenant = ("alice", "bob")[index % 2]
        accepted[_submit_until_accepted(
            client, 100 + index, tenant, rejections,
        )] = tenant

    assert len(accepted) == 6
    # The flood genuinely overran the bound, and every rejection carried
    # the deterministic code + hint.
    assert rejections
    for rejection in rejections:
        assert rejection["error"] in protocol.RETRYABLE
        assert rejection["retry_after"] == RETRY_AFTER

    # Zero dropped: every acknowledged job reaches committed.
    for job_id in accepted:
        final = client.result(job_id, timeout_s=120)
        assert final["ok"] is True, final
        assert final["state"] == "committed"

    health = client.health()
    assert health["stats"]["accepted"] == 6
    assert health["stats"].get("rejected_queue_full", 0) == len(rejections)
    assert health["jobs"]["by_state"] == {"committed": 6}
    server.stop()


def test_fault_forced_rejection_branches(server_factory):
    """The chaos faults force each rejection branch with empty queues."""
    server = server_factory(
        REPRO_FAULTS="queue_full:1,tenant_flood:1",
    )
    client = server.client
    first = client.submit("fft", runs=1, seed=1, scale=0.5)
    assert first["error"] == protocol.ERR_QUEUE_FULL
    assert first["retry_after"] == RETRY_AFTER
    second = client.submit("fft", runs=1, seed=1, scale=0.5)
    assert second["error"] == protocol.ERR_TENANT_OVER_QUOTA
    # Charges spent: the same submission is now admitted.
    third = client.submit("fft", runs=1, seed=1, scale=0.5)
    assert third["ok"] is True
    assert client.result(third["job"], timeout_s=120)["state"] == "committed"
    health = client.health()
    assert health["stats"]["rejected_queue_full"] == 1
    assert health["stats"]["rejected_tenant_over_quota"] == 1
    server.stop()


def test_tenant_quota_isolates_tenants(server_factory):
    server = server_factory(
        REPRO_SVC_QUEUE_MAX="10",
        REPRO_SVC_TENANT_MAX="1",
        REPRO_SVC_CONCURRENCY="1",
    )
    client = server.client
    a1 = client.submit("fft", runs=4, seed=21, scale=0.5, tenant="alice")
    assert a1["ok"] is True
    # Alice is at quota; her next submission bounces...
    a2 = client.submit("fft", runs=2, seed=22, scale=0.5, tenant="alice")
    assert a2["error"] == protocol.ERR_TENANT_OVER_QUOTA
    # ...but Bob's quota is his own.
    b1 = client.submit("fft", runs=2, seed=23, scale=0.5, tenant="bob")
    assert b1["ok"] is True
    assert client.result(a1["job"], timeout_s=120)["state"] == "committed"
    assert client.result(b1["job"], timeout_s=120)["state"] == "committed"
    # Quota released on completion.
    a3 = client.submit("fft", runs=2, seed=22, scale=0.5, tenant="alice")
    assert a3["ok"] is True
    assert client.result(a3["job"], timeout_s=120)["state"] == "committed"
    server.stop()


def test_cross_tenant_dedup_is_counted(server_factory):
    server = server_factory()
    client = server.client
    spec = dict(runs=3, seed=31, scale=0.5)
    first = client.submit("fft", tenant="alice", **spec)
    final_a = client.result(first["job"], timeout_s=120)
    assert final_a["state"] == "committed"
    assert final_a["stats"].get("dedup_run_hits", 0) == 0

    # Bob submits the identical campaign: zero simulation, full credit
    # to the dedup counters, byte-identical report.
    second = client.submit("fft", tenant="bob", **spec)
    final_b = client.result(second["job"], timeout_s=120)
    assert final_b["state"] == "committed"
    assert final_b["report"] == final_a["report"]
    assert final_b["stats"]["result_hit"] == 1
    assert final_b["stats"]["simulated"] == 0
    assert final_b["stats"]["dedup_run_hits"] == spec["runs"]
    assert final_b["stats"]["dedup_result_hits"] == 1

    health = client.health()
    assert health["stats"]["dedup_run_hits"] == spec["runs"]
    assert health["stats"]["dedup_result_hits"] == 1
    server.stop()


def test_cancel_queued_and_running(server_factory):
    server = server_factory(REPRO_SVC_CONCURRENCY="1")
    client = server.client
    running = client.submit("fft", runs=8, seed=41, scale=1.0)
    queued = client.submit("fft", runs=8, seed=42, scale=1.0)

    # The queued job cancels synchronously.
    response = client.cancel(queued["job"])
    assert response["state"] == "cancelled"
    final = client.result(queued["job"], timeout_s=30)
    assert final["ok"] is False
    assert final["error"] == protocol.ERR_CANCELLED
    assert final["state"] == "cancelled"

    # The running job stops at its next safe point.
    response = client.cancel(running["job"])
    assert response["state"] in ("cancelling", "cancelled")
    final = client.result(running["job"], timeout_s=120)
    assert final["ok"] is False
    assert final["error"] == protocol.ERR_CANCELLED
    assert final["state"] == "cancelled"
    # Cancelling a terminal job is a no-op acknowledgment.
    assert client.cancel(running["job"])["state"] == "cancelled"
    server.stop()


def test_deadline_exceeded_fails_the_job(server_factory):
    server = server_factory()
    client = server.client
    response = client.submit(
        "fft", runs=50, seed=51, scale=1.0, deadline_s=0.05,
    )
    final = client.result(response["job"], timeout_s=120)
    assert final["ok"] is False
    assert final["error"] == protocol.ERR_DEADLINE
    assert final["state"] == "failed"
    status = client.status(response["job"])
    assert status["error"] == protocol.ERR_DEADLINE
    server.stop()


def test_drain_mid_flood_drops_nothing(server_factory, tmp_path):
    """Drain with a full queue: exit 71, restart completes every job."""
    server = server_factory(
        "flood-root",
        REPRO_SVC_QUEUE_MAX="8",
        REPRO_SVC_CONCURRENCY="1",
    )
    client = server.client
    accepted = [
        client.submit("fft", runs=3, seed=60 + index, scale=0.5)["job"]
        for index in range(4)
    ]
    drained = client.drain()
    assert set(drained["pending"]) == set(accepted)
    assert server.proc.wait(timeout=60) == INTERRUPTED_EXIT_CODE

    resumed = server_factory("flood-root")
    client = resumed.client
    health = client.health()
    assert {entry["job"] for entry in health["jobs_list"]} == set(accepted)
    assert health["stats"]["resumed"] == len(accepted)
    for job_id in accepted:
        final = client.result(job_id, timeout_s=120)
        assert final["ok"] is True, final
        assert final["state"] == "committed"
        assert client.status(job_id)["resumed"] is True
    resumed.stop()
