"""Integration tests for the CORD detector's mechanism-level behavior."""

import pytest

from repro.common.types import AccessClass, AccessMode
from repro.cord import CordConfig, CordDetector
from repro.detectors import IdealDetector
from repro.engine import run_program
from repro.trace import MemoryEvent, Trace

from tests.conftest import build_counter_program


def make_event(index, thread, address, write, sync, icount, value=0):
    return MemoryEvent(
        index,
        thread,
        address,
        AccessMode.WRITE if write else AccessMode.READ,
        AccessClass.SYNC if sync else AccessClass.DATA,
        icount,
        value,
    )


class TestCleanRunsAreSilent:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_no_races_on_race_free_program(self, counter_program, seed):
        trace = run_program(counter_program, seed=seed)
        for d in (1, 4, 16, 256):
            outcome = CordDetector(CordConfig(d=d), 4).run(trace)
            assert outcome.raw_count == 0

    def test_order_log_produced(self, counter_program):
        trace = run_program(counter_program, seed=1)
        outcome = CordDetector(CordConfig(), 4).run(trace)
        assert len(outcome.log) > 0
        assert outcome.log_bytes == 8 * len(outcome.log)

    def test_counters_populated(self, counter_program):
        trace = run_program(counter_program, seed=1)
        outcome = CordDetector(CordConfig(), 4).run(trace)
        for key in (
            "race_checks",
            "fast_hits",
            "memts_update_broadcasts",
            "clock_changes",
            "log_entries",
        ):
            assert key in outcome.counters


class TestCheckFilters:
    def test_private_data_uses_fast_path(self):
        # One thread repeatedly touching private lines: after the first
        # (cold) check per line the filter bits make every later access
        # a fast hit.
        detector = CordDetector(CordConfig(), 2)
        index = 0
        for round_index in range(4):
            for line in range(8):
                for word in range(4):
                    detector.process(
                        make_event(
                            index, 0, 0x100000 + line * 64 + word * 4,
                            write=True, sync=False, icount=index,
                        )
                    )
                    index += 1
        # 8 cold checks (one per line), everything else filtered.
        assert detector.race_checks == 8
        assert detector.fast_hits == index - 8

    def test_remote_access_revokes_filter(self):
        detector = CordDetector(CordConfig(), 2)
        address = 0x100000
        detector.process(make_event(0, 0, address, True, False, 0))
        assert detector.race_checks == 1
        # Thread 1 writes the line: revokes thread 0's filters and
        # invalidates its copy.
        detector.process(make_event(1, 1, address, True, False, 0))
        # Thread 0 writes again: must re-check (miss + no filter).
        detector.process(make_event(2, 0, address, True, False, 1))
        assert detector.race_checks == 3

    def test_own_clock_increment_invalidates_filter(self):
        # Regression for stale check-filter bits: thread 0 earns a filter
        # on a data line, then its clock moves (sync-write increment).
        # The next access to the filtered line must race-check again --
        # it is recorded at the new clock, so it needs the ordering
        # comparisons a filtered access skips.
        detector = CordDetector(CordConfig(), 2)
        data = 0x100000
        sync = 0x8000000
        detector.process(make_event(0, 0, data, True, False, 0))
        assert detector.race_checks == 1
        clock_before = detector.clocks[0]
        detector.process(make_event(1, 0, sync, True, True, 1))
        assert detector.clocks[0] == clock_before + 1
        detector.process(make_event(2, 0, data, True, False, 2))
        assert detector.race_checks == 3
        assert detector.fast_hits == 0
        # At the *same* clock the filter still short-circuits checks.
        detector.process(make_event(3, 0, data, False, False, 3))
        assert detector.race_checks == 3
        assert detector.fast_hits == 1


class TestSyncChains:
    def test_lock_chain_gives_full_window(self):
        detector = CordDetector(CordConfig(d=16), 2)
        lock = 0x8000000
        data = 0x100000
        events = [
            make_event(0, 0, data, True, False, 0),    # A writes data
            make_event(1, 0, lock, True, True, 1),     # A releases
            make_event(2, 1, lock, False, True, 0),    # B acquires
            make_event(3, 1, data, False, False, 1),   # B reads data
        ]
        for event in events:
            detector.process(event)
        assert detector.outcome.raw_count == 0
        # B's clock is at least D past the release timestamp.
        assert detector.clocks[1] >= detector.clocks[0] + 15

    def test_unsynchronized_conflict_reported_once_per_access(self):
        detector = CordDetector(CordConfig(d=16), 3)
        data = 0x100000
        detector.process(make_event(0, 0, data, True, False, 0))
        detector.process(make_event(1, 1, data, True, False, 0))
        detector.process(make_event(2, 2, data, False, False, 0))
        # Each racy access is flagged once even with two candidates.
        assert detector.outcome.raw_count == 2
        assert len(detector.outcome.flagged) == 2


class TestMigration:
    def test_self_race_without_fix(self):
        # Move a thread without the +D increment (simulated by migrating
        # with d=1-like behavior is not possible through the API -- the
        # API always applies the fix -- so instead verify the fix works).
        detector = CordDetector(CordConfig(d=16), 2)
        data = 0x100000
        detector.process(make_event(0, 0, data, True, False, 0))
        before = detector.clocks[0]
        detector.migrate_thread(0, 1, icount=1)
        assert detector.clocks[0] == before + 16
        # The thread's next access on the new processor snoops its own
        # stale entry on processor 0 but is "synchronized" past it.
        detector.process(make_event(1, 0, data, False, False, 1))
        assert detector.outcome.raw_count == 0

    def test_migration_is_logged(self):
        detector = CordDetector(CordConfig(d=16), 2)
        detector.migrate_thread(0, 1, icount=0)
        assert any(
            entry.thread == 0 for entry in detector.recorder.log.entries
        )

    def test_migration_to_unknown_processor_rejected(self):
        detector = CordDetector(CordConfig(d=16), 2)
        with pytest.raises(ValueError):
            detector.migrate_thread(0, 99, icount=0)


class TestSoundnessOnRandomPrograms:
    @pytest.mark.parametrize("seed", range(6))
    def test_run_level_soundness_with_injection(self, seed):
        from repro.injection import InjectionInterceptor

        program = build_counter_program(rounds=3)
        interceptor = InjectionInterceptor(seed * 3 % 20)
        trace = run_program(program, seed=seed, interceptor=interceptor)
        ideal = IdealDetector(4).run(trace)
        for d in (1, 16):
            outcome = CordDetector(CordConfig(d=d), 4).run(trace)
            # A CORD report implies the run really contains races.
            if outcome.problem_detected:
                assert ideal.problem_detected


class TestWindowMode:
    def test_window_mode_runs_walkers(self, counter_program):
        trace = run_program(counter_program, seed=1)
        config = CordConfig(
            use_window=True, walker_period=50, walker_stale_lag=2048
        )
        detector = CordDetector(config, 4)
        outcome = detector.run(trace)
        assert outcome.counters["window_violations"] == 0
        assert any(w.walks > 0 for w in detector._walkers)

    def test_window_mode_same_detections(self, counter_program):
        trace = run_program(counter_program, seed=1)
        plain = CordDetector(CordConfig(), 4).run(trace)
        windowed = CordDetector(
            CordConfig(use_window=True, walker_period=64,
                       walker_stale_lag=4096), 4,
        ).run(trace)
        assert plain.flagged == windowed.flagged
