"""Race-report analysis tests and the 16-bit clock-overflow stress test."""

import pytest

from repro.analysis import build_report
from repro.common.errors import DeadlockError
from repro.cord import (
    CordConfig,
    CordDetector,
    OrderLog,
    replay_trace,
    verify_replay,
)
from repro.detectors import IdealDetector
from repro.engine import run_program
from repro.injection import InjectionInterceptor
from repro.program import AddressSpace, Program
from repro.program.ops import FlagWaitOp, ReadOp, WriteOp
from repro.sync import Mutex, acquire, release
from repro.workloads import WorkloadParams, get_workload


class TestRaceReport:
    def injected_outcome(self):
        spec = get_workload("raytrace")
        program = spec.build(WorkloadParams(scale=0.5))
        for target in range(0, 40, 3):
            interceptor = InjectionInterceptor(target)
            trace = run_program(program, seed=21, interceptor=interceptor)
            outcome = IdealDetector(program.n_threads).run(trace)
            if outcome.problem_detected:
                return program, outcome
        pytest.skip("no manifesting injection found")

    def test_groups_by_allocation(self):
        program, outcome = self.injected_outcome()
        report = build_report(outcome, program.address_space)
        assert report.total_flagged == outcome.raw_count
        assert report.n_variables >= 1
        # Image-tile races resolve to the named image allocation.
        names = {group.allocation.split("[")[0] for group in report.groups}
        assert any(not name.startswith("0x") for name in names)

    def test_render(self):
        program, outcome = self.injected_outcome()
        report = build_report(outcome, program.address_space)
        rendered = report.render()
        assert "racy accesses" in rendered
        assert "variable" in rendered

    def test_clean_report(self):
        from repro.detectors.base import DetectionOutcome

        report = build_report(DetectionOutcome("CORD"))
        assert "no data races" in report.render()


class TestDeadlockRaise:
    def test_raise_mode(self):
        space = AddressSpace()
        flag = space.alloc_sync("never")

        def body(tid):
            yield FlagWaitOp(flag, 1)

        program = Program([body], space)
        with pytest.raises(DeadlockError) as excinfo:
            run_program(program, seed=1, on_deadlock="raise")
        assert excinfo.value.blocked_threads == (0,)

    def test_bad_mode_rejected(self):
        from repro.common.errors import SimulationError

        space = AddressSpace()

        def body(tid):
            yield ReadOp(0x100000)

        with pytest.raises(SimulationError):
            run_program(
                Program([body], space), seed=1, on_deadlock="explode"
            )


class TestClockOverflowStress:
    """Drive clocks far past 2^16 and verify everything still holds."""

    def long_chain_program(self, rounds=4200):
        # A tight lock ping-pong: every acquire jumps the clock by D, so
        # clocks comfortably exceed 2^16 within a few thousand rounds.
        space = AddressSpace()
        mutex = Mutex.allocate(space, "hot")
        word = space.alloc("w")

        def body(tid):
            for _ in range(rounds):
                yield from acquire(mutex)
                value = yield ReadOp(word)
                yield WriteOp(word, (value or 0) + 1)
                yield from release(mutex)

        return Program([body] * 2, space, name="chain")

    @pytest.fixture(scope="class")
    def recorded(self):
        program = self.long_chain_program()
        trace = run_program(program, seed=3)
        detector = CordDetector(CordConfig(d=16), 2)
        outcome = detector.run(trace)
        return program, trace, detector, outcome

    def test_clocks_exceed_16_bits(self, recorded):
        _program, _trace, detector, _outcome = recorded
        assert max(detector.clocks) > (1 << 16)

    def test_no_false_positives_at_scale(self, recorded):
        program, trace, _detector, outcome = recorded
        ideal = IdealDetector(2).run(trace)
        assert outcome.flagged <= ideal.flagged

    def test_binary_log_roundtrip_past_overflow(self, recorded):
        _program, _trace, _detector, outcome = recorded
        decoded = OrderLog.decode(outcome.log.encode())
        assert [
            (e.clock, e.thread, e.count) for e in decoded
        ] == [(e.clock, e.thread, e.count) for e in outcome.log]

    def test_replay_past_overflow(self, recorded):
        program, trace, _detector, outcome = recorded
        decoded = OrderLog.decode(outcome.log.encode())
        replayed = replay_trace(program, decoded)
        assert verify_replay(trace, replayed).equivalent

    def test_window_mode_no_stalls(self):
        # The paper: the walker keeps stale timestamps out and the
        # sliding-window stall never fires.
        program = self.long_chain_program(rounds=1500)
        trace = run_program(program, seed=4)
        detector = CordDetector(
            CordConfig(d=16, use_window=True, walker_period=256), 2
        )
        outcome = detector.run(trace)
        assert outcome.counters["window_violations"] == 0
