"""Integration tests for the Markdown report generator."""

import pytest

from repro.experiments.reportgen import generate_report, write_report
from repro.experiments.runner import SuiteConfig
from repro.workloads import WorkloadParams

SMALL = SuiteConfig(
    runs_per_app=3,
    workloads=("fft", "raytrace"),
    params=WorkloadParams(scale=0.35, compute_grain=8),
)


class TestReportGeneration:
    @pytest.fixture(scope="class")
    def report(self):
        return generate_report(config=SMALL)

    def test_contains_every_section(self, report):
        for heading in (
            "# CORD reproduction report",
            "## Table 1",
            "## Figure 10",
            "## Figure 12",
            "## Figure 13",
            "## Figure 14",
            "## Figure 15",
            "## Figure 16",
            "## Figure 17",
            "## Figure 11",
            "Wilson intervals",
            "## Order recording and replay",
        ):
            assert heading in report, heading

    def test_tables_are_fenced(self, report):
        assert report.count("```") % 2 == 0
        assert report.count("```") >= 20

    def test_apps_limited_to_config(self, report):
        # Table 1 lists all twelve, but the campaign figures only the
        # configured subset.
        figure10_block = report.split("## Figure 10")[1]
        assert "fft" in figure10_block
        assert "water-n2" not in figure10_block.split("## Figure 12")[0]

    def test_write_report(self, tmp_path):
        path = write_report(tmp_path / "r.md", config=SMALL)
        assert path.exists()
        assert path.read_text("utf-8").startswith("# CORD")
