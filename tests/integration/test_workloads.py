"""Integration tests over every registered workload analogue."""

import pytest

from repro.common.errors import ConfigError
from repro.cord import CordConfig, CordDetector
from repro.detectors import IdealDetector
from repro.engine import run_program
from repro.trace import compute_stats
from repro.workloads import (
    WorkloadParams,
    all_workloads,
    families,
    get_workload,
    workload_names,
)

TINY = WorkloadParams(scale=0.25, compute_grain=8)

ALL_NAMES = workload_names()


class TestRegistry:
    def test_families(self):
        assert families() == ["splash2", "server"]

    def test_twelve_splash2_apps(self):
        # The paper's Table 1 set is exactly twelve applications.
        assert len(all_workloads(family="splash2")) == 12

    def test_splash2_names_match_table1(self):
        assert workload_names(family="splash2") == [
            "barnes", "cholesky", "fft", "fmm", "lu", "ocean",
            "radiosity", "radix", "raytrace", "volrend",
            "water-n2", "water-sp",
        ]

    def test_server_family(self):
        assert workload_names(family="server") == [
            "webpool", "pipeline", "eventloop", "cacheinval",
            "casretry",
        ]

    def test_all_is_union_of_families(self):
        union = [
            name
            for family in families()
            for name in workload_names(family)
        ]
        assert ALL_NAMES == union
        assert len(set(ALL_NAMES)) == len(ALL_NAMES)

    def test_unknown_family_rejected(self):
        with pytest.raises(ConfigError):
            all_workloads(family="mainframe")

    def test_lookup(self):
        assert get_workload("lu").name == "lu"
        assert get_workload("webpool").family == "server"
        with pytest.raises(ConfigError):
            get_workload("nonesuch")

    def test_every_entry_round_trips_by_name(self):
        # The CLI and campaign drivers address workloads by name only;
        # every registered spec must survive the round trip.
        for spec in all_workloads():
            assert get_workload(spec.name) is spec

    def test_specs_have_labels(self):
        for spec in all_workloads():
            assert spec.input_label
            assert spec.description
            assert spec.sync_style
            assert spec.family in families()


@pytest.mark.parametrize("name", ALL_NAMES)
class TestEveryWorkload:
    def test_builds_and_completes(self, name):
        trace = run_program(get_workload(name).build(TINY), seed=1)
        assert not trace.hung
        assert len(trace.events) > 100

    def test_clean_run_is_race_free(self, name):
        # The paper's evaluation codes are data-race-free until injected.
        program = get_workload(name).build(TINY)
        trace = run_program(program, seed=2)
        ideal = IdealDetector(program.n_threads).run(trace)
        assert ideal.raw_count == 0, ideal.races[:3]

    def test_cord_silent_on_clean_run(self, name):
        program = get_workload(name).build(TINY)
        trace = run_program(program, seed=3)
        outcome = CordDetector(
            CordConfig(), program.n_threads
        ).run(trace)
        assert outcome.raw_count == 0, outcome.races[:3]

    def test_deterministic_given_seed(self, name):
        program = get_workload(name).build(TINY)
        a = run_program(program, seed=4)
        b = run_program(program, seed=4)
        assert [e.key() for e in a.events] == [e.key() for e in b.events]

    def test_has_sync_and_sharing(self, name):
        trace = run_program(get_workload(name).build(TINY), seed=5)
        stats = compute_stats(trace)
        assert stats.n_sync > 0
        assert stats.shared_words > 0
        assert 0 < stats.sync_fraction < 0.5

    def test_scaling_changes_size(self, name):
        small = run_program(
            get_workload(name).build(WorkloadParams(scale=0.25)), seed=1
        )
        large = run_program(
            get_workload(name).build(WorkloadParams(scale=1.0)), seed=1
        )
        assert len(large.events) > len(small.events)


class TestWorkloadParams:
    def test_validation(self):
        with pytest.raises(ConfigError):
            WorkloadParams(n_threads=1)
        with pytest.raises(ConfigError):
            WorkloadParams(scale=0)
        with pytest.raises(ConfigError):
            WorkloadParams(compute_grain=0)

    def test_scaled_clamps(self):
        params = WorkloadParams(scale=0.01)
        assert params.scaled(10, minimum=2) == 2

    def test_with_scale(self):
        assert WorkloadParams().with_scale(2.0).scale == 2.0

    def test_program_factory_ignores_seed(self):
        spec = get_workload("lu")
        factory = spec.program_factory(TINY)
        a = run_program(factory(1), seed=7)
        b = run_program(factory(999), seed=7)
        assert [e.key() for e in a.events] == [e.key() for e in b.events]
