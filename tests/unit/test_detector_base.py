"""Unit tests for the detector base types and the errors module."""

import pytest

from repro.common.errors import (
    ConfigError,
    CordError,
    DeadlockError,
    LogFormatError,
    ReplayDivergenceError,
    SimulationError,
)
from repro.detectors.base import (
    DataRace,
    DetectionOutcome,
    default_thread_to_processor,
)


class TestErrorHierarchy:
    def test_all_derive_from_cord_error(self):
        for cls in (
            ConfigError,
            DeadlockError,
            LogFormatError,
            ReplayDivergenceError,
            SimulationError,
        ):
            assert issubclass(cls, CordError)

    def test_config_error_is_value_error(self):
        assert issubclass(ConfigError, ValueError)

    def test_deadlock_error_carries_threads(self):
        error = DeadlockError([1, 3])
        assert error.blocked_threads == (1, 3)
        assert "1" in str(error)

    def test_replay_divergence_message(self):
        error = ReplayDivergenceError(2, "short by 5")
        assert error.thread_id == 2
        assert "thread 2" in str(error)
        assert "short by 5" in str(error)


class TestDetectionOutcome:
    def test_empty_outcome(self):
        outcome = DetectionOutcome("x")
        assert outcome.raw_count == 0
        assert not outcome.problem_detected

    def test_record_race_flags_access(self):
        outcome = DetectionOutcome("x")
        outcome.record_race(DataRace((1, 5), 0x100))
        outcome.record_race(DataRace((1, 5), 0x104))  # same access again
        assert outcome.raw_count == 1
        assert outcome.problem_detected
        assert len(outcome.races) == 2  # records kept, access deduped

    def test_race_record_cap(self):
        from repro.detectors.base import MAX_RACE_RECORDS

        outcome = DetectionOutcome("x")
        for i in range(MAX_RACE_RECORDS + 10):
            outcome.record_race(DataRace((0, i), 0x100))
        assert len(outcome.races) == MAX_RACE_RECORDS
        assert outcome.raw_count == MAX_RACE_RECORDS + 10


class TestThreadToProcessor:
    def test_identity_for_paper_config(self):
        assert default_thread_to_processor(4, 4) == [0, 1, 2, 3]

    def test_modulo_for_overcommit(self):
        assert default_thread_to_processor(6, 4) == [0, 1, 2, 3, 0, 1]
