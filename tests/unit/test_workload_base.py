"""Unit tests for the workload building blocks."""

import pytest

from repro.common.errors import ConfigError
from repro.program import AddressSpace, Program
from repro.program.ops import ComputeOp, LockOp, ReadOp, UnlockOp, WriteOp
from repro.sync import Mutex
from repro.workloads.base import (
    WorkloadParams,
    WorkloadSpec,
    compute,
    locked_rmw,
    locked_update_block,
    pattern_rng,
    pop_task,
    private_sweep,
    read_block,
    write_block,
)


def drain(gen, replies=None):
    replies = iter(replies or [])
    ops = []
    try:
        op = next(gen)
        while True:
            ops.append(op)
            value = next(replies, 0) if isinstance(op, ReadOp) else None
            op = gen.send(value)
    except StopIteration as stop:
        return ops, stop.value


class TestHelpers:
    def setup_method(self):
        self.space = AddressSpace()
        self.mutex = Mutex.allocate(self.space, "m")
        self.words = self.space.alloc_array("arr", 32)

    def test_compute_zero_is_empty(self):
        ops, _ = drain(compute(0))
        assert ops == []
        ops, _ = drain(compute(3))
        assert ops == [ComputeOp(3)]

    def test_read_write_blocks(self):
        ops, _ = drain(read_block(self.words[:3]))
        assert ops == [ReadOp(a) for a in self.words[:3]]
        ops, _ = drain(write_block(self.words[:2], 9))
        assert ops == [WriteOp(a, 9) for a in self.words[:2]]

    def test_locked_rmw_shape(self):
        ops, _ = drain(locked_rmw(self.mutex, self.words[0]), [4])
        assert [type(op) for op in ops] == [
            LockOp, ReadOp, WriteOp, UnlockOp,
        ]
        assert ops[2].value == 5

    def test_locked_update_block_covers_all_words(self):
        ops, _ = drain(
            locked_update_block(self.mutex, self.words[:3]), [0, 0, 0]
        )
        written = [op.address for op in ops if isinstance(op, WriteOp)]
        assert written == self.words[:3]

    def test_pop_task_claims_and_bumps(self):
        ops, claimed = drain(
            pop_task(self.mutex, self.words[0], limit=10), [4]
        )
        assert claimed == 4
        bumps = [op for op in ops if isinstance(op, WriteOp)]
        assert bumps[0].value == 5

    def test_pop_task_exhausted(self):
        ops, claimed = drain(
            pop_task(self.mutex, self.words[0], limit=10), [10]
        )
        assert claimed is None
        # No bump once exhausted.
        assert not [op for op in ops if isinstance(op, WriteOp)]

    def test_private_sweep_strides_and_wraps(self):
        ops, cursor = drain(
            private_sweep(self.words, cursor=0, count=3, stride=5)
        )
        reads = [op.address for op in ops if isinstance(op, ReadOp)]
        assert reads == [self.words[0], self.words[5], self.words[10]]
        assert cursor == 15
        # Wraps modulo the array length.
        ops, cursor = drain(
            private_sweep(self.words, cursor=30, count=2, stride=5)
        )
        reads = [op.address for op in ops if isinstance(op, ReadOp)]
        assert reads == [self.words[30], self.words[3]]


class TestParamsAndSpec:
    def test_pattern_rng_is_per_thread_deterministic(self):
        params = WorkloadParams()
        a = pattern_rng(params, "app", 0)
        b = pattern_rng(params, "app", 0)
        c = pattern_rng(params, "app", 1)
        seq_a = [a.randint(0, 100) for _ in range(5)]
        assert seq_a == [b.randint(0, 100) for _ in range(5)]
        assert seq_a != [c.randint(0, 100) for _ in range(5)]

    def test_pattern_seed_changes_streams(self):
        a = pattern_rng(WorkloadParams(), "app", 0)
        b = pattern_rng(WorkloadParams(pattern_seed=1), "app", 0)
        assert [a.randint(0, 10**9) for _ in range(3)] != [
            b.randint(0, 10**9) for _ in range(3)
        ]

    def test_spec_program_factory(self):
        def build(params):
            space = AddressSpace()

            def body(tid):
                yield ReadOp(0x100000)

            return Program([body, body], space)

        spec = WorkloadSpec("x", "input", "desc", build)
        factory = spec.program_factory()
        program = factory(123)
        assert program.n_threads == 2
