"""Unit tests for sync objects and the primitive lowering library."""

import pytest

from repro.program import AddressSpace
from repro.program.ops import (
    FlagSetOp,
    FlagWaitOp,
    LockOp,
    ReadOp,
    UnlockOp,
    WriteOp,
)
from repro.sync import (
    Barrier,
    Flag,
    Mutex,
    acquire,
    barrier_wait,
    critical_increment,
    flag_set,
    flag_wait,
    release,
)


def drain(gen, replies=None):
    """Run a generator collecting yielded ops, feeding canned read values."""
    replies = iter(replies or [])
    ops = []
    try:
        op = next(gen)
        while True:
            ops.append(op)
            value = next(replies, 0) if isinstance(op, ReadOp) else None
            op = gen.send(value)
    except StopIteration:
        return ops


class TestObjects:
    def test_mutex_and_flag_live_in_sync_segment(self):
        space = AddressSpace()
        mutex = Mutex.allocate(space, "m")
        flag = Flag.allocate(space, "f")
        assert space.is_sync_address(mutex.address)
        assert space.is_sync_address(flag.address)

    def test_barrier_composition(self):
        space = AddressSpace()
        barrier = Barrier.allocate(space, 4, "b")
        assert space.is_sync_address(barrier.mutex.address)
        assert space.is_sync_address(barrier.flag.address)
        # Count and episode are ordinary data words (injectable races).
        assert not space.is_sync_address(barrier.count_address)
        assert not space.is_sync_address(barrier.episode_address)
        assert barrier.n_threads == 4

    def test_barrier_needs_threads(self):
        with pytest.raises(ValueError):
            Barrier.allocate(AddressSpace(), 0)


class TestLowering:
    def setup_method(self):
        self.space = AddressSpace()
        self.mutex = Mutex.allocate(self.space, "m")
        self.flag = Flag.allocate(self.space, "f")

    def test_acquire_release(self):
        assert drain(acquire(self.mutex)) == [LockOp(self.mutex.address)]
        assert drain(release(self.mutex)) == [UnlockOp(self.mutex.address)]

    def test_flag_helpers(self):
        assert drain(flag_wait(self.flag, 3)) == [
            FlagWaitOp(self.flag.address, 3)
        ]
        assert drain(flag_set(self.flag, 5)) == [
            FlagSetOp(self.flag.address, 5)
        ]

    def test_critical_increment_shape(self):
        word = self.space.alloc("w")
        ops = drain(critical_increment(self.mutex, word), replies=[7])
        assert ops == [
            LockOp(self.mutex.address),
            ReadOp(word),
            WriteOp(word, 8),
            UnlockOp(self.mutex.address),
        ]


class TestBarrierLowering:
    def setup_method(self):
        self.space = AddressSpace()
        self.barrier = Barrier.allocate(self.space, 2, "b")

    def test_non_last_arriver_waits(self):
        # Arrival count goes 0 -> 1 (< 2): unlock then wait for episode 1.
        ops = drain(barrier_wait(self.barrier), replies=[0, 0])
        kinds = [type(op) for op in ops]
        assert kinds == [
            LockOp, ReadOp, WriteOp, ReadOp, UnlockOp, FlagWaitOp,
        ]
        assert ops[-1] == FlagWaitOp(self.barrier.flag.address, 1)

    def test_last_arriver_releases(self):
        # Arrival count goes 1 -> 2 (== 2): reset, bump episode, set flag.
        ops = drain(barrier_wait(self.barrier), replies=[1, 0])
        kinds = [type(op) for op in ops]
        assert kinds == [
            LockOp, ReadOp, WriteOp, WriteOp, ReadOp, WriteOp,
            UnlockOp, FlagSetOp,
        ]
        assert ops[-1] == FlagSetOp(self.barrier.flag.address, 1)

    def test_episode_numbers_advance(self):
        # A later episode's releaser sets the flag to episode+1.
        ops = drain(barrier_wait(self.barrier), replies=[1, 4])
        assert ops[-1] == FlagSetOp(self.barrier.flag.address, 5)
