"""Unit tests for the 16-bit sliding-window comparator (Section 2.7.5)."""

import pytest

from repro.clocks.window import (
    DEFAULT_WINDOW,
    SlidingWindowComparator,
    WINDOW_CLOCK_BITS,
)
from repro.cachesim.cache import CacheGeometry, MetadataCache
from repro.common.errors import ConfigError
from repro.meta.linemeta import LineMeta
from repro.meta.linestore import ScalarLineStore
from repro.meta.memts import MainMemoryTimestamps
from repro.meta.walker import CacheWalker


class TestSlidingWindowComparator:
    def setup_method(self):
        self.cmp = SlidingWindowComparator()

    def test_paper_parameters(self):
        assert WINDOW_CLOCK_BITS == 16
        assert DEFAULT_WINDOW == (1 << 15) - 1
        assert self.cmp.window == DEFAULT_WINDOW

    def test_plain_comparisons(self):
        assert self.cmp.greater(10, 5)
        assert not self.cmp.greater(5, 10)
        assert self.cmp.greater_equal(5, 5)

    def test_wraparound_comparison(self):
        # 65540 truncates to 4, 65530 truncates to 65530; the windowed
        # comparator must still see 65540 as ahead.
        assert self.cmp.greater(65540, 65530)
        assert not self.cmp.greater(65530, 65540)

    def test_signed_delta_range(self):
        delta = self.cmp.signed_delta(0, 1)
        assert delta == -1
        assert -self.cmp.half <= delta < self.cmp.half

    def test_synchronized_after_wraps(self):
        # clock = ts + D across the wrap boundary.
        ts = (1 << 16) - 5
        clock = ts + 16
        assert self.cmp.synchronized_after(clock, ts, 16)
        assert not self.cmp.synchronized_after(clock, ts, 17)

    def test_agrees_with_unbounded_within_window(self):
        pairs = [
            (100, 50),
            (50, 100),
            (70000, 70001),
            (131000, 131000 + DEFAULT_WINDOW),
            (131000 + DEFAULT_WINDOW, 131000),
        ]
        for a, b in pairs:
            assert self.cmp.within_window(a, b)
            assert self.cmp.greater(a, b) == (a > b), (a, b)
            assert self.cmp.greater_equal(a, b) == (a >= b), (a, b)

    def test_outside_window_detected(self):
        assert not self.cmp.within_window(0, DEFAULT_WINDOW + 1)

    def test_truncate(self):
        assert self.cmp.truncate(1 << 16) == 0
        assert self.cmp.truncate((1 << 16) + 7) == 7

    def test_rejects_tiny_width(self):
        with pytest.raises(ConfigError):
            SlidingWindowComparator(bits=1)

    def test_custom_width(self):
        small = SlidingWindowComparator(bits=8)
        assert small.window == 127
        assert small.greater(260, 250)  # 4 vs 250 under mod 256


class TestWraparoundBoundaries:
    """Exact behavior at the edges of the sliding window.

    The window invariant promises exact comparison only while live values
    stay within ``2^15 - 1`` of each other; these tests pin the boundary
    itself -- the last distance that compares exactly, the first that
    flips sign -- plus an exhaustive small-width proof.
    """

    def setup_method(self):
        self.cmp = SlidingWindowComparator()

    def test_delta_at_window_edge(self):
        b = (1 << 16) - 3  # straddle the wrap point
        assert self.cmp.signed_delta(b + DEFAULT_WINDOW, b) == DEFAULT_WINDOW
        assert self.cmp.signed_delta(b - DEFAULT_WINDOW, b) == -DEFAULT_WINDOW
        # One past the window: the sign flips (serial-number ambiguity).
        assert self.cmp.signed_delta(b + DEFAULT_WINDOW + 1, b) < 0

    def test_half_distance_is_negative(self):
        # Exactly half the modulus is the one truly ambiguous distance;
        # the comparator deterministically maps it to -half in *both*
        # directions, so neither value ever counts as ahead.
        assert self.cmp.signed_delta(self.cmp.half, 0) == -self.cmp.half
        assert self.cmp.signed_delta(0, self.cmp.half) == -self.cmp.half
        assert not self.cmp.greater(self.cmp.half, 0)
        assert not self.cmp.greater(0, self.cmp.half)

    def test_agreement_across_wrap_at_boundary(self):
        # Unbounded values on both sides of a 2^16 multiple, at the
        # extreme in-window distance.
        for base in (1 << 16, 3 << 16):
            a = base + 10
            b = a - DEFAULT_WINDOW
            assert self.cmp.within_window(a, b)
            assert self.cmp.greater(a, b)
            assert not self.cmp.greater(b, a)
            assert self.cmp.greater_equal(a, a)

    def test_synchronized_after_truncated_inputs(self):
        # Hardware registers hold already-truncated values; the DRD test
        # clk >= ts + D must still see through the wrap.
        ts_hw = (1 << 16) - 2          # truncated timestamp near the top
        clk_hw = 14                     # truncated clock past the wrap
        assert self.cmp.synchronized_after(clk_hw, ts_hw, 16)
        assert not self.cmp.synchronized_after(clk_hw, ts_hw, 17)

    def test_exhaustive_small_width(self):
        # At 5 bits the whole value space is enumerable: windowed
        # comparison must agree with unbounded comparison for *every*
        # pair of unbounded values within the window.
        cmp5 = SlidingWindowComparator(bits=5)
        for a in range(0, 3 * cmp5.modulus):
            lo = max(0, a - cmp5.window)
            for b in range(lo, a + cmp5.window + 1):
                assert cmp5.greater(a, b) == (a > b), (a, b)
                assert cmp5.greater_equal(a, b) == (a >= b), (a, b)


class TestWalkerWindowBoundaries:
    """Walker-triggered boundary cases for both metadata backends.

    The walker is what keeps the window invariant true: after a walk at
    ``max_clock``, every surviving timestamp is within ``stale_lag`` of
    it, so windowed comparison stays exact whenever
    ``stale_lag <= window``.  Cases cover the retirement threshold
    itself and the headroom guarantee, on the object (LineMeta) walker
    and the array-backed (ScalarLineStore) walker alike.
    """

    def make_object_walker(self, stale_lag=100):
        cache = MetadataCache(CacheGeometry.infinite(), lambda: LineMeta(2))
        memts = MainMemoryTimestamps()
        walker = CacheWalker(cache, memts, stale_lag=stale_lag, period=10)
        return cache, memts, walker

    def make_store_walker(self, stale_lag=100):
        store = ScalarLineStore(entries_per_line=2, words_per_line=16)
        cache = MetadataCache(CacheGeometry.infinite(), store.alloc)
        memts = MainMemoryTimestamps()
        walker = CacheWalker(
            cache, memts, stale_lag=stale_lag, period=10, store=store
        )
        return store, cache, memts, walker

    def test_threshold_is_exclusive_object_path(self):
        # threshold = max_clock - stale_lag; ts == threshold survives,
        # ts == threshold - 1 retires.
        cache, memts, walker = self.make_object_walker(stale_lag=100)
        meta, _ = cache.access(0)
        meta.record_access(900, 0, True)    # == threshold: kept
        meta.record_access(899, 1, False)   # one below: retired
        walker.walk(max_clock=1000)
        assert [e.ts for e in meta.entries] == [900]
        assert walker.entries_retired == 1
        assert walker.min_resident_ts == 900
        assert memts.read_ts == 899

    def test_threshold_is_exclusive_store_path(self):
        store, cache, memts, walker = self.make_store_walker(stale_lag=100)
        slot, _ = cache.access(0)
        store.record_access(slot, 899, 1, False)
        store.record_access(slot, 900, 0, True)
        walker.walk(max_clock=1000)
        assert [ts for ts, _r, _w in store.entries(slot)] == [900]
        assert walker.entries_retired == 1
        assert walker.min_resident_ts == 900
        assert memts.read_ts == 899

    def test_store_path_drops_fully_stale_lines(self):
        store, cache, memts, walker = self.make_store_walker(stale_lag=100)
        slot, _ = cache.access(0)
        store.record_access(slot, 5, 0, True)
        live_slot, _ = cache.access(64)
        store.record_access(live_slot, 950, 0, True)
        walker.walk(max_clock=1000)
        assert cache.peek(0) is None
        assert cache.peek(64) == live_slot
        assert memts.write_ts == 5
        # The freed slot is recycled by the next fill.
        assert store.alloc() == slot

    def test_store_path_retirement_revokes_filters(self):
        store, cache, _memts, walker = self.make_store_walker(stale_lag=100)
        slot, _ = cache.access(0)
        store.record_access(slot, 5, 0, True)
        store.record_access(slot, 950, 1, True)
        store.grant_filter(slot, True, clock=950)
        walker.walk(max_clock=1000)
        assert not store.filter_allows(slot, True, clock=950)
        assert not store.filter_allows(slot, False, clock=950)

    def test_min_resident_none_when_all_retired(self):
        store, cache, _memts, walker = self.make_store_walker(stale_lag=100)
        slot, _ = cache.access(0)
        store.record_access(slot, 1, 0, True)
        walker.walk(max_clock=1000)
        assert walker.min_resident_ts is None
        assert walker.window_headroom(1000, DEFAULT_WINDOW) is None

    @pytest.mark.parametrize("make", ["object", "store"])
    def test_walk_restores_window_invariant(self, make):
        # Timestamps spread wider than the window; after a walk at
        # max_clock, every survivor is within stale_lag -- and therefore
        # within the window -- of the clock, and headroom is at least
        # window - stale_lag.
        stale_lag = 1 << 13
        cmp16 = SlidingWindowComparator()
        max_clock = (1 << 16) + 500  # clocks have wrapped once
        stamps = [
            max_clock - DEFAULT_WINDOW - 5,  # outside: must retire
            max_clock - stale_lag - 1,       # just past the lag: retires
            max_clock - stale_lag,           # exactly at the lag: kept
            max_clock - 3,
        ]
        if make == "object":
            cache, _memts, walker = self.make_object_walker(stale_lag)
            for i, ts in enumerate(stamps):
                meta, _ = cache.access(64 * i)
                meta.record_access(ts, 0, True)
            walker.walk(max_clock=max_clock)
            survivors = [
                e.ts
                for meta in cache.lines().values()
                for e in meta.entries
            ]
        else:
            store, cache, _memts, walker = self.make_store_walker(stale_lag)
            for i, ts in enumerate(stamps):
                slot, _ = cache.access(64 * i)
                store.record_access(slot, ts, 0, True)
            walker.walk(max_clock=max_clock)
            survivors = [
                ts
                for slot in cache.lines().values()
                for ts, _r, _w in store.entries(slot)
            ]
        assert sorted(survivors) == sorted(stamps[2:])
        assert walker.entries_retired == 2
        for ts in survivors:
            assert cmp16.within_window(max_clock, ts)
            assert cmp16.greater_equal(max_clock, ts)
        headroom = walker.window_headroom(max_clock, DEFAULT_WINDOW)
        assert headroom is not None
        assert headroom >= DEFAULT_WINDOW - stale_lag > 0
