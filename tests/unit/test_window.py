"""Unit tests for the 16-bit sliding-window comparator (Section 2.7.5)."""

import pytest

from repro.clocks.window import (
    DEFAULT_WINDOW,
    SlidingWindowComparator,
    WINDOW_CLOCK_BITS,
)
from repro.common.errors import ConfigError


class TestSlidingWindowComparator:
    def setup_method(self):
        self.cmp = SlidingWindowComparator()

    def test_paper_parameters(self):
        assert WINDOW_CLOCK_BITS == 16
        assert DEFAULT_WINDOW == (1 << 15) - 1
        assert self.cmp.window == DEFAULT_WINDOW

    def test_plain_comparisons(self):
        assert self.cmp.greater(10, 5)
        assert not self.cmp.greater(5, 10)
        assert self.cmp.greater_equal(5, 5)

    def test_wraparound_comparison(self):
        # 65540 truncates to 4, 65530 truncates to 65530; the windowed
        # comparator must still see 65540 as ahead.
        assert self.cmp.greater(65540, 65530)
        assert not self.cmp.greater(65530, 65540)

    def test_signed_delta_range(self):
        delta = self.cmp.signed_delta(0, 1)
        assert delta == -1
        assert -self.cmp.half <= delta < self.cmp.half

    def test_synchronized_after_wraps(self):
        # clock = ts + D across the wrap boundary.
        ts = (1 << 16) - 5
        clock = ts + 16
        assert self.cmp.synchronized_after(clock, ts, 16)
        assert not self.cmp.synchronized_after(clock, ts, 17)

    def test_agrees_with_unbounded_within_window(self):
        pairs = [
            (100, 50),
            (50, 100),
            (70000, 70001),
            (131000, 131000 + DEFAULT_WINDOW),
            (131000 + DEFAULT_WINDOW, 131000),
        ]
        for a, b in pairs:
            assert self.cmp.within_window(a, b)
            assert self.cmp.greater(a, b) == (a > b), (a, b)
            assert self.cmp.greater_equal(a, b) == (a >= b), (a, b)

    def test_outside_window_detected(self):
        assert not self.cmp.within_window(0, DEFAULT_WINDOW + 1)

    def test_truncate(self):
        assert self.cmp.truncate(1 << 16) == 0
        assert self.cmp.truncate((1 << 16) + 7) == 7

    def test_rejects_tiny_width(self):
        with pytest.raises(ConfigError):
            SlidingWindowComparator(bits=1)

    def test_custom_width(self):
        small = SlidingWindowComparator(bits=8)
        assert small.window == 127
        assert small.greater(260, 250)  # 4 vs 250 under mod 256
