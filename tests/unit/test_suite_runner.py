"""Unit tests for the experiment suite's fan-out and result cache.

The contract under test: ``jobs`` and ``cache_dir`` change *where* and
*whether* a campaign computes, never *what* it computes -- results are
bit-identical across serial, pooled, and cache-hit paths.
"""

import os
import pickle
import subprocess
import sys
import time

import pytest

from repro.common.errors import InterruptedRunError
from repro.experiments.runner import (
    Suite,
    SuiteConfig,
    default_cache_dir,
    default_jobs,
)
from repro.resilience import faults
from repro.resilience.journal import WAL_SUFFIX, replay
from repro.workloads import WorkloadParams

# Two small apps keep the pooled path (len(pending) > 1) exercised while
# staying unit-test fast.
_CONFIG = SuiteConfig(
    runs_per_app=2,
    workloads=("fft", "lu"),
    params=WorkloadParams(scale=0.25),
)


def _digest(suite):
    out = {}
    for name, campaign in suite.campaigns().items():
        out[name] = [
            (
                run.seed,
                run.target_index,
                run.hung,
                run.n_events,
                tuple(sorted(run.flagged.items())),
                tuple(sorted(run.problem.items())),
            )
            for run in campaign.runs
        ]
    return out


class TestEnvDefaults:
    def test_default_jobs(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert default_jobs() == 1
        monkeypatch.setenv("REPRO_JOBS", "6")
        assert default_jobs() == 6
        monkeypatch.setenv("REPRO_JOBS", "0")
        assert default_jobs() == 1  # clamped to serial
        monkeypatch.setenv("REPRO_JOBS", "not-a-number")
        assert default_jobs() == 1  # malformed: fall back, don't crash

    def test_default_cache_dir(self, monkeypatch, tmp_path):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        assert default_cache_dir() is None
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        assert default_cache_dir() == tmp_path


class TestParallelFanOut:
    def test_pool_matches_serial(self):
        serial = _digest(Suite(_CONFIG, jobs=1))
        pooled = _digest(Suite(_CONFIG, jobs=2))
        assert serial == pooled

    def test_single_campaign_stays_in_process(self):
        # One pending campaign must not pay pool startup.
        config = SuiteConfig(
            runs_per_app=2,
            workloads=("fft",),
            params=WorkloadParams(scale=0.25),
        )
        suite = Suite(config, jobs=4)
        assert _digest(suite) == _digest(Suite(config, jobs=1))

    def test_campaign_memoized_in_process(self):
        suite = Suite(_CONFIG, jobs=1)
        assert suite.campaign("fft") is suite.campaign("fft")


class TestDiskCache:
    def test_cold_then_warm(self, tmp_path):
        cold = Suite(_CONFIG, jobs=1, cache_dir=tmp_path)
        baseline = _digest(cold)
        files = sorted(p.name for p in tmp_path.iterdir() if p.is_file())
        assert len(files) == 2
        assert all(name.startswith("campaign-") for name in files)
        # Recorded traces live in their own subdirectory of the cache.
        assert (tmp_path / "traces").is_dir()
        assert any((tmp_path / "traces").iterdir())

        # A warm suite must load results instead of recomputing: poison
        # the compute path and verify it is never reached.
        warm = Suite(_CONFIG, jobs=1, cache_dir=tmp_path)
        import repro.experiments.runner as runner_mod

        def explode(task):
            raise AssertionError("cache miss recomputed %r" % (task,))

        original = runner_mod._run_campaign_task
        runner_mod._run_campaign_task = explode
        try:
            assert _digest(warm) == baseline
        finally:
            runner_mod._run_campaign_task = original

    def test_key_tracks_config(self, tmp_path):
        a = Suite(_CONFIG, jobs=1, cache_dir=tmp_path)
        b = Suite(
            SuiteConfig(
                runs_per_app=3,  # differs
                workloads=_CONFIG.workloads,
                params=_CONFIG.params,
            ),
            jobs=1,
            cache_dir=tmp_path,
        )
        assert a._cache_path("fft") != b._cache_path("fft")

    def test_corrupt_entry_recomputes(self, tmp_path):
        suite = Suite(_CONFIG, jobs=1, cache_dir=tmp_path)
        path = suite._cache_path("fft")
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_bytes(b"not a pickle")
        assert _digest(suite)  # recomputes rather than raising

    def test_wrong_payload_type_recomputes(self, tmp_path):
        suite = Suite(_CONFIG, jobs=1, cache_dir=tmp_path)
        path = suite._cache_path("fft")
        path.parent.mkdir(parents=True, exist_ok=True)
        with path.open("wb") as fh:
            pickle.dump({"not": "a CampaignResult"}, fh)
        assert suite._cache_load("fft") is None

    def test_no_cache_dir_writes_nothing(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        monkeypatch.chdir(tmp_path)
        suite = Suite(_CONFIG, jobs=1)
        suite.campaign("fft")
        assert list(tmp_path.iterdir()) == []


class TestResilientFanOut:
    """Retries and serial fallback change *where* a campaign computes,
    never what lands in memory or in the on-disk cache."""

    @pytest.fixture(autouse=True)
    def _fault_hygiene(self, monkeypatch):
        monkeypatch.delenv("REPRO_FAULTS", raising=False)
        monkeypatch.delenv("REPRO_MAX_RETRIES", raising=False)
        faults.reset()
        yield
        faults.reset()

    def _cache_bytes(self, cache_dir):
        return {
            p.name: p.read_bytes()
            for p in cache_dir.iterdir()
            if p.is_file()
        }

    def test_retried_run_leaves_identical_state(self, tmp_path,
                                                monkeypatch):
        clean_dir = tmp_path / "clean"
        clean = _digest(Suite(_CONFIG, jobs=2, cache_dir=clean_dir))

        monkeypatch.setenv("REPRO_FAULTS", "worker_kill:1")
        faults.arm()
        faulted_dir = tmp_path / "faulted"
        suite = Suite(_CONFIG, jobs=2, cache_dir=faulted_dir)
        assert _digest(suite) == clean
        assert suite.last_report.degraded
        # The cache written under retry is byte-identical to the one a
        # fault-free run writes.
        assert self._cache_bytes(faulted_dir) == self._cache_bytes(
            clean_dir
        )

    def test_serial_fallback_keeps_order_and_cache(self, tmp_path,
                                                   monkeypatch):
        baseline = _digest(Suite(_CONFIG, jobs=1))

        # Kill every pool attempt with no retries: both tasks must land
        # on the in-process serial rung.
        monkeypatch.setenv("REPRO_FAULTS", "worker_kill:99")
        monkeypatch.setenv("REPRO_MAX_RETRIES", "0")
        faults.arm()
        suite = Suite(_CONFIG, jobs=2, cache_dir=tmp_path)
        digest = _digest(suite)
        assert digest == baseline
        report = suite.last_report
        assert report.ok and report.degraded
        # Under the run-level scheduler the outcomes are stage tasks
        # (one per sizing/record/analyze step), not one per workload --
        # but every one of them must have landed on the serial rung.
        assert len(report.outcomes) >= 2
        assert {out.path for out in report.outcomes} == {"serial"}
        # Results memoize and render in canonical workload order, not
        # completion or fallback order.
        assert list(suite.campaigns().keys()) == ["fft", "lu"]
        # And the serial-fallback results were cached: a warm suite
        # serves them without recomputing.
        faults.arm("")
        warm = Suite(_CONFIG, jobs=1, cache_dir=tmp_path)
        import repro.experiments.runner as runner_mod

        def explode(task):
            raise AssertionError("cache miss recomputed %r" % (task,))

        monkeypatch.setattr(runner_mod, "_run_campaign_task", explode)
        assert _digest(warm) == baseline

    def test_corrupt_cache_entry_is_counted_and_quarantined(
        self, tmp_path
    ):
        suite = Suite(_CONFIG, jobs=1, cache_dir=tmp_path)
        path = suite._cache_path("fft")
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_bytes(b"not a framed pickle")
        assert _digest(suite)  # recomputes
        assert suite.warnings["corrupt"] == 1
        qdir = tmp_path / "quarantine"
        assert (qdir / path.name).exists()
        assert (qdir / (path.name + ".reason.txt")).exists()


class TestCheckpointedSuite:
    """Crash consistency of the suite itself: with a cache directory the
    fan-out is journaled, a shutdown request drains it to a resumable
    :class:`InterruptedRunError`, and the resumed run leaves state
    byte-identical to an uninterrupted one."""

    @pytest.fixture(autouse=True)
    def _fault_hygiene(self, monkeypatch):
        for var in ("REPRO_FAULTS", "REPRO_MAX_RETRIES",
                    "REPRO_QUARANTINE_KEEP", "REPRO_JOURNAL_KEEP"):
            monkeypatch.delenv(var, raising=False)
        monkeypatch.setenv("REPRO_FSYNC", "0")  # test-speed writes
        faults.reset()
        yield
        faults.reset()

    def _cache_bytes(self, cache_dir):
        return {
            p.name: p.read_bytes()
            for p in cache_dir.iterdir()
            if p.is_file()
        }

    def test_clean_checkpointed_run_seals_journal(self, tmp_path):
        suite = Suite(_CONFIG, jobs=2, cache_dir=tmp_path)
        suite.campaigns()
        jdir = tmp_path / "journal"
        done = [p for p in jdir.iterdir() if p.name.endswith(".done")]
        assert len(done) == 1
        state = replay(done[0])
        assert state.finished
        assert state.task("fft").committed
        assert state.task("lu").committed

    def test_single_campaign_routes_through_checkpointed_runner(
        self, tmp_path
    ):
        # Satellite contract: Suite.campaign() gets the same journaled,
        # accounted execution as campaigns() -- and writes the same
        # bytes a full-suite run would for that workload.
        full_dir = tmp_path / "full"
        Suite(_CONFIG, jobs=1, cache_dir=full_dir).campaigns()

        single_dir = tmp_path / "single"
        suite = Suite(_CONFIG, jobs=2, cache_dir=single_dir)
        suite.campaign("fft")
        assert suite.last_report is not None and suite.last_report.ok
        done = [
            p for p in (single_dir / "journal").iterdir()
            if p.name.endswith(".done")
        ]
        assert len(done) == 1
        assert replay(done[0]).task("fft").committed
        fft_name = suite._cache_path("fft").name
        assert (single_dir / fft_name).read_bytes() == (
            full_dir / fft_name
        ).read_bytes()

    def test_drain_interrupts_resumably_without_litter(
        self, tmp_path, monkeypatch
    ):
        clean_dir = tmp_path / "clean"
        baseline = _digest(Suite(_CONFIG, jobs=2, cache_dir=clean_dir))

        # Inject a graceful-shutdown request (SIGTERM's stand-in) at the
        # third journal transition -- while the suite is scheduling its
        # campaigns, before the pool computes anything.
        cache = tmp_path / "interrupted"
        monkeypatch.setenv("REPRO_FAULTS", "sigterm_drain:3")
        faults.arm()
        suite = Suite(_CONFIG, jobs=2, cache_dir=cache)
        with pytest.raises(InterruptedRunError) as excinfo:
            suite.campaigns()
        run_id = excinfo.value.run_id
        assert run_id is not None

        # The drain accounted for every task and left no torn state:
        # no temp files anywhere, and a replayable journal that shows
        # how far the run got.
        report = suite.last_report
        assert report.interrupted
        # Interrupted is its own status: not ok, but not failed either.
        assert not any(out.status == "failed" for out in report.outcomes)
        assert {out.status for out in report.outcomes} == {
            "interrupted"
        }
        assert list(cache.rglob("*.tmp.*")) == []
        wal = cache / "journal" / (run_id + WAL_SUFFIX)
        assert wal.exists()
        state = replay(wal)
        assert state.task("fft").scheduled
        assert not state.task("fft").committed

        # Resume: disarm, rerun over the same cache.  Results and cache
        # bytes match the uninterrupted run's, and the resume is
        # surfaced in the warnings counters.
        faults.arm("")
        resumed = Suite(_CONFIG, jobs=2, cache_dir=cache)
        assert _digest(resumed) == baseline
        assert resumed.warnings["resumed"] == 1
        assert self._cache_bytes(cache) == self._cache_bytes(clean_dir)
        done = cache / "journal" / (run_id + ".done")
        assert done.exists()
        assert replay(done).finished

    def test_drain_commits_finished_campaigns(self, tmp_path,
                                              monkeypatch):
        # Interrupt the *serial* checkpointed path (jobs=1) mid-run:
        # the first workload's transitions all complete, the drain hits
        # during the second's, and the committed first campaign must
        # survive for the resume to reuse.
        cache = tmp_path / "cache"
        monkeypatch.setenv("REPRO_FAULTS", "sigterm_drain:30")
        faults.arm()
        suite = Suite(_CONFIG, jobs=1, cache_dir=cache)
        with pytest.raises(InterruptedRunError) as excinfo:
            suite.campaigns()
        wal = cache / "journal" / (
            excinfo.value.run_id + WAL_SUFFIX
        )
        state = replay(wal)
        committed = [
            name for name, task in state.tasks.items() if task.committed
        ]
        assert committed  # at least the first workload got credit

        # The resumed run must not recompute committed campaigns.
        faults.arm("")
        resumed = Suite(_CONFIG, jobs=1, cache_dir=cache)
        import repro.experiments.runner as runner_mod

        calls = []
        original = runner_mod.run_campaign

        def counting(factory, name, *args, **kwargs):
            calls.append(name)
            return original(factory, name, *args, **kwargs)

        monkeypatch.setattr(runner_mod, "run_campaign", counting)
        assert _digest(resumed)
        assert set(calls).isdisjoint(committed)

    def test_startup_collects_tmp_litter(self, tmp_path):
        proc = subprocess.Popen([sys.executable, "-c", ""])
        proc.wait()
        litter = tmp_path / ("campaign-x.pkl.tmp.%d" % proc.pid)
        litter.parent.mkdir(parents=True, exist_ok=True)
        litter.write_bytes(b"half a write")
        suite = Suite(_CONFIG, jobs=1, cache_dir=tmp_path)
        suite.campaigns()
        assert not litter.exists()
        assert suite.warnings["tmp_pruned"] == 1

    def test_startup_prunes_quarantine(self, tmp_path, monkeypatch):
        qdir = tmp_path / "quarantine"
        qdir.mkdir(parents=True)
        now = time.time()
        for index in range(5):
            path = qdir / ("campaign-old-%d.pkl" % index)
            path.write_bytes(b"damaged")
            (qdir / (path.name + ".reason.txt")).write_text("why\n")
            os.utime(path, (now - 100 + index, now - 100 + index))
        monkeypatch.setenv("REPRO_QUARANTINE_KEEP", "2")
        suite = Suite(_CONFIG, jobs=1, cache_dir=tmp_path)
        suite.campaigns()
        assert suite.warnings["quarantine_pruned"] == 3
        survivors = [
            p for p in qdir.iterdir()
            if not p.name.endswith(".reason.txt")
        ]
        assert len(survivors) == 2


class TestPickleRoundTrip:
    def test_campaign_result_survives_pickle(self):
        campaign = Suite(_CONFIG, jobs=1).campaign("fft")
        clone = pickle.loads(pickle.dumps(campaign))
        assert clone.workload == campaign.workload
        assert clone.sync_instances == campaign.sync_instances
        assert [r.seed for r in clone.runs] == [
            r.seed for r in campaign.runs
        ]
        assert clone.manifestation_rate == campaign.manifestation_rate


@pytest.mark.parametrize("jobs", [1, 2])
def test_aggregates_independent_of_jobs(jobs):
    suite = Suite(_CONFIG, jobs=jobs)
    rate = suite.average_problem_rate("Cord", "Ideal")
    assert 0.0 <= rate <= 1.0
