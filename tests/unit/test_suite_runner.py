"""Unit tests for the experiment suite's fan-out and result cache.

The contract under test: ``jobs`` and ``cache_dir`` change *where* and
*whether* a campaign computes, never *what* it computes -- results are
bit-identical across serial, pooled, and cache-hit paths.
"""

import pickle

import pytest

from repro.experiments.runner import (
    Suite,
    SuiteConfig,
    default_cache_dir,
    default_jobs,
)
from repro.resilience import faults
from repro.workloads import WorkloadParams

# Two small apps keep the pooled path (len(pending) > 1) exercised while
# staying unit-test fast.
_CONFIG = SuiteConfig(
    runs_per_app=2,
    workloads=("fft", "lu"),
    params=WorkloadParams(scale=0.25),
)


def _digest(suite):
    out = {}
    for name, campaign in suite.campaigns().items():
        out[name] = [
            (
                run.seed,
                run.target_index,
                run.hung,
                run.n_events,
                tuple(sorted(run.flagged.items())),
                tuple(sorted(run.problem.items())),
            )
            for run in campaign.runs
        ]
    return out


class TestEnvDefaults:
    def test_default_jobs(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert default_jobs() == 1
        monkeypatch.setenv("REPRO_JOBS", "6")
        assert default_jobs() == 6
        monkeypatch.setenv("REPRO_JOBS", "0")
        assert default_jobs() == 1  # clamped to serial
        monkeypatch.setenv("REPRO_JOBS", "not-a-number")
        assert default_jobs() == 1  # malformed: fall back, don't crash

    def test_default_cache_dir(self, monkeypatch, tmp_path):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        assert default_cache_dir() is None
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        assert default_cache_dir() == tmp_path


class TestParallelFanOut:
    def test_pool_matches_serial(self):
        serial = _digest(Suite(_CONFIG, jobs=1))
        pooled = _digest(Suite(_CONFIG, jobs=2))
        assert serial == pooled

    def test_single_campaign_stays_in_process(self):
        # One pending campaign must not pay pool startup.
        config = SuiteConfig(
            runs_per_app=2,
            workloads=("fft",),
            params=WorkloadParams(scale=0.25),
        )
        suite = Suite(config, jobs=4)
        assert _digest(suite) == _digest(Suite(config, jobs=1))

    def test_campaign_memoized_in_process(self):
        suite = Suite(_CONFIG, jobs=1)
        assert suite.campaign("fft") is suite.campaign("fft")


class TestDiskCache:
    def test_cold_then_warm(self, tmp_path):
        cold = Suite(_CONFIG, jobs=1, cache_dir=tmp_path)
        baseline = _digest(cold)
        files = sorted(p.name for p in tmp_path.iterdir() if p.is_file())
        assert len(files) == 2
        assert all(name.startswith("campaign-") for name in files)
        # Recorded traces live in their own subdirectory of the cache.
        assert (tmp_path / "traces").is_dir()
        assert any((tmp_path / "traces").iterdir())

        # A warm suite must load results instead of recomputing: poison
        # the compute path and verify it is never reached.
        warm = Suite(_CONFIG, jobs=1, cache_dir=tmp_path)
        import repro.experiments.runner as runner_mod

        def explode(task):
            raise AssertionError("cache miss recomputed %r" % (task,))

        original = runner_mod._run_campaign_task
        runner_mod._run_campaign_task = explode
        try:
            assert _digest(warm) == baseline
        finally:
            runner_mod._run_campaign_task = original

    def test_key_tracks_config(self, tmp_path):
        a = Suite(_CONFIG, jobs=1, cache_dir=tmp_path)
        b = Suite(
            SuiteConfig(
                runs_per_app=3,  # differs
                workloads=_CONFIG.workloads,
                params=_CONFIG.params,
            ),
            jobs=1,
            cache_dir=tmp_path,
        )
        assert a._cache_path("fft") != b._cache_path("fft")

    def test_corrupt_entry_recomputes(self, tmp_path):
        suite = Suite(_CONFIG, jobs=1, cache_dir=tmp_path)
        path = suite._cache_path("fft")
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_bytes(b"not a pickle")
        assert _digest(suite)  # recomputes rather than raising

    def test_wrong_payload_type_recomputes(self, tmp_path):
        suite = Suite(_CONFIG, jobs=1, cache_dir=tmp_path)
        path = suite._cache_path("fft")
        path.parent.mkdir(parents=True, exist_ok=True)
        with path.open("wb") as fh:
            pickle.dump({"not": "a CampaignResult"}, fh)
        assert suite._cache_load("fft") is None

    def test_no_cache_dir_writes_nothing(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        monkeypatch.chdir(tmp_path)
        suite = Suite(_CONFIG, jobs=1)
        suite.campaign("fft")
        assert list(tmp_path.iterdir()) == []


class TestResilientFanOut:
    """Retries and serial fallback change *where* a campaign computes,
    never what lands in memory or in the on-disk cache."""

    @pytest.fixture(autouse=True)
    def _fault_hygiene(self, monkeypatch):
        monkeypatch.delenv("REPRO_FAULTS", raising=False)
        monkeypatch.delenv("REPRO_MAX_RETRIES", raising=False)
        faults.reset()
        yield
        faults.reset()

    def _cache_bytes(self, cache_dir):
        return {
            p.name: p.read_bytes()
            for p in cache_dir.iterdir()
            if p.is_file()
        }

    def test_retried_run_leaves_identical_state(self, tmp_path,
                                                monkeypatch):
        clean_dir = tmp_path / "clean"
        clean = _digest(Suite(_CONFIG, jobs=2, cache_dir=clean_dir))

        monkeypatch.setenv("REPRO_FAULTS", "worker_kill:1")
        faults.arm()
        faulted_dir = tmp_path / "faulted"
        suite = Suite(_CONFIG, jobs=2, cache_dir=faulted_dir)
        assert _digest(suite) == clean
        assert suite.last_report.degraded
        # The cache written under retry is byte-identical to the one a
        # fault-free run writes.
        assert self._cache_bytes(faulted_dir) == self._cache_bytes(
            clean_dir
        )

    def test_serial_fallback_keeps_order_and_cache(self, tmp_path,
                                                   monkeypatch):
        baseline = _digest(Suite(_CONFIG, jobs=1))

        # Kill every pool attempt with no retries: both tasks must land
        # on the in-process serial rung.
        monkeypatch.setenv("REPRO_FAULTS", "worker_kill:99")
        monkeypatch.setenv("REPRO_MAX_RETRIES", "0")
        faults.arm()
        suite = Suite(_CONFIG, jobs=2, cache_dir=tmp_path)
        digest = _digest(suite)
        assert digest == baseline
        report = suite.last_report
        assert report.ok and report.degraded
        assert [out.path for out in report.outcomes] == ["serial"] * 2
        # Results memoize and render in canonical workload order, not
        # completion or fallback order.
        assert list(suite.campaigns().keys()) == ["fft", "lu"]
        # And the serial-fallback results were cached: a warm suite
        # serves them without recomputing.
        faults.arm("")
        warm = Suite(_CONFIG, jobs=1, cache_dir=tmp_path)
        import repro.experiments.runner as runner_mod

        def explode(task):
            raise AssertionError("cache miss recomputed %r" % (task,))

        monkeypatch.setattr(runner_mod, "_run_campaign_task", explode)
        assert _digest(warm) == baseline

    def test_corrupt_cache_entry_is_counted_and_quarantined(
        self, tmp_path
    ):
        suite = Suite(_CONFIG, jobs=1, cache_dir=tmp_path)
        path = suite._cache_path("fft")
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_bytes(b"not a framed pickle")
        assert _digest(suite)  # recomputes
        assert suite.warnings["corrupt"] == 1
        qdir = tmp_path / "quarantine"
        assert (qdir / path.name).exists()
        assert (qdir / (path.name + ".reason.txt")).exists()


class TestPickleRoundTrip:
    def test_campaign_result_survives_pickle(self):
        campaign = Suite(_CONFIG, jobs=1).campaign("fft")
        clone = pickle.loads(pickle.dumps(campaign))
        assert clone.workload == campaign.workload
        assert clone.sync_instances == campaign.sync_instances
        assert [r.seed for r in clone.runs] == [
            r.seed for r in campaign.runs
        ]
        assert clone.manifestation_rate == campaign.manifestation_rate


@pytest.mark.parametrize("jobs", [1, 2])
def test_aggregates_independent_of_jobs(jobs):
    suite = Suite(_CONFIG, jobs=jobs)
    rate = suite.average_problem_rate("Cord", "Ideal")
    assert 0.0 <= rate <= 1.0
