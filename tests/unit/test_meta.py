"""Unit tests for CORD line metadata, memory timestamps, and the walker."""

import pytest

from repro.cachesim import CacheGeometry, MetadataCache
from repro.common.errors import ConfigError
from repro.meta import (
    CacheWalker,
    LineMeta,
    MainMemoryTimestamps,
    TimestampEntry,
)


class TestTimestampEntry:
    def test_record_and_covers(self):
        entry = TimestampEntry(5)
        entry.record(word=3, is_write=False)
        assert entry.covers(3, need_reads=True)  # write checks reads
        assert not entry.covers(3, need_reads=False)  # read skips reads
        entry.record(word=3, is_write=True)
        assert entry.covers(3, need_reads=False)

    def test_has_flags(self):
        entry = TimestampEntry(1)
        assert not entry.has_reads and not entry.has_writes
        entry.record(0, is_write=False)
        assert entry.has_reads


class TestLineMeta:
    def test_same_timestamp_reuses_entry(self):
        meta = LineMeta(2)
        assert meta.record_access(5, 0, True) is None
        assert meta.record_access(5, 1, False) is None
        assert len(meta.entries) == 1

    def test_new_timestamp_allocates(self):
        meta = LineMeta(2)
        meta.record_access(5, 0, True)
        meta.record_access(6, 0, True)
        assert [e.ts for e in meta.entries] == [6, 5]

    def test_third_timestamp_retires_oldest(self):
        # Figure 2's erased-history problem, bounded by two entries.
        meta = LineMeta(2)
        meta.record_access(5, 0, True)
        meta.record_access(6, 1, True)
        retired = meta.record_access(7, 2, True)
        assert retired is not None and retired.ts == 5
        assert [e.ts for e in meta.entries] == [7, 6]

    def test_single_entry_mode(self):
        meta = LineMeta(1)
        meta.record_access(5, 0, True)
        retired = meta.record_access(6, 0, True)
        assert retired.ts == 5

    def test_conflicting_timestamps_read_vs_write(self):
        meta = LineMeta(2)
        meta.record_access(5, 0, False)  # read of word 0
        meta.record_access(6, 0, True)   # write of word 0
        # A read conflicts only with the write history.
        assert list(meta.conflicting_timestamps(0, is_write=False)) == [6]
        # A write conflicts with both.
        assert sorted(meta.conflicting_timestamps(0, is_write=True)) == [
            5, 6,
        ]

    def test_conflicts_are_per_word(self):
        meta = LineMeta(2)
        meta.record_access(5, 0, True)
        assert list(meta.conflicting_timestamps(1, is_write=True)) == []

    def test_any_conflict_in_line(self):
        meta = LineMeta(2)
        meta.record_access(5, 3, False)
        assert not meta.any_conflict_in_line(is_write=False)
        assert meta.any_conflict_in_line(is_write=True)

    def test_check_filters(self):
        meta = LineMeta(2)
        meta.grant_filter(is_write=True)
        assert meta.filter_allows(True) and meta.filter_allows(False)
        meta.revoke_filters(remote_is_write=False)
        assert not meta.filter_allows(True)   # remote read kills writes
        assert meta.filter_allows(False)      # but reads stay allowed
        meta.revoke_filters(remote_is_write=True)
        assert not meta.filter_allows(False)

    def test_read_check_grants_only_read_filter(self):
        meta = LineMeta(2)
        meta.grant_filter(is_write=False)
        assert meta.filter_allows(False)
        assert not meta.filter_allows(True)

    def test_retire_all_clears_filters(self):
        meta = LineMeta(2)
        meta.record_access(5, 0, True)
        meta.grant_filter(True)
        retired = meta.retire_all()
        assert [e.ts for e in retired] == [5]
        assert meta.entries == []
        assert not meta.filter_allows(True)

    def test_filter_granted_at_a_clock_is_stale_at_another(self):
        # Regression: filter bits are only valid at the clock value the
        # clean check was performed at.  A filtered access skips the
        # memory-timestamp ordering comparison, so letting it ride a
        # filter granted at an older clock would skip an ordering the
        # paper's hardware (which flash-clears filters on clock change)
        # performs.
        meta = LineMeta(2)
        meta.grant_filter(is_write=True, clock=5)
        assert meta.filter_allows(True, clock=5)
        assert meta.filter_allows(False, clock=5)
        assert not meta.filter_allows(True, clock=6)
        assert not meta.filter_allows(False, clock=6)
        # Clock-less query still reports the raw bit (introspection).
        assert meta.filter_allows(True)

    def test_regrant_moves_the_filter_clock(self):
        meta = LineMeta(2)
        meta.grant_filter(is_write=True, clock=5)
        meta.grant_filter(is_write=False, clock=9)
        assert meta.filter_allows(False, clock=9)
        assert not meta.filter_allows(False, clock=5)

    def test_retire_all_clears_filter_clock(self):
        meta = LineMeta(2)
        meta.grant_filter(True, clock=3)
        meta.retire_all()
        meta.grant_filter(True)  # re-granted without a clock tag
        assert meta.filter_allows(True)
        assert not meta.filter_allows(True, clock=3)

    def test_needs_one_entry(self):
        with pytest.raises(ConfigError):
            LineMeta(0)


class TestMainMemoryTimestamps:
    def test_fold_write_entry(self):
        memts = MainMemoryTimestamps()
        entry = TimestampEntry(9)
        entry.record(0, is_write=True)
        assert memts.fold_entry(entry)
        assert memts.write_ts == 9
        assert memts.read_ts == 0
        assert memts.update_broadcasts == 1

    def test_fold_read_entry(self):
        memts = MainMemoryTimestamps()
        entry = TimestampEntry(4)
        entry.record(2, is_write=False)
        memts.fold_entry(entry)
        assert memts.read_ts == 4
        assert memts.write_ts == 0

    def test_fold_only_raises(self):
        memts = MainMemoryTimestamps()
        high = TimestampEntry(9)
        high.record(0, True)
        low = TimestampEntry(3)
        low.record(0, True)
        memts.fold_entry(high)
        assert not memts.fold_entry(low)
        assert memts.write_ts == 9
        assert memts.update_broadcasts == 1
        assert memts.folds == 2

    def test_conflicting_timestamp_by_mode(self):
        memts = MainMemoryTimestamps()
        memts.read_ts, memts.write_ts = 7, 5
        assert memts.conflicting_timestamp(is_write=False) == 5
        assert memts.conflicting_timestamp(is_write=True) == 7


class TestCacheWalker:
    def make(self):
        cache = MetadataCache(CacheGeometry.infinite(), lambda: LineMeta(2))
        memts = MainMemoryTimestamps()
        walker = CacheWalker(cache, memts, stale_lag=100, period=10)
        return cache, memts, walker

    def test_walk_evicts_stale(self):
        cache, memts, walker = self.make()
        meta, _ = cache.access(0)
        meta.record_access(5, 0, True)
        meta2, _ = cache.access(64)
        meta2.record_access(950, 0, True)
        walker.walk(max_clock=1000)
        assert cache.peek(0) is None  # stale line dropped entirely
        assert cache.peek(64) is not None
        assert memts.write_ts == 5
        assert walker.min_resident_ts == 950
        assert walker.entries_retired == 1

    def test_tick_period(self):
        _cache, _memts, walker = self.make()
        walked = [walker.tick(1000) for _ in range(25)]
        assert walked.count(True) == 2

    def test_window_headroom(self):
        cache, _memts, walker = self.make()
        meta, _ = cache.access(0)
        meta.record_access(950, 0, True)
        walker.walk(max_clock=1000)
        assert walker.window_headroom(1000, window=200) == 150
        assert walker.window_headroom(1200, window=200) == -50

    def test_headroom_none_when_empty(self):
        _cache, _memts, walker = self.make()
        walker.walk(max_clock=10)
        assert walker.window_headroom(10, 100) is None

    def test_partial_retirement_clears_filters(self):
        cache, _memts, walker = self.make()
        meta, _ = cache.access(0)
        meta.record_access(5, 0, True)
        meta.record_access(950, 1, True)
        meta.grant_filter(True)
        walker.walk(max_clock=1000)
        kept = cache.peek(0)
        assert kept is meta
        assert [e.ts for e in meta.entries] == [950]
        assert not meta.filter_allows(True)

    def test_config_validation(self):
        cache, memts, _ = self.make()
        with pytest.raises(ConfigError):
            CacheWalker(cache, memts, stale_lag=0)
        with pytest.raises(ConfigError):
            CacheWalker(cache, memts, period=0)
