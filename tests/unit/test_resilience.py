"""Unit tests for the resilience stack: faults, supervisor, guard, store.

The integration-level proof that the whole pipeline survives injected
faults lives in ``tests/integration/test_chaos_pipeline.py``; these
tests pin the individual mechanisms.
"""

import os
import pickle

import pytest

from repro.common.errors import (
    DegradedPathError,
    PipelineError,
    StoreCorruptError,
)
from repro.cord.config import CordConfig
from repro.cord.detector import CordDetector
from repro.detectors.base import Detector
from repro.detectors.registry import DetectorSpec
from repro.engine.executor import run_program
from repro.resilience import faults
from repro.resilience.guard import (
    GuardLog,
    compute_outcomes,
    verify_ladder_equivalence,
)
from repro.resilience.supervisor import Supervisor, run_supervised
from repro.trace.store import (
    PackedTraceStore,
    frame_payload,
    unframe_payload,
)

from tests.conftest import build_counter_program


@pytest.fixture(autouse=True)
def _fault_hygiene(monkeypatch):
    """Every test starts and ends with no faults armed."""
    monkeypatch.delenv("REPRO_FAULTS", raising=False)
    monkeypatch.delenv("REPRO_FAULT_STALL_SECONDS", raising=False)
    monkeypatch.delenv("REPRO_TASK_TIMEOUT", raising=False)
    monkeypatch.delenv("REPRO_MAX_RETRIES", raising=False)
    faults.reset()
    yield
    faults.reset()


# -- fault registry -----------------------------------------------------------


class TestFaults:
    def test_disarmed_by_default(self):
        assert not faults.active()
        assert not faults.fire("fused_raise")
        assert not faults.should_fire("worker_kill", 0)

    def test_charges_consumed(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "fused_raise:2")
        faults.arm()
        assert faults.active()
        assert faults.fire("fused_raise")
        assert faults.fire("fused_raise")
        assert not faults.fire("fused_raise")  # budget spent
        assert not faults.fire("other_fault")

    def test_attempt_gated_is_non_consuming(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "worker_kill:2")
        faults.arm()
        for _ in range(5):  # any number of fresh workers agree
            assert faults.should_fire("worker_kill", 0)
            assert faults.should_fire("worker_kill", 1)
            assert not faults.should_fire("worker_kill", 2)

    def test_spec_parsing_is_forgiving(self):
        faults.arm("a, b:3 ,, c:x, :7")
        assert faults.should_fire("a", 0) and not faults.should_fire("a", 1)
        assert faults.should_fire("b", 2)
        assert faults.should_fire("c", 0)  # malformed count -> 1

    def test_default_charge_is_one(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "store_truncate")
        faults.arm()
        assert faults.fire("store_truncate")
        assert not faults.fire("store_truncate")


# -- supervisor ---------------------------------------------------------------


def _square(payload):
    return payload * payload


def _boom(payload):
    raise ValueError("deterministic task failure %r" % (payload,))


_TASKS = [("a", 2), ("b", 3), ("c", 4)]


class TestSupervisor:
    def test_happy_path(self):
        results, report = run_supervised(_square, _TASKS, jobs=2)
        assert results == {"a": 4, "b": 9, "c": 16}
        assert report.ok and not report.degraded
        assert [out.name for out in report.outcomes] == ["a", "b", "c"]
        assert all(out.clean for out in report.outcomes)

    def test_worker_kill_is_retried(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "worker_kill:1")
        faults.arm()
        results, report = run_supervised(_square, _TASKS, jobs=2)
        assert results == {"a": 4, "b": 9, "c": 16}
        assert report.ok and report.degraded
        for out in report.outcomes:
            assert out.attempts == 2
            assert out.path == "pool-retry"
            assert "died" in out.errors[0]

    def test_hung_worker_hits_deadline(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "worker_stall:1")
        monkeypatch.setenv("REPRO_FAULT_STALL_SECONDS", "30")
        faults.arm()
        results, report = run_supervised(
            _square, [("a", 2), ("b", 3)], jobs=2, timeout=1.0
        )
        assert results == {"a": 4, "b": 9}
        assert report.ok and report.degraded
        for out in report.outcomes:
            assert "WorkerTimeoutError" in out.errors[0]
            assert out.path == "pool-retry"

    def test_exhausted_retries_fall_back_to_serial(self, monkeypatch):
        # Kill every pool attempt: the task must still complete, in
        # process, on the serial rung.
        monkeypatch.setenv("REPRO_FAULTS", "worker_kill:99")
        faults.arm()
        results, report = run_supervised(
            _square, [("a", 5)], jobs=2, max_retries=1
        )
        assert results == {"a": 25}
        out = report.outcomes[0]
        assert out.ok and out.path == "serial"
        assert out.attempts == 3  # two pool attempts + serial
        assert len(out.errors) == 2

    def test_task_exception_is_not_retried(self):
        with pytest.raises(PipelineError) as excinfo:
            run_supervised(_boom, [("a", 1), ("b", 2)], jobs=2)
        report = excinfo.value.report
        assert not report.ok
        assert all(out.status == "failed" for out in report.outcomes)
        assert all(out.attempts == 1 for out in report.outcomes)
        assert "ValueError" in report.outcomes[0].errors[0]

    def test_failure_report_lists_tasks(self):
        with pytest.raises(PipelineError) as excinfo:
            run_supervised(_boom, [("only", 1)], jobs=2)
        assert "only" in str(excinfo.value)

    def test_deterministic_backoff(self):
        a = Supervisor(2, seed=7)._backoff("fft", 1)
        b = Supervisor(2, seed=7)._backoff("fft", 1)
        c = Supervisor(2, seed=8)._backoff("fft", 1)
        assert a == b
        assert a != c


# -- degradation ladder -------------------------------------------------------


def _packed_trace():
    return run_program(build_counter_program(), seed=13).packed


def _cord_specs():
    def spec(name, d):
        return DetectorSpec(
            name,
            lambda n, d=d: CordDetector(CordConfig(d=d), n),
        )

    return [spec("CORD-D%d" % d, d) for d in (4, 8, 16, 32)]


class _AlwaysBoom(Detector):
    name = "Boom"

    def process(self, event):
        raise RuntimeError("broken on every tier")


class TestGuard:
    def test_happy_path_matches_unguarded(self):
        packed = _packed_trace()
        log = GuardLog()
        outcomes = compute_outcomes(_cord_specs(), 4, packed,
                                    guard_log=log)
        baseline = {
            spec.name: spec.build(4).run_packed(packed)
            for spec in _cord_specs()
        }
        assert log.count() == 0
        for name, outcome in baseline.items():
            assert outcomes[name].flagged == outcome.flagged
            assert outcomes[name].counters == outcome.counters

    def test_fused_failure_degrades_to_kernel(self, monkeypatch):
        packed = _packed_trace()
        baseline = compute_outcomes(_cord_specs(), 4, packed)
        monkeypatch.setenv("REPRO_FAULTS", "fused_raise:1")
        faults.arm()
        log = GuardLog()
        outcomes = compute_outcomes(_cord_specs(), 4, packed,
                                    guard_log=log)
        assert log.count("fused") == 1
        for name in baseline:
            assert outcomes[name].flagged == baseline[name].flagged
            assert outcomes[name].counters == baseline[name].counters

    def test_kernel_failure_degrades_to_scalar(self, monkeypatch):
        packed = _packed_trace()
        baseline = compute_outcomes(_cord_specs(), 4, packed)
        # Disable fusion so the kernel tier actually runs per config,
        # then blow up the first kernel pass.
        monkeypatch.setenv("REPRO_NO_FUSED", "1")
        monkeypatch.setenv("REPRO_FAULTS", "kernel_raise:1")
        faults.arm()
        log = GuardLog()
        outcomes = compute_outcomes(_cord_specs(), 4, packed,
                                    guard_log=log)
        assert log.count("kernel") == 1
        for name in baseline:
            assert outcomes[name].flagged == baseline[name].flagged
            assert outcomes[name].counters == baseline[name].counters

    def test_all_tiers_broken_raises_degraded_path_error(self):
        packed = _packed_trace()
        specs = [DetectorSpec("Boom", lambda n: _AlwaysBoom())]
        with pytest.raises(DegradedPathError):
            compute_outcomes(specs, 4, packed)

    def test_cross_check_passes_on_healthy_paths(self):
        packed = _packed_trace()
        specs = _cord_specs()
        outcomes = compute_outcomes(specs, 4, packed)
        verify_ladder_equivalence(specs, 4, packed, outcomes)

    def test_cross_check_catches_divergence(self):
        packed = _packed_trace()
        specs = _cord_specs()
        outcomes = compute_outcomes(specs, 4, packed)
        # Tamper with one report: the cross-check must notice.
        outcomes[specs[0].name].flagged.add((3, 999999))
        with pytest.raises(PipelineError):
            verify_ladder_equivalence(specs, 4, packed, outcomes)


# -- store framing and quarantine ---------------------------------------------


class TestStoreFraming:
    def test_roundtrip(self):
        payload = os.urandom(257)
        assert unframe_payload(frame_payload(payload)) == payload

    def test_every_bit_flip_detected(self):
        framed = frame_payload(b"the payload under test")
        for offset in range(len(framed)):
            for bit in (0x01, 0x80):
                bad = bytearray(framed)
                bad[offset] ^= bit
                with pytest.raises(StoreCorruptError):
                    unframe_payload(bytes(bad))

    def test_every_truncation_detected(self):
        framed = frame_payload(b"the payload under test")
        for cut in range(len(framed)):
            with pytest.raises(StoreCorruptError):
                unframe_payload(framed[:cut])

    def test_extension_detected(self):
        framed = frame_payload(b"payload")
        with pytest.raises(StoreCorruptError):
            unframe_payload(framed + b"\x00")


class TestStoreQuarantine:
    def _store_with_entry(self, tmp_path):
        store = PackedTraceStore(tmp_path)
        store.store_value("ns", ("k",), {"v": 1})
        return store, store._path("value", "ns", ("k",))

    def test_corrupt_value_quarantined_with_reason(self, tmp_path):
        store, path = self._store_with_entry(tmp_path)
        data = bytearray(path.read_bytes())
        data[-1] ^= 0xFF
        path.write_bytes(bytes(data))
        assert store.load_value("ns", ("k",)) is None
        assert store.stats["quarantined"] == 1
        assert not path.exists()
        moved = store.quarantine_dir / path.name
        reason = store.quarantine_dir / (path.name + ".reason.txt")
        assert moved.exists()
        assert reason.exists()
        assert "checksum" in reason.read_text()

    def test_truncated_value_quarantined(self, tmp_path):
        store, path = self._store_with_entry(tmp_path)
        path.write_bytes(path.read_bytes()[:-3])
        assert store.load_value("ns", ("k",)) is None
        assert store.stats["quarantined"] == 1
        assert "torn write" in (
            store.quarantine_dir / (path.name + ".reason.txt")
        ).read_text()

    def test_healed_entry_reloads(self, tmp_path):
        store, path = self._store_with_entry(tmp_path)
        path.write_bytes(b"garbage")
        assert store.load_value("ns", ("k",)) is None
        # Re-store (what record_injected_once does on the miss) and the
        # key serves again.
        store.store_value("ns", ("k",), {"v": 1})
        assert store.load_value("ns", ("k",)) == {"v": 1}

    def test_stale_pickle_counts_not_quarantines(self, tmp_path):
        store = PackedTraceStore(tmp_path)
        path = store._path("value", "ns", ("k",))
        path.parent.mkdir(parents=True, exist_ok=True)
        # A healthy frame around bytes that no longer unpickle: version
        # skew, not corruption.
        path.write_bytes(frame_payload(b"\x80\x04."))
        assert store.load_value("ns", ("k",)) is None
        assert store.stats["stale"] == 1
        assert store.stats["quarantined"] == 0

    def test_torn_write_fault_point(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "store_truncate:1")
        faults.arm()
        store = PackedTraceStore(tmp_path)
        store.store_value("ns", ("k",), 42)  # torn by the fault
        assert store.load_value("ns", ("k",)) is None
        assert store.stats["quarantined"] == 1
        store.store_value("ns", ("k",), 42)  # charge spent: healthy
        assert store.load_value("ns", ("k",)) == 42
