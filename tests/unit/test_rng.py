"""Unit tests for repro.common.rng."""

import pytest

from repro.common.rng import DeterministicRng, seeds_for_runs


class TestDeterministicRng:
    def test_same_seed_same_stream(self):
        a = DeterministicRng(42)
        b = DeterministicRng(42)
        assert [a.randint(0, 100) for _ in range(20)] == [
            b.randint(0, 100) for _ in range(20)
        ]

    def test_different_seeds_differ(self):
        a = DeterministicRng(1)
        b = DeterministicRng(2)
        assert [a.randint(0, 10**9) for _ in range(4)] != [
            b.randint(0, 10**9) for _ in range(4)
        ]

    def test_fork_is_independent_of_parent_state(self):
        parent = DeterministicRng(7)
        child_before = parent.fork("worker")
        parent.randint(0, 1000)  # consume parent state
        child_after = parent.fork("worker")
        assert [child_before.randint(0, 100) for _ in range(10)] == [
            child_after.randint(0, 100) for _ in range(10)
        ]

    def test_fork_names_give_distinct_streams(self):
        parent = DeterministicRng(7)
        a = parent.fork("a")
        b = parent.fork("b")
        assert [a.randint(0, 10**9) for _ in range(4)] != [
            b.randint(0, 10**9) for _ in range(4)
        ]

    def test_fork_is_cross_platform_stable(self):
        # SHA-256 derivation: this value must never change, or recorded
        # experiments stop being reproducible.
        child = DeterministicRng(2006, "root").fork("campaign/barnes")
        assert child.seed == DeterministicRng(2006).fork(
            "campaign/barnes"
        ).seed

    def test_geometric_minimum_one(self):
        rng = DeterministicRng(5)
        assert all(rng.geometric(0.5) >= 1 for _ in range(100))

    def test_geometric_rejects_bad_p(self):
        rng = DeterministicRng(5)
        with pytest.raises(ValueError):
            rng.geometric(0.0)
        with pytest.raises(ValueError):
            rng.geometric(1.5)

    def test_choice_and_shuffle(self):
        rng = DeterministicRng(5)
        items = list(range(10))
        assert rng.choice(items) in items
        shuffled = list(items)
        rng.shuffle(shuffled)
        assert sorted(shuffled) == items


class TestSeedsForRuns:
    def test_count_and_determinism(self):
        seeds_a = list(seeds_for_runs(1, 5, "exp"))
        seeds_b = list(seeds_for_runs(1, 5, "exp"))
        assert len(seeds_a) == 5
        assert seeds_a == seeds_b

    def test_distinct_across_runs(self):
        seeds = list(seeds_for_runs(1, 50, "exp"))
        assert len(set(seeds)) == 50
