"""Unit tests for detector-state introspection."""

from repro.common.types import AccessClass, AccessMode
from repro.cord import CordConfig, CordDetector
from repro.cord.inspect import (
    explain_access,
    render_line,
    render_state,
    snapshot_line,
)
from repro.trace import MemoryEvent


def make_event(index, thread, address, write, sync, icount):
    return MemoryEvent(
        index,
        thread,
        address,
        AccessMode.WRITE if write else AccessMode.READ,
        AccessClass.SYNC if sync else AccessClass.DATA,
        icount,
    )


DATA = 0x100000
SYNC = 0x8000000


def primed_detector():
    detector = CordDetector(CordConfig(d=16), 2)
    detector.process(make_event(0, 0, DATA, True, False, 0))
    detector.process(make_event(1, 0, SYNC, True, True, 1))
    detector.process(make_event(2, 1, SYNC, False, True, 0))
    # Thread 0 writes DATA again *after* its release: any later access
    # by thread 1 conflicts inside the window (not synchronized).
    detector.process(make_event(3, 0, DATA, True, False, 2))
    return detector


class TestSnapshots:
    def test_snapshot_line_shapes(self):
        detector = primed_detector()
        views = snapshot_line(detector, DATA)
        assert len(views) == detector.config.n_processors
        assert views[0].present
        assert views[0].entries  # thread 0's write history
        assert not views[1].present

    def test_render_line(self):
        detector = primed_detector()
        out = render_line(detector, DATA)
        assert "Line metadata" in out
        assert "P0" in out and "ts=" in out

    def test_render_state(self):
        detector = primed_detector()
        out = render_state(detector)
        assert "clocks" in out
        assert "memory ts" in out


class TestExplainAccess:
    def test_window_conflict_explained(self):
        detector = primed_detector()
        # Thread 0's post-release write is inside thread 1's window:
        # ordered (17 > 2) but not synchronized (17 < 2 + 16).
        text = explain_access(detector, 1, DATA, is_write=False)
        assert "READ" in text
        assert "REPORT" in text
        assert "synchronized" in text  # the pre-release write's verdict

    def test_synchronized_access_explained(self):
        detector = primed_detector()
        text = explain_access(detector, 1, DATA, is_write=False)
        # The pre-release write (ts=1) is synchronized while the
        # post-release write (ts=2) is reportable -- both verdicts shown.
        assert "candidate ts=1" in text
        assert "candidate ts=2" in text

    def test_dry_run_does_not_mutate(self):
        detector = primed_detector()
        clocks = list(detector.clocks)
        races = detector.outcome.raw_count
        explain_access(detector, 1, DATA, is_write=True)
        assert detector.clocks == clocks
        assert detector.outcome.raw_count == races

    def test_no_history_case(self):
        detector = primed_detector()
        text = explain_access(detector, 1, 0x200000, is_write=True)
        assert "no cached conflicting history" in text
        assert "memory ts" in text
