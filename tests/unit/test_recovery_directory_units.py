"""Unit tests for the recovery helpers and directory bookkeeping."""

import pytest

from repro.common.types import AccessClass, AccessMode
from repro.cord.directory import Directory
from repro.recovery import SerializedScheduler, atomic_region_start
from repro.trace import MemoryEvent, Trace


def ev(index, thread, address, write, sync, icount):
    return MemoryEvent(
        index,
        thread,
        address,
        AccessMode.WRITE if write else AccessMode.READ,
        AccessClass.SYNC if sync else AccessClass.DATA,
        icount,
    )


class TestAtomicRegionStart:
    def test_after_last_sync(self):
        trace = Trace(
            [
                ev(0, 0, 0x8000000, True, True, 0),   # sync at ic 0
                ev(1, 0, 0x100000, False, False, 1),
                ev(2, 0, 0x8000000, True, True, 2),   # sync at ic 2
                ev(3, 0, 0x100000, True, False, 3),   # racy region
                ev(4, 0, 0x100000, True, False, 4),
            ],
            [5],
        )
        assert atomic_region_start(trace, (0, 4)) == (0, 3)

    def test_no_prior_sync_rolls_to_start(self):
        trace = Trace(
            [ev(0, 0, 0x100000, True, False, 0)],
            [1],
        )
        assert atomic_region_start(trace, (0, 0)) == (0, 0)

    def test_other_threads_syncs_ignored(self):
        trace = Trace(
            [
                ev(0, 1, 0x8000000, True, True, 0),  # thread 1's sync
                ev(1, 0, 0x100000, True, False, 0),
            ],
            [1, 1],
        )
        assert atomic_region_start(trace, (0, 0)) == (0, 0)


class TestSerializedSchedulerUnits:
    def test_sticks_until_unavailable(self):
        scheduler = SerializedScheduler()
        picks = [scheduler.pick([0, 1]) for _ in range(5)]
        assert picks == [0] * 5
        assert scheduler.pick([1]) == 1
        # Once switched, sticks with the new thread even if the old one
        # becomes runnable again.
        assert scheduler.pick([0, 1]) == 1

    def test_order_preference_on_switch(self):
        scheduler = SerializedScheduler(order=[3, 1, 0, 2])
        assert scheduler.pick([0, 1, 2]) == 1  # 3 absent: next in order
        assert scheduler.pick([0, 2]) == 0


class TestDirectory:
    def test_add_remove(self):
        directory = Directory(4)
        directory.add(0x100, 1)
        directory.add(0x100, 2)
        assert directory.sharers(0x100) == {1, 2}
        directory.remove(0x100, 1)
        assert directory.sharers(0x100) == {2}
        directory.remove(0x100, 2)
        assert directory.sharers(0x100) == set()
        assert directory.lines_tracked() == 0

    def test_remove_absent_is_noop(self):
        directory = Directory(2)
        directory.remove(0x40, 0)
        assert directory.sharers(0x40) == set()

    def test_lines_tracked(self):
        directory = Directory(2)
        directory.add(0x40, 0)
        directory.add(0x80, 1)
        assert directory.lines_tracked() == 2
