"""Unit tests for repro.common.bitops and repro.common.texttable."""

from repro.common.bitops import (
    bit,
    clear_bit,
    iter_bits,
    low_mask,
    popcount,
    set_bit,
)
from repro.common.bitops import test_bit as bit_is_set
from repro.common.texttable import format_percent, format_table


class TestBitops:
    def test_bit(self):
        assert bit(0) == 1
        assert bit(5) == 32

    def test_set_and_test(self):
        mask = set_bit(0, 3)
        assert bit_is_set(mask, 3)
        assert not bit_is_set(mask, 2)

    def test_clear(self):
        mask = set_bit(set_bit(0, 1), 2)
        assert clear_bit(mask, 1) == bit(2)
        assert clear_bit(mask, 7) == mask  # clearing unset bit is a no-op

    def test_iter_bits(self):
        assert list(iter_bits(0b101001)) == [0, 3, 5]
        assert list(iter_bits(0)) == []

    def test_popcount(self):
        assert popcount(0) == 0
        assert popcount(0b1011) == 3

    def test_low_mask(self):
        assert low_mask(0) == 0
        assert low_mask(4) == 0b1111


class TestTextTable:
    def test_alignment_and_rule(self):
        out = format_table(["name", "x"], [["a", 1], ["bb", 22]])
        lines = out.splitlines()
        assert lines[0].startswith("name")
        assert set(lines[1]) == {"-"}
        assert lines[2].startswith("a")

    def test_title(self):
        out = format_table(["h"], [["v"]], title="T")
        assert out.splitlines()[0] == "T"

    def test_float_formatting(self):
        out = format_table(["h"], [[0.12345]])
        assert "0.123" in out

    def test_row_width_mismatch(self):
        import pytest

        with pytest.raises(ValueError):
            format_table(["a", "b"], [["only-one"]])

    def test_format_percent(self):
        assert format_percent(0.773) == "77.3%"
        assert format_percent(1.0) == "100.0%"
