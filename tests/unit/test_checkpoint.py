"""Unit tests for the crash-consistency layer.

Covers the two modules of the checkpointing stack bottom-up:
:mod:`repro.resilience.checkpoint` (atomic writes, litter collection,
quarantine pruning, canonical pickling, graceful shutdown) and
:mod:`repro.resilience.journal` (framed write-ahead records, torn-tail
replay, run-id allocation, resume semantics).  The end-to-end
kill-anywhere property lives in
``tests/integration/test_checkpoint_resume.py``; these tests pin the
contracts each piece provides on its own.
"""

import dataclasses
import os
import pickle
import subprocess
import sys
import time

import pytest

from repro.common.errors import InterruptedRunError, StoreCorruptError
from repro.resilience import faults
from repro.resilience.checkpoint import (
    GracefulShutdown,
    atomic_write_bytes,
    atomic_write_json,
    canonicalize,
    check_shutdown,
    collect_tmp_litter,
    current_shutdown,
    prune_quarantine,
    request_shutdown,
    run_interrupted,
)
from repro.resilience.journal import (
    DONE_SUFFIX,
    WAL_SUFFIX,
    Journal,
    RunCheckpoint,
    identity_digest,
    latest_run_id,
    replay,
)


@pytest.fixture(autouse=True)
def _fault_hygiene(monkeypatch):
    monkeypatch.delenv("REPRO_FAULTS", raising=False)
    monkeypatch.delenv("REPRO_JOURNAL_KEEP", raising=False)
    monkeypatch.delenv("REPRO_QUARANTINE_KEEP", raising=False)
    monkeypatch.delenv("REPRO_QUARANTINE_MAX_AGE_S", raising=False)
    faults.reset()
    yield
    faults.reset()


def _dead_pid():
    """A pid guaranteed to belong to no live process (a reaped child)."""
    proc = subprocess.Popen([sys.executable, "-c", ""])
    proc.wait()
    return proc.pid


class TestAtomicWrites:
    def test_writes_bytes_and_leaves_no_temp(self, tmp_path):
        target = tmp_path / "deep" / "entry.bin"
        out = atomic_write_bytes(target, b"payload")
        assert out == target
        assert target.read_bytes() == b"payload"
        assert list(tmp_path.rglob("*.tmp.*")) == []

    def test_replaces_existing_file(self, tmp_path):
        target = tmp_path / "entry.bin"
        atomic_write_bytes(target, b"old")
        atomic_write_bytes(target, b"new")
        assert target.read_bytes() == b"new"

    def test_json_round_trip(self, tmp_path):
        import json

        target = tmp_path / "report.json"
        atomic_write_json(target, {"b": 2, "a": 1}, sort_keys=True)
        text = target.read_text()
        assert text.endswith("\n")
        assert json.loads(text) == {"a": 1, "b": 2}

    def test_fsync_off_still_atomic(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_FSYNC", "0")
        target = tmp_path / "entry.bin"
        atomic_write_bytes(target, b"data")
        assert target.read_bytes() == b"data"
        assert list(tmp_path.rglob("*.tmp.*")) == []


class TestTmpLitter:
    def test_dead_writer_litter_removed(self, tmp_path):
        litter = tmp_path / ("entry.pkl.tmp.%d" % _dead_pid())
        litter.write_bytes(b"half a frame")
        keep = tmp_path / "entry.pkl"
        keep.write_bytes(b"fine")
        assert collect_tmp_litter(tmp_path) == 1
        assert not litter.exists()
        assert keep.exists()

    def test_live_writer_fresh_litter_kept(self, tmp_path):
        # A pid that is certainly alive: our own.  Another *live*
        # process's fresh temp file must not be stolen mid-write; a
        # process reuses the collector only at startup, where its own
        # pid cannot have an in-flight write, so own-pid litter goes.
        proc = subprocess.Popen([sys.executable, "-c",
                                 "import time; time.sleep(30)"])
        try:
            litter = tmp_path / ("entry.pkl.tmp.%d" % proc.pid)
            litter.write_bytes(b"in flight")
            assert collect_tmp_litter(tmp_path) == 0
            assert litter.exists()
        finally:
            proc.kill()
            proc.wait()

    def test_recurses_into_subdirectories(self, tmp_path):
        nested = tmp_path / "traces" / "sub"
        nested.mkdir(parents=True)
        (nested / ("x.pkl.tmp.%d" % _dead_pid())).write_bytes(b"junk")
        assert collect_tmp_litter(tmp_path) == 1

    def test_missing_root_is_zero(self, tmp_path):
        assert collect_tmp_litter(tmp_path / "nope") == 0


class TestQuarantinePrune:
    def _seed(self, qdir, n, base_age=0.0):
        qdir.mkdir(parents=True, exist_ok=True)
        now = time.time()
        paths = []
        for index in range(n):
            path = qdir / ("entry-%d.pkl" % index)
            path.write_bytes(b"damaged")
            (qdir / (path.name + ".reason.txt")).write_text("why\n")
            # Distinct mtimes, newest last.
            age = base_age + (n - index)
            os.utime(path, (now - age, now - age))
            paths.append(path)
        return paths

    def _entries(self, qdir):
        return sorted(
            p.name for p in qdir.iterdir()
            if not p.name.endswith(".reason.txt")
        )

    def test_count_cap_keeps_newest(self, tmp_path):
        qdir = tmp_path / "quarantine"
        self._seed(qdir, 5)
        assert prune_quarantine(qdir, keep=2, max_age_s=3600) == 3
        assert self._entries(qdir) == ["entry-3.pkl", "entry-4.pkl"]
        # Reason notes are pruned with their entries.
        assert not (qdir / "entry-0.pkl.reason.txt").exists()
        assert (qdir / "entry-4.pkl.reason.txt").exists()

    def test_age_cap_prunes_even_under_count(self, tmp_path):
        qdir = tmp_path / "quarantine"
        self._seed(qdir, 3, base_age=7200.0)
        assert prune_quarantine(qdir, keep=10, max_age_s=3600) == 3
        assert self._entries(qdir) == []

    def test_missing_directory_is_zero(self, tmp_path):
        assert prune_quarantine(tmp_path / "quarantine") == 0

    def test_env_defaults_respected(self, tmp_path, monkeypatch):
        qdir = tmp_path / "quarantine"
        self._seed(qdir, 4)
        monkeypatch.setenv("REPRO_QUARANTINE_KEEP", "1")
        assert prune_quarantine(qdir) == 3
        assert len(self._entries(qdir)) == 1


@dataclasses.dataclass
class _Point:
    label: str
    values: tuple


class TestCanonicalize:
    def test_equal_graphs_pickle_identically(self):
        # Two semantically equal structures built so that one shares a
        # string object and the other holds equal-but-distinct copies --
        # the exact shape a resumed run produces when it mixes fresh
        # objects with separately unpickled slices.
        shared = "".join(["det", "ector"])
        copy_one = pickle.loads(pickle.dumps(shared))
        copy_two = pickle.loads(pickle.dumps(shared))
        a = {"x": (shared, shared), "y": [shared]}
        b = {"x": (copy_one, copy_one), "y": [copy_two]}
        assert a == b
        assert pickle.dumps(a) != pickle.dumps(b)  # the disease
        assert pickle.dumps(canonicalize(a)) == pickle.dumps(
            canonicalize(b)
        )

    def test_dataclasses_rebuilt(self):
        point = _Point(label="".join(["a", "b"]), values=("x", "x"))
        clone = canonicalize(point)
        assert clone == point
        assert isinstance(clone, _Point)
        assert pickle.dumps(clone) == pickle.dumps(canonicalize(
            pickle.loads(pickle.dumps(point))
        ))

    def test_scalars_and_sets_pass_through(self):
        assert canonicalize(7) == 7
        assert canonicalize(None) is None
        assert canonicalize({1, 2}) == {1, 2}
        assert canonicalize(frozenset({"a"})) == frozenset({"a"})


class TestGracefulShutdown:
    def test_request_then_check_raises_resumable(self):
        with GracefulShutdown(install=False) as shutdown:
            assert not shutdown.requested
            check_shutdown("run-1")  # no-op before the request
            shutdown.request()
            assert run_interrupted()
            with pytest.raises(InterruptedRunError) as excinfo:
                check_shutdown("run-1")
            assert excinfo.value.run_id == "run-1"
            assert "--resume run-1" in str(excinfo.value)

    def test_request_shutdown_targets_active_context(self):
        with GracefulShutdown(install=False) as shutdown:
            request_shutdown()
            assert shutdown.requested

    def test_request_shutdown_without_context_raises(self):
        assert current_shutdown() is None
        with pytest.raises(InterruptedRunError):
            request_shutdown("orphan-run")

    def test_contexts_nest_innermost_wins(self):
        with GracefulShutdown(install=False) as outer:
            with GracefulShutdown(install=False) as inner:
                assert current_shutdown() is inner
                request_shutdown()
                assert inner.requested and not outer.requested
            assert current_shutdown() is outer


def _ident():
    return ("unit-test-run", 42)


class TestJournal:
    def test_begin_and_transitions_replay(self, tmp_path):
        ckpt = RunCheckpoint.open(tmp_path, identity=_ident())
        task = ckpt.task("fft/run0")
        task.scheduled()
        task.recorded()
        task.analyzed("D=4")
        task.analyzed("D=16")
        task.committed()
        ckpt.close()

        wal = ckpt.journal_dir / (ckpt.run_id + WAL_SUFFIX)
        state = replay(wal)
        assert state.run_id == ckpt.run_id
        assert state.identity == identity_digest(_ident())
        assert not state.finished
        replayed = state.task("fft/run0")
        assert replayed.scheduled and replayed.recorded
        assert replayed.analyzed == {"D=4", "D=16"}
        assert replayed.committed
        assert "1 committed" in state.summary()

    def test_transitions_are_idempotent(self, tmp_path):
        ckpt = RunCheckpoint.open(tmp_path, identity=_ident())
        task = ckpt.task("t")
        task.scheduled()
        before = ckpt.state.n_records
        task.scheduled()
        task.scheduled()
        assert ckpt.state.n_records == before
        ckpt.close()

    def test_finish_seals_to_done(self, tmp_path):
        ckpt = RunCheckpoint.open(tmp_path, identity=_ident())
        ckpt.task("t").committed()
        ckpt.finish()
        done = ckpt.journal_dir / (ckpt.run_id + DONE_SUFFIX)
        assert done.exists()
        assert not (
            ckpt.journal_dir / (ckpt.run_id + WAL_SUFFIX)
        ).exists()
        assert replay(done).finished

    def test_resume_picks_up_state(self, tmp_path):
        first = RunCheckpoint.open(tmp_path, identity=_ident())
        task = first.task("t")
        task.scheduled()
        task.recorded()
        task.analyzed("D=4")
        first.interrupt()  # the drain path: flush, no end record

        second = RunCheckpoint.open(tmp_path, identity=_ident())
        assert second.resumed
        assert second.run_id == first.run_id
        assert second.stats["resumed"] == 1
        state = second.state.task("t")
        assert state.recorded and "D=4" in state.analyzed
        # Replayed transitions append nothing new.
        n_before = second.state.n_records
        resumed_task = second.task("t")
        resumed_task.scheduled()
        resumed_task.recorded()
        resumed_task.analyzed("D=4")
        assert second.state.n_records == n_before
        resumed_task.analyzed("D=16")  # fresh work still journals
        assert second.state.n_records == n_before + 1
        second.close()

    def test_fresh_identity_never_resumes(self, tmp_path):
        first = RunCheckpoint.open(tmp_path, identity=_ident())
        first.task("t").scheduled()
        first.interrupt()
        other = RunCheckpoint.open(
            tmp_path, identity=("different", 7)
        )
        assert not other.resumed
        assert other.run_id != first.run_id
        other.close()

    def test_resume_fresh_ignores_existing_wal(self, tmp_path):
        first = RunCheckpoint.open(tmp_path, identity=_ident())
        first.task("t").scheduled()
        first.interrupt()
        fresh = RunCheckpoint.open(
            tmp_path, identity=_ident(), resume="fresh"
        )
        assert not fresh.resumed
        assert fresh.run_id != first.run_id
        fresh.close()

    def test_explicit_resume_of_wrong_identity_refused(self, tmp_path):
        first = RunCheckpoint.open(tmp_path, identity=_ident())
        first.task("t").scheduled()
        first.interrupt()
        with pytest.raises(StoreCorruptError):
            RunCheckpoint.open(
                tmp_path,
                identity=("a different run",),
                resume=first.run_id,
            )

    def test_explicit_resume_of_missing_run_refused(self, tmp_path):
        with pytest.raises(StoreCorruptError):
            RunCheckpoint.open(
                tmp_path, identity=_ident(), resume="cafebabe-0001"
            )

    def test_resuming_finished_run_reopens_done(self, tmp_path):
        first = RunCheckpoint.open(tmp_path, identity=_ident())
        first.task("t").committed()
        first.finish()
        again = RunCheckpoint.open(
            tmp_path, identity=_ident(), resume=first.run_id
        )
        assert again.resumed
        assert again.state.task("t").committed
        assert (
            again.journal_dir / (again.run_id + WAL_SUFFIX)
        ).exists()
        again.finish()

    def test_run_ids_sequence_per_identity(self, tmp_path):
        ids = []
        for _ in range(3):
            ckpt = RunCheckpoint.open(
                tmp_path, identity=_ident(), resume="fresh"
            )
            ids.append(ckpt.run_id)
            ckpt.finish()
        prefix = identity_digest(_ident())[:8]
        assert ids == ["%s-%04d" % (prefix, n) for n in (1, 2, 3)]

    def test_latest_run_id(self, tmp_path):
        assert latest_run_id(tmp_path, _ident()) is None
        ckpt = RunCheckpoint.open(tmp_path, identity=_ident())
        ckpt.task("t").scheduled()
        ckpt.interrupt()
        assert latest_run_id(tmp_path, _ident()) == ckpt.run_id

    def test_torn_tail_replays_clean_prefix(self, tmp_path):
        ckpt = RunCheckpoint.open(tmp_path, identity=_ident())
        task = ckpt.task("t")
        task.scheduled()
        task.recorded()
        ckpt.close()
        wal = ckpt.journal_dir / (ckpt.run_id + WAL_SUFFIX)
        data = wal.read_bytes()
        # Tear the last record mid-frame, as a power cut would.
        wal.write_bytes(data[:-7])
        state = replay(wal)
        assert state.task("t").scheduled
        assert not state.task("t").recorded  # the torn record is gone
        # And a resume over the torn journal just redoes that step.
        resumed = RunCheckpoint.open(tmp_path, identity=_ident())
        assert resumed.resumed
        assert not resumed.state.task("t").recorded
        resumed.close()

    def test_garbage_journal_is_ignored(self, tmp_path):
        jdir = RunCheckpoint.journal_dir_for(tmp_path)
        jdir.mkdir(parents=True)
        prefix = identity_digest(_ident())[:8]
        (jdir / (prefix + "-0001" + WAL_SUFFIX)).write_bytes(
            b"not a framed journal at all"
        )
        ckpt = RunCheckpoint.open(tmp_path, identity=_ident())
        # Nothing replayable: starts fresh (and does not crash).
        assert not ckpt.resumed
        ckpt.close()

    def test_unknown_record_types_skipped(self, tmp_path):
        from repro.resilience.journal import _encode_record

        path = tmp_path / "j.wal"
        path.write_bytes(
            _encode_record({"type": "begin", "run_id": "x-0001",
                            "identity": "x" * 16, "kind": "run"})
            + _encode_record({"type": "hologram", "task": "t"})
            + _encode_record({"type": "committed", "task": "t"})
        )
        state = replay(path)
        assert state.n_records == 3
        assert state.task("t").committed

    def test_finished_journals_pruned_at_startup(self, tmp_path,
                                                 monkeypatch):
        monkeypatch.setenv("REPRO_JOURNAL_KEEP", "2")
        for _ in range(4):
            ckpt = RunCheckpoint.open(
                tmp_path, identity=_ident(), resume="fresh"
            )
            ckpt.finish()
        ckpt = RunCheckpoint.open(
            tmp_path, identity=_ident(), resume="fresh"
        )
        # Pruning runs at every open, so each startup trims at most one
        # journal over the cap; what matters is the steady-state bound.
        assert ckpt.stats["journals_pruned"] == 1
        done = [
            p for p in ckpt.journal_dir.iterdir()
            if p.name.endswith(DONE_SUFFIX)
        ]
        assert len(done) <= 2
        ckpt.finish()

    def test_sigterm_drain_fault_raises_without_context(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setenv("REPRO_FAULTS", "sigterm_drain:1")
        faults.arm()
        journal = Journal(tmp_path / "j.wal")
        with pytest.raises(InterruptedRunError):
            journal.append({"type": "begin"})
        journal.close()
        # The record itself was flushed before the fault fired: the
        # interruption is injected *after* durability, like SIGTERM.
        assert replay(tmp_path / "j.wal").n_records == 1

    def test_sigterm_drain_fault_flags_active_context(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setenv("REPRO_FAULTS", "sigterm_drain:2")
        faults.arm()
        journal = Journal(tmp_path / "j.wal")
        with GracefulShutdown(install=False) as shutdown:
            journal.append({"type": "begin"})
            assert not shutdown.requested
            journal.append({"type": "scheduled", "task": "t"})
            assert shutdown.requested
        journal.close()
