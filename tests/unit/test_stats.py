"""Unit tests for Wilson intervals and campaign rate estimates."""

import pytest

from repro.common.errors import ConfigError
from repro.experiments.stats import (
    RateEstimate,
    estimate,
    wilson_interval,
)


class TestWilsonInterval:
    def test_known_value(self):
        # Classic check: 8/10 at 95 % -> about (0.49, 0.94).
        low, high = wilson_interval(8, 10)
        assert low == pytest.approx(0.49, abs=0.01)
        assert high == pytest.approx(0.94, abs=0.01)

    def test_extremes_behave(self):
        low, high = wilson_interval(0, 20)
        assert low == 0.0
        assert 0.0 < high < 0.25
        low, high = wilson_interval(20, 20)
        assert 0.75 < low < 1.0
        assert high == 1.0

    def test_zero_trials_is_vacuous(self):
        assert wilson_interval(0, 0) == (0.0, 1.0)

    def test_interval_contains_point_estimate(self):
        for successes, trials in ((1, 7), (3, 12), (11, 11), (0, 4)):
            low, high = wilson_interval(successes, trials)
            assert low <= successes / trials <= high

    def test_narrows_with_more_trials(self):
        small = wilson_interval(5, 10)
        large = wilson_interval(500, 1000)
        assert (large[1] - large[0]) < (small[1] - small[0])

    def test_invalid_counts_rejected(self):
        with pytest.raises(ConfigError):
            wilson_interval(5, 3)
        with pytest.raises(ConfigError):
            wilson_interval(-1, 3)


class TestRateEstimate:
    def test_fields(self):
        rate = estimate(3, 12)
        assert rate.rate == 0.25
        assert rate.low < 0.25 < rate.high
        assert "n=12" in str(rate)

    def test_overlap(self):
        a = estimate(5, 10)
        b = estimate(6, 10)
        c = estimate(99, 100)
        assert a.overlaps(b)
        assert not a.overlaps(c)


class TestCampaignEstimates:
    def test_on_real_campaign(self):
        from repro.experiments.stats import (
            manifestation_estimate,
            pooled_problem_estimate,
            problem_rate_estimate,
        )
        from repro.injection import CampaignConfig, run_campaign
        from tests.conftest import build_counter_program

        campaign = run_campaign(
            lambda seed: build_counter_program(),
            "counter",
            CampaignConfig(n_runs=8),
        )
        manifest = manifestation_estimate(campaign)
        assert manifest.trials == 8
        assert manifest.low <= manifest.rate <= manifest.high

        cord = problem_rate_estimate(campaign, "CORD-D16")
        assert cord.trials == campaign.problems_detected("Ideal")

        pooled = pooled_problem_estimate([campaign], "CORD-D16")
        assert pooled.successes == cord.successes
