"""Unit tests for repro.common.types."""

import pytest

from repro.common.types import (
    Access,
    AccessClass,
    AccessMode,
    WORD_SIZE,
    line_address,
    word_index,
)


class TestAccessMode:
    def test_write_flag(self):
        assert AccessMode.WRITE.is_write
        assert not AccessMode.READ.is_write

    def test_int_values_are_stable(self):
        # Trace encodings rely on these.
        assert int(AccessMode.READ) == 0
        assert int(AccessMode.WRITE) == 1


class TestAccessClass:
    def test_sync_flag(self):
        assert AccessClass.SYNC.is_sync
        assert not AccessClass.DATA.is_sync


class TestAccess:
    def test_word_alignment_enforced(self):
        with pytest.raises(ValueError):
            Access(0, 3, AccessMode.READ)

    def test_aligned_ok(self):
        access = Access(1, 8, AccessMode.WRITE, AccessClass.SYNC)
        assert access.is_write and access.is_sync

    def test_conflict_requires_write(self):
        read_a = Access(0, 8, AccessMode.READ)
        read_b = Access(1, 8, AccessMode.READ)
        write_b = Access(1, 8, AccessMode.WRITE)
        assert not read_a.conflicts_with(read_b)
        assert read_a.conflicts_with(write_b)
        assert write_b.conflicts_with(read_a)

    def test_conflict_requires_different_threads(self):
        a = Access(0, 8, AccessMode.WRITE)
        b = Access(0, 8, AccessMode.WRITE)
        assert not a.conflicts_with(b)

    def test_conflict_requires_same_address(self):
        a = Access(0, 8, AccessMode.WRITE)
        b = Access(1, 12, AccessMode.WRITE)
        assert not a.conflicts_with(b)


class TestAddressHelpers:
    def test_word_index(self):
        assert word_index(0, 64) == 0
        assert word_index(4, 64) == 1
        assert word_index(60, 64) == 15
        assert word_index(64, 64) == 0

    def test_line_address(self):
        assert line_address(0, 64) == 0
        assert line_address(63, 64) == 0
        assert line_address(64, 64) == 64
        assert line_address(130, 64) == 128

    def test_word_size_matches_paper_granularity(self):
        # 64-byte lines with 4-byte words -> 16 access-bit slots/line.
        assert 64 // WORD_SIZE == 16
