"""Unit tests for the command-line interface."""

import pytest

from repro.cli import build_parser, exit_code_for, main
from repro.common.errors import (
    ConfigError,
    CordError,
    DegradedPathError,
    PipelineError,
    StoreCorruptError,
    WorkerTimeoutError,
)


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "lu"])
        args_dict = vars(args)
        assert args_dict["workload"] == "lu"
        assert args_dict["seed"] == 1
        assert args_dict["window"] == 16

    def test_unknown_workload_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "doom"])

    def test_inject_options(self):
        args = build_parser().parse_args(
            ["inject", "fft", "-n", "3", "--seed", "9"]
        )
        assert args.runs == 3
        assert args.seed == 9


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "water-sp" in out

    def test_run(self, capsys):
        assert main(["run", "lu", "--scale", "0.25", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "races    : 0" in out
        assert "order log" in out

    def test_replay(self, capsys):
        assert main(["replay", "fft", "--scale", "0.25"]) == 0
        assert "replay verdict: replay equivalent" in \
            capsys.readouterr().out

    def test_inject(self, capsys):
        assert main(
            ["inject", "raytrace", "-n", "2", "--scale", "0.25"]
        ) == 0
        out = capsys.readouterr().out
        assert "sync instances" in out
        assert "CORD-D16" in out


class TestExitCodes:
    """Each failure domain maps to a distinct, stable exit code."""

    def test_taxonomy_mapping(self):
        assert exit_code_for(ConfigError("bad knob")) == 2
        assert exit_code_for(StoreCorruptError("torn")) == 66
        assert exit_code_for(WorkerTimeoutError("fft", 3)) == 67
        assert exit_code_for(DegradedPathError("all tiers")) == 68
        assert exit_code_for(PipelineError("fan-out")) == 69
        assert exit_code_for(CordError("generic")) == 70
        assert exit_code_for(RuntimeError("unrelated")) == 1

    def test_specific_beats_general(self):
        # WorkerTimeoutError is a PipelineError is a CordError: the most
        # specific code must win.
        exc = WorkerTimeoutError("lu", 2)
        assert isinstance(exc, PipelineError)
        assert isinstance(exc, CordError)
        assert exit_code_for(exc) == 67

    def test_main_maps_library_errors(self, monkeypatch, capsys):
        import repro.cli as cli_mod

        def corrupt():
            raise StoreCorruptError("cache entry failed its checksum")

        monkeypatch.setattr(cli_mod, "table1", corrupt)
        assert main(["list"]) == 66
        err = capsys.readouterr().err
        assert "error:" in err
        assert "checksum" in err

    def test_main_lets_foreign_errors_propagate(self, monkeypatch):
        import repro.cli as cli_mod

        def boom():
            raise RuntimeError("a genuine bug")

        monkeypatch.setattr(cli_mod, "table1", boom)
        with pytest.raises(RuntimeError):
            main(["list"])
