"""Unit tests for the command-line interface."""

import pytest

from repro.cli import build_parser, exit_code_for, main
from repro.common.errors import (
    ConfigError,
    CordError,
    DegradedPathError,
    InterruptedRunError,
    PipelineError,
    StoreCorruptError,
    WorkerTimeoutError,
)
from repro.resilience import faults


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "lu"])
        args_dict = vars(args)
        assert args_dict["workload"] == "lu"
        assert args_dict["seed"] == 1
        assert args_dict["window"] == 16

    def test_unknown_workload_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "doom"])

    def test_inject_options(self):
        args = build_parser().parse_args(
            ["inject", "fft", "-n", "3", "--seed", "9"]
        )
        assert args.runs == 3
        assert args.seed == 9


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "water-sp" in out

    def test_run(self, capsys):
        assert main(["run", "lu", "--scale", "0.25", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "races    : 0" in out
        assert "order log" in out

    def test_replay(self, capsys):
        assert main(["replay", "fft", "--scale", "0.25"]) == 0
        assert "replay verdict: replay equivalent" in \
            capsys.readouterr().out

    def test_inject(self, capsys):
        assert main(
            ["inject", "raytrace", "-n", "2", "--scale", "0.25"]
        ) == 0
        out = capsys.readouterr().out
        assert "sync instances" in out
        assert "CORD-D16" in out


class TestExitCodes:
    """Each failure domain maps to a distinct, stable exit code."""

    def test_taxonomy_mapping(self):
        assert exit_code_for(ConfigError("bad knob")) == 2
        assert exit_code_for(StoreCorruptError("torn")) == 66
        assert exit_code_for(WorkerTimeoutError("fft", 3)) == 67
        assert exit_code_for(DegradedPathError("all tiers")) == 68
        assert exit_code_for(PipelineError("fan-out")) == 69
        assert exit_code_for(CordError("generic")) == 70
        assert exit_code_for(RuntimeError("unrelated")) == 1

    def test_specific_beats_general(self):
        # WorkerTimeoutError is a PipelineError is a CordError: the most
        # specific code must win.
        exc = WorkerTimeoutError("lu", 2)
        assert isinstance(exc, PipelineError)
        assert isinstance(exc, CordError)
        assert exit_code_for(exc) == 67

    def test_interrupted_is_resumable_not_failed(self):
        # "Interrupted, resumable" (71) must beat the generic pipeline
        # failure (69) its class inherits from: a drained run did not
        # fail, and scripts branch on the distinction.
        exc = InterruptedRunError("deadbeef-0001")
        assert isinstance(exc, PipelineError)
        assert exit_code_for(exc) == 71
        assert "--resume deadbeef-0001" in str(exc)

    def test_main_maps_library_errors(self, monkeypatch, capsys):
        import repro.cli as cli_mod

        def corrupt():
            raise StoreCorruptError("cache entry failed its checksum")

        monkeypatch.setattr(cli_mod, "table1", corrupt)
        assert main(["list"]) == 66
        err = capsys.readouterr().err
        assert "error:" in err
        assert "checksum" in err

    def test_main_lets_foreign_errors_propagate(self, monkeypatch):
        import repro.cli as cli_mod

        def boom():
            raise RuntimeError("a genuine bug")

        monkeypatch.setattr(cli_mod, "table1", boom)
        with pytest.raises(RuntimeError):
            main(["list"])


class TestSweepResume:
    """The checkpointed sweep round trip, driven in-process.

    An interruption (the ``sigterm_drain`` chaos fault standing in for
    SIGTERM) must exit 71, and re-running over the same cache directory
    must complete with a report byte-identical to an uninterrupted
    run's.  The full kill-anywhere matrix (real process death at every
    journal transition) lives in
    ``tests/integration/test_checkpoint_resume.py``.
    """

    _ARGS = ["sweep", "--apps", "fft", "-n", "1", "--scale", "0.25"]

    @pytest.fixture(autouse=True)
    def _fault_hygiene(self, monkeypatch):
        for var in ("REPRO_FAULTS", "REPRO_CACHE_DIR", "REPRO_JOBS"):
            monkeypatch.delenv(var, raising=False)
        monkeypatch.setenv("REPRO_FSYNC", "0")  # tmpfs-speed tests
        faults.reset()
        yield
        faults.reset()

    def test_sweep_without_cache_runs_plain(self, capsys):
        assert main(self._ARGS) == 0
        out = capsys.readouterr().out
        assert "Sensitivity sweep over D" in out

    def test_interrupt_then_resume_is_bit_identical(
        self, tmp_path, monkeypatch, capsys
    ):
        clean_dir = tmp_path / "clean"
        assert main(self._ARGS + ["--cache", str(clean_dir)]) == 0
        clean_out = capsys.readouterr().out

        # Interrupt mid-sweep: a graceful-shutdown request injected at
        # the fifth journal transition (inside the per-config analysis).
        faulted_dir = tmp_path / "faulted"
        monkeypatch.setenv("REPRO_FAULTS", "sigterm_drain:5")
        faults.arm()
        assert main(
            self._ARGS + ["--cache", str(faulted_dir)]
        ) == 71
        captured = capsys.readouterr()
        assert "--resume" in captured.err
        run_ids = [
            line.split()[2]
            for line in captured.err.splitlines()
            if line.startswith("run id: ")
        ]
        assert len(run_ids) == 1

        # Resume (auto): completes, reports the resumed run id, and the
        # report on stdout is byte-identical to the clean run's.
        faults.arm("")
        assert main(self._ARGS + ["--cache", str(faulted_dir)]) == 0
        captured = capsys.readouterr()
        assert captured.out == clean_out
        assert "run id: %s (resumed)" % run_ids[0] in captured.err

        # Explicit --resume of the (now finished) run id also works.
        assert main(
            self._ARGS
            + ["--cache", str(faulted_dir), "--resume", run_ids[0]]
        ) == 0
        assert capsys.readouterr().out == clean_out

    def test_resume_fresh_ignores_interrupted_run(
        self, tmp_path, monkeypatch, capsys
    ):
        cache = tmp_path / "cache"
        monkeypatch.setenv("REPRO_FAULTS", "sigterm_drain:5")
        faults.arm()
        assert main(self._ARGS + ["--cache", str(cache)]) == 71
        capsys.readouterr()

        faults.arm("")
        assert main(
            self._ARGS + ["--cache", str(cache), "--resume", "fresh"]
        ) == 0
        err = capsys.readouterr().err
        assert "(resumed)" not in err
