"""Unit tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "lu"])
        args_dict = vars(args)
        assert args_dict["workload"] == "lu"
        assert args_dict["seed"] == 1
        assert args_dict["window"] == 16

    def test_unknown_workload_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "doom"])

    def test_inject_options(self):
        args = build_parser().parse_args(
            ["inject", "fft", "-n", "3", "--seed", "9"]
        )
        assert args.runs == 3
        assert args.seed == 9


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "water-sp" in out

    def test_run(self, capsys):
        assert main(["run", "lu", "--scale", "0.25", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "races    : 0" in out
        assert "order log" in out

    def test_replay(self, capsys):
        assert main(["replay", "fft", "--scale", "0.25"]) == 0
        assert "replay verdict: replay equivalent" in \
            capsys.readouterr().out

    def test_inject(self, capsys):
        assert main(
            ["inject", "raytrace", "-n", "2", "--scale", "0.25"]
        ) == 0
        out = capsys.readouterr().out
        assert "sync instances" in out
        assert "CORD-D16" in out
