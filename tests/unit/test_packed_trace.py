"""Unit tests for columnar trace storage and the recorded-trace store."""

import pickle
import sys

import pytest

from repro.common.types import AccessClass, AccessMode
from repro.trace import (
    MemoryEvent,
    PackedTrace,
    PackedTraceStore,
    Trace,
    decode_packed_trace,
    encode_packed_trace,
)
from repro.trace import kernels as _kernels
from repro.trace.packed import FLAG_SYNC, FLAG_WRITE


def _event(index, thread, address, write, sync, icount, value=0):
    return MemoryEvent(
        index,
        thread,
        address,
        AccessMode.WRITE if write else AccessMode.READ,
        AccessClass.SYNC if sync else AccessClass.DATA,
        icount,
        value,
    )


_EVENTS = [
    _event(0, 0, 0x40, False, False, 3, 7),
    _event(1, 1, 0x44, True, False, 1, -9),
    _event(2, 0, 0x80, True, True, 5, 1),
    _event(3, 2, 0x40, False, True, 2, 0),
]


class TestPackedTrace:
    def test_from_events_roundtrip(self):
        packed = PackedTrace.from_events(
            _EVENTS, [10, 4, 3], name="t", hung=True, seed=5
        )
        assert len(packed) == len(_EVENTS)
        assert packed.n_threads == 3
        back = packed.materialize_events()
        for mine, theirs in zip(_EVENTS, back):
            assert mine.key() == theirs.key()
            assert mine.value == theirs.value
            assert mine.index == theirs.index

    def test_flag_encoding(self):
        packed = PackedTrace.from_events(_EVENTS, [10, 4, 3])
        assert list(packed.flags) == [
            0,
            FLAG_WRITE,
            FLAG_WRITE | FLAG_SYNC,
            FLAG_SYNC,
        ]

    def test_append_matches_from_events(self):
        packed = PackedTrace([10, 4, 3])
        for e in _EVENTS:
            packed.append(
                e.thread,
                e.address,
                (FLAG_WRITE if e.is_write else 0)
                | (FLAG_SYNC if e.is_sync else 0),
                e.icount,
                e.value,
            )
        assert packed.columns_equal(
            PackedTrace.from_events(_EVENTS, [10, 4, 3])
        )

    def test_columns_order(self):
        packed = PackedTrace.from_events(_EVENTS, [10, 4, 3])
        thread, address, flags, icount, value = packed.columns()
        assert thread is packed.thread
        assert value is packed.value

    def test_from_trace_reuses_packed_backing(self):
        packed = PackedTrace.from_events(_EVENTS, [10, 4, 3])
        trace = packed.to_trace()
        assert PackedTrace.from_trace(trace) is packed

    def test_from_trace_packs_object_backed(self):
        trace = Trace(_EVENTS, [10, 4, 3], name="obj", seed=9)
        packed = PackedTrace.from_trace(trace)
        assert packed.name == "obj"
        assert packed.seed == 9
        assert len(packed) == len(_EVENTS)

    def test_columns_equal_detects_difference(self):
        a = PackedTrace.from_events(_EVENTS, [10, 4, 3])
        b = PackedTrace.from_events(_EVENTS, [10, 4, 3])
        assert a.columns_equal(b)
        b.value[0] += 1
        assert not a.columns_equal(b)


class TestLazyTrace:
    def test_events_materialize_lazily(self):
        packed = PackedTrace.from_events(_EVENTS, [10, 4, 3])
        trace = Trace.from_packed(packed)
        assert trace._events is None
        assert len(trace) == len(_EVENTS)  # no materialization needed
        assert trace._events is None
        events = trace.events
        assert trace._events is events  # cached after first access
        assert [e.key() for e in events] == [e.key() for e in _EVENTS]

    def test_metadata_copied_from_packed(self):
        packed = PackedTrace.from_events(
            _EVENTS, [10, 4, 3], name="meta", hung=True, seed=42
        )
        trace = Trace.from_packed(packed)
        assert trace.name == "meta"
        assert trace.hung is True
        assert trace.seed == 42
        assert trace.n_threads == 3

    def test_addresses_without_materialization(self):
        trace = Trace.from_packed(
            PackedTrace.from_events(_EVENTS, [10, 4, 3])
        )
        assert trace.addresses() == [0x40, 0x44, 0x80]
        assert trace._events is None


class TestTraceCopySemantics:
    def test_default_copies(self):
        events = list(_EVENTS)
        trace = Trace(events, [10, 4, 3])
        events.append(_EVENTS[0])
        assert len(trace) == len(_EVENTS)

    def test_nocopy_adopts_list(self):
        events = list(_EVENTS)
        trace = Trace(events, [10, 4, 3], copy=False)
        assert trace.events is events


class TestEngineRecordsPacked:
    def test_run_program_returns_packed_backed_trace(self):
        from repro.engine import run_program
        from repro.workloads import WorkloadParams, get_workload

        program = get_workload("fft").build(WorkloadParams(scale=0.25))
        trace = run_program(program, seed=3)
        packed = trace.packed
        assert packed is not None
        assert len(packed) == len(trace.events)
        for event, (t, a, f, ic, v) in zip(
            trace.events,
            zip(
                packed.thread,
                packed.address,
                packed.flags,
                packed.icount,
                packed.value,
            ),
        ):
            assert event.thread == t
            assert event.address == a
            assert event.is_write == bool(f & FLAG_WRITE)
            assert event.is_sync == bool(f & FLAG_SYNC)
            assert event.icount == ic
            assert event.value == v


class TestDerivedViews:
    """The per-trace caches behind the analysis plans (PR 3)."""

    _GEOM = (~0x3F, 6, 0x7)  # 64-byte lines, 8 sets

    def _packed(self):
        return PackedTrace.from_events(_EVENTS, [10, 4, 3])

    def test_geometry_columns_values(self):
        packed = self._packed()
        lines, words, wbits, sets = packed.geometry_columns(*self._GEOM)
        assert lines == [a & ~0x3F for a in packed.address]
        assert words == [(a & 0x3F) >> 2 for a in packed.address]
        assert wbits == [1 << w for w in words]
        assert sets == [(l >> 6) & 0x7 for l in lines]

    def test_geometry_columns_cached_per_key(self):
        packed = self._packed()
        first = packed.geometry_columns(*self._GEOM)
        assert packed.geometry_columns(*self._GEOM) is first
        other = packed.geometry_columns(~0x1F, 5, 0x7)
        assert other is not first
        assert packed.geometry_columns(~0x1F, 5, 0x7) is other
        assert packed.geometry_columns(*self._GEOM) is first

    def test_geometry_key_normalizes_mask_sign(self):
        # A negative Python mask and its two's-complement u64 twin must
        # share one cache entry (both spellings occur in configs).
        packed = self._packed()
        negative = packed.geometry_columns(~0x3F, 6, 0x7)
        unsigned = packed.geometry_columns(
            ~0x3F & 0xFFFFFFFFFFFFFFFF, 6, 0x7
        )
        assert unsigned is negative

    def test_geometry_cache_invalidated_by_growth(self):
        packed = self._packed()
        stale = packed.geometry_columns(*self._GEOM)
        packed.append(1, 0x1C0, FLAG_WRITE, 9, 0)
        fresh = packed.geometry_columns(*self._GEOM)
        assert fresh is not stale
        assert len(fresh[0]) == len(packed.thread)

    def test_geometry_columns_match_scalar_fallback(self, monkeypatch):
        with_kernels = self._packed().geometry_columns(*self._GEOM)
        monkeypatch.setenv("REPRO_NO_NUMPY", "1")
        scalar = self._packed().geometry_columns(*self._GEOM)
        assert scalar == with_kernels

    def test_plan_accessors_none_when_kernels_disabled(self, monkeypatch):
        monkeypatch.setenv("REPRO_NO_NUMPY", "1")
        packed = self._packed()
        assert packed.segment_plan(~0x3F) is None
        assert packed.word_residual() is None
        assert packed.line_residual(~0x3F) is None

    @pytest.mark.skipif(
        _kernels._np is None,
        reason="needs numpy for the enabled half of the toggle",
    )
    def test_disabled_kernels_never_poison_plan_cache(self, monkeypatch):
        # Toggling the escape hatch mid-process must not serve a stale
        # None (or a stale plan) for the other mode.
        packed = self._packed()
        monkeypatch.setenv("REPRO_NO_NUMPY", "1")
        assert packed.segment_plan(~0x3F) is None
        monkeypatch.delenv("REPRO_NO_NUMPY")
        plan = packed.segment_plan(~0x3F)
        assert plan is not None
        assert plan.starts[-1] == len(packed.thread)
        monkeypatch.setenv("REPRO_NO_NUMPY", "1")
        assert packed.segment_plan(~0x3F) is None

    def test_derived_generic_cache_builds_once(self):
        packed = self._packed()
        calls = []

        def build():
            calls.append(1)
            return {"x": 1}

        first = packed.derived(("mytag", 7), build)
        assert packed.derived(("mytag", 7), build) is first
        assert len(calls) == 1
        assert packed.derived(("mytag", 8), build) is not first
        packed.append(1, 0x200, 0, 12, 0)
        rebuilt = packed.derived(("mytag", 7), build)
        assert rebuilt is not first


class TestPackedTraceStore:
    def _packed(self):
        return PackedTrace.from_events(
            _EVENTS, [10, 4, 3], name="store-me", seed=11
        )

    def test_run_roundtrip(self, tmp_path):
        store = PackedTraceStore(tmp_path)
        store.store_run("fft/params", (3, 1, 0.1), self._packed(),
                        {"injected": True})
        hit = store.load_run("fft/params", (3, 1, 0.1))
        assert hit is not None
        packed, extra = hit
        assert packed.columns_equal(self._packed())
        assert extra == {"injected": True}

    def test_miss_on_different_components(self, tmp_path):
        store = PackedTraceStore(tmp_path)
        store.store_run("fft/params", (3, 1, 0.1), self._packed(), {})
        assert store.load_run("fft/params", (3, 2, 0.1)) is None
        assert store.load_run("fft/params", (3, 1, 0.2)) is None
        assert store.load_run("other/params", (3, 1, 0.1)) is None

    def test_value_roundtrip(self, tmp_path):
        store = PackedTraceStore(tmp_path)
        assert store.load_value("ns", ("sync_instances", 5)) is None
        store.store_value("ns", ("sync_instances", 5), 17)
        assert store.load_value("ns", ("sync_instances", 5)) == 17

    def test_corrupt_entry_misses(self, tmp_path):
        store = PackedTraceStore(tmp_path)
        key = ("fft/params", (3, 1, 0.1))
        store.store_run(*key, self._packed(), {})
        path = store._path("trace", *key)
        path.write_bytes(b"garbage")
        assert store.load_run(*key) is None

    def test_wrong_trace_payload_misses(self, tmp_path):
        # A healthy frame around a broken entry (the writer was buggy)
        # must still miss -- and be quarantined, not analyzed.
        from repro.trace.store import frame_payload

        store = PackedTraceStore(tmp_path)
        key = ("fft/params", (3, 1, 0.1))
        store.store_run(*key, self._packed(), {})
        path = store._path("trace", *key)
        path.write_bytes(frame_payload(
            pickle.dumps({"trace": b"not a codec blob", "extra": {}})
        ))
        assert store.load_run(*key) is None
        assert store.stats["quarantined"] == 1

    def test_codec_used_for_trace_payload(self, tmp_path):
        # The stored blob must be the store frame around a CORDRUN3
        # container whose trace section is the v3 codec output, placed
        # 64-byte aligned in the file, so offline tools can decode
        # entries with the frame helper plus two struct reads.
        from repro.trace.store import (
            _RUN_HEADER,
            _RUN_MAGIC,
            unframe_payload,
        )

        store = PackedTraceStore(tmp_path)
        key = ("fft/params", (3, 1, 0.1))
        store.store_run(*key, self._packed(), {"injected": True})
        path = store._path("trace", *key)
        raw = path.read_bytes()
        payload = unframe_payload(raw)
        assert payload[: len(_RUN_MAGIC)] == _RUN_MAGIC
        extra_len, pad = _RUN_HEADER.unpack_from(payload, len(_RUN_MAGIC))
        start = len(_RUN_MAGIC) + _RUN_HEADER.size
        assert pickle.loads(payload[start: start + extra_len]) == {
            "injected": True
        }
        trace = payload[start + extra_len + pad:]
        assert trace == encode_packed_trace(self._packed())
        assert decode_packed_trace(trace).columns_equal(self._packed())
        # The v3 blob must start 64-byte aligned in the *file* so mmap
        # hands out aligned column sections.
        assert raw.index(trace) % 64 == 0

    def test_legacy_pickled_entry_still_hits(self, tmp_path):
        # Entries written before the CORDRUN3 container (a pickled dict
        # around the trace bytes) must keep decoding under the same
        # digest keys -- eagerly, counted as legacy.
        from repro.trace.serialize import encode_packed_trace_v2
        from repro.trace.store import frame_payload
        from repro.resilience.checkpoint import atomic_write_bytes

        store = PackedTraceStore(tmp_path)
        key = ("fft/params", (3, 1, 0.1))
        legacy = pickle.dumps({
            "trace": encode_packed_trace_v2(self._packed()),
            "extra": {"injected": False},
        }, protocol=pickle.HIGHEST_PROTOCOL)
        atomic_write_bytes(
            store._path("trace", *key), frame_payload(legacy)
        )
        hit = store.load_run(*key)
        assert hit is not None
        packed, extra = hit
        assert packed.columns_equal(self._packed())
        assert extra == {"injected": False}
        assert store.stats["legacy_entries"] == 1
        assert store.stats["eager_decodes"] == 1
        assert store.stats["mmap_hits"] == 0

    def test_mmap_hit_and_no_mmap_escape_hatch(self, tmp_path, monkeypatch):
        store = PackedTraceStore(tmp_path)
        key = ("fft/params", (3, 1, 0.1))
        store.store_run(*key, self._packed(), {})
        packed, _ = store.load_run(*key)
        assert packed.columns_equal(self._packed())
        if sys.byteorder == "little":
            assert packed.zero_copy
            assert store.stats["mmap_hits"] == 1
            assert store.stats["eager_decodes"] == 0
        monkeypatch.setenv("REPRO_NO_MMAP", "1")
        eager = PackedTraceStore(tmp_path)
        packed2, _ = eager.load_run(*key)
        assert not packed2.zero_copy
        assert packed2.columns_equal(self._packed())
        assert eager.stats["eager_decodes"] == 1
        assert eager.stats["mmap_hits"] == 0
