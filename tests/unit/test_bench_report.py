"""Unit tests for the benchmark-trajectory report tool."""

import json

from repro import bench_report


def _write(path, payload):
    path.write_text(json.dumps(payload))
    return str(path)


def _file(entries, schema=1):
    return {"schema": schema, "entries": entries}


def _entry(label, results):
    return {"label": label, "date": "2026-08-08", "results": results}


class TestLoadEntries:
    def test_loads_schema_one(self, tmp_path):
        path = _write(tmp_path / "BENCH_x.json",
                      _file([_entry("a", {"t": {"wall_s": 1.0}})]))
        entries = bench_report.load_entries(path)
        assert entries is not None and len(entries) == 1

    def test_unknown_schema_is_skipped(self, tmp_path, capsys):
        path = _write(tmp_path / "BENCH_x.json", _file([], schema=99))
        assert bench_report.load_entries(path) is None
        assert "unknown schema" in capsys.readouterr().err

    def test_garbage_json_is_skipped(self, tmp_path, capsys):
        path = tmp_path / "BENCH_x.json"
        path.write_text("{not json")
        assert bench_report.load_entries(str(path)) is None
        assert "skipping" in capsys.readouterr().err


class TestTrajectory:
    ENTRIES = [
        _entry("pr1", {"fast": {"wall_s": 0.5, "events_per_s": 100}}),
        _entry("pr2", {"fast": {"wall_s": 0.25, "events_per_s": 200},
                       "slow": {"wall_s": 2.0}}),
    ]

    def test_labels_become_columns_in_order(self):
        table = bench_report.trajectory_table(
            self.ENTRIES, "wall_s", "BENCH"
        )
        header = table.splitlines()[1]
        assert header.index("pr1") < header.index("pr2")

    def test_missing_cells_render_as_dash(self):
        table = bench_report.trajectory_table(
            self.ENTRIES, "wall_s", "BENCH"
        )
        slow_row = next(
            line for line in table.splitlines()
            if line.startswith("slow")
        )
        assert "-" in slow_row and "2.0" in slow_row

    def test_absent_metric_yields_none(self):
        assert bench_report.trajectory_table(
            self.ENTRIES, "no_such_metric", "BENCH"
        ) is None

    def test_duplicate_labels_collapse_to_one_column(self):
        entries = [
            _entry("pr1", {"t": {"wall_s": 1.0}}),
            _entry("pr1", {"t2": {"wall_s": 2.0}}),
        ]
        table = bench_report.trajectory_table(entries, "wall_s", "B")
        assert table.splitlines()[1].count("pr1") == 1


class TestMain:
    def test_renders_default_glob(self, tmp_path, monkeypatch, capsys):
        bench = tmp_path / "benchmarks"
        bench.mkdir()
        _write(bench / "BENCH_t.json",
               _file([_entry("pr8", {"t": {"wall_s": 0.1}})]))
        monkeypatch.chdir(tmp_path)
        assert bench_report.main([]) == 0
        out = capsys.readouterr().out
        assert "pr8" in out and "wall_s" in out

    def test_metrics_filter(self, tmp_path, capsys):
        path = _write(
            tmp_path / "BENCH_t.json",
            _file([_entry("pr8", {"t": {"wall_s": 0.1,
                                        "events_per_s": 5}})]),
        )
        assert bench_report.main([path, "--metrics", "events_per_s"]) == 0
        out = capsys.readouterr().out
        assert "events_per_s" in out and "wall_s" not in out

    def test_no_files_is_an_error(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert bench_report.main([]) == 1

    def test_real_committed_trajectories_render(self):
        # The committed BENCH_*.json files must stay renderable.
        paths = bench_report.default_paths()
        assert paths, "committed trajectory files missing"
        assert bench_report.main(["--metrics", "wall_s"]) == 0
