"""Unit tests for the hardware area-overhead model (Sections 2.3-2.4)."""

import pytest

from repro.analysis.area import (
    AreaModel,
    cord_area,
    per_line_vector_area,
    per_word_vector_area,
    scaling_table,
)
from repro.common.errors import ConfigError


class TestPaperFigures:
    def test_per_word_vector_is_200_percent(self):
        # "per-word vector timestamps, each with four 16-bit components,
        # represent a 200% cache area overhead"
        assert per_word_vector_area(4).overhead == pytest.approx(2.00)

    def test_per_line_vector_is_38_percent(self):
        # "with 4x16-bit vector timestamps ... the chip area overhead of
        # timestamps and access bits is 38% of the cache's data area"
        assert per_line_vector_area(4).overhead == pytest.approx(
            0.38, abs=0.01
        )

    def test_cord_is_19_percent(self):
        # "16-bit scalar clocks ... reduce this overhead to 19%,
        # regardless of the number of threads supported"
        assert cord_area().overhead == pytest.approx(0.19, abs=0.01)

    def test_filters_are_negligible(self):
        with_f = cord_area(include_filters=True).overhead
        without = cord_area().overhead
        assert with_f > without
        assert with_f - without < 0.005


class TestScaling:
    def test_vector_grows_linearly(self):
        rows = scaling_table()
        vector = [row[1] for row in rows]
        assert vector == sorted(vector)
        # Doubling threads roughly doubles the stamp contribution.
        assert per_line_vector_area(8).overhead > \
            1.5 * per_line_vector_area(2).overhead

    def test_scalar_is_constant(self):
        rows = scaling_table()
        scalar = {row[2] for row in rows}
        assert len(scalar) == 1

    def test_crossover_always_vector_above_scalar(self):
        for n_threads in (2, 4, 8, 16, 64):
            assert per_line_vector_area(n_threads).overhead > \
                cord_area().overhead


class TestModelDetails:
    def test_bits_accounting(self):
        # 2 entries x 16 bits + 2 entries x 16 words x 2 bits = 96 bits
        # over 512 data bits = 18.75%.
        model = cord_area()
        assert model.metadata_bits_per_line == 96
        assert model.data_bits_per_line == 512
        assert model.overhead == pytest.approx(96 / 512)

    def test_validation(self):
        with pytest.raises(ConfigError):
            AreaModel(line_bytes=61)
        with pytest.raises(ConfigError):
            AreaModel(n_threads=0)

    def test_words_per_line(self):
        assert AreaModel().words_per_line == 16
