"""Unit tests for figure CSV export."""

from repro.experiments.export import (
    figure_to_csv,
    read_figure_csv,
    write_figure_csv,
)
from repro.experiments.figures import FigureResult


def make_figure():
    figure = FigureResult("Figure X", "test", ["a", "b"])
    figure.rows["app1"] = [0.5, 0.25]
    figure.rows["app2"] = [1.0, 0.0]
    figure.average = [0.75, 0.125]
    return figure


class TestCsvExport:
    def test_header_and_rows(self):
        text = figure_to_csv(make_figure())
        lines = text.strip().splitlines()
        assert lines[0] == "app,a,b"
        assert lines[1].startswith("app1,0.5")
        assert lines[-1].startswith("Average,")

    def test_roundtrip(self, tmp_path):
        figure = make_figure()
        path = write_figure_csv(figure, tmp_path / "fig.csv")
        restored = read_figure_csv(path)
        assert restored.series == figure.series
        assert restored.rows.keys() == figure.rows.keys()
        for app in figure.rows:
            assert restored.rows[app] == figure.rows[app]
        assert restored.average == figure.average

    def test_precision_preserved(self, tmp_path):
        figure = FigureResult("f", "t", ["x"])
        figure.rows["a"] = [0.123456]
        figure.average = [0.123456]
        path = write_figure_csv(figure, tmp_path / "p.csv")
        assert read_figure_csv(path).rows["a"] == [0.123456]
