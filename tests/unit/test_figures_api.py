"""Unit tests for the FigureResult container and driver plumbing."""

import pytest

from repro.experiments.figures import FigureResult


class TestFigureResult:
    def make(self):
        fig = FigureResult(
            "Figure 99", "Test figure", ["a", "b"],
        )
        fig.rows["app1"] = [0.5, 0.25]
        fig.rows["app2"] = [1.0, 0.75]
        fig.average = [0.75, 0.5]
        return fig

    def test_value_lookup(self):
        fig = self.make()
        assert fig.value("app1", "a") == 0.5
        assert fig.value("app2", "b") == 0.75

    def test_average_of(self):
        fig = self.make()
        assert fig.average_of("b") == 0.5

    def test_unknown_series_raises(self):
        fig = self.make()
        with pytest.raises(ValueError):
            fig.value("app1", "zzz")

    def test_render_percent_mode(self):
        out = self.make().render()
        assert "Figure 99" in out
        assert "50.0%" in out
        assert "Average" in out

    def test_render_ratio_mode(self):
        fig = self.make()
        fig.as_percent = False
        out = fig.render()
        assert "0.5000" in out
        assert "%" not in out.splitlines()[-1]
