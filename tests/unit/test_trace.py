"""Unit tests for trace containers, stats, and conflict summaries."""

from repro.common.types import AccessClass, AccessMode
from repro.trace import (
    MemoryEvent,
    Trace,
    compute_stats,
    summarize_conflicts,
)


def ev(index, thread, address, write=False, sync=False, icount=None,
       value=0):
    return MemoryEvent(
        index,
        thread,
        address,
        AccessMode.WRITE if write else AccessMode.READ,
        AccessClass.SYNC if sync else AccessClass.DATA,
        index if icount is None else icount,
        value,
    )


class TestMemoryEvent:
    def test_conflicts(self):
        w0 = ev(0, 0, 8, write=True)
        r1 = ev(1, 1, 8)
        r2 = ev(2, 1, 12)
        assert w0.conflicts_with(r1)
        assert not r1.conflicts_with(r2)
        assert not w0.conflicts_with(ev(3, 0, 8, write=True))

    def test_key_is_interleaving_independent(self):
        a = ev(0, 1, 8, write=True, icount=5)
        b = ev(99, 1, 8, write=True, icount=5)
        assert a.key() == b.key()


class TestTrace:
    def make(self):
        events = [
            ev(0, 0, 8, write=True, icount=0),
            ev(1, 1, 8, icount=0),
            ev(2, 0, 12, icount=1, sync=True, write=True),
        ]
        return Trace(events, [2, 1], name="t")

    def test_basics(self):
        trace = self.make()
        assert len(trace) == 3
        assert trace.n_threads == 2
        assert trace[1].thread == 1
        assert trace.addresses() == [8, 12]

    def test_events_of_thread(self):
        trace = self.make()
        assert [e.index for e in trace.events_of_thread(0)] == [0, 2]

    def test_per_thread_sequences(self):
        trace = self.make()
        seqs = trace.per_thread_sequences()
        assert len(seqs[0]) == 2 and len(seqs[1]) == 1


class TestStats:
    def test_counts(self):
        trace = self.make_trace()
        stats = compute_stats(trace)
        assert stats.n_events == 4
        assert stats.n_reads == 2
        assert stats.n_writes == 2
        assert stats.n_sync == 1
        assert stats.n_data == 3
        assert 0 < stats.sync_fraction < 1

    def test_sharing(self):
        trace = self.make_trace()
        stats = compute_stats(trace)
        assert stats.distinct_words == 2
        assert stats.shared_words == 1  # address 8 touched by both

    def make_trace(self):
        events = [
            ev(0, 0, 8, write=True, icount=0),
            ev(1, 1, 8, icount=0),
            ev(2, 1, 16, icount=1),
            ev(3, 0, 8, icount=1, sync=True, write=True),
        ]
        return Trace(events, [2, 2])


class TestConflictSummary:
    def test_write_order_and_reads_from(self):
        events = [
            ev(0, 0, 8, write=True, icount=0),
            ev(1, 1, 8, icount=0),
            ev(2, 1, 8, write=True, icount=1),
            ev(3, 0, 8, icount=1),
        ]
        summary = summarize_conflicts(Trace(events, [2, 2]))
        assert summary.write_order[8] == [(0, 0), (1, 1)]
        assert summary.reads_from[(1, 0)] == (0, 0)
        assert summary.reads_from[(0, 1)] == (1, 1)

    def test_initial_read(self):
        events = [ev(0, 0, 8, icount=0)]
        summary = summarize_conflicts(Trace(events, [1]))
        assert summary.reads_from[(0, 0)] is None

    def test_equivalence_ignores_concurrent_reordering(self):
        # Two traces where *non-conflicting* accesses appear in different
        # global orders are equivalent.
        a = Trace(
            [ev(0, 0, 8, write=True, icount=0), ev(1, 1, 16, icount=0)],
            [1, 1],
        )
        b = Trace(
            [ev(0, 1, 16, icount=0), ev(1, 0, 8, write=True, icount=0)],
            [1, 1],
        )
        assert summarize_conflicts(a).equivalent_to(summarize_conflicts(b))

    def test_divergence_detected_and_described(self):
        a = Trace(
            [
                ev(0, 0, 8, write=True, icount=0),
                ev(1, 1, 8, write=True, icount=0),
            ],
            [1, 1],
        )
        b = Trace(
            [
                ev(0, 1, 8, write=True, icount=0),
                ev(1, 0, 8, write=True, icount=0),
            ],
            [1, 1],
        )
        sa, sb = summarize_conflicts(a), summarize_conflicts(b)
        assert not sa.equivalent_to(sb)
        assert "write order differs" in sa.first_difference(sb)

    def test_reads_from_divergence_described(self):
        a = Trace(
            [
                ev(0, 0, 8, write=True, icount=0),
                ev(1, 1, 8, icount=0),
            ],
            [1, 1],
        )
        b = Trace(
            [
                ev(0, 1, 8, icount=0),
                ev(1, 0, 8, write=True, icount=0),
            ],
            [1, 1],
        )
        sa, sb = summarize_conflicts(a), summarize_conflicts(b)
        assert not sa.equivalent_to(sb)
        assert "observes" in sa.first_difference(sb)
