"""Unit tests for the program IR: ops, address space, Program."""

import pytest

from repro.common.errors import ConfigError
from repro.program import (
    AddressSpace,
    ComputeOp,
    FlagSetOp,
    FlagWaitOp,
    LockOp,
    Program,
    ReadOp,
    Segment,
    UnlockOp,
    WriteOp,
)


class TestOps:
    def test_word_alignment_enforced(self):
        for cls in (ReadOp, LockOp, UnlockOp, FlagWaitOp, FlagSetOp):
            with pytest.raises(ValueError):
                cls(6)

    def test_write_value_default(self):
        assert WriteOp(8).value == 0

    def test_compute_positive(self):
        with pytest.raises(ValueError):
            ComputeOp(0)
        assert ComputeOp(5).amount == 5

    def test_flag_defaults(self):
        assert FlagWaitOp(4).at_least == 1
        assert FlagSetOp(4).value == 1

    def test_ops_are_hashable_values(self):
        assert ReadOp(8) == ReadOp(8)
        assert len({WriteOp(8, 1), WriteOp(8, 1)}) == 1


class TestAddressSpace:
    def test_disjoint_segments(self):
        space = AddressSpace()
        data = space.alloc("d")
        sync = space.alloc_sync("s")
        assert space.segment_of(data) is Segment.DATA
        assert space.segment_of(sync) is Segment.SYNC
        assert space.is_sync_address(sync)
        assert not space.is_sync_address(data)

    def test_bump_allocation_is_word_spaced(self):
        space = AddressSpace()
        a = space.alloc("a")
        b = space.alloc("b")
        assert b == a + 4

    def test_line_alignment(self):
        space = AddressSpace()
        space.alloc("pad")  # misalign the cursor
        aligned = space.alloc("x", align_to_line=True)
        assert aligned % space.line_size == 0

    def test_alloc_array_addresses(self):
        space = AddressSpace()
        addrs = space.alloc_array("arr", 5)
        assert addrs == [addrs[0] + 4 * i for i in range(5)]
        assert addrs[0] % space.line_size == 0

    def test_name_lookup(self):
        space = AddressSpace()
        base = space.alloc("myvar")
        assert space.name_of(base) == "myvar"
        assert space.name_of(base + 4).startswith("0x")

    def test_words_allocated(self):
        space = AddressSpace()
        space.alloc("a", words=3)
        assert space.words_allocated(Segment.DATA) == 3

    def test_bad_line_size_rejected(self):
        with pytest.raises(ConfigError):
            AddressSpace(line_size=48)  # not a power of two
        with pytest.raises(ConfigError):
            AddressSpace(line_size=2)  # below word size

    def test_bad_alloc_rejected(self):
        space = AddressSpace()
        with pytest.raises(ConfigError):
            space.alloc("x", words=0)


class TestProgram:
    def test_requires_bodies(self):
        with pytest.raises(ConfigError):
            Program([], AddressSpace())

    def test_instantiate_fresh_generators(self):
        def body(tid):
            yield ReadOp(1048576)

        program = Program([body, body], AddressSpace(), name="p")
        first = program.instantiate()
        second = program.instantiate()
        assert len(first) == 2
        assert first[0] is not second[0]
        assert program.n_threads == 2
