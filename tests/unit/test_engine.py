"""Unit tests for the execution engine, schedulers, and interceptors."""

import pytest

from repro.common.errors import ConfigError, SimulationError
from repro.common.rng import DeterministicRng
from repro.common.types import AccessClass, AccessMode
from repro.engine import (
    ExecutionEngine,
    RandomScheduler,
    RoundRobinScheduler,
    run_program,
)
from repro.engine.interceptor import CountingInterceptor
from repro.program import AddressSpace, Program
from repro.program.ops import (
    ComputeOp,
    FlagSetOp,
    FlagWaitOp,
    LockOp,
    ReadOp,
    UnlockOp,
    WriteOp,
)


def program_of(*bodies, name="t"):
    return Program(list(bodies), AddressSpace(), name=name)


DATA = 0x100000
SYNC = 0x8000000


class TestSchedulers:
    def test_round_robin_cycles(self):
        sched = RoundRobinScheduler()
        picks = [sched.pick([0, 1, 2]) for _ in range(6)]
        assert picks == [0, 1, 2, 0, 1, 2]

    def test_round_robin_skips_missing(self):
        sched = RoundRobinScheduler()
        assert sched.pick([0, 1, 2]) == 0
        assert sched.pick([2]) == 2
        assert sched.pick([0, 1]) == 0

    def test_random_scheduler_deterministic(self):
        a = RandomScheduler(DeterministicRng(3))
        b = RandomScheduler(DeterministicRng(3))
        runnable = [0, 1, 2, 3]
        assert [a.pick(runnable) for _ in range(50)] == [
            b.pick(runnable) for _ in range(50)
        ]

    def test_random_scheduler_uses_slices(self):
        sched = RandomScheduler(
            DeterministicRng(3), switch_probability=0.01
        )
        picks = [sched.pick([0, 1]) for _ in range(20)]
        # With 1% switching, long runs of the same thread dominate.
        assert max(
            len(list(g)) for g in _runs(picks)
        ) > 5

    def test_bad_switch_probability(self):
        with pytest.raises(ConfigError):
            RandomScheduler(DeterministicRng(1), switch_probability=0.0)


def _runs(items):
    import itertools

    return (group for _key, group in itertools.groupby(items))


class TestEngineBasics:
    def test_read_returns_stored_value(self):
        seen = []

        def body(tid):
            yield WriteOp(DATA, 42)
            value = yield ReadOp(DATA)
            seen.append(value)

        run_program(program_of(body), seed=1)
        assert seen == [42]

    def test_unwritten_reads_zero(self):
        seen = []

        def body(tid):
            seen.append((yield ReadOp(DATA)))

        run_program(program_of(body), seed=1)
        assert seen == [0]

    def test_compute_counts_instructions_but_no_event(self):
        def body(tid):
            yield ComputeOp(10)
            yield WriteOp(DATA, 1)

        trace = run_program(program_of(body), seed=1)
        assert len(trace.events) == 1
        assert trace.final_icounts == [11]
        assert trace.events[0].icount == 10

    def test_event_metadata(self):
        def body(tid):
            yield WriteOp(DATA, 5)

        trace = run_program(program_of(body), seed=1)
        event = trace.events[0]
        assert event.thread == 0
        assert event.mode is AccessMode.WRITE
        assert event.klass is AccessClass.DATA
        assert event.value == 5


class TestLockSemantics:
    def test_lock_lowering_events(self):
        def body(tid):
            yield LockOp(SYNC)
            yield UnlockOp(SYNC)

        trace = run_program(program_of(body), seed=1)
        kinds = [(e.mode, e.klass) for e in trace.events]
        assert kinds == [
            (AccessMode.READ, AccessClass.SYNC),
            (AccessMode.WRITE, AccessClass.SYNC),
            (AccessMode.WRITE, AccessClass.SYNC),
        ]

    def test_mutual_exclusion(self):
        order = []

        def body(tid):
            yield LockOp(SYNC)
            order.append(("enter", tid))
            yield WriteOp(DATA, tid)
            yield ComputeOp(5)
            yield ReadOp(DATA)
            order.append(("exit", tid))
            yield UnlockOp(SYNC)

        run_program(program_of(body, body, body), seed=3)
        # Critical sections never interleave.
        for i in range(0, len(order), 2):
            assert order[i][0] == "enter"
            assert order[i + 1][0] == "exit"
            assert order[i][1] == order[i + 1][1]

    def test_recursive_lock_rejected(self):
        def body(tid):
            yield LockOp(SYNC)
            yield LockOp(SYNC)

        with pytest.raises(SimulationError):
            run_program(program_of(body), seed=1)

    def test_unlock_without_hold_rejected(self):
        def body(tid):
            yield UnlockOp(SYNC)

        with pytest.raises(SimulationError):
            run_program(program_of(body), seed=1)


class TestFlagSemantics:
    def test_wait_blocks_until_set(self):
        order = []

        def waiter(tid):
            yield FlagWaitOp(SYNC, 1)
            order.append("woke")

        def setter(tid):
            yield ComputeOp(3)
            order.append("set")
            yield FlagSetOp(SYNC, 1)

        run_program(program_of(waiter, setter), seed=1)
        assert order == ["set", "woke"]

    def test_wait_threshold(self):
        def waiter(tid):
            yield FlagWaitOp(SYNC, 3)

        def setter(tid):
            yield FlagSetOp(SYNC, 1)
            yield FlagSetOp(SYNC, 2)
            yield FlagSetOp(SYNC, 3)

        trace = run_program(program_of(waiter, setter), seed=1)
        # Waiter's single sync read observes the satisfying value.
        waits = [e for e in trace.events if e.thread == 0]
        assert len(waits) == 1
        assert waits[0].value == 3

    def test_non_monotone_set_rejected(self):
        def body(tid):
            yield FlagSetOp(SYNC, 5)
            yield FlagSetOp(SYNC, 4)

        with pytest.raises(SimulationError):
            run_program(program_of(body), seed=1)

    def test_deadlock_watchdog_marks_hung(self):
        def body(tid):
            yield FlagWaitOp(SYNC, 1)  # never satisfied

        trace = run_program(program_of(body), seed=1)
        assert trace.hung


class TestDeterminism:
    def test_same_seed_same_trace(self, counter_program):
        a = run_program(counter_program, seed=11)
        b = run_program(counter_program, seed=11)
        assert [e.key() for e in a.events] == [e.key() for e in b.events]

    def test_different_seed_different_interleaving(self, counter_program):
        a = run_program(counter_program, seed=11)
        b = run_program(counter_program, seed=12)
        assert [e.thread for e in a.events] != [e.thread for e in b.events]

    def test_counter_value_correct_any_seed(self, counter_program):
        counter_addr = counter_program.counter_address
        for seed in range(5):
            trace = run_program(counter_program, seed=seed)
            final = [
                e.value
                for e in trace.events
                if e.is_write and e.address == counter_addr
            ][-1]
            assert final == 16  # 4 threads x 4 rounds


class TestInterceptors:
    def test_counting_interceptor(self, counter_program):
        counter = CountingInterceptor()
        run_program(counter_program, seed=2, interceptor=counter)
        assert counter.count == counter.lock_instances + \
            counter.wait_instances
        assert counter.lock_instances > 0
        assert counter.wait_instances > 0

    def test_blocked_lock_counts_once(self):
        # A lock that blocks and retries is still one dynamic instance.
        def holder(tid):
            yield LockOp(SYNC)
            yield ComputeOp(50)
            yield UnlockOp(SYNC)

        counter = CountingInterceptor()
        run_program(
            program_of(holder, holder), seed=1, interceptor=counter
        )
        assert counter.lock_instances == 2


class TestEngineStepApi:
    def test_step_finished_thread_rejected(self):
        def body(tid):
            yield WriteOp(DATA, 1)

        engine = ExecutionEngine(program_of(body))
        while not engine.all_finished():
            engine.step(0)
        with pytest.raises(SimulationError):
            engine.step(0)

    def test_runnable_excludes_blocked(self):
        def waiter(tid):
            yield FlagWaitOp(SYNC, 1)

        def setter(tid):
            yield FlagSetOp(SYNC, 1)

        engine = ExecutionEngine(program_of(waiter, setter))
        assert not engine.step(0)  # blocks
        assert engine.runnable_threads() == [1]
        engine.step(1)
        assert 0 in engine.runnable_threads()


class TestAcquireSplit:
    def test_lock_acquire_retires_in_two_steps(self):
        # The acquire's read and write are separate engine steps so that
        # order-log fragment boundaries can fall between them; the lock
        # is reserved at the read step (atomicity).
        def body(tid):
            yield LockOp(SYNC)
            yield UnlockOp(SYNC)

        engine = ExecutionEngine(program_of(body, body))
        assert engine.step(0)            # read half
        assert engine.icount(0) == 1
        # Lock already reserved: thread 1 cannot acquire in between.
        assert not engine.step(1)
        assert engine.runnable_threads() == [0]
        assert engine.step(0)            # write half
        assert engine.icount(0) == 2

    def test_interceptor_skip_happens_before_reservation(self):
        from repro.injection import InjectionInterceptor

        def body(tid):
            yield LockOp(SYNC)
            yield UnlockOp(SYNC)

        interceptor = InjectionInterceptor(0)
        trace = run_program(
            program_of(body, body), seed=1, interceptor=interceptor
        )
        # One thread's pair removed: only one acquire/release remains.
        sync_events = [e for e in trace.events if e.is_sync]
        assert len(sync_events) == 3
