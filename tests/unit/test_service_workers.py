"""Unit coverage for the multi-host worker tier.

Drives the server-side :class:`WorkerPool` directly with an injected
clock (liveness transitions, lease deadlines, epoch bumps, at-least-once
reassignment, duplicate dedup, local fallback), the replication codec
(framing, sha256 verification, quarantine-on-mismatch, component
round-trips, install idempotence), and the client's connect-level retry
with deterministic backoff.  Everything here is in-process; the
multi-host integration suite runs the real subprocess topology.
"""

import socket
import struct
import threading
import time

import pytest

from repro.resilience import faults
from repro.service.client import (
    BACKOFF_CAP_S,
    ServiceClient,
    ServiceUnavailable,
    connect_backoff,
)
from repro.service.workers import (
    PoolLimits,
    RemoteTaskError,
    UnknownLease,
    UnknownWorker,
    WorkerPool,
    replicate,
)
from repro.trace.store import PackedTraceStore, frame_payload


@pytest.fixture(autouse=True)
def _disarm_faults():
    faults.reset()
    yield
    faults.reset()


class Clock:
    """An injectable monotonic clock the tests advance by hand."""

    def __init__(self, t: float = 100.0):
        self.t = t

    def __call__(self) -> float:
        return self.t

    def advance(self, dt: float) -> None:
        self.t += dt


def _pool(clock, log=None, **limits):
    defaults = dict(heartbeat_s=10.0, miss_threshold=3, lease_s=60.0,
                    poll_s=0.01)
    defaults.update(limits)
    return WorkerPool(limits=PoolLimits(**defaults), lease_log=log,
                      clock=clock)


def _run_tasks_bg(pool, job_id, tasks, run_local=None, **kwargs):
    """Start ``run_tasks`` on a thread; returns (thread, outcome dict)."""
    out = {}

    def body():
        try:
            out["result"] = pool.run_tasks(
                job_id, tasks,
                run_local or (lambda payload: ("local", payload)),
                **kwargs,
            )
        except BaseException as exc:  # noqa: BLE001 - surfaced to the test
            out["error"] = exc

    thread = threading.Thread(target=body, daemon=True)
    thread.start()
    return thread, out


def _lease_soon(pool, worker_id, timeout=5.0):
    """Poll until the pool grants this worker a lease."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        grant = pool.lease(worker_id)
        if grant is not None:
            return grant
        time.sleep(0.002)
    raise AssertionError("no lease granted within %.1fs" % timeout)


# -- connect backoff / client retry -------------------------------------------


def test_connect_backoff_deterministic_capped_and_jittered():
    delays = [connect_backoff("endpoint-a", n) for n in range(12)]
    assert delays == [connect_backoff("endpoint-a", n) for n in range(12)]
    # Jitter scales the bounded delay into [0.5, 1.0) of it.
    for attempt, delay in enumerate(delays):
        bounded = min(BACKOFF_CAP_S, 0.05 * 2 ** attempt)
        assert bounded * 0.5 <= delay < bounded
    # Different keys desynchronize.
    assert delays != [connect_backoff("endpoint-b", n) for n in range(12)]
    # Huge attempt numbers stay capped (no overflow).
    assert connect_backoff("endpoint-a", 10_000) < BACKOFF_CAP_S


def test_client_fail_fast_without_connect_timeout(tmp_path):
    client = ServiceClient(socket_path=tmp_path / "nope.sock")
    start = time.monotonic()
    with pytest.raises(ServiceUnavailable):
        client.health()
    assert time.monotonic() - start < 1.0


def test_client_connect_retry_bridges_late_listener(tmp_path):
    path = tmp_path / "late.sock"

    def serve_one():
        server = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        time.sleep(0.3)  # the client must retry through this window
        server.bind(str(path))
        server.listen(1)
        conn, _ = server.accept()
        with conn, conn.makefile("rb") as fh:
            fh.readline()
            conn.sendall(b'{"ok":true,"op":"health"}\n')
        server.close()

    thread = threading.Thread(target=serve_one, daemon=True)
    thread.start()
    client = ServiceClient(socket_path=path, connect_timeout=10.0)
    assert client.health()["ok"] is True
    thread.join(timeout=5)


def test_client_wraps_connection_reset_as_unavailable(tmp_path):
    """A server dying after accept (RST mid-stream) must surface as the
    retryable ServiceUnavailable, not a raw OSError."""
    path = tmp_path / "reset.sock"

    def serve_reset():
        server = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        server.bind(str(path))
        server.listen(1)
        conn, _ = server.accept()
        with conn.makefile("rb") as fh:
            fh.readline()
        # SO_LINGER(on, 0) turns close() into an RST.
        conn.setsockopt(
            socket.SOL_SOCKET, socket.SO_LINGER,
            struct.pack("ii", 1, 0),
        )
        conn.close()
        server.close()

    thread = threading.Thread(target=serve_reset, daemon=True)
    thread.start()
    client = ServiceClient(socket_path=path, connect_timeout=5.0)
    with pytest.raises(ServiceUnavailable):
        client.health()
    thread.join(timeout=5)


def test_client_wraps_clean_close_without_reply_as_unavailable(tmp_path):
    path = tmp_path / "close.sock"

    def serve_close():
        server = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        server.bind(str(path))
        server.listen(1)
        conn, _ = server.accept()
        conn.close()  # no reply at all
        server.close()

    thread = threading.Thread(target=serve_close, daemon=True)
    thread.start()
    client = ServiceClient(socket_path=path, connect_timeout=5.0)
    with pytest.raises(ServiceUnavailable):
        client.health()
    thread.join(timeout=5)


def test_client_connect_retry_budget_is_bounded(tmp_path):
    client = ServiceClient(
        socket_path=tmp_path / "never.sock", connect_timeout=0.3
    )
    start = time.monotonic()
    with pytest.raises(ServiceUnavailable):
        client.health()
    assert 0.2 < time.monotonic() - start < 5.0


# -- pool limits --------------------------------------------------------------


def test_pool_limits_from_env(monkeypatch):
    monkeypatch.setenv("REPRO_SVC_HEARTBEAT_S", "0.5")
    monkeypatch.setenv("REPRO_SVC_HEARTBEAT_MISSES", "7")
    monkeypatch.setenv("REPRO_SVC_LEASE_S", "9")
    monkeypatch.setenv("REPRO_SVC_WORKER_POLL_S", "0.05")
    limits = PoolLimits.from_env()
    assert (limits.heartbeat_s, limits.miss_threshold,
            limits.lease_s, limits.poll_s) == (0.5, 7, 9.0, 0.05)
    # Floors hold against nonsense.
    monkeypatch.setenv("REPRO_SVC_HEARTBEAT_MISSES", "0")
    assert PoolLimits.from_env().miss_threshold == 2


# -- liveness -----------------------------------------------------------------


def test_worker_liveness_live_suspect_dead(tmp_path):
    clock = Clock()
    pool = _pool(clock, heartbeat_s=1.0, miss_threshold=5)
    worker = pool.register(name="alpha")["worker"]
    assert pool.live_worker_count() == 1
    assert pool.health()["mode"] == "distributed"

    # Silence past 2 heartbeats: suspect (still leasable).
    clock.advance(2.5)
    pool.scan()
    assert pool.health()["suspect"] == 1
    assert pool.live_worker_count() == 1

    # A heartbeat recovers the worker.
    pool.heartbeat(worker)
    assert pool.health()["live"] == 1
    assert pool.stats["workers_recovered"] == 1

    # Silence past the miss threshold: dead, unknown from then on.
    clock.advance(5.1)
    pool.scan()
    assert pool.health()["dead"] == 1
    assert pool.health()["mode"] == "local"
    with pytest.raises(UnknownWorker):
        pool.heartbeat(worker)
    with pytest.raises(UnknownWorker):
        pool.lease(worker)


def test_heartbeat_reports_draining(tmp_path):
    pool = _pool(Clock())
    worker = pool.register()["worker"]
    assert pool.heartbeat(worker)["state"] == "serving"
    pool.drain()
    assert pool.heartbeat(worker)["state"] == "draining"
    assert pool.lease(worker) is None  # draining grants nothing


def test_register_returns_pool_knobs():
    pool = _pool(Clock(), heartbeat_s=3.0, lease_s=30.0)
    fields = pool.register(name="alpha beta!", pid=42, host="h1")
    assert fields["worker"].startswith("wk0001-alpha-beta")
    assert fields["heartbeat_s"] == 3.0
    assert fields["lease_s"] == 30.0


# -- leases: grant / complete / reassign / dedup ------------------------------


def test_remote_execution_end_to_end():
    pool = _pool(Clock())
    worker = pool.register()["worker"]
    tasks = [("t%d" % n, {"n": n}) for n in range(3)]
    thread, out = _run_tasks_bg(pool, "job-1", tasks)
    done = 0
    while done < 3:
        grant = pool.lease(worker)
        if grant is None:
            time.sleep(0.002)
            continue
        reply = pool.complete(
            worker, grant["lease"], grant["epoch"],
            ("remote", grant["payload"]["n"]),
        )
        assert reply == {"accepted": True, "duplicate": False}
        done += 1
    thread.join(timeout=5)
    values, stats, interrupted = out["result"]
    assert not interrupted
    assert values == {"t%d" % n: ("remote", n) for n in range(3)}
    assert stats["remote_completions"] == 3
    assert "local_completions" not in stats


def test_zero_workers_falls_back_to_local_execution():
    pool = _pool(Clock())
    tasks = [("t%d" % n, n) for n in range(3)]
    values, stats, interrupted = pool.run_tasks(
        "job-1", tasks, lambda payload: payload * 10
    )
    assert not interrupted
    assert values == {"t0": 0, "t1": 10, "t2": 20}
    assert stats["local_completions"] == 3


def test_all_workers_dying_mid_job_falls_back_to_local():
    clock = Clock()
    pool = _pool(clock, heartbeat_s=1.0, miss_threshold=3)
    pool.register()["worker"]
    # The worker never polls again; its silence crosses the death
    # threshold, so run_tasks' internal scan must declare it dead and
    # finish the job on the executor thread.
    clock.advance(100.0)
    values, stats, _ = pool.run_tasks(
        "job-1", [("t0", 1)], lambda payload: payload + 1
    )
    assert values == {"t0": 2}
    assert stats["local_completions"] == 1
    assert pool.stats["workers_lost"] == 1


def test_dead_worker_leases_reassigned_to_survivor():
    clock = Clock()
    pool = _pool(clock, heartbeat_s=1.0, miss_threshold=3, lease_s=60.0)
    doomed = pool.register(name="doomed")["worker"]
    survivor = pool.register(name="survivor")["worker"]
    thread, out = _run_tasks_bg(pool, "job-1", [("t0", "payload")])
    grant = _lease_soon(pool, doomed)
    assert grant["epoch"] == 1

    # The doomed worker goes silent; the survivor keeps heartbeating.
    clock.advance(3.5)
    pool.heartbeat(survivor)
    pool.scan()
    assert pool.stats["workers_lost"] == 1
    assert pool.stats["tasks_requeued"] == 1

    regrant = _lease_soon(pool, survivor)
    assert regrant["task"] == "t0"
    assert regrant["epoch"] == 2  # reassignment bumps the epoch
    reply = pool.complete(
        survivor, regrant["lease"], regrant["epoch"], "v2"
    )
    assert reply["accepted"] is True
    thread.join(timeout=5)
    assert out["result"][0] == {"t0": "v2"}


def test_expired_lease_requeues_and_stale_completion_is_adopted():
    clock = Clock()
    pool = _pool(clock, lease_s=1.0)
    worker = pool.register()["worker"]
    thread, out = _run_tasks_bg(pool, "job-1", [("t0", 0), ("t1", 1)])
    slow = _lease_soon(pool, worker)
    assert slow["task"] == "t0"

    # The lease outlives its deadline: expired + requeued.
    clock.advance(2.0)
    pool.heartbeat(worker)  # the worker itself is alive, only slow
    pool.scan()
    assert pool.stats["leases_expired"] == 1

    # The stalled execution still lands first: adopted (stale), the
    # requeued copy is pulled back out of the pending queue.
    reply = pool.complete(worker, slow["lease"], slow["epoch"], "slow-v")
    assert reply["accepted"] is True
    assert pool.stats["stale_completions"] == 1

    other = _lease_soon(pool, worker)
    assert other["task"] == "t1"  # t0 must not be re-granted
    pool.complete(worker, other["lease"], other["epoch"], "v1")
    thread.join(timeout=5)
    values, stats, _ = out["result"]
    assert values == {"t0": "slow-v", "t1": "v1"}
    assert stats["stale_completions"] == 1


def test_duplicate_completion_after_reassignment_is_deduped():
    clock = Clock()
    pool = _pool(clock, lease_s=1.0)
    worker = pool.register()["worker"]
    thread, out = _run_tasks_bg(pool, "job-1", [("t0", 0), ("t1", 1)])
    first = _lease_soon(pool, worker)
    assert first["task"] == "t0"
    clock.advance(2.0)
    pool.heartbeat(worker)
    pool.scan()  # expires the first lease, requeues t0

    # t0 comes back (behind t1 in the queue) with a bumped epoch.
    second = _lease_soon(pool, worker)
    third = _lease_soon(pool, worker)
    regrant = second if second["task"] == "t0" else third
    other = third if regrant is second else second
    assert regrant["epoch"] == 2
    assert pool.complete(
        worker, regrant["lease"], regrant["epoch"], "fresh-v"
    )["accepted"] is True

    # The original (retired) lease completes late: pure duplicate.
    reply = pool.complete(worker, first["lease"], first["epoch"], "stale-v")
    assert reply == {"accepted": False, "duplicate": True}
    assert pool.stats["duplicate_completions"] == 1

    pool.complete(worker, other["lease"], other["epoch"], "v1")
    thread.join(timeout=5)
    values, stats, _ = out["result"]
    assert values["t0"] == "fresh-v"  # first commit won, never replaced
    assert stats["duplicate_completions"] == 1


def test_unknown_lease_rejected():
    pool = _pool(Clock())
    worker = pool.register()["worker"]
    with pytest.raises(UnknownLease):
        pool.complete(worker, "ls999999", 1, "v")
    assert pool.stats["unknown_lease_completions"] == 1


def test_remote_failure_budget_fails_the_job():
    pool = _pool(Clock())
    worker = pool.register()["worker"]
    thread, out = _run_tasks_bg(pool, "job-1", [("t0", 0)])
    for n in range(3):
        grant = _lease_soon(pool, worker)
        reply = pool.fail(worker, grant["lease"], grant["epoch"],
                          "boom %d" % n)
        assert reply["requeued"] is (n < 2)
    thread.join(timeout=5)
    assert isinstance(out["error"], RemoteTaskError)
    assert "3 times" in str(out["error"])


def test_run_tasks_stop_predicate_interrupts():
    pool = _pool(Clock())
    pool.register()  # a live worker, so nothing runs locally
    stop = threading.Event()
    thread, out = _run_tasks_bg(
        pool, "job-1", [("t0", 0)], should_stop=stop.is_set
    )
    stop.set()
    thread.join(timeout=5)
    assert out["result"][2] is True  # interrupted


def test_on_result_can_submit_follow_up_tasks():
    pool = _pool(Clock())

    def on_result(name, value, submit):
        if name == "t0":
            submit("t1", value + 1)

    values, _stats, _ = pool.run_tasks(
        "job-1", [("t0", 1)], lambda payload: payload * 2,
        on_result=on_result,
    )
    assert values == {"t0": 2, "t1": 6}


def test_deregister_requeues_open_leases_and_merges_stats():
    pool = _pool(Clock())
    worker = pool.register()["worker"]
    thread, out = _run_tasks_bg(pool, "job-1", [("t0", 5)])
    _lease_soon(pool, worker)
    released = pool.deregister(worker, stats={"executed": 7, "bad": "x"})
    assert released == 1
    assert pool.stats["agent_executed"] == 7
    assert "agent_bad" not in pool.stats
    # With the only worker gone the task finishes locally.
    thread.join(timeout=5)
    assert out["result"][0] == {"t0": ("local", 5)}


def test_lease_events_land_in_the_log():
    events = []
    clock = Clock()
    pool = _pool(clock, lease_s=1.0, log=events.append)
    worker = pool.register()["worker"]
    thread, out = _run_tasks_bg(pool, "job-1", [("t0", 0)])
    grant = _lease_soon(pool, worker)
    clock.advance(2.0)
    pool.heartbeat(worker)
    pool.scan()
    regrant = _lease_soon(pool, worker)
    pool.complete(worker, regrant["lease"], regrant["epoch"], "v")
    pool.complete(worker, grant["lease"], grant["epoch"], "v")
    thread.join(timeout=5)
    kinds = [(event["event"], event["epoch"]) for event in events]
    assert ("grant", 1) in kinds
    assert ("expire", 1) in kinds
    assert ("requeue", 1) in kinds
    assert ("grant", 2) in kinds
    assert ("done", 2) in kinds
    assert ("duplicate", 1) in kinds
    assert all(event["type"] == "lease" and event["job"] == "job-1"
               for event in events)


# -- replication codec --------------------------------------------------------


def test_blob_roundtrip_and_tamper_detection():
    framed = frame_payload(b"payload bytes")
    fields = replicate.encode_blob(framed)
    assert replicate.decode_blob(fields, "test") == framed
    tampered = dict(fields, sha256="0" * 64)
    with pytest.raises(replicate.ReplicaIntegrityError):
        replicate.decode_blob(tampered, "test")
    with pytest.raises(replicate.ReplicaIntegrityError):
        replicate.decode_blob({"data": "!!!", "sha256": "x"}, "test")


def test_pickle_blob_roundtrips_rich_values():
    value = {"tuple": (1, 2, ("nested", 3)), "float": 0.5}
    assert replicate.unpickle_blob(
        replicate.pickle_blob(value), "test"
    ) == value


def test_replica_corrupt_fault_flips_one_transfer():
    framed = frame_payload(b"x" * 64)
    fields = replicate.encode_blob(framed)
    faults.arm("replica_corrupt:2")
    assert replicate.decode_blob(fields, "t") == framed  # tick 1: clean
    with pytest.raises(replicate.ReplicaIntegrityError):
        replicate.decode_blob(fields, "t")  # tick 2: armed position
    assert replicate.decode_blob(fields, "t") == framed  # never again


def test_components_wire_roundtrip():
    components = (7, "ns", 0.25, ("outcomes", 1, 2))
    wire = replicate.components_to_wire(components)
    assert wire == [7, "ns", 0.25, ["outcomes", 1, 2]]
    assert replicate.components_from_wire(wire) == components
    with pytest.raises(ValueError):
        replicate.components_from_wire("not-a-list")


def test_install_entry_verifies_quarantines_and_dedups(tmp_path):
    store = PackedTraceStore(tmp_path / "traces")
    raw = frame_payload(b"entry payload")
    assert replicate.install_entry(store, "value", "ns", ("k", 1), raw)
    # Idempotent: the second install is a no-op duplicate.
    assert not replicate.install_entry(store, "value", "ns", ("k", 1), raw)
    assert replicate.read_entry(store, "value", "ns", ("k", 1)) == raw

    damaged = bytearray(raw)
    damaged[-1] ^= 0xFF
    with pytest.raises(replicate.ReplicaIntegrityError):
        replicate.install_entry(
            store, "value", "ns", ("k", 2), bytes(damaged)
        )
    assert store.stats["quarantined"] == 1
    assert replicate.read_entry(store, "value", "ns", ("k", 2)) is None


def test_pull_and_push_entry_between_stores(tmp_path):
    server = PackedTraceStore(tmp_path / "server")
    worker = PackedTraceStore(tmp_path / "worker")
    raw = frame_payload(b"replicated payload")
    components = ("sync_instances", 13)
    replicate.install_entry(server, "value", "ns", components, raw)

    def call(message):
        # A loopback transport: serve pulls/pushes from `server`.
        if message["op"] == "repl_pull":
            found = replicate.read_entry(
                server, replicate.ENTRY_KINDS[message["kind"]],
                message["namespace"],
                replicate.components_from_wire(message["components"]),
            )
            if found is None:
                return {"ok": False, "error": "not_found"}
            reply = {"ok": True}
            reply.update(replicate.encode_blob(found))
            return reply
        assert message["op"] == "repl_push"
        raw_in = replicate.decode_blob(message, "push")
        replicate.install_entry(
            server, replicate.ENTRY_KINDS[message["kind"]],
            message["namespace"],
            replicate.components_from_wire(message["components"]), raw_in,
        )
        return {"ok": True, "stored": True}

    # Pull: lands byte-identically, then short-circuits on re-pull.
    assert replicate.pull_entry(call, worker, "value", "ns", components)
    assert replicate.read_entry(worker, "value", "ns", components) == raw
    assert replicate.pull_entry(call, worker, "value", "ns", components)

    # Missing entries are a clean miss, not an error.
    assert not replicate.pull_entry(call, worker, "value", "ns", ("no", 1))

    # Push: a worker-local entry lands on the server byte-identically.
    raw2 = frame_payload(b"worker-made")
    replicate.install_entry(worker, "value", "ns", ("made", 2), raw2)
    assert replicate.push_entry(call, worker, "value", "ns", ("made", 2))
    assert replicate.read_entry(server, "value", "ns", ("made", 2)) == raw2
    # Pushing an entry we do not have fails cleanly.
    assert not replicate.push_entry(call, worker, "value", "ns", ("no", 3))


def test_pull_entry_retries_through_corrupt_transfer(tmp_path):
    server = PackedTraceStore(tmp_path / "server")
    worker = PackedTraceStore(tmp_path / "worker")
    raw = frame_payload(b"will arrive damaged once")
    components = ("k", 1)
    replicate.install_entry(server, "value", "ns", components, raw)

    def call(message):
        reply = {"ok": True}
        reply.update(replicate.encode_blob(raw))
        return reply

    faults.arm("replica_corrupt:1")  # first transfer damaged, retry clean
    assert replicate.pull_entry(call, worker, "value", "ns", components)
    assert replicate.read_entry(worker, "value", "ns", components) == raw
    assert worker.stats["quarantined"] == 1
