"""Unit tests for the metadata cache and snoop domain."""

import pytest

from repro.cachesim import CacheGeometry, MetadataCache, SnoopDomain
from repro.common.errors import ConfigError


class Payload:
    def __init__(self):
        self.data_valid = False


class TestCacheGeometry:
    def test_paper_l2_shape(self):
        geom = CacheGeometry(32 * 1024, 64, 8)
        assert geom.n_sets == 64
        assert not geom.is_infinite

    def test_infinite(self):
        geom = CacheGeometry.infinite()
        assert geom.is_infinite

    def test_set_mapping(self):
        geom = CacheGeometry(8 * 1024, 64, 8)  # 16 sets
        assert geom.set_index(0) == 0
        assert geom.set_index(64) == 1
        assert geom.set_index(64 * 16) == 0

    def test_line_address(self):
        geom = CacheGeometry(8 * 1024)
        assert geom.line_address(130) == 128

    def test_invalid_shapes_rejected(self):
        with pytest.raises(ConfigError):
            CacheGeometry(1000, 64, 8)  # not line multiple
        with pytest.raises(ConfigError):
            CacheGeometry(64 * 24, 64, 8)  # lines not divisible by ways
        with pytest.raises(ConfigError):
            CacheGeometry(8 * 1024, 48, 8)  # line not power of two


class TestMetadataCache:
    def make(self, size=8 * 64 * 2, assoc=8):
        # Two sets of eight ways by default.
        return MetadataCache(CacheGeometry(size, 64, assoc), Payload)

    def test_miss_then_hit(self):
        cache = self.make()
        assert cache.peek(0) is None
        payload, evicted = cache.access(0)
        assert evicted == []
        assert cache.peek(0) is payload

    def test_lru_eviction_order(self):
        cache = self.make()
        # Fill one set: lines 0, 128, 256, ... map to set 0 (2 sets).
        lines = [i * 128 for i in range(9)]
        evicted_pairs = []
        first_payload = None
        for i, line in enumerate(lines):
            payload, evicted = cache.access(line)
            if i == 0:
                first_payload = payload
            evicted_pairs.extend(evicted)
        assert evicted_pairs == [(0, first_payload)]
        assert cache.evictions == 1

    def test_touch_refreshes_lru(self):
        cache = self.make()
        lines = [i * 128 for i in range(8)]
        for line in lines:
            cache.access(line)
        cache.access(lines[0])  # refresh line 0 to MRU
        _, evicted = cache.access(8 * 128)  # evicts line 1's payload
        assert cache.peek(lines[0]) is not None
        assert cache.peek(lines[1]) is None
        assert len(evicted) == 1

    def test_peek_does_not_refresh_lru(self):
        cache = self.make()
        lines = [i * 128 for i in range(8)]
        for line in lines:
            cache.access(line)
        cache.peek(lines[0])  # snoop must not protect line 0
        cache.access(8 * 128)
        assert cache.peek(lines[0]) is None

    def test_infinite_cache_never_evicts(self):
        cache = MetadataCache(CacheGeometry.infinite(), Payload)
        for i in range(1000):
            _, evicted = cache.access(i * 64)
            assert evicted == []
        assert len(cache) == 1000

    def test_invalidate_data_keeps_metadata(self):
        cache = self.make()
        payload, _ = cache.access(0)
        payload.data_valid = True
        cache.invalidate_data(0)
        assert cache.peek(0) is payload
        assert not payload.data_valid

    def test_drop(self):
        cache = self.make()
        payload, _ = cache.access(0)
        assert cache.drop(0) is payload
        assert cache.peek(0) is None
        assert cache.drop(0) is None

    def test_lines_snapshot(self):
        cache = self.make()
        cache.access(0)
        cache.access(64)
        assert set(cache.lines()) == {0, 64}


class TestSnoopDomain:
    def test_snoop_excludes_requester(self):
        domain = SnoopDomain(3, CacheGeometry.infinite(), Payload)
        domain.cache_of(0).access(0)
        domain.cache_of(1).access(0)
        domain.cache_of(2).access(0)
        hits = dict(domain.snoop(1, 0))
        assert set(hits) == {0, 2}

    def test_snoop_misses_absent_lines(self):
        domain = SnoopDomain(2, CacheGeometry.infinite(), Payload)
        assert list(domain.snoop(0, 64)) == []

    def test_invalidate_remote(self):
        domain = SnoopDomain(2, CacheGeometry.infinite(), Payload)
        mine, _ = domain.cache_of(0).access(0)
        theirs, _ = domain.cache_of(1).access(0)
        mine.data_valid = theirs.data_valid = True
        domain.invalidate_remote(0, 0)
        assert mine.data_valid
        assert not theirs.data_valid

    def test_needs_processor(self):
        with pytest.raises(ValueError):
            SnoopDomain(0, CacheGeometry.infinite(), Payload)
