"""Unit tests for the clock implementations (scalar, Lamport, vector)."""

import pytest

from repro.clocks import (
    LamportClock,
    LamportStamp,
    ScalarClock,
    VectorClock,
)
from repro.common.errors import ConfigError


class TestScalarClock:
    def test_initial_value(self):
        assert ScalarClock().value == 1

    def test_rejects_bad_d(self):
        with pytest.raises(ConfigError):
            ScalarClock(d=0)

    def test_race_update_when_behind(self):
        clock = ScalarClock(d=16)
        assert clock.update_for_race(5)
        assert clock.value == 6

    def test_race_update_on_equal_clock(self):
        # "if conflicting accesses have the same logical clock, we update
        # the clock of one of the accesses" (Section 2.7.1).
        clock = ScalarClock(d=16, initial=5)
        assert clock.update_for_race(5)
        assert clock.value == 6

    def test_no_update_when_ahead(self):
        clock = ScalarClock(d=16, initial=10)
        assert not clock.update_for_race(5)
        assert clock.value == 10

    def test_sync_read_window_update(self):
        clock = ScalarClock(d=16)
        assert clock.update_for_sync_read(10)
        assert clock.value == 26

    def test_sync_read_no_lowering(self):
        clock = ScalarClock(d=4, initial=100)
        assert not clock.update_for_sync_read(10)
        assert clock.value == 100

    def test_ordered_vs_synchronized_window(self):
        # Ordered (clk > ts) but not synchronized (clk < ts + D): the
        # Figure 9 regime where the order-recorder omits the race but the
        # detector still reports it.
        clock = ScalarClock(d=16, initial=12)
        assert clock.ordered_after(10)
        assert not clock.synchronized_after(10)
        clock.value = 26
        assert clock.synchronized_after(10)

    def test_d1_degenerates_to_ordering(self):
        clock = ScalarClock(d=1, initial=11)
        assert clock.ordered_after(10) == clock.synchronized_after(10)

    def test_sync_write_increment(self):
        clock = ScalarClock(d=16, initial=3)
        clock.increment_after_sync_write()
        assert clock.value == 4

    def test_migration_increment_is_d(self):
        clock = ScalarClock(d=16, initial=3)
        clock.increment_for_migration()
        assert clock.value == 19


class TestLamportClock:
    def test_tick_monotone(self):
        clock = LamportClock(0)
        first = clock.tick()
        second = clock.tick()
        assert first < second

    def test_observe_jumps_past(self):
        clock = LamportClock(0, initial=1)
        clock.observe(LamportStamp(10, 1))
        assert clock.sequence == 11

    def test_tie_break_by_thread_id(self):
        # The total order CORD deliberately removes.
        a = LamportStamp(5, 0)
        b = LamportStamp(5, 1)
        assert a.happens_before(b)
        assert not b.happens_before(a)

    def test_equal_stamps_same_thread(self):
        assert LamportStamp(5, 1) == LamportStamp(5, 1)


class TestVectorClock:
    def test_zero_and_unit(self):
        zero = VectorClock.zero(3)
        unit = VectorClock.unit(3, 1)
        assert zero.components == (0, 0, 0)
        assert unit.components == (0, 1, 0)

    def test_immutable(self):
        clock = VectorClock.zero(2)
        with pytest.raises(AttributeError):
            clock.components = (1, 1)

    def test_happens_before_strict(self):
        a = VectorClock((1, 0))
        b = VectorClock((1, 1))
        assert a.happens_before(b)
        assert not b.happens_before(a)
        assert not a.happens_before(a)

    def test_concurrent(self):
        a = VectorClock((1, 0))
        b = VectorClock((0, 1))
        assert a.concurrent_with(b)
        assert b.concurrent_with(a)

    def test_join_is_componentwise_max(self):
        a = VectorClock((1, 5, 0))
        b = VectorClock((2, 1, 0))
        assert a.joined(b) == VectorClock((2, 5, 0))

    def test_ticked(self):
        assert VectorClock((1, 1)).ticked(0) == VectorClock((2, 1))

    def test_width_mismatch_rejected(self):
        with pytest.raises(ConfigError):
            VectorClock((1,)).joined(VectorClock((1, 2)))

    def test_hashable_value_semantics(self):
        assert hash(VectorClock((1, 2))) == hash(VectorClock((1, 2)))
        assert len({VectorClock((1, 2)), VectorClock((1, 2))}) == 1

    def test_rejects_empty_and_negative(self):
        with pytest.raises(ConfigError):
            VectorClock(())
        with pytest.raises(ConfigError):
            VectorClock((-1, 0))
