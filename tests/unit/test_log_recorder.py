"""Unit tests for the order log codec and the fragment recorder."""

import pytest

from repro.common.errors import LogFormatError, SimulationError
from repro.cord import LogEntry, OrderLog, OrderRecorder
from repro.cord.log import ENTRY_BYTES


class TestOrderLog:
    def test_entry_is_eight_bytes(self):
        # The paper's format: 16-bit thread id + 16-bit clock + 32-bit
        # instruction count.
        assert ENTRY_BYTES == 8

    def test_append_and_size(self):
        log = OrderLog()
        log.append(1, 0, 10)
        log.append(5, 1, 3)
        assert len(log) == 2
        assert log.size_bytes == 16

    def test_entries_of_thread(self):
        log = OrderLog()
        log.append(1, 0, 10)
        log.append(2, 1, 5)
        log.append(3, 0, 7)
        assert [e.clock for e in log.entries_of_thread(0)] == [1, 3]

    def test_roundtrip_simple(self):
        log = OrderLog()
        for clock, thread, count in [(1, 0, 5), (17, 0, 3), (2, 1, 9)]:
            log.append(clock, thread, count)
        decoded = OrderLog.decode(log.encode())
        assert [
            (e.clock, e.thread, e.count) for e in decoded
        ] == [(1, 0, 5), (17, 0, 3), (2, 1, 9)]

    def test_roundtrip_past_16bit_overflow(self):
        # Clocks above 2^16 truncate on encode; sliding-window expansion
        # recovers them as long as per-thread jumps stay under 2^16.
        log = OrderLog()
        clocks = [1, 40_000, 70_000, 100_000, 130_990]
        for clock in clocks:
            log.append(clock, 0, 1)
        decoded = OrderLog.decode(log.encode())
        assert [e.clock for e in decoded] == clocks

    def test_decode_rejects_ragged_input(self):
        with pytest.raises(LogFormatError):
            OrderLog.decode(b"\x00" * 7)

    def test_append_rejects_bad_fields(self):
        log = OrderLog()
        with pytest.raises(LogFormatError):
            log.append(1, 0, -1)
        with pytest.raises(LogFormatError):
            log.append(1, 1 << 16, 0)
        with pytest.raises(LogFormatError):
            log.append(1, 0, 1 << 32)

    def test_log_entry_value_type(self):
        assert LogEntry(1, 2, 3) == LogEntry(1, 2, 3)


class TestOrderRecorder:
    def test_pre_boundary_excludes_trigger(self):
        # Race update at instruction 10: the fragment that ran at the old
        # clock covers instructions [0, 10).
        recorder = OrderRecorder(1)
        recorder.clock_changed_before(0, new_clock=8, icount=10)
        entry = recorder.log.entries[0]
        assert (entry.clock, entry.thread, entry.count) == (1, 0, 10)
        assert recorder.fragment_clock(0) == 8

    def test_post_boundary_includes_trigger(self):
        # Sync-write increment after instruction 10: the write itself
        # retired at the old clock.
        recorder = OrderRecorder(1)
        recorder.clock_changed_after(0, new_clock=2, icount=10)
        assert recorder.log.entries[0].count == 11

    def test_mixed_boundaries_for_lock_acquire(self):
        # RD L at ic=4 raises the clock (pre), WR L at ic=5 is followed
        # by the increment (post): the middle fragment is [4, 6) = 2 ops.
        recorder = OrderRecorder(1)
        recorder.clock_changed_before(0, 20, icount=4)
        recorder.clock_changed_after(0, 21, icount=5)
        counts = [e.count for e in recorder.log.entries]
        assert counts == [4, 2]

    def test_finalize_flushes_tails(self):
        recorder = OrderRecorder(2)
        recorder.clock_changed_before(0, 5, icount=3)
        log = recorder.finalize([10, 4])
        tail_0 = log.entries_of_thread(0)[-1]
        tail_1 = log.entries_of_thread(1)[-1]
        assert (tail_0.clock, tail_0.count) == (5, 7)
        assert (tail_1.clock, tail_1.count) == (1, 4)

    def test_finalize_skips_empty_tails(self):
        recorder = OrderRecorder(1)
        recorder.clock_changed_before(0, 5, icount=3)
        log = recorder.finalize([3])
        assert len(log.entries_of_thread(0)) == 1

    def test_finalize_idempotent(self):
        recorder = OrderRecorder(1)
        log_a = recorder.finalize([5])
        log_b = recorder.finalize([5])
        assert log_a is log_b
        assert len(log_a) == 1

    def test_no_boundaries_after_finalize(self):
        recorder = OrderRecorder(1)
        recorder.finalize([0])
        with pytest.raises(SimulationError):
            recorder.clock_changed_before(0, 2, 1)

    def test_backwards_boundary_rejected(self):
        recorder = OrderRecorder(1)
        recorder.clock_changed_before(0, 5, icount=10)
        with pytest.raises(SimulationError):
            recorder.clock_changed_before(0, 6, icount=3)

    def test_overflow_guard_fires_at_limit(self):
        recorder = OrderRecorder(1)
        assert not recorder.count_would_overflow(0, 100)
        assert recorder.count_would_overflow(0, (1 << 32) - 1)


class TestLogRate:
    def test_bytes_per_kilo_instruction(self):
        log = OrderLog()
        for i in range(10):
            log.append(i + 1, 0, 100)
        # 80 bytes over 10_000 instructions = 8 B/kinstr.
        assert log.bytes_per_kilo_instruction(10_000) == pytest.approx(
            8.0
        )

    def test_zero_instructions(self):
        assert OrderLog().bytes_per_kilo_instruction(0) == 0.0

    def test_workload_rate_scales_with_compute_density(self):
        # Log entries come from clock changes (sync activity), so the
        # per-instruction rate falls as compute between accesses grows --
        # the scaling that keeps real Splash-2 runs under 1 MB.  Our
        # analogues compress the compute, so their absolute rate is
        # higher; doubling the compute grain must roughly halve it.
        from repro.cord import CordConfig, CordDetector
        from repro.engine import run_program
        from repro.workloads import WorkloadParams, get_workload

        rates = {}
        for grain in (250, 1000):
            program = get_workload("lu").build(
                WorkloadParams(scale=0.5, compute_grain=grain)
            )
            trace = run_program(program, seed=2)
            outcome = CordDetector(CordConfig(), 4).run(trace)
            rates[grain] = outcome.log.bytes_per_kilo_instruction(
                sum(trace.final_icounts)
            )
        assert rates[1000] < 0.5 * rates[250] * 1.2
        assert rates[1000] > 0.0
