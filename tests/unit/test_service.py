"""Unit coverage for the campaign service's building blocks.

Protocol framing and validation, admission policy (including the
fault-forced rejection branches), fair-queue rotation, the job model,
the job-state WAL's replay semantics (torn tails included), and the
executor's byte-identity / idempotence contract -- everything that does
not need a live server process (the integration suites cover that).
"""

import pytest

from repro.experiments.runner import trace_namespace
from repro.injection.campaign import (
    CampaignConfig,
    format_campaign_report,
    run_campaign,
)
from repro.resilience import faults
from repro.service import protocol
from repro.service.admission import (
    AdmissionController,
    FairQueue,
    ServiceLimits,
)
from repro.service.executor import (
    JobInterrupted,
    execute_job,
    load_result,
)
from repro.service.jobs import (
    ACCEPTED,
    ANALYZING,
    CANCELLED,
    COMMITTED,
    CampaignSpec,
    FAILED,
    Job,
    JobRegistry,
    LIFECYCLE,
    RECORDING,
    RESUMABLE,
    SHARDED,
    TERMINAL,
    job_from_replay,
)
from repro.trace.store import PackedTraceStore
from repro.workloads.base import WorkloadParams
from repro.workloads.registry import get_workload


@pytest.fixture(autouse=True)
def _disarm_faults():
    faults.reset()
    yield
    faults.reset()


# -- protocol -----------------------------------------------------------------


def test_encode_is_canonical_json_lines():
    line = protocol.encode_message({"b": 2, "a": 1})
    assert line == b'{"a":1,"b":2}\n'
    assert protocol.decode_message(line) == {"a": 1, "b": 2}


def test_decode_rejects_garbage():
    with pytest.raises(protocol.ProtocolError):
        protocol.decode_message(b"not json\n")
    with pytest.raises(protocol.ProtocolError):
        protocol.decode_message(b"[1,2,3]\n")


def test_validate_submit_defaults_match_cli_inject():
    fields = protocol.validate_submit({"op": "submit", "workload": "fft"})
    assert fields == {
        "workload": "fft",
        "runs": 10,
        "seed": 2006,
        "scale": 1.0,
        "switch_probability": 0.1,
        "tenant": "default",
        "deadline_s": None,
    }


@pytest.mark.parametrize(
    "overrides",
    [
        {},  # missing workload entirely
        {"workload": "no-such-workload"},
        {"workload": "fft", "runs": 0},
        {"workload": "fft", "runs": True},  # bools are not ints here
        {"workload": "fft", "scale": 0},
        {"workload": "fft", "switch_probability": 1.5},
        {"workload": "fft", "tenant": ""},
        {"workload": "fft", "deadline_s": 0},
    ],
)
def test_validate_submit_rejects(overrides):
    message = {"op": "submit"}
    message.update(overrides)
    with pytest.raises(protocol.ProtocolError):
        protocol.validate_submit(message)


def test_error_response_carries_retry_hint():
    response = protocol.error_response(
        protocol.ERR_QUEUE_FULL, "full", request_id=7, retry_after=0.5
    )
    assert response["ok"] is False
    assert response["error"] == protocol.ERR_QUEUE_FULL
    assert response["id"] == 7
    assert response["retry_after"] == 0.5
    assert protocol.ERR_QUEUE_FULL in protocol.RETRYABLE


# -- admission ----------------------------------------------------------------


def test_limits_env_and_overrides(monkeypatch):
    monkeypatch.setenv("REPRO_SVC_QUEUE_MAX", "5")
    monkeypatch.setenv("REPRO_SVC_TENANT_MAX", "2")
    monkeypatch.setenv("REPRO_SVC_RETRY_AFTER_S", "0.25")
    limits = ServiceLimits.from_env()
    assert (limits.queue_max, limits.tenant_max, limits.retry_after_s) == (
        5, 2, 0.25,
    )
    # Explicit arguments beat the environment.
    limits = ServiceLimits.from_env(queue_max=9)
    assert limits.queue_max == 9
    assert limits.tenant_max == 2


def test_admission_decision_order():
    controller = AdmissionController(
        ServiceLimits(queue_max=2, tenant_max=1, retry_after_s=0.5)
    )
    # Draining trumps everything.
    code, retry = controller.admit("a", 0, 0, True)
    assert (code, retry) == (protocol.ERR_DRAINING, 0.5)
    # Global backpressure before the tenant quota.
    code, _ = controller.admit("a", 2, 2, False)
    assert code == protocol.ERR_QUEUE_FULL
    # Tenant quota.
    code, _ = controller.admit("a", 1, 1, False)
    assert code == protocol.ERR_TENANT_OVER_QUOTA
    # Room everywhere: admitted.
    assert controller.admit("a", 1, 0, False) is None
    # Determinism: same occupancy, same verdict.
    assert controller.admit("a", 2, 2, False)[0] == protocol.ERR_QUEUE_FULL


def test_admission_chaos_faults_force_each_branch():
    controller = AdmissionController(
        ServiceLimits(queue_max=100, tenant_max=100, retry_after_s=0.1)
    )
    faults.arm("queue_full")
    code, retry = controller.admit("a", 0, 0, False)
    assert (code, retry) == (protocol.ERR_QUEUE_FULL, 0.1)
    # One charge rejects exactly one submission.
    assert controller.admit("a", 0, 0, False) is None

    faults.arm("tenant_flood:2")
    assert controller.admit("a", 0, 0, False)[0] == (
        protocol.ERR_TENANT_OVER_QUOTA
    )
    assert controller.admit("b", 0, 0, False)[0] == (
        protocol.ERR_TENANT_OVER_QUOTA
    )
    assert controller.admit("a", 0, 0, False) is None


def test_fair_queue_round_robin():
    queue = FairQueue()
    for tenant, job in (
        ("alice", "a1"), ("alice", "a2"), ("alice", "a3"),
        ("bob", "b1"), ("carol", "c1"),
    ):
        queue.push(tenant, job)
    assert len(queue) == 5
    assert queue.depths() == {"alice": 3, "bob": 1, "carol": 1}
    # Rotation: a flooding tenant cannot starve the others.
    assert [queue.pop() for _ in range(5)] == [
        "a1", "b1", "c1", "a2", "a3",
    ]
    assert queue.pop() is None


def test_fair_queue_remove():
    queue = FairQueue()
    queue.push("alice", "a1")
    queue.push("alice", "a2")
    assert queue.remove("a1") is True
    assert queue.remove("a1") is False
    assert queue.depth("alice") == 1
    assert queue.pop() == "a2"
    assert len(queue) == 0


# -- job model ----------------------------------------------------------------


def test_spec_digest_and_wire_roundtrip():
    spec = CampaignSpec(workload="fft", runs=4, seed=9, scale=0.5)
    assert spec.digest() == CampaignSpec(
        workload="fft", runs=4, seed=9, scale=0.5
    ).digest()
    assert spec.digest() != CampaignSpec(
        workload="fft", runs=4, seed=10, scale=0.5
    ).digest()
    assert CampaignSpec.from_wire(spec.to_wire()) == spec


def test_spec_namespace_matches_suite_namespace():
    # The whole cross-path dedup story rests on this equality: the
    # service must hit the recordings the sweeps/CLI made and vice versa.
    spec = CampaignSpec(workload="ocean", scale=0.7)
    assert spec.trace_namespace() == trace_namespace(
        "ocean", WorkloadParams(scale=0.7)
    )


def test_job_interrupt_first_reason_wins():
    job = Job(job_id="j1", tenant="t", spec=CampaignSpec(workload="fft"))
    assert not job.should_stop()
    job.interrupt("cancel")
    job.interrupt("drain")
    assert job.should_stop()
    assert job.stop_reason == "cancel"
    assert not job.terminal
    job.state = COMMITTED
    assert job.terminal


def test_lifecycle_partitions():
    assert set(LIFECYCLE[:-1]) == set(RESUMABLE)
    assert COMMITTED in TERMINAL
    assert not (RESUMABLE & TERMINAL)


# -- the job-state WAL --------------------------------------------------------


def _registry_with_job(tmp_path, state=RECORDING):
    registry = JobRegistry(tmp_path)
    registry.begin()
    spec = CampaignSpec(workload="fft", runs=3, seed=7, scale=0.5)
    job_id = registry.allocate_job_id(spec)
    job = Job(job_id=job_id, tenant="alice", spec=spec, deadline_s=4.0)
    registry.log_accepted(job)
    for step in (SHARDED, RECORDING, ANALYZING, COMMITTED, FAILED,
                 CANCELLED):
        if step == state:
            break
        registry.log_state(job_id, step)
    if state != ACCEPTED:
        registry.log_state(job_id, state)
    registry.close()
    return job_id, spec


def test_registry_replay_rebuilds_latest_state(tmp_path):
    job_id, spec = _registry_with_job(tmp_path, state=RECORDING)
    registry = JobRegistry(tmp_path)
    replayed = registry.replay()
    assert list(replayed) == [job_id]
    entry = replayed[job_id]
    assert entry.state == RECORDING
    assert entry.tenant == "alice"
    assert entry.deadline_s == 4.0
    job = job_from_replay(entry)
    assert job.spec == spec
    assert job.resumed is True
    # Sequencing continues after the replayed ids.
    assert registry.allocate_job_id(spec).startswith("j0002-")
    registry.close()


def test_registry_replay_terminal_failure_detail(tmp_path):
    registry = JobRegistry(tmp_path)
    spec = CampaignSpec(workload="fft")
    job_id = registry.allocate_job_id(spec)
    registry.log_accepted(Job(job_id=job_id, tenant="t", spec=spec))
    registry.log_state(job_id, FAILED, error="job_failed",
                       detail="boom")
    registry.close()
    replayed = JobRegistry(tmp_path).replay()
    assert replayed[job_id].state == FAILED
    assert replayed[job_id].error == "job_failed"
    assert replayed[job_id].detail == "boom"


def test_registry_replay_tolerates_torn_tail(tmp_path):
    job_id, _spec = _registry_with_job(tmp_path, state=ANALYZING)
    wal = tmp_path / "service" / "jobs.wal"
    data = wal.read_bytes()
    # Tear the newest record mid-frame: replay must stop there and
    # resume the job from one state earlier.
    wal.write_bytes(data[:-7])
    replayed = JobRegistry(tmp_path).replay()
    assert replayed[job_id].state == RECORDING


def test_registry_drops_job_with_lost_accepted_record(tmp_path):
    registry = JobRegistry(tmp_path)
    registry.begin()
    # A state record with no accepted record (its frame was torn away):
    # no client ever saw this id, so replay must not resurrect it.
    registry.log_state("j0009-deadbeef", RECORDING)
    registry.close()
    assert JobRegistry(tmp_path).replay() == {}


# -- lease-epoch records in the WAL -------------------------------------------


def _log_lease(registry, job_id, event, task, epoch, worker="wk0001",
               **extra):
    registry.log_lease({
        "event": event, "job": job_id, "task": task, "epoch": epoch,
        "worker": worker, **extra,
    })


def test_registry_replay_interleaves_lease_epoch_records(tmp_path):
    """Lease grants/expiries/dedups ride the job WAL and replay into
    per-task epoch high-water marks without disturbing job state."""
    registry = JobRegistry(tmp_path)
    registry.begin()
    spec = CampaignSpec(workload="fft", runs=2, seed=7)
    job_id = registry.allocate_job_id(spec)
    registry.log_accepted(Job(job_id=job_id, tenant="alice", spec=spec))
    registry.log_state(job_id, SHARDED)
    _log_lease(registry, job_id, "grant", "record/0", 1)
    registry.log_state(job_id, RECORDING)
    _log_lease(registry, job_id, "expire", "record/0", 1)
    _log_lease(registry, job_id, "requeue", "record/0", 1, why="deadline")
    _log_lease(registry, job_id, "grant", "record/0", 2, worker="wk0002")
    _log_lease(registry, job_id, "done", "record/0", 2, worker="wk0002")
    _log_lease(registry, job_id, "duplicate", "record/0", 1)
    _log_lease(registry, job_id, "grant", "record/1", 1)
    registry.close()

    replayed = JobRegistry(tmp_path).replay()
    entry = replayed[job_id]
    assert entry.state == RECORDING  # lease records never change state
    assert entry.lease_epochs == {"record/0": 2, "record/1": 1}
    assert entry.duplicate_completions == 1


def test_registry_replay_tolerates_torn_tail_mid_lease(tmp_path):
    """A WAL torn inside a lease record loses only that record: the
    job's state and every earlier lease epoch survive."""
    registry = JobRegistry(tmp_path)
    registry.begin()
    spec = CampaignSpec(workload="fft", runs=2, seed=7)
    job_id = registry.allocate_job_id(spec)
    registry.log_accepted(Job(job_id=job_id, tenant="alice", spec=spec))
    registry.log_state(job_id, RECORDING)
    _log_lease(registry, job_id, "grant", "record/0", 1)
    _log_lease(registry, job_id, "grant", "record/1", 3)
    registry.close()

    wal = tmp_path / "service" / "jobs.wal"
    wal.write_bytes(wal.read_bytes()[:-5])  # tear the newest lease record
    replayed = JobRegistry(tmp_path).replay()
    entry = replayed[job_id]
    assert entry.state == RECORDING
    assert entry.lease_epochs == {"record/0": 1}
    assert entry.duplicate_completions == 0


def test_registry_drops_lease_records_of_unaccepted_job(tmp_path):
    registry = JobRegistry(tmp_path)
    registry.begin()
    # Lease history for a job whose accepted record was torn away must
    # vanish with the job (no client ever held its id).
    _log_lease(registry, "j0009-deadbeef", "grant", "record/0", 1)
    registry.close()
    assert JobRegistry(tmp_path).replay() == {}


# -- executor -----------------------------------------------------------------


SPEC = CampaignSpec(workload="fft", runs=2, seed=5, scale=0.5)


def _cli_report(spec):
    workload = get_workload(spec.workload)
    campaign = run_campaign(
        workload.program_factory(spec.workload_params()),
        spec.workload,
        CampaignConfig(
            n_runs=spec.runs,
            base_seed=spec.seed,
            switch_probability=spec.switch_probability,
        ),
    )
    return format_campaign_report(campaign)


def test_execute_job_is_byte_identical_to_cli(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_FSYNC", "0")
    phases = []
    runs = []
    outcome = execute_job(
        SPEC, tmp_path,
        on_phase=lambda name, **info: phases.append(name),
        on_run=lambda run: runs.append(run.run_index),
    )
    assert outcome["report"] == _cli_report(SPEC)
    assert phases == ["sharded", "recording", "analyzing"]
    assert runs == list(range(SPEC.runs))
    assert outcome["stats"]["simulated"] == SPEC.runs
    assert outcome["stats"]["result_hit"] == 0

    # Second execution: served from the durable result document.
    hit = execute_job(SPEC, tmp_path)
    assert hit["report"] == outcome["report"]
    assert hit["stats"] == {
        "result_hit": 1, "simulated": 0, "replayed": SPEC.runs,
        "store": {},
    }


def test_execute_job_pooled_matches_inline(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_FSYNC", "0")
    outcome = execute_job(SPEC, tmp_path, workers=2)
    assert outcome["report"] == _cli_report(SPEC)
    assert outcome["stats"]["result_hit"] == 0


def test_execute_job_stop_raises_and_commits_nothing(tmp_path,
                                                     monkeypatch):
    monkeypatch.setenv("REPRO_FSYNC", "0")
    with pytest.raises(JobInterrupted):
        execute_job(SPEC, tmp_path, stop=lambda: True)
    store = PackedTraceStore(tmp_path / "traces")
    assert load_result(store, SPEC) is None
