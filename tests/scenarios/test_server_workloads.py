"""Scenario tests for the server workload family.

Every shape must honor the contracts the rest of the pipeline assumes:
deterministic builds, hang-free completion, replay bit-equivalence, and
-- per shape -- the synchronization activity its traffic pattern
promises (queue handoffs for the pipeline, CAS retries for the
optimistic counters, invalidation locking for the cache).  The campaign
test closes the loop: the server family flows through the record-once /
analyze-many protocol with results bit-identical to the legacy
per-configuration path, which is the ISSUE's acceptance criterion.
"""

import pytest

from repro.cord import CordConfig, CordDetector, replay_trace, verify_replay
from repro.detectors import IdealDetector
from repro.engine import run_program
from repro.engine.interceptor import SyncInterceptor
from repro.injection.campaign import (
    CampaignConfig,
    run_campaign,
    run_campaign_per_config,
)
from repro.program.ops import FlagWaitOp, LockOp
from repro.workloads import WorkloadParams, get_workload, workload_names

TINY = WorkloadParams(scale=0.25, compute_grain=8)

SERVER_NAMES = workload_names(family="server")


class _SyncCensus(SyncInterceptor):
    """Counts dynamic lock and flag-wait instances by sync-word name."""

    def __init__(self, space):
        self.space = space
        self.locks = {}
        self.waits = {}

    def on_sync_instance(self, thread, op):
        name = self.space.name_of(op.address)
        if isinstance(op, LockOp):
            self.locks[name] = self.locks.get(name, 0) + 1
        elif isinstance(op, FlagWaitOp):
            self.waits[name] = self.waits.get(name, 0) + 1
        return False


def _census(name, seed=1, params=TINY):
    program = get_workload(name).build(params)
    census = _SyncCensus(program.address_space)
    trace = run_program(program, seed=seed, interceptor=census)
    assert not trace.hung
    return program, trace, census


@pytest.mark.parametrize("name", SERVER_NAMES)
class TestEveryServerShape:
    def test_deterministic_per_seed(self, name):
        spec = get_workload(name)
        a = run_program(spec.build(TINY), seed=11)
        b = run_program(spec.build(TINY), seed=11)
        assert [e.key() for e in a.events] == [
            e.key() for e in b.events
        ]

    def test_different_seeds_interleave_differently(self, name):
        spec = get_workload(name)
        a = run_program(spec.build(TINY), seed=11)
        b = run_program(spec.build(TINY), seed=12)
        # Different interleaving per seed.  (Per-thread work may also
        # differ on shapes with schedule-dependent retries: casretry's
        # CAS failures depend on who lost the race.)
        assert [e.key() for e in a.events] != [
            e.key() for e in b.events
        ]

    def test_records_and_replays_bit_identically(self, name):
        program = get_workload(name).build(TINY)
        trace = run_program(program, seed=21)
        outcome = CordDetector(
            CordConfig(), program.n_threads
        ).run(trace)
        replayed = replay_trace(program, outcome.log)
        verdict = verify_replay(trace, replayed)
        assert verdict.equivalent, verdict.detail
        # Replay is itself deterministic: running it again reproduces
        # the same event stream exactly.
        again = replay_trace(program, outcome.log)
        assert [e.key() for e in replayed.events] == [
            e.key() for e in again.events
        ]

    def test_clean_run_race_free(self, name):
        program = get_workload(name).build(TINY)
        trace = run_program(program, seed=31)
        ideal = IdealDetector(program.n_threads).run(trace)
        assert ideal.raw_count == 0, ideal.races[:3]


class TestShapeActivity:
    """Each traffic shape must exhibit its promised sync signature."""

    def test_webpool_dispatch_and_completion_flags(self):
        _program, _trace, census = _census("webpool")
        mailboxes = sum(
            count for sync_name, count in census.waits.items()
            if "mailbox" in sync_name
        )
        dones = sum(
            count for sync_name, count in census.waits.items()
            if "done" in sync_name
        )
        assert mailboxes > 0, census.waits
        assert dones > 0, census.waits
        assert any("stats" in k for k in census.locks), census.locks

    def test_pipeline_queue_handoffs(self):
        _program, _trace, census = _census("pipeline")
        produced = sum(
            count for sync_name, count in census.waits.items()
            if "produced" in sync_name
        )
        assert produced > 0, census.waits
        # Bounded queues: the producer must also block on consumers
        # at least once (capacity back-pressure), across seeds.
        consumed = 0
        for seed in (1, 2, 3):
            _p, _t, c = _census("pipeline", seed=seed)
            consumed += sum(
                count for sync_name, count in c.waits.items()
                if "consumed" in sync_name
            )
        assert consumed > 0

    def test_cacheinval_stripe_locking(self):
        _program, _trace, census = _census("cacheinval")
        stripe_locks = sum(
            count for sync_name, count in census.locks.items()
            if "stripe" in sync_name
        )
        assert stripe_locks > 0, census.locks

    def test_casretry_has_retries(self):
        # Optimistic concurrency must actually lose races sometimes:
        # each commit costs 2 reservation acquires on the happy path,
        # so any surplus acquires are retry rounds.
        commits = TINY.scaled(20) * TINY.n_threads
        retries = 0
        for seed in (1, 2, 3, 2006):
            _program, _trace, census = _census("casretry", seed=seed)
            acquires = sum(
                count for sync_name, count in census.locks.items()
                if sync_name.startswith("cas.")
            )
            retries += max(0, (acquires - 2 * commits) // 2)
        assert retries > 0

    def test_eventloop_bounded_inflight(self):
        _program, _trace, census = _census("eventloop")
        submits = sum(
            count for sync_name, count in census.waits.items()
            if "submit" in sync_name
        )
        completes = sum(
            count for sync_name, count in census.waits.items()
            if "complete" in sync_name
        )
        assert submits > 0, census.waits
        assert completes > 0, census.waits


class TestServerCampaigns:
    """Record-once / analyze-many equivalence -- the acceptance gate."""

    @pytest.mark.parametrize("name", ["webpool", "pipeline", "casretry"])
    def test_record_once_matches_per_config(self, name):
        spec = get_workload(name)
        factory = spec.program_factory(TINY)
        config = CampaignConfig(n_runs=4, base_seed=2006)
        once = run_campaign(factory, name, config)
        per = run_campaign_per_config(factory, name, config)
        assert once.sync_instances == per.sync_instances
        assert once.detector_names == per.detector_names
        assert len(once.runs) == len(per.runs)
        for a, b in zip(once.runs, per.runs):
            assert (
                a.run_index, a.seed, a.target_index, a.injected,
                a.hung, a.n_events, a.flagged, a.problem, a.counters,
            ) == (
                b.run_index, b.seed, b.target_index, b.injected,
                b.hung, b.n_events, b.flagged, b.problem, b.counters,
            )

    def test_injection_manifests_races(self):
        # Removing sync from server shapes must produce real races the
        # oracle sees -- otherwise the family is useless for Fig. 10.
        spec = get_workload("webpool")
        factory = spec.program_factory(TINY)
        result = run_campaign(
            factory, "webpool", CampaignConfig(n_runs=6, base_seed=7)
        )
        assert result.sync_instances > 0
        assert result.n_manifested > 0
