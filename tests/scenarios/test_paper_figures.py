"""The paper's worked examples (Figures 1-9), executable.

Each scenario hand-builds the exact access sequence of a figure and runs
it through the CORD detector (and, where relevant, the Ideal oracle),
asserting the behavior the paper's prose derives: which clock updates
happen, which races are reported, which are deliberately missed, and that
no false positives ever appear.

Events are built directly (not via the engine) so the interleavings match
the figures exactly.
"""

import pytest

from repro.common.types import AccessClass, AccessMode
from repro.cord import CordConfig, CordDetector
from repro.detectors import IdealDetector
from repro.trace import MemoryEvent, Trace


class TraceBuilder:
    """Builds figure interleavings event by event."""

    def __init__(self, n_threads=2):
        self.events = []
        self.icounts = [0] * n_threads

    def _add(self, thread, address, mode, klass, value=0):
        event = MemoryEvent(
            len(self.events), thread, address, mode, klass,
            self.icounts[thread], value,
        )
        self.icounts[thread] += 1
        self.events.append(event)
        return event

    def rd(self, thread, address):
        return self._add(thread, address, AccessMode.READ,
                         AccessClass.DATA)

    def wr(self, thread, address, value=0):
        return self._add(thread, address, AccessMode.WRITE,
                         AccessClass.DATA, value)

    def sync_rd(self, thread, address):
        return self._add(thread, address, AccessMode.READ,
                         AccessClass.SYNC)

    def sync_wr(self, thread, address, value=0):
        return self._add(thread, address, AccessMode.WRITE,
                         AccessClass.SYNC, value)

    def trace(self):
        return Trace(self.events, list(self.icounts), name="figure")


# Distinct cache lines for each variable (64-byte lines).
X = 0x100000
Y = 0x100040
Z = 0x100080
Q = 0x1000C0
L = 0x8000000
L1 = 0x8000040
L2 = 0x8000080


def run_cord(trace, d=16, n_threads=2, **config_kwargs):
    detector = CordDetector(
        CordConfig(d=d, **config_kwargs), n_threads
    )
    return detector, detector.run(trace)


def flagged_addresses(outcome):
    return {race.address for race in outcome.races}


class TestFigure1:
    """Lock-chain ordering: the conflict on X is transitive, not a race."""

    def build(self):
        b = TraceBuilder()
        b.wr(0, X)          # WR X
        b.sync_wr(0, L)     # unlock(L): WR L
        b.sync_rd(1, L)     # lock(L): RD L observes the unlock
        b.rd(1, X)          # RD X -- ordered through L, no data race
        b.wr(0, Y)          # WR Y, concurrent with RD X (no conflict)
        return b.trace()

    def test_no_data_race_reported(self):
        _det, outcome = run_cord(self.build())
        assert outcome.raw_count == 0

    def test_ideal_agrees(self):
        outcome = IdealDetector(2).run(self.build())
        assert outcome.raw_count == 0

    def test_order_log_records_the_sync_race(self):
        detector, outcome = run_cord(self.build())
        # Thread 1's clock jumped at RD L: at least one entry for t1.
        assert any(e.thread == 1 for e in outcome.log.entries)
        assert detector.clocks[1] > detector.clocks[0] - 1


class TestFigure2:
    """A timestamp change erases the line's history; a second entry saves
    most of it."""

    LINE = 0x100000

    def build(self):
        # Thread 0 populates words 0..2 at one clock epoch, then a sync
        # write changes its clock, then it writes word 3: the Figure 2
        # situation where the new timestamp would erase everything.
        b = TraceBuilder()
        for word in range(3):
            b.wr(0, self.LINE + 4 * word)
        b.sync_wr(0, L)
        b.wr(0, self.LINE + 12)
        return b.trace()

    def coverage(self, entries_per_line):
        from repro.cord import CordConfig, CordDetector

        detector = CordDetector(
            CordConfig(d=1, entries_per_line=entries_per_line), 2
        )
        detector.run(self.build())
        slot = detector.snoop.cache_of(0).peek(self.LINE)
        return {
            word
            for word in range(4)
            if detector.store.conflicting_timestamps(slot, word, True)
        }

    def test_single_entry_erases_history(self):
        # With one timestamp per line, the post-sync write resets all
        # access bits: only word 3 remains covered.
        assert self.coverage(1) == {3}

    def test_two_entries_preserve_history(self):
        # The paper's fix: the old timestamp and its access bits provide
        # history for words not yet accessed at the new timestamp.
        assert self.coverage(2) == {0, 1, 2, 3}


class TestFigure3:
    """A clock update on a data race can hide a second data race."""

    def build(self):
        b = TraceBuilder()
        b.wr(0, Y)   # Thread A: WR Y at clk 1
        b.wr(0, X)   # Thread A: WR X at clk 1
        b.rd(1, X)   # Thread B: RD X -> race, clk(B) = 2
        b.rd(1, Y)   # Thread B: RD Y -- ordered now (clk 2 > ts 1)
        return b.trace()

    def test_naive_scalar_clock_hides_second_race(self):
        _det, outcome = run_cord(self.build(), d=1)
        assert flagged_addresses(outcome) == {X}

    def test_window_recovers_the_hidden_race(self):
        # With D > 1 the detector knows the +1 update was not real
        # synchronization, so Y is still reported (Section 2.6's point).
        _det, outcome = run_cord(self.build(), d=4)
        assert flagged_addresses(outcome) == {X, Y}

    def test_ideal_sees_both(self):
        outcome = IdealDetector(2).run(self.build())
        assert flagged_addresses(outcome) == {X, Y}


class TestFigure4:
    """Clock must be incremented after a synchronization write."""

    def build(self):
        b = TraceBuilder()
        b.sync_wr(0, L)   # Thread A: WR L (clk 1 -> 2 afterwards)
        b.wr(0, X)        # Thread A: WR X at clk 2
        b.sync_rd(1, L)   # Thread B: RD L -> clk = ts(L) + D
        b.rd(1, X)        # Thread B: RD X -- real data race on X
        return b.trace()

    def test_race_on_x_detected(self):
        # The write to X is *after* the sync write, so it is NOT ordered
        # by L; the post-sync-write increment is what exposes it.
        _det, outcome = run_cord(self.build(), d=4)
        assert flagged_addresses(outcome) == {X}

    def test_ideal_agrees(self):
        assert flagged_addresses(
            IdealDetector(2).run(self.build())
        ) == {X}


class TestFigure5:
    """No clock increments on reads or data writes."""

    def build(self):
        b = TraceBuilder()
        b.wr(0, X)   # Thread A: WR X at clk 1
        b.rd(1, Y)   # Thread B: RD Y (must NOT advance B's clock)
        b.rd(1, X)   # Thread B: RD X -- real race on X
        return b.trace()

    def test_race_detected_because_reads_do_not_tick(self):
        _det, outcome = run_cord(self.build(), d=1)
        assert flagged_addresses(outcome) == {X}


class TestFigure6:
    """Sync variable displaced to memory: ordering must survive."""

    def test_memts_preserves_ordering_and_no_false_race(self):
        # Thread A writes L then X; L's history is displaced (simulated
        # with a tiny cache by touching many other lines); thread B reads
        # L from memory and then X.  Order-recording must place B after
        # A, and no false data race on X may appear.
        b = TraceBuilder()
        b.wr(0, X)
        b.sync_wr(0, L)
        # Displace everything thread 0 has by touching many lines in the
        # same sets (tiny 2-way cache below).
        for i in range(1, 33):
            b.wr(0, 0x200000 + 64 * i)
        b.sync_rd(1, L)   # L now answered by main-memory timestamps
        b.rd(1, X)
        trace = b.trace()
        detector, outcome = run_cord(
            trace, d=4, cache_size=2 * 64 * 4, associativity=2,
        )
        assert outcome.raw_count == 0  # no false race on X
        # B's clock must have been pushed past A's sync write.
        assert detector.memts_orderings >= 1
        assert detector.clocks[1] > 1

    def test_ideal_agrees_no_race(self):
        b = TraceBuilder()
        b.wr(0, X)
        b.sync_wr(0, L)
        b.sync_rd(1, L)
        b.rd(1, X)
        assert IdealDetector(2).run(b.trace()).raw_count == 0


class TestFigure7:
    """Memory-timestamp updates may hide a real race -- never report it."""

    def test_race_masked_by_memts_is_missed_not_false(self):
        b = TraceBuilder(n_threads=3)
        b.wr(2, Q)        # Thread C: WR Q
        b.wr(0, X)        # Thread A: WR X at clk 1
        # Displace C's Q entry to memory (write-ts rises).
        for i in range(1, 33):
            b.wr(2, 0x200000 + 64 * i)
        b.sync_rd(1, L)   # Thread B reads L from memory: clock update
        b.rd(1, X)        # real race on X -- masked by the clock update
        trace = b.trace()
        detector, outcome = run_cord(
            trace, d=4, n_threads=3,
            cache_size=2 * 64 * 4, associativity=2,
        )
        ideal = IdealDetector(3).run(trace)
        # Ideal sees the race on X; CORD misses it but reports nothing
        # false (comparisons against memory timestamps are never races).
        assert X in flagged_addresses(ideal)
        assert outcome.flagged <= ideal.flagged


class TestFigure8:
    """Symmetric sync-write rates defeat D=1 scalar clocks.

    Both threads perform synchronization writes at about the same rate,
    so each thread's current clock is larger than timestamps other
    threads produced earlier -- old races look "ordered" to a naive
    scalar clock.  All sync-write conflict outcomes here order B before
    A, so A's data is never ordered before B's reads (the races are
    real), yet B's clock has grown past their timestamps.
    """

    def build(self):
        b = TraceBuilder()
        b.wr(0, Q)          # A: WR Q at clk 1 (never ordered vs B)
        b.sync_wr(1, L1)    # B releases L1 first: clk 1 -> 2
        b.sync_wr(0, L1)    # A's conflicting write: A updated after B
        b.sync_wr(1, L2)    # B: clk 2 -> 3
        b.sync_wr(0, L2)
        b.wr(0, X)          # A: WR X (post-sync, unordered vs B)
        b.rd(1, Q)          # B: RD Q -- real race, but clk(B) > ts(Q)
        b.wr(0, Z)          # A: WR Z at a high clock
        b.rd(1, Z)          # B: RD Z -- clk(B) <= ts(Z): even D=1 sees it
        b.rd(1, X)          # B: RD X -- real race, closer in time
        return b.trace()

    def test_races_are_real(self):
        ideal = IdealDetector(2).run(self.build())
        assert {Q, X, Z} <= flagged_addresses(ideal)

    def test_d1_detects_only_nearly_simultaneous(self):
        _det, outcome = run_cord(self.build(), d=1)
        assert Z in flagged_addresses(outcome)
        assert Q not in flagged_addresses(outcome)

    def test_larger_window_recovers_races(self):
        _det, d1 = run_cord(self.build(), d=1)
        _det, d16 = run_cord(self.build(), d=16)
        assert d16.raw_count > d1.raw_count
        assert {Q, X, Z} <= flagged_addresses(d16)

    def test_no_false_positives_at_any_d(self):
        ideal = IdealDetector(2).run(self.build())
        for d in (1, 4, 16, 256):
            _det, outcome = run_cord(self.build(), d=d)
            assert outcome.flagged <= ideal.flagged


class TestFigure9:
    """Sync-read +D updates vs +1 race updates, in one interleaving."""

    def build(self, d):
        b = TraceBuilder()
        b.wr(0, Y)          # A: WR Y at clk 1
        b.sync_wr(0, L)     # A: WR L at 1; clk -> 2
        b.sync_rd(1, L)     # B: RD L -> clk = 1 + D
        b.rd(1, Y)          # B: RD Y -- properly synchronized, no race
        b.wr(0, X)          # A: WR X at clk 2
        b.wr(1, X)          # B: WR X -- data race (window), +1 update
        b.rd(0, Z)
        b.wr(1, Z)          # depends on relative clocks
        return b.trace()

    def test_synchronized_conflict_not_reported(self):
        _det, outcome = run_cord(self.build(4), d=4)
        assert Y not in flagged_addresses(outcome)

    def test_data_race_on_x_detected(self):
        _det, outcome = run_cord(self.build(4), d=4)
        assert X in flagged_addresses(outcome)

    def test_race_update_is_plus_one(self):
        detector = CordDetector(CordConfig(d=4), 2)
        b = TraceBuilder()
        b.wr(0, X, 1)
        detector.process(b.events[0])
        ts_x = detector.clocks[0]
        b2 = TraceBuilder()
        b2.wr(1, X, 2)
        event = b2.events[0]
        detector.process(event)
        # Equal clocks: race -> updated to ts + 1, not ts + D.
        assert detector.clocks[1] == ts_x + 1

    def test_no_false_positives(self):
        ideal = IdealDetector(2).run(self.build(4))
        _det, outcome = run_cord(self.build(4), d=4)
        assert outcome.flagged <= ideal.flagged
