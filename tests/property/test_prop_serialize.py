"""Property tests: trace codec round-trips and migration soundness."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.types import AccessClass, AccessMode
from repro.cord import CordConfig, CordDetector
from repro.detectors import IdealDetector
from repro.engine import run_program
from repro.trace import MemoryEvent, Trace, decode_trace, encode_trace

from tests.property.test_prop_system import build_program, programs, seeds

events_strategy = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=3),            # thread
        st.integers(min_value=0, max_value=2**30).map(
            lambda a: a * 4
        ),                                                # address
        st.booleans(),                                    # write
        st.booleans(),                                    # sync
        st.integers(min_value=0, max_value=2**31),        # icount
        st.integers(min_value=-(2**40), max_value=2**40),  # value
    ),
    max_size=50,
)


@given(
    events_strategy,
    st.booleans(),
    st.one_of(st.none(), st.integers(min_value=0, max_value=2**40)),
)
def test_trace_codec_roundtrip(raw_events, hung, seed):
    events = [
        MemoryEvent(
            index,
            thread,
            address,
            AccessMode.WRITE if write else AccessMode.READ,
            AccessClass.SYNC if sync else AccessClass.DATA,
            icount,
            value,
        )
        for index, (thread, address, write, sync, icount, value)
        in enumerate(raw_events)
    ]
    trace = Trace(events, [2**31] * 4, name="prop", hung=hung, seed=seed)
    restored = decode_trace(encode_trace(trace))
    assert restored.hung == hung
    assert restored.seed == seed
    assert len(restored.events) == len(events)
    for mine, theirs in zip(events, restored.events):
        assert mine.key() == theirs.key()
        assert mine.value == theirs.value


@settings(max_examples=30, deadline=None)
@given(
    programs,
    seeds,
    st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=200),  # event index
            st.integers(min_value=0, max_value=2),    # thread
            st.integers(min_value=0, max_value=3),    # processor
        ),
        max_size=4,
    ),
)
def test_migrations_never_create_false_positives(
    thread_actions, seed, schedule
):
    program = build_program(thread_actions)
    trace = run_program(program, seed=seed)
    usable = [
        (index, thread, processor)
        for index, thread, processor in schedule
        if thread < program.n_threads
    ]
    ideal = IdealDetector(program.n_threads).run(trace)
    detector = CordDetector(CordConfig(d=16), program.n_threads)
    outcome = detector.run_with_migrations(trace, usable)
    # Run-level soundness: reports only in genuinely racy executions.
    if outcome.problem_detected:
        assert ideal.problem_detected


@settings(max_examples=30, deadline=None)
@given(programs, seeds)
def test_directory_equals_snooping_everywhere(thread_actions, seed):
    # The directory variant must produce identical races and identical
    # order logs on arbitrary racy programs, not just the workloads.
    from repro.cord import CordConfig, CordDetector
    from repro.cord.directory import DirectoryCordDetector

    program = build_program(thread_actions)
    trace = run_program(program, seed=seed)
    snoop = CordDetector(CordConfig(d=16), program.n_threads).run(trace)
    directory_detector = DirectoryCordDetector(
        CordConfig(d=16), program.n_threads
    )
    directory = directory_detector.run(trace)
    assert snoop.flagged == directory.flagged
    assert [(e.clock, e.thread, e.count) for e in snoop.log] == [
        (e.clock, e.thread, e.count) for e in directory.log
    ]
    directory_detector.verify_directory()
