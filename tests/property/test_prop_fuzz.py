"""Property tests over the differential fuzzer.

Two layers:

* the *oracle's invariants hold* on hypothesis-generated fuzz programs
  (scalar within vector, tiers byte-identical, replay equivalent) --
  this is the fuzzer running inside hypothesis's own shrinker;
* the *fuzzer machinery works*: specs round-trip through JSON, the
  hunt is deterministic, and -- the ISSUE's acceptance test -- a
  deliberately broken detector is found and shrunk to a witness of at
  most a dozen ops.

Bounded by default; set ``REPRO_FUZZ_DEEP=1`` for the deep
configuration CI's fuzz job runs on a timer.
"""

import os

import pytest

pytest.importorskip("hypothesis")

from hypothesis import HealthCheck, given, settings  # noqa: E402
from hypothesis import strategies as st  # noqa: E402

from repro.cachesim import CacheGeometry  # noqa: E402
from repro.cord import CordConfig, CordDetector  # noqa: E402
from repro.detectors import (  # noqa: E402
    IdealDetector,
    LimitedVectorDetector,
)
from repro.engine import run_program  # noqa: E402
from repro.fuzz import (  # noqa: E402
    FuzzProgram,
    build_program,
    check_program,
    hunt,
    shrink,
)
from repro.fuzz.broken import broken_spec  # noqa: E402
from repro.fuzz.strategies import fuzz_programs, schedule_seeds  # noqa: E402

DEEP = os.environ.get("REPRO_FUZZ_DEEP") == "1"

#: Example counts: bounded for tier-1, deep for the CI fuzz job.
EXAMPLES = 200 if DEEP else 25

COMMON = dict(
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

_LINE = 64


@settings(max_examples=EXAMPLES, **COMMON)
@given(fuzz_programs(), schedule_seeds())
def test_oracle_finds_no_disagreement_on_healthy_detectors(fp, seed):
    """The full cross-detector oracle is silent without planted faults."""
    found = check_program(fp, seed)
    assert not found, [str(d) for d in found]


@settings(max_examples=EXAMPLES, **COMMON)
@given(fuzz_programs(), schedule_seeds(), st.sampled_from([1, 16]))
def test_scalar_within_vector_on_fuzz_programs(fp, seed, d):
    """The subset hierarchy, asserted directly on the raw detectors."""
    program = build_program(fp)
    trace = run_program(program, seed=seed, on_deadlock="hang")
    n = program.n_threads
    vector = LimitedVectorDetector(
        n, CacheGeometry.infinite(_LINE)
    ).run(trace)
    ideal = IdealDetector(n).run(trace)
    scalar = CordDetector(
        CordConfig(d=d, cache_size=None, line_size=_LINE), n
    ).run(trace)
    assert not (scalar.flagged - vector.flagged)
    assert not (vector.flagged - ideal.flagged)


@settings(max_examples=EXAMPLES, **COMMON)
@given(fuzz_programs())
def test_spec_round_trips_through_json(fp):
    assert FuzzProgram.from_json(fp.to_json()) == fp


@settings(max_examples=EXAMPLES, **COMMON)
@given(fuzz_programs(), schedule_seeds())
def test_normalized_build_is_deterministic(fp, seed):
    """Same spec + seed -> bit-identical executions."""
    a = run_program(build_program(fp), seed=seed, on_deadlock="hang")
    b = run_program(build_program(fp), seed=seed, on_deadlock="hang")
    assert a.hung == b.hung
    assert [e.key() for e in a.events] == [e.key() for e in b.events]


class TestBrokenDetectorAcceptance:
    """The ISSUE acceptance gate: plant a fault, find it, shrink it."""

    def test_hb_oblivious_found_and_shrunk_small(self):
        report = hunt(
            n_programs=10,
            seed=2006,
            broken_variant="hb-oblivious",
            check_tiers=False,
        )
        assert report.witnesses, "planted fault was never detected"
        smallest = min(
            w.program.op_count for w in report.witnesses
        )
        assert smallest <= 12, (
            "witness did not shrink: %d ops" % smallest
        )
        # The shrunk witness still fails for the planted reason.
        witness = min(
            report.witnesses, key=lambda w: w.program.op_count
        )
        found = check_program(
            witness.program, witness.seed,
            extra_scalar_specs=[broken_spec("hb-oblivious")],
            check_tiers=False,
        )
        assert any(
            d.invariant == witness.invariant for d in found
        )
        # ...and passes cleanly under the real detector families.
        assert not check_program(witness.program, witness.seed)

    def test_sync_flagger_found(self):
        report = hunt(
            n_programs=20,
            seed=7,
            broken_variant="sync-flagger",
            check_tiers=False,
        )
        assert report.witnesses, "planted fault was never detected"

    def test_hunt_is_deterministic(self):
        kwargs = dict(
            n_programs=6, seed=42,
            broken_variant="hb-oblivious", check_tiers=False,
        )
        a = hunt(**kwargs)
        b = hunt(**kwargs)
        assert [w.to_json() for w in a.witnesses] == [
            w.to_json() for w in b.witnesses
        ]


def test_shrink_preserves_the_failing_invariant():
    spec = broken_spec("hb-oblivious")
    fp = FuzzProgram((
        (("write", 3), ("lock", 2), ("read", 5), ("unlock", 0)),
        (("read", 3), ("compute", 2), ("set", 1)),
        (("wait", 1), ("update", 3)),
    ))

    def oracle(candidate):
        return check_program(
            candidate, 99,
            extra_scalar_specs=[spec], check_tiers=False,
        )

    assert any(d.invariant == "subset" for d in oracle(fp))
    result = shrink(fp, "subset", oracle)
    assert result.program.op_count <= fp.op_count
    assert result.program.op_count <= 4
    assert any(
        d.invariant == "subset" for d in oracle(result.program)
    )
