"""Property tests: packed (columnar) traces are equivalent to object traces.

Three layers of the equivalence the record-once pipeline rests on:

1. **Representation** -- packing an event list and materializing it back
   is the identity (keys, values, indices).
2. **Codec** -- the v2 columnar codec round-trips packed traces exactly,
   and decodes v1 (row-major) files to the same content.
3. **Analysis** -- every detector's ``process_packed`` path produces
   byte-identical race reports and order logs to its per-event-object
   path, on hypothesis-generated racy programs and on golden workloads.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cachesim.cache import CacheGeometry
from repro.common.types import AccessClass, AccessMode
from repro.cord import CordConfig, CordDetector
from repro.cord.directory import DirectoryCordDetector
from repro.detectors import IdealDetector
from repro.detectors.epoch import EpochDetector
from repro.detectors.vector_cord import LimitedVectorDetector
from repro.engine import run_program
from repro.trace import (
    MemoryEvent,
    PackedTrace,
    Trace,
    decode_packed_trace,
    decode_trace,
    encode_packed_trace,
    encode_trace,
)
from repro.trace.serialize import _encode_trace_v1
from repro.workloads import WorkloadParams, get_workload

from tests.property.test_prop_serialize import events_strategy
from tests.property.test_prop_system import build_program, programs, seeds


def _build_events(raw_events):
    return [
        MemoryEvent(
            index,
            thread,
            address,
            AccessMode.WRITE if write else AccessMode.READ,
            AccessClass.SYNC if sync else AccessClass.DATA,
            icount,
            value,
        )
        for index, (thread, address, write, sync, icount, value)
        in enumerate(raw_events)
    ]


# -- representation ----------------------------------------------------------


@given(events_strategy)
def test_pack_materialize_is_identity(raw_events):
    events = _build_events(raw_events)
    packed = PackedTrace.from_events(events, [2**31] * 4)
    back = packed.materialize_events()
    assert len(back) == len(events)
    for mine, theirs in zip(events, back):
        assert mine.key() == theirs.key()
        assert mine.value == theirs.value
        assert mine.index == theirs.index


@given(events_strategy)
def test_lazy_trace_equals_object_trace(raw_events):
    events = _build_events(raw_events)
    object_trace = Trace(events, [2**31] * 4)
    lazy = Trace.from_packed(
        PackedTrace.from_events(events, [2**31] * 4)
    )
    assert lazy.per_thread_sequences() == object_trace.per_thread_sequences()
    assert lazy.addresses() == object_trace.addresses()


# -- codec -------------------------------------------------------------------


@given(
    events_strategy,
    st.booleans(),
    st.one_of(st.none(), st.integers(min_value=0, max_value=2**40)),
)
def test_packed_codec_roundtrip(raw_events, hung, seed):
    packed = PackedTrace.from_events(
        _build_events(raw_events),
        [2**31] * 4,
        name="prop",
        hung=hung,
        seed=seed,
    )
    restored = decode_packed_trace(encode_packed_trace(packed))
    assert restored.columns_equal(packed)


@given(events_strategy)
def test_packed_and_object_encode_identically(raw_events):
    events = _build_events(raw_events)
    object_trace = Trace(events, [2**31] * 4, name="prop")
    packed_trace = Trace.from_packed(
        PackedTrace.from_events(events, [2**31] * 4, name="prop")
    )
    assert encode_trace(object_trace) == encode_trace(packed_trace)


@given(events_strategy)
def test_v1_decodes_to_same_content_as_v2(raw_events):
    events = _build_events(raw_events)
    trace = Trace(events, [2**31] * 4, name="prop")
    from_v1 = decode_trace(_encode_trace_v1(trace))
    from_v2 = decode_trace(encode_trace(trace))
    assert from_v1.packed.columns_equal(from_v2.packed)


# -- analysis ---------------------------------------------------------------


def _assert_outcomes_identical(object_outcome, packed_outcome):
    assert object_outcome.flagged == packed_outcome.flagged
    assert [
        (r.access, r.address, r.other_thread, r.detail)
        for r in object_outcome.races
    ] == [
        (r.access, r.address, r.other_thread, r.detail)
        for r in packed_outcome.races
    ]
    object_log = getattr(object_outcome, "log", None)
    if object_log is not None:
        assert [
            (e.clock, e.thread, e.count) for e in object_log
        ] == [
            (e.clock, e.thread, e.count) for e in packed_outcome.log
        ]


@settings(max_examples=30, deadline=None)
@given(programs, seeds)
def test_cord_packed_path_equivalent(thread_actions, seed):
    program = build_program(thread_actions)
    trace = run_program(program, seed=seed)
    object_outcome = CordDetector(
        CordConfig(d=16), program.n_threads
    ).run(trace)
    packed_detector = CordDetector(CordConfig(d=16), program.n_threads)
    packed_outcome = packed_detector.run_packed(trace.packed)
    _assert_outcomes_identical(object_outcome, packed_outcome)


@settings(max_examples=30, deadline=None)
@given(programs, seeds)
def test_ideal_and_epoch_packed_paths_equivalent(thread_actions, seed):
    program = build_program(thread_actions)
    trace = run_program(program, seed=seed)
    for build in (IdealDetector, EpochDetector):
        object_outcome = build(program.n_threads).run(trace)
        packed_outcome = build(program.n_threads).run_packed(trace.packed)
        _assert_outcomes_identical(object_outcome, packed_outcome)


def _golden_detectors(n_threads):
    return [
        CordDetector(CordConfig(d=16), n_threads),
        CordDetector(CordConfig(d=4, use_window=True), n_threads),
        DirectoryCordDetector(CordConfig(d=16), n_threads),
        LimitedVectorDetector(n_threads, CacheGeometry.infinite()),
        EpochDetector(n_threads),
        IdealDetector(n_threads),
    ]


def test_golden_workloads_packed_equivalence():
    # Two golden workloads, every detector family, both paths: race
    # reports, order logs, and CORD's hot-path counters must all match.
    for workload in ("fft", "ocean"):
        program = get_workload(workload).build(WorkloadParams(scale=0.5))
        trace = run_program(program, seed=7)
        assert trace.packed is not None
        for object_detector, packed_detector in zip(
            _golden_detectors(program.n_threads),
            _golden_detectors(program.n_threads),
        ):
            object_outcome = object_detector.run(trace)
            packed_outcome = packed_detector.run_packed(trace.packed)
            _assert_outcomes_identical(object_outcome, packed_outcome)
            if isinstance(object_detector, CordDetector):
                assert (
                    object_detector.fast_hits,
                    object_detector.race_checks,
                    object_detector.memts_orderings,
                    object_detector.clock_changes,
                ) == (
                    packed_detector.fast_hits,
                    packed_detector.race_checks,
                    packed_detector.memts_orderings,
                    packed_detector.clock_changes,
                )


def test_golden_workload_codec_roundtrip_preserves_analysis():
    # Record -> encode -> decode -> analyze must equal direct analysis.
    program = get_workload("fft").build(WorkloadParams(scale=0.5))
    trace = run_program(program, seed=7)
    restored = decode_trace(encode_trace(trace))
    direct = CordDetector(CordConfig(), program.n_threads).run_packed(
        trace.packed
    )
    roundtripped = CordDetector(
        CordConfig(), program.n_threads
    ).run_packed(restored.packed)
    _assert_outcomes_identical(direct, roundtripped)
