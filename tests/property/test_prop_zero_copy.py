"""Property tests: zero-copy (v3/mmap) traces are equivalent to eager ones.

The zero-copy plane rests on three claims, each asserted here on
hypothesis-generated traces and golden workloads:

1. **View = decode** -- a buffer-backed :class:`PackedTrace` built by
   :func:`view_packed_trace` over a v3 blob is indistinguishable from an
   eager :func:`decode_packed_trace` of the same blob (and from an eager
   decode of the *v2* encoding of the same trace): columns, counters,
   hot/geometry/derived views, and re-encoded bytes all match.
2. **Analysis equivalence** -- every detector family (CORD, Ideal,
   Epoch, LimitedVector) produces byte-identical outcomes on the
   zero-copy view, including on the scalar no-numpy fallback paths.
3. **Integrity survives** -- a truncated or bit-flipped v3 store entry
   raises :class:`StoreCorruptError` at the frame layer and is
   quarantined (never decoded) at the store layer.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cachesim.cache import CacheGeometry
from repro.common.errors import StoreCorruptError
from repro.cord import CordConfig, CordDetector
from repro.detectors import IdealDetector
from repro.detectors.epoch import EpochDetector
from repro.detectors.vector_cord import LimitedVectorDetector
from repro.engine import run_program
from repro.trace import (
    MemoryEvent,
    PackedTrace,
    PackedTraceStore,
    decode_packed_trace,
    encode_packed_trace,
    encode_packed_trace_v2,
    view_packed_trace,
)
from repro.common.types import AccessClass, AccessMode
from repro.workloads import WorkloadParams, get_workload

from tests.property.test_prop_serialize import events_strategy
from tests.property.test_prop_system import build_program, programs, seeds


def _build_events(raw_events):
    return [
        MemoryEvent(
            index,
            thread,
            address,
            AccessMode.WRITE if write else AccessMode.READ,
            AccessClass.SYNC if sync else AccessClass.DATA,
            icount,
            value,
        )
        for index, (thread, address, write, sync, icount, value)
        in enumerate(raw_events)
    ]


def _assert_traces_identical(view, eager):
    assert view.columns_equal(eager)
    assert view.final_icounts == eager.final_icounts
    assert view.name == eager.name
    assert view.hung == eager.hung
    assert view.seed == eager.seed
    assert len(view) == len(eager)
    assert view.hot_columns() == eager.hot_columns()
    # Geometry views (line/set extraction) over the mapped buffer.
    geo_view = view.geometry_columns(~0x3F, 6, 0x7F)
    geo_eager = eager.geometry_columns(~0x3F, 6, 0x7F)
    for mine, theirs in zip(geo_view, geo_eager):
        assert list(mine) == list(theirs)
    # Generic derived-view cache works over the buffer-backed columns.
    key = ("prop-derived",)
    assert view.derived(
        key, lambda: [x * 2 for x in view.address]
    ) == eager.derived(key, lambda: [x * 2 for x in eager.address])
    # Re-encoding a zero-copy trace is byte-identical to re-encoding
    # the eager one (export/publish paths rely on this).
    assert encode_packed_trace(view) == encode_packed_trace(eager)


# -- view = decode -----------------------------------------------------------


@given(
    events_strategy,
    st.booleans(),
    st.one_of(st.none(), st.integers(min_value=0, max_value=2**40)),
)
def test_v3_view_equals_eager_decode(raw_events, hung, seed):
    packed = PackedTrace.from_events(
        _build_events(raw_events),
        [2**31] * 4,
        name="prop",
        hung=hung,
        seed=seed,
    )
    blob = encode_packed_trace(packed)
    view = view_packed_trace(blob)
    eager = decode_packed_trace(blob)
    assert not eager.zero_copy
    _assert_traces_identical(view, eager)
    _assert_traces_identical(view, packed)


@given(events_strategy)
def test_v3_view_equals_v2_eager_decode(raw_events):
    # The migration claim: the zero-copy view of the v3 encoding equals
    # the eager decode of the *v2* encoding of the same trace.
    packed = PackedTrace.from_events(
        _build_events(raw_events), [2**31] * 4, name="prop", seed=3
    )
    from_v2 = decode_packed_trace(encode_packed_trace_v2(packed))
    view = view_packed_trace(encode_packed_trace(packed))
    _assert_traces_identical(view, from_v2)


# -- analysis equivalence ----------------------------------------------------


def _families(n_threads):
    return [
        CordDetector(CordConfig(d=16), n_threads),
        IdealDetector(n_threads),
        EpochDetector(n_threads),
        LimitedVectorDetector(n_threads, CacheGeometry.infinite()),
    ]


def _assert_outcomes_identical(eager_outcome, view_outcome):
    assert eager_outcome.flagged == view_outcome.flagged
    assert eager_outcome.raw_count == view_outcome.raw_count
    assert eager_outcome.problem_detected == view_outcome.problem_detected
    assert dict(eager_outcome.counters) == dict(view_outcome.counters)


@settings(max_examples=20, deadline=None)
@given(programs, seeds)
def test_families_identical_on_zero_copy_view(thread_actions, seed):
    program = build_program(thread_actions)
    trace = run_program(program, seed=seed)
    blob = encode_packed_trace(trace.packed)
    view = view_packed_trace(blob)
    eager = decode_packed_trace(blob)
    for eager_detector, view_detector in zip(
        _families(program.n_threads), _families(program.n_threads)
    ):
        _assert_outcomes_identical(
            eager_detector.run_packed(eager),
            view_detector.run_packed(view),
        )


@pytest.mark.parametrize("workload", ["fft", "ocean"])
def test_golden_families_identical_on_view_scalar_fallback(
    workload, monkeypatch
):
    # The no-numpy escape hatch drives the scalar loops directly over
    # the buffer-backed memoryview columns; outcomes must still match
    # an eager decode analyzed the same way.
    program = get_workload(workload).build(WorkloadParams(scale=0.4))
    trace = run_program(program, seed=7)
    blob = encode_packed_trace(trace.packed)
    eager_outcomes = [
        det.run_packed(decode_packed_trace(blob))
        for det in _families(program.n_threads)
    ]
    monkeypatch.setenv("REPRO_NO_NUMPY", "1")
    view = view_packed_trace(blob)
    assert view.zero_copy
    for eager_outcome, view_detector in zip(
        eager_outcomes, _families(program.n_threads)
    ):
        _assert_outcomes_identical(
            eager_outcome, view_detector.run_packed(view)
        )


# -- integrity ---------------------------------------------------------------


def _stored_entry(tmp_path):
    store = PackedTraceStore(tmp_path)
    program = get_workload("fft").build(WorkloadParams(scale=0.25))
    trace = run_program(program, seed=7)
    key = ("fft/params", (7, 0, 0.1))
    store.store_run(*key, trace.packed, {"injected": True})
    return store, key, store._path("trace", *key)


@pytest.mark.parametrize("cut", [0.25, 0.5, 0.99])
def test_truncated_v3_entry_quarantined(tmp_path, cut):
    from repro.trace.store import unframe_payload

    store, key, path = _stored_entry(tmp_path)
    raw = path.read_bytes()
    truncated = raw[: int(len(raw) * cut)]
    with pytest.raises(StoreCorruptError):
        unframe_payload(truncated)
    path.write_bytes(truncated)
    assert store.load_run(*key) is None
    assert store.stats["quarantined"] == 1
    assert (store.quarantine_dir / path.name).exists()


def test_bit_flipped_v3_entry_quarantined(tmp_path):
    from repro.trace.store import unframe_payload

    store, key, path = _stored_entry(tmp_path)
    raw = bytearray(path.read_bytes())
    flips = [len(raw) // 3, len(raw) // 2, len(raw) - 1]
    for offset in flips:
        damaged = bytearray(raw)
        damaged[offset] ^= 0xFF
        with pytest.raises(StoreCorruptError):
            unframe_payload(bytes(damaged))
    damaged = bytearray(raw)
    damaged[len(raw) // 2] ^= 0xFF
    path.write_bytes(bytes(damaged))
    assert store.load_run(*key) is None
    assert store.stats["quarantined"] == 1
    assert store.stats["run_misses"] == 1
    assert store.stats["mmap_hits"] == 0


def test_shared_segment_digest_mismatch_rejected():
    from repro.trace import (
        SharedTraceHandle,
        attach_trace,
        publish_trace,
        sharedmem_available,
        unpublish_trace,
    )

    if not sharedmem_available():
        pytest.skip("shared memory unavailable")
    packed = PackedTrace.from_events(
        _build_events([(0, 4, True, False, 1, 2)]), [2**31] * 4
    )
    handle, shm = publish_trace(encode_packed_trace(packed))
    try:
        assert attach_trace(handle).columns_equal(packed)
        tampered = SharedTraceHandle(handle.name, handle.size, "0" * 64)
        with pytest.raises(StoreCorruptError):
            attach_trace(tampered)
    finally:
        unpublish_trace(shm)
