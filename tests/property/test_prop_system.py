"""System-level property tests: random programs, the three big claims.

Hypothesis generates small multithreaded programs (reads/writes over a
small shared pool, properly nested critical sections, compute blocks) and
random scheduler seeds, then checks:

1. **Determinism** -- same seed, same trace.
2. **Soundness** -- on data-race-free executions CORD (at any D) reports
   nothing; on racy executions a report implies a real race exists (the
   level at which the paper's no-false-alarm guarantee holds; see
   EXPERIMENTS.md).
3. **Replay** -- re-execution from the order log is conflict-equivalent
   to the recorded run, racy or not.

The generated programs are deliberately racy (locks guard only some
accesses), so these properties are exercised far outside the polite
workload set.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cord import CordConfig, CordDetector, replay_trace, verify_replay
from repro.detectors import IdealDetector
from repro.engine import run_program
from repro.program import AddressSpace, Program
from repro.program.ops import ComputeOp, ReadOp, WriteOp
from repro.sync import Mutex, acquire, release

N_ADDRESSES = 6
N_MUTEXES = 2

# One thread's behavior: a list of actions.
_action = st.one_of(
    st.tuples(
        st.just("data"),
        st.integers(min_value=0, max_value=N_ADDRESSES - 1),
        st.booleans(),
    ),
    st.tuples(
        st.just("cs"),
        st.integers(min_value=0, max_value=N_MUTEXES - 1),
        st.integers(min_value=0, max_value=N_ADDRESSES - 1),
    ),
    st.tuples(
        st.just("compute"),
        st.integers(min_value=1, max_value=5),
        st.just(0),
    ),
)

_thread_actions = st.lists(_action, min_size=1, max_size=25)
programs = st.lists(_thread_actions, min_size=2, max_size=3)
seeds = st.integers(min_value=0, max_value=2**20)


def build_program(thread_actions):
    space = AddressSpace()
    words = space.alloc_array("pool", N_ADDRESSES)
    mutexes = [
        Mutex.allocate(space, "m%d" % i) for i in range(N_MUTEXES)
    ]

    def make_body(actions):
        def body(tid):
            for kind, a, b in actions:
                if kind == "data":
                    if b:
                        value = yield ReadOp(words[a])
                        yield WriteOp(words[a], (value or 0) + 1)
                    else:
                        yield ReadOp(words[a])
                elif kind == "cs":
                    yield from acquire(mutexes[a])
                    value = yield ReadOp(words[b])
                    yield WriteOp(words[b], (value or 0) + 1)
                    yield from release(mutexes[a])
                else:
                    yield ComputeOp(a)

        return body

    bodies = [make_body(actions) for actions in thread_actions]
    return Program(bodies, space, name="hypothesis")


@settings(max_examples=60, deadline=None)
@given(programs, seeds)
def test_engine_determinism(thread_actions, seed):
    program = build_program(thread_actions)
    a = run_program(program, seed=seed)
    b = run_program(program, seed=seed)
    assert [e.key() for e in a.events] == [e.key() for e in b.events]
    assert a.final_icounts == b.final_icounts


@settings(max_examples=60, deadline=None)
@given(programs, seeds, st.sampled_from([1, 16]))
def test_cord_never_alarms_on_race_free_runs(thread_actions, seed, d):
    """The paper's soundness guarantee, at the level it actually holds.

    On a data-race-free execution CORD must be silent.  On racy
    executions, access-level exactness is not guaranteed (clock updates
    on real data races can make a later ordered pair look reversed), but
    a problem report always implies a real race exists.
    """
    program = build_program(thread_actions)
    trace = run_program(program, seed=seed)
    ideal = IdealDetector(program.n_threads).run(trace)
    outcome = CordDetector(CordConfig(d=d), program.n_threads).run(trace)
    if not ideal.problem_detected:
        assert not outcome.problem_detected, sorted(outcome.flagged)[:3]


@settings(max_examples=60, deadline=None)
@given(programs, seeds)
def test_record_replay_equivalence(thread_actions, seed):
    program = build_program(thread_actions)
    trace = run_program(program, seed=seed)
    outcome = CordDetector(CordConfig(), program.n_threads).run(trace)
    replayed = replay_trace(program, outcome.log)
    verdict = verify_replay(trace, replayed)
    assert verdict.equivalent, verdict.detail


@settings(max_examples=40, deadline=None)
@given(programs, seeds)
def test_replay_through_codec(thread_actions, seed):
    from repro.cord import OrderLog

    program = build_program(thread_actions)
    trace = run_program(program, seed=seed)
    outcome = CordDetector(CordConfig(), program.n_threads).run(trace)
    decoded = OrderLog.decode(outcome.log.encode())
    replayed = replay_trace(program, decoded)
    assert verify_replay(trace, replayed).equivalent


@settings(max_examples=40, deadline=None)
@given(programs, seeds)
def test_limited_vector_exactly_sound(thread_actions, seed):
    # Unlike scalar clocks, the vector configurations never update clocks
    # on data races, so they are access-level sound on *every* execution.
    from repro.cachesim import CacheGeometry
    from repro.detectors import LimitedVectorDetector

    program = build_program(thread_actions)
    trace = run_program(program, seed=seed)
    ideal = IdealDetector(program.n_threads).run(trace)
    limited = LimitedVectorDetector(
        program.n_threads, CacheGeometry(8 * 1024)
    ).run(trace)
    assert limited.flagged <= ideal.flagged


@settings(max_examples=50, deadline=None)
@given(programs, seeds)
def test_order_log_invariants(thread_actions, seed):
    """Structural invariants of every recorded log.

    Per thread: fragment counts sum exactly to the thread's final
    instruction count, and clock values are strictly increasing.
    Globally: the log is consistent with the trace's per-thread clock
    at each boundary (monotone, anchored at the initial clock).
    """
    program = build_program(thread_actions)
    trace = run_program(program, seed=seed)
    outcome = CordDetector(CordConfig(), program.n_threads).run(trace)
    for thread in range(program.n_threads):
        entries = outcome.log.entries_of_thread(thread)
        assert sum(e.count for e in entries) == \
            trace.final_icounts[thread]
        clocks = [e.clock for e in entries]
        assert clocks == sorted(clocks)
        assert len(set(clocks)) == len(clocks)  # strictly increasing
        if clocks:
            assert clocks[0] >= 1  # anchored at the initial clock
