"""Property tests: the epoch oracle agrees with the full vector oracle."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.detectors import IdealDetector
from repro.detectors.epoch import EpochDetector
from repro.engine import run_program

from tests.property.test_prop_system import build_program, programs, seeds


@settings(max_examples=80, deadline=None)
@given(programs, seeds)
def test_same_problem_verdict(thread_actions, seed):
    program = build_program(thread_actions)
    trace = run_program(program, seed=seed)
    ideal = IdealDetector(program.n_threads).run(trace)
    epoch = EpochDetector(program.n_threads).run(trace)
    assert ideal.problem_detected == epoch.problem_detected


@settings(max_examples=80, deadline=None)
@given(programs, seeds)
def test_same_racy_words(thread_actions, seed):
    # Stronger: the *set of words* with detected races is identical --
    # per-word detection state is only ever touched by that word's
    # accesses, and a demoted read history is always covered by the
    # ordering write that demoted it.
    program = build_program(thread_actions)
    trace = run_program(program, seed=seed)
    ideal = IdealDetector(program.n_threads).run(trace)
    epoch = EpochDetector(program.n_threads).run(trace)
    ideal_words = {race.address for race in ideal.races}
    epoch_words = {race.address for race in epoch.races}
    assert ideal_words == epoch_words


@settings(max_examples=40, deadline=None)
@given(programs, seeds)
def test_epochs_dominate_representation(thread_actions, seed):
    # The optimization's payoff: most read tracking stays in epoch form.
    program = build_program(thread_actions)
    trace = run_program(program, seed=seed)
    detector = EpochDetector(program.n_threads)
    detector.run(trace)
    total = detector.epoch_reads + detector.vector_reads
    if total >= 10:
        assert detector.epoch_reads >= detector.vector_reads
