"""Property-based tests for caches, line metadata, and the log codec."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cachesim import CacheGeometry, MetadataCache
from repro.cord import OrderLog
from repro.meta import LineMeta


class _Payload:
    def __init__(self):
        self.data_valid = False


line_addresses = st.integers(min_value=0, max_value=63).map(
    lambda i: i * 64
)


class TestCacheInvariants:
    @given(st.lists(line_addresses, max_size=200))
    def test_capacity_and_residency(self, accesses):
        geometry = CacheGeometry(4 * 64 * 2, 64, 4)  # 2 sets x 4 ways
        cache = MetadataCache(geometry, _Payload)
        inserted = set()
        for line in accesses:
            payload, evicted = cache.access(line)
            inserted.add(line)
            # Per-set occupancy never exceeds associativity.
            for cache_set in cache._sets:
                assert len(cache_set) <= geometry.associativity
            # The just-touched line is always resident afterwards.
            assert cache.peek(line) is payload
        assert set(cache.lines()) <= inserted

    @given(st.lists(line_addresses, max_size=200))
    def test_eviction_accounting(self, accesses):
        geometry = CacheGeometry(4 * 64 * 2, 64, 4)
        cache = MetadataCache(geometry, _Payload)
        total_evicted = 0
        for line in accesses:
            _, evicted = cache.access(line)
            total_evicted += len(evicted)
        assert cache.evictions == total_evicted
        assert cache.insertions - total_evicted == len(cache)

    @given(st.lists(line_addresses, max_size=200))
    def test_infinite_cache_retains_everything(self, accesses):
        cache = MetadataCache(CacheGeometry.infinite(), _Payload)
        for line in accesses:
            _, evicted = cache.access(line)
            assert not evicted
        assert set(cache.lines()) == set(accesses)


record_ops = st.lists(
    st.tuples(
        st.integers(min_value=1, max_value=30),   # timestamp
        st.integers(min_value=0, max_value=15),   # word
        st.booleans(),                            # is_write
    ),
    max_size=60,
)


class TestLineMetaInvariants:
    @given(record_ops, st.integers(min_value=1, max_value=3))
    def test_entry_count_bounded(self, ops, max_entries):
        meta = LineMeta(max_entries)
        for ts, word, is_write in ops:
            meta.record_access(ts, word, is_write)
            assert len(meta.entries) <= max_entries

    @given(record_ops)
    def test_latest_record_is_covered(self, ops):
        meta = LineMeta(2)
        for ts, word, is_write in ops:
            meta.record_access(ts, word, is_write)
            assert ts in list(
                meta.conflicting_timestamps(word, is_write=True)
            )

    @given(record_ops)
    def test_conflicts_subset_of_resident(self, ops):
        meta = LineMeta(2)
        for ts, word, is_write in ops:
            meta.record_access(ts, word, is_write)
        resident = {entry.ts for entry in meta.entries}
        for word in range(16):
            for mode in (True, False):
                for ts in meta.conflicting_timestamps(word, mode):
                    assert ts in resident


def _log_entries():
    # Per-thread strictly increasing clocks with jumps below 2^15 (the
    # window the walker maintains); arbitrary interleaving of threads.
    return st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=3),           # thread
            st.integers(min_value=1, max_value=(1 << 15) - 1),  # jump
            st.integers(min_value=0, max_value=1 << 20),     # count
        ),
        max_size=60,
    )


class TestLogCodecRoundtrip:
    @given(_log_entries())
    @settings(max_examples=200)
    def test_roundtrip(self, jumps):
        log = OrderLog()
        clocks = {}
        for thread, jump, count in jumps:
            clock = clocks.get(thread, 1) + jump
            clocks[thread] = clock
            log.append(clock, thread, count)
        decoded = OrderLog.decode(log.encode())
        assert [
            (e.clock, e.thread, e.count) for e in decoded
        ] == [(e.clock, e.thread, e.count) for e in log]
