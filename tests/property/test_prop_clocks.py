"""Property-based tests for clocks and the sliding-window comparator."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.clocks import ScalarClock, SlidingWindowComparator, VectorClock

vectors = st.lists(
    st.integers(min_value=0, max_value=50), min_size=3, max_size=3
).map(VectorClock)


class TestVectorClockLattice:
    @given(vectors, vectors)
    def test_join_commutative(self, a, b):
        assert a.joined(b) == b.joined(a)

    @given(vectors, vectors, vectors)
    def test_join_associative(self, a, b, c):
        assert a.joined(b).joined(c) == a.joined(b.joined(c))

    @given(vectors)
    def test_join_idempotent(self, a):
        assert a.joined(a) == a

    @given(vectors, vectors)
    def test_join_is_upper_bound(self, a, b):
        join = a.joined(b)
        assert join.dominates(a) and join.dominates(b)

    @given(vectors, vectors)
    def test_order_trichotomy(self, a, b):
        relations = [
            a == b,
            a.happens_before(b),
            b.happens_before(a),
            a.concurrent_with(b),
        ]
        assert relations.count(True) == 1

    @given(vectors, vectors, vectors)
    def test_happens_before_transitive(self, a, b, c):
        if a.happens_before(b) and b.happens_before(c):
            assert a.happens_before(c)

    @given(vectors, st.integers(min_value=0, max_value=2))
    def test_tick_strictly_advances(self, a, thread):
        assert a.happens_before(a.ticked(thread))


class TestSlidingWindowAgreement:
    @given(
        st.integers(min_value=0, max_value=1 << 22),
        st.integers(min_value=-(1 << 15) + 1, max_value=(1 << 15) - 1),
    )
    def test_windowed_equals_unbounded_within_window(self, base, delta):
        other = base + delta
        if other < 0:
            return
        cmp = SlidingWindowComparator()
        assert cmp.within_window(base, other)
        assert cmp.greater(base, other) == (base > other)
        assert cmp.greater_equal(base, other) == (base >= other)

    @given(
        st.integers(min_value=0, max_value=1 << 22),
        st.integers(min_value=0, max_value=(1 << 14)),
        st.integers(min_value=1, max_value=256),
    )
    def test_synchronized_after_matches_unbounded(self, ts, gap, d):
        cmp = SlidingWindowComparator()
        clock = ts + gap
        assert cmp.synchronized_after(clock, ts, d) == (clock >= ts + d)


class TestScalarClockProperties:
    @given(
        st.lists(
            st.tuples(
                st.sampled_from(["race", "sync_read", "sync_write"]),
                st.integers(min_value=0, max_value=1000),
            ),
            max_size=40,
        ),
        st.sampled_from([1, 4, 16, 256]),
    )
    def test_clock_never_decreases(self, updates, d):
        clock = ScalarClock(d=d)
        previous = clock.value
        for kind, ts in updates:
            if kind == "race":
                clock.update_for_race(ts)
            elif kind == "sync_read":
                clock.update_for_sync_read(ts)
            else:
                clock.increment_after_sync_write()
            assert clock.value >= previous
            previous = clock.value

    @given(
        st.integers(min_value=0, max_value=10_000),
        st.integers(min_value=0, max_value=10_000),
        st.sampled_from([1, 4, 16]),
    )
    def test_race_update_establishes_order(self, initial, ts, d):
        clock = ScalarClock(d=d, initial=initial)
        clock.update_for_race(ts)
        assert clock.ordered_after(ts)

    @given(
        st.integers(min_value=0, max_value=10_000),
        st.integers(min_value=0, max_value=10_000),
        st.sampled_from([1, 4, 16]),
    )
    def test_sync_read_establishes_window(self, initial, ts, d):
        clock = ScalarClock(d=d, initial=initial)
        clock.update_for_sync_read(ts)
        assert clock.synchronized_after(ts)

    @given(st.integers(min_value=1, max_value=256))
    def test_synchronized_implies_ordered(self, d):
        clock = ScalarClock(d=d, initial=100)
        for ts in range(0, 120):
            if clock.synchronized_after(ts):
                assert clock.ordered_after(ts)
