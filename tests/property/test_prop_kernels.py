"""Property tests: kernel-accelerated analysis is byte-identical.

PR 3's vectorized kernels (:mod:`repro.trace.kernels`), the plan-driven
CORD interpreter, and the interval-fused sweep pass
(:mod:`repro.cord.fused`) are all pure accelerations: every observable
output -- race reports (including detail strings), order logs, final
clocks, and the hot-path counters the figures consume -- must equal the
scalar reference paths bit for bit.  These properties pin that contract
on hypothesis-generated racy programs and on golden workloads:

* **kernel vs scalar packed** -- ``run_packed`` with the numpy plans
  active equals ``run_packed`` under ``REPRO_NO_NUMPY=1`` (the
  pure-python fallback) for all four detector families;
* **packed vs row-major** -- both equal the per-event-object
  ``process_batch`` path (``run``);
* **fused vs per-config** -- detectors the interval-fused sweep pass
  materializes equal the same configurations interpreted concretely,
  and ``REPRO_NO_FUSED=1`` disables fusion entirely;
* **16-bit clock wraparound** -- the equivalences hold for window-mode
  configurations whose clocks actually wrap the hardware width, and for
  unbounded clocks started beyond 2^16.
"""

import os
from contextlib import contextmanager

import pytest
from hypothesis import given, settings

from repro.cachesim.cache import CacheGeometry
from repro.cord import CordConfig, CordDetector
from repro.cord.fused import fuse_cord_detectors, fusion_enabled
from repro.detectors import IdealDetector, LimitedVectorDetector
from repro.detectors.epoch import EpochDetector
from repro.engine import run_program
from repro.trace.kernels import NO_NUMPY_ENV, kernels_enabled
from repro.workloads import WorkloadParams, get_workload

from tests.property.test_prop_system import build_program, programs, seeds

# Without the numpy arms every equivalence here is vacuous; skip -- and
# CI's bench-smoke job (a numpy environment) fails if this suite skips.
pytestmark = pytest.mark.skipif(
    not kernels_enabled(),
    reason="numpy kernels unavailable (fallback-only environment)",
)

D_SWEEP = (1, 2, 4, 8, 16, 32, 64, 256)


@contextmanager
def scalar_fallback():
    """Force the pure-python packed paths for the duration."""
    saved = os.environ.get(NO_NUMPY_ENV)
    os.environ[NO_NUMPY_ENV] = "1"
    try:
        yield
    finally:
        if saved is None:
            os.environ.pop(NO_NUMPY_ENV, None)
        else:
            os.environ[NO_NUMPY_ENV] = saved


def outcome_sig(outcome):
    """Everything observable about an outcome, as comparable values."""
    sig = {
        "flagged": sorted(outcome.flagged),
        "races": [
            (r.access, r.address, r.other_thread, r.detail)
            for r in outcome.races
        ],
        "counters": dict(outcome.counters),
    }
    log = getattr(outcome, "log", None)
    if log is not None:
        sig["log"] = [(e.clock, e.thread, e.count) for e in log]
    clocks = getattr(outcome, "final_clocks", None)
    if clocks is not None:
        sig["final_clocks"] = list(clocks)
    return sig


def _families(n_threads, **cord_kwargs):
    """One builder per detector family (fresh instance per call)."""
    return [
        lambda: CordDetector(CordConfig(d=16, **cord_kwargs), n_threads),
        lambda: CordDetector(
            CordConfig(d=4, cache_size=None, **cord_kwargs), n_threads
        ),
        lambda: IdealDetector(n_threads),
        lambda: EpochDetector(n_threads),
        lambda: LimitedVectorDetector(n_threads, CacheGeometry.infinite()),
    ]


def _assert_three_arms_agree(build, trace):
    """kernel run_packed == scalar run_packed == row-major run."""
    kernel = outcome_sig(build().run_packed(trace.packed))
    with scalar_fallback():
        scalar = outcome_sig(build().run_packed(trace.packed))
    row_major = outcome_sig(build().run(trace))
    assert kernel == scalar
    assert kernel == row_major


# -- kernel vs scalar vs row-major, all families ----------------------------


@settings(max_examples=30, deadline=None)
@given(programs, seeds)
def test_kernel_paths_equivalent_all_families(thread_actions, seed):
    program = build_program(thread_actions)
    trace = run_program(program, seed=seed)
    for build in _families(program.n_threads):
        _assert_three_arms_agree(build, trace)


def test_kernel_paths_equivalent_golden_workloads():
    for workload in ("fft", "ocean", "fmm"):
        program = get_workload(workload).build(WorkloadParams(scale=0.4))
        trace = run_program(program, seed=11)
        for build in _families(program.n_threads):
            _assert_three_arms_agree(build, trace)


# -- 16-bit clock wraparound ------------------------------------------------


@settings(max_examples=30, deadline=None)
@given(programs, seeds)
def test_window_mode_paths_equivalent(thread_actions, seed):
    """Window-mode (16-bit comparator) configs: packed == row-major.

    Window mode runs cache walkers, so the plan-driven kernel is not
    eligible; this pins that the dispatch falls back correctly and the
    scalar packed loop matches the object path under truncation.
    """
    program = build_program(thread_actions)
    trace = run_program(program, seed=seed)
    build = lambda: CordDetector(
        CordConfig(d=4, use_window=True, initial_clock=(1 << 16) - 8),
        program.n_threads,
    )
    _assert_three_arms_agree(build, trace)


def test_wraparound_equivalence_with_real_wrap():
    """Clocks genuinely cross the 16-bit boundary and outputs still match."""
    program = get_workload("fft").build(WorkloadParams(scale=0.4))
    trace = run_program(program, seed=11)
    start = (1 << 16) - 4

    windowed = CordDetector(
        CordConfig(d=4, use_window=True, initial_clock=start),
        program.n_threads,
    )
    windowed_outcome = windowed.run_packed(trace.packed)
    assert max(windowed.clocks) >= 1 << 16, "wrap never exercised"
    with scalar_fallback():
        scalar = CordDetector(
            CordConfig(d=4, use_window=True, initial_clock=start),
            program.n_threads,
        ).run_packed(trace.packed)
    assert outcome_sig(windowed_outcome) == outcome_sig(scalar)

    # Unbounded clocks past 2^16 flow through the kernel (and its plans)
    # unchanged: the plan-driven interpreter must not care about width.
    build = lambda: CordDetector(
        CordConfig(d=16, initial_clock=start), program.n_threads
    )
    _assert_three_arms_agree(build, trace)


# -- interval-fused sweeps --------------------------------------------------


def _sweep_sigs_fused(trace, n_threads, **cord_kwargs):
    dets = [
        CordDetector(CordConfig(d=d, **cord_kwargs), n_threads)
        for d in D_SWEEP
    ]
    fused = fuse_cord_detectors(dets, trace.packed)
    sigs = []
    for det in dets:
        if id(det) not in fused:
            det.process_packed(trace.packed)
        sigs.append(outcome_sig(det.finish(trace.packed)))
    return sigs, len(fused)


def _sweep_sigs_concrete(trace, n_threads, **cord_kwargs):
    return [
        outcome_sig(
            CordDetector(
                CordConfig(d=d, **cord_kwargs), n_threads
            ).run_packed(trace.packed)
        )
        for d in D_SWEEP
    ]


@settings(max_examples=30, deadline=None)
@given(programs, seeds)
def test_fused_sweep_equivalent_generated(thread_actions, seed):
    program = build_program(thread_actions)
    trace = run_program(program, seed=seed)
    fused_sigs, _ = _sweep_sigs_fused(trace, program.n_threads)
    concrete_sigs = _sweep_sigs_concrete(trace, program.n_threads)
    assert fused_sigs == concrete_sigs


def test_fused_sweep_equivalent_golden():
    fused_any = 0
    for workload in ("fft", "ocean", "fmm"):
        program = get_workload(workload).build(WorkloadParams(scale=0.4))
        trace = run_program(program, seed=11)
        fused_sigs, n_fused = _sweep_sigs_fused(trace, program.n_threads)
        fused_any += n_fused
        assert fused_sigs == _sweep_sigs_concrete(
            trace, program.n_threads
        )
    # The property is vacuous if the ladder never fuses anything real
    # (unless fusion is deliberately disabled via REPRO_NO_FUSED).
    if fusion_enabled():
        assert fused_any > 0, "no golden sweep produced a fused suffix"


def test_fused_respects_escape_hatches():
    program = get_workload("fft").build(WorkloadParams(scale=0.4))
    trace = run_program(program, seed=11)
    dets = [
        CordDetector(CordConfig(d=d), program.n_threads) for d in D_SWEEP
    ]
    saved = os.environ.get("REPRO_NO_FUSED")
    os.environ["REPRO_NO_FUSED"] = "1"
    try:
        assert not fusion_enabled()
        assert fuse_cord_detectors(dets, trace.packed) == frozenset()
    finally:
        if saved is None:
            os.environ.pop("REPRO_NO_FUSED", None)
        else:
            os.environ["REPRO_NO_FUSED"] = saved
    # Fusion also requires the kernels (the fused pass interprets the
    # same plans); under the no-numpy hatch nothing is fused either.
    with scalar_fallback():
        assert fuse_cord_detectors(dets, trace.packed) == frozenset()
