"""Scalar CORD vs the vector-clock configurations, adversarially.

The paper's Section 4.3 comparison rests on an ordering of precision:
vector clocks are the exact happens-before test over the same CORD-shaped
buffering, so a scalar-clock detector -- which can only *over*-order
(a single clock value folds every thread's progress together, and the
window parameter D pads the comparison) -- must flag a subset of the
vector detector's races.  These properties pin that hierarchy on
hypothesis-generated racy programs:

* **subset**: every access scalar CORD flags, the matched vector
  configuration flags too (checked at D=1, the tightest window, and at
  the paper's default D=16);
* **zero false positives**: when the vector oracle is silent the scalar
  detector is silent, and neither ever flags an access on a
  data-race-free execution (Ideal oracle silent).

The finite-cache variant is included deliberately: CORD's main-memory
timestamps summarize displaced history conservatively, so even with
evictions the scalar reports stay inside the vector set.

Both assertions are behavior locks for the hot-path rewrite: they held
before the array-backed store and batched detector loop landed, and must
keep holding after.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cachesim import CacheGeometry
from repro.cord import CordConfig, CordDetector
from repro.detectors import IdealDetector, LimitedVectorDetector
from repro.engine import run_program

from .test_prop_system import build_program, programs, seeds

_LINE = 64


def _vector_outcome(program, trace):
    return LimitedVectorDetector(
        program.n_threads, CacheGeometry.infinite(_LINE)
    ).run(trace)


@settings(max_examples=60, deadline=None)
@given(programs, seeds, st.sampled_from([1, 16]))
def test_scalar_flags_subset_of_vector(thread_actions, seed, d):
    """Matched buffering: scalar-clock reports ⊆ vector-clock reports."""
    program = build_program(thread_actions)
    trace = run_program(program, seed=seed)
    vector = _vector_outcome(program, trace)
    scalar = CordDetector(
        CordConfig(d=d, cache_size=None, line_size=_LINE),
        program.n_threads,
    ).run(trace)
    extra = scalar.flagged - vector.flagged
    assert not extra, sorted(extra)[:3]


@settings(max_examples=60, deadline=None)
@given(programs, seeds)
def test_finite_cache_scalar_stays_inside_vector(thread_actions, seed):
    """Even with evictions (memts summarization), no extra reports."""
    program = build_program(thread_actions)
    trace = run_program(program, seed=seed)
    vector = _vector_outcome(program, trace)
    scalar = CordDetector(
        CordConfig(line_size=_LINE), program.n_threads
    ).run(trace)
    extra = scalar.flagged - vector.flagged
    assert not extra, sorted(extra)[:3]


@settings(max_examples=60, deadline=None)
@given(programs, seeds, st.sampled_from([1, 16]))
def test_zero_false_positives_against_both_oracles(thread_actions, seed, d):
    """Silence propagates down the precision hierarchy."""
    program = build_program(thread_actions)
    trace = run_program(program, seed=seed)
    ideal = IdealDetector(program.n_threads).run(trace)
    vector = _vector_outcome(program, trace)
    scalar = CordDetector(
        CordConfig(d=d, cache_size=None, line_size=_LINE),
        program.n_threads,
    ).run(trace)
    if not vector.problem_detected:
        assert not scalar.problem_detected, sorted(scalar.flagged)[:3]
    if not ideal.problem_detected:
        assert not vector.problem_detected, sorted(vector.flagged)[:3]
        assert not scalar.problem_detected, sorted(scalar.flagged)[:3]
