"""Property tests: batched multi-run analysis is byte-identical.

The run-level pipeline's analyze stage stacks several same-geometry
recorded runs into one arena and primes their kernel products with one
batched pass (:func:`repro.resilience.guard.compute_outcomes_batch` over
:mod:`repro.trace.kernels`' ``build_batched_*`` builders).  The batch
tier is *pure preparation* -- cache seeding plus a shared fused-sweep
threshold memo -- so every observable outcome must equal the per-run
path bit for bit, for all four detector families, whatever the batch
composition, and on the no-numpy scalar fallback (where the batch tier
is a no-op by construction).  These properties pin that contract on
hypothesis-generated racy programs and golden workloads.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.detectors.registry import standard_suite
from repro.engine import run_program
from repro.resilience.guard import (
    GuardLog,
    compute_outcomes,
    compute_outcomes_batch,
    guarded_outcomes_batch,
)
from repro.trace.kernels import (
    NO_NUMPY_ENV,
    build_batched_line_residuals,
    build_batched_segment_plans,
    build_batched_word_residuals,
    build_line_residual,
    build_segment_plan,
    build_word_residual,
    kernels_enabled,
)
from repro.workloads import WorkloadParams, get_workload

from tests.property.test_prop_system import build_program, programs, seeds

LINE_MASK = ~(64 - 1)


def _specs():
    # All four families: Ideal (word residual), LimitedVector infinite
    # and finite (line residual / cache sim), CORD (segment plans).
    return standard_suite()


def _traces(count, base_seed=11):
    out = []
    for i in range(count):
        program = get_workload("fft" if i % 2 else "lu").build(
            WorkloadParams(scale=0.25)
        )
        trace = run_program(program, seed=base_seed + i)
        out.append((program.n_threads, trace.packed))
    return out


def _assert_outcome_maps_identical(per_run, batched):
    assert per_run.keys() == batched.keys()
    for name in per_run:
        a, b = per_run[name], batched[name]
        assert a.flagged == b.flagged, name
        assert a.raw_count == b.raw_count, name
        assert a.problem_detected == b.problem_detected, name
        assert dict(a.counters) == dict(b.counters), name


# -- batched analysis = per-run analysis -------------------------------------


@settings(max_examples=15, deadline=None)
@given(st.lists(st.tuples(programs, seeds), min_size=1, max_size=4))
def test_batched_equals_per_run_on_generated_programs(cases):
    items = []
    for thread_actions, seed in cases:
        program = build_program(thread_actions)
        trace = run_program(program, seed=seed)
        items.append((_specs(), program.n_threads, trace.packed))
    per_run = [
        compute_outcomes(specs, n, packed) for specs, n, packed in items
    ]
    batched = compute_outcomes_batch(
        [(specs, n, packed) for specs, n, packed in items]
    )
    for expected, got in zip(per_run, batched):
        _assert_outcome_maps_identical(expected, got)


@pytest.mark.parametrize("batch", [1, 2, 3])
def test_batched_equals_per_run_on_golden_workloads(batch):
    traces = _traces(batch)
    items = [(_specs(), n, packed) for n, packed in traces]
    per_run = [compute_outcomes(*item) for item in items]
    for expected, got in zip(per_run, compute_outcomes_batch(items)):
        _assert_outcome_maps_identical(expected, got)


def test_batch_composition_does_not_change_outcomes():
    # Analyzing a run alone, or stacked with different neighbours, must
    # yield the same bytes -- the resume path depends on it (a drained
    # run re-analyzes in a differently-shaped batch).
    traces = _traces(3)
    target = (_specs(), traces[0][0], traces[0][1])
    alone = compute_outcomes_batch([target])[0]
    with_one = compute_outcomes_batch(
        [target, (_specs(), traces[1][0], traces[1][1])]
    )[0]
    with_two = compute_outcomes_batch(
        [(_specs(), traces[2][0], traces[2][1]), target]
    )[1]
    _assert_outcome_maps_identical(alone, with_one)
    _assert_outcome_maps_identical(alone, with_two)


def test_guarded_batch_equals_unguarded(monkeypatch):
    traces = _traces(2)
    items = [(_specs(), n, packed) for n, packed in traces]
    log = GuardLog()
    for expected, got in zip(
        compute_outcomes_batch(items),
        guarded_outcomes_batch(items, guard_log=log),
    ):
        _assert_outcome_maps_identical(expected, got)
    assert not log.events


def test_batched_equals_per_run_without_numpy(monkeypatch):
    # Scalar fallback: the batch tier gates itself off (kernels_enabled
    # is False) and the per-item path runs the pure-python loops.
    traces = _traces(2)
    expected = [
        compute_outcomes(_specs(), n, packed) for n, packed in traces
    ]
    monkeypatch.setenv(NO_NUMPY_ENV, "1")
    got = compute_outcomes_batch(
        [(_specs(), n, packed) for n, packed in traces]
    )
    for want, have in zip(expected, got):
        _assert_outcome_maps_identical(want, have)


def test_fused_hints_do_not_change_outcomes():
    # The shared threshold memo is cost policy only: seeding it with
    # whatever a previous batch learned must not change any outcome.
    n, packed = _traces(1)[0]
    baseline = compute_outcomes(_specs(), n, packed)
    hints = {}
    first = compute_outcomes(_specs(), n, packed, fused_hints=hints)
    _assert_outcome_maps_identical(baseline, first)
    # Second pass re-uses the learned thresholds.
    second = compute_outcomes(_specs(), n, packed, fused_hints=hints)
    _assert_outcome_maps_identical(baseline, second)


# -- batched builders = per-run builders (seed-helper identity) --------------


def _assert_plan_identical(mine, ref):
    assert mine.starts == ref.starts
    assert mine.sync == ref.sync
    assert mine.read_masks == ref.read_masks
    assert mine.write_masks == ref.write_masks


def _assert_residual_identical(mine, ref):
    assert list(mine.threads) == list(ref.threads)
    assert list(mine.addresses) == list(ref.addresses)
    assert list(mine.flags) == list(ref.flags)
    assert list(mine.icounts) == list(ref.icounts)
    assert mine.skipped_events == ref.skipped_events
    assert mine.skipped_reads == ref.skipped_reads


@pytest.mark.skipif(not kernels_enabled(), reason="numpy unavailable")
@settings(max_examples=15, deadline=None)
@given(st.lists(st.tuples(programs, seeds), min_size=1, max_size=4))
def test_batched_builders_equal_per_run_builders(cases):
    packeds = []
    for thread_actions, seed in cases:
        program = build_program(thread_actions)
        packeds.append(run_program(program, seed=seed).packed)

    plans = build_batched_segment_plans(packeds, LINE_MASK)
    words = build_batched_word_residuals(packeds)
    lines = build_batched_line_residuals(packeds, LINE_MASK)
    assert plans is not None and words is not None and lines is not None
    assert len(plans) == len(words) == len(lines) == len(packeds)

    for packed, plan, word, line in zip(packeds, plans, words, lines):
        _assert_plan_identical(plan, build_segment_plan(packed, LINE_MASK))
        _assert_residual_identical(word, build_word_residual(packed))
        _assert_residual_identical(
            line, build_line_residual(packed, LINE_MASK)
        )


@pytest.mark.skipif(not kernels_enabled(), reason="numpy unavailable")
def test_batched_builders_handle_empty_and_mixed_runs():
    # A batch mixing a trivial (possibly sync-only) trace with real
    # workloads must still split per run exactly.
    packeds = [packed for _n, packed in _traces(2)]
    tiny = build_program([[("data", 0, False)], [("compute", 1, 0)]])
    packeds.insert(1, run_program(tiny, seed=3).packed)
    plans = build_batched_segment_plans(packeds, LINE_MASK)
    for packed, plan in zip(packeds, plans):
        _assert_plan_identical(plan, build_segment_plan(packed, LINE_MASK))
