"""Shared fixtures: small deterministic programs for detector tests."""

from __future__ import annotations

import pytest

from repro.program import AddressSpace, Program
from repro.program.ops import ComputeOp, ReadOp, WriteOp
from repro.sync import Barrier, Mutex, barrier_wait, critical_increment
from repro.workloads.base import WorkloadParams

#: Tiny scale for workload-based tests (fast but structurally complete).
TINY = WorkloadParams(scale=0.25, compute_grain=8)


@pytest.fixture
def tiny_params():
    return TINY


@pytest.fixture
def space():
    return AddressSpace()


@pytest.fixture
def counter_program():
    """Four threads incrementing a shared counter under one lock, with a
    barrier per round -- the canonical race-free program."""
    return build_counter_program()


def build_counter_program(rounds=4, n_threads=4):
    space = AddressSpace()
    mutex = Mutex.allocate(space, "m")
    barrier = Barrier.allocate(space, n_threads, "b")
    counter = space.alloc("counter")
    data = space.alloc_array("data", 32)

    def body(tid):
        for round_index in range(rounds):
            yield from critical_increment(mutex, counter)
            for k in range(4):
                yield WriteOp(data[(tid * 8 + round_index + k) % 32], tid)
            yield ComputeOp(3)
            yield from barrier_wait(barrier)
        value = yield ReadOp(counter)
        assert value is not None

    program = Program([body] * n_threads, space, name="counter")
    # Exposed for tests that assert on the counter's final value.
    program.counter_address = counter
    return program


@pytest.fixture
def racy_program():
    """Two threads writing the same word with no synchronization at all."""
    space = AddressSpace()
    shared = space.alloc("shared")

    def body(tid):
        for _ in range(3):
            value = yield ReadOp(shared)
            yield WriteOp(shared, (value or 0) + 1)
            yield ComputeOp(2)

    return Program([body] * 2, space, name="racy")
