"""Setup shim for environments without the ``wheel`` package.

The project is configured in ``pyproject.toml``; this file only enables
pip's legacy editable-install path (``setup.py develop``), which does not
require building a wheel.
"""

from setuptools import setup

setup()
