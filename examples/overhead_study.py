"""Overhead study: where CORD's (tiny) cost comes from.

Runs the Figure 11 timing experiment and breaks the result down per
application: extra race-check transactions, memory-timestamp update
broadcasts, and the resulting relative execution time.  The paper's
claim -- near-zero overhead, worst on the most synchronization-intensive
app -- is visible directly in the counter columns.

    python examples/overhead_study.py
"""

from repro import (
    CordConfig,
    CordDetector,
    WorkloadParams,
    estimate_overhead,
    get_workload,
    run_program,
)
from repro.common.texttable import format_table
from repro.workloads import all_workloads


def main():
    params = WorkloadParams()
    rows = []
    for spec in all_workloads():
        program = spec.build(params)
        trace = run_program(program, seed=1)
        overhead = estimate_overhead(trace)
        detector = CordDetector(CordConfig(), program.n_threads)
        outcome = detector.run(trace)
        checks = outcome.counters["race_checks"]
        fast = outcome.counters["fast_hits"]
        rows.append([
            spec.name,
            len(trace.events),
            "%.0f%%" % (100.0 * fast / max(1, fast + checks)),
            overhead.extra_check_tx,
            outcome.counters["memts_update_broadcasts"],
            outcome.counters["log_bytes"],
            "%.4f" % overhead.relative_time,
        ])
    print(format_table(
        ["app", "events", "fast-path", "extra checks",
         "memts bcasts", "log bytes", "rel. time"],
        rows,
        title="CORD overhead anatomy (Figure 11 inputs)",
    ))
    times = [float(row[-1]) for row in rows]
    print("\naverage relative time: %.4f  (paper: 1.004)" %
          (sum(times) / len(times)))
    worst = max(range(len(rows)), key=lambda i: times[i])
    print("worst case           : %s at %.4f  (paper: cholesky at 1.03)"
          % (rows[worst][0], times[worst]))


if __name__ == "__main__":
    main()
