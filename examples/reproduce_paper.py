"""Regenerate every table and figure of the paper's evaluation.

    python examples/reproduce_paper.py            # full (several minutes)
    python examples/reproduce_paper.py --quick    # 3 apps, fewer runs

The output is the source of EXPERIMENTS.md's "measured" columns.
"""

import sys
import time

from repro.experiments import (
    Suite,
    SuiteConfig,
    figure10,
    figure11,
    figure12,
    figure13,
    figure14,
    figure15,
    figure16,
    figure17,
    order_recording_summary,
    table1,
)
from repro.workloads import WorkloadParams


def main(quick=False):
    if quick:
        config = SuiteConfig(
            runs_per_app=5,
            workloads=("fft", "raytrace", "ocean"),
            params=WorkloadParams(scale=0.5),
        )
    else:
        config = SuiteConfig(runs_per_app=12)

    print(table1().render())

    start = time.time()
    suite = Suite(config)
    suite.campaigns()
    print("\n[injection campaigns over %d app(s), %d runs each: %.0fs]"
          % (len(config.workload_names()), config.runs_per_app,
             time.time() - start))

    for driver in (figure10, figure12, figure13, figure14, figure15,
                   figure16, figure17):
        print()
        print(driver(suite).render())

    print()
    workloads = config.workloads if quick else None
    print(figure11(params=config.params, workloads=workloads).render())

    print()
    print(order_recording_summary(
        params=config.params, workloads=workloads).render())


if __name__ == "__main__":
    main(quick="--quick" in sys.argv)
