"""Regenerate every table and figure of the paper's evaluation.

    python examples/reproduce_paper.py            # full (several minutes)
    python examples/reproduce_paper.py --quick    # 3 apps, fewer runs
    python examples/reproduce_paper.py --jobs 4   # campaigns on 4 processes
    python examples/reproduce_paper.py --cache .repro-cache  # reuse results

The output is the source of EXPERIMENTS.md's "measured" columns.
"""

import argparse
import time

from repro.experiments import (
    Suite,
    SuiteConfig,
    figure10,
    figure11,
    figure12,
    figure13,
    figure14,
    figure15,
    figure16,
    figure17,
    order_recording_summary,
    table1,
)
from repro.workloads import WorkloadParams


def main(quick=False, jobs=None, cache=None):
    if quick:
        config = SuiteConfig(
            runs_per_app=5,
            workloads=("fft", "raytrace", "ocean"),
            params=WorkloadParams(scale=0.5),
        )
    else:
        config = SuiteConfig(runs_per_app=12)

    print(table1().render())

    start = time.time()
    suite = Suite(config, jobs=jobs, cache_dir=cache)
    suite.campaigns()
    print("\n[injection campaigns over %d app(s), %d runs each, "
          "%d job(s): %.0fs]"
          % (len(config.workload_names()), config.runs_per_app,
             suite.jobs, time.time() - start))

    for driver in (figure10, figure12, figure13, figure14, figure15,
                   figure16, figure17):
        print()
        print(driver(suite).render())

    print()
    workloads = config.workloads if quick else None
    print(figure11(params=config.params, workloads=workloads).render())

    print()
    print(order_recording_summary(
        params=config.params, workloads=workloads).render())


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="3 apps, fewer runs, smaller inputs")
    parser.add_argument("--jobs", type=int, default=None, metavar="N",
                        help="campaign worker processes "
                             "(default: REPRO_JOBS or 1)")
    parser.add_argument("--cache", default=None, metavar="DIR",
                        help="directory for on-disk campaign results "
                             "(default: REPRO_CACHE_DIR or off)")
    cli = parser.parse_args()
    main(quick=cli.quick, jobs=cli.jobs, cache=cli.cache)
