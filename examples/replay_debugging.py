"""Replay debugging: reproduce a buggy run deterministically.

Injects a missing-lock bug into the cholesky analogue, records the buggy
execution with CORD, then replays it from the order log -- the scenario
the paper's order recording exists for: a Heisenbug that manifested once
in production can be re-executed exactly, as many times as debugging
needs.

    python examples/replay_debugging.py
"""

from repro import (
    CordConfig,
    CordDetector,
    InjectionInterceptor,
    ReplayInjection,
    WorkloadParams,
    get_workload,
    replay_trace,
    run_program,
    verify_replay,
)
from repro.trace import summarize_conflicts


def main():
    program = get_workload("cholesky").build(WorkloadParams())

    # Find an injection that actually manifests (and doesn't hang).
    for target in range(0, 120, 7):
        interceptor = InjectionInterceptor(target)
        trace = run_program(program, seed=77, interceptor=interceptor)
        if trace.hung or interceptor.removed is None:
            continue
        outcome = CordDetector(
            CordConfig(d=16), program.n_threads).run(trace)
        if outcome.problem_detected:
            break
    else:
        raise SystemExit("no manifesting injection found")

    removed = interceptor.removed
    print("injected bug : removed %s instance on %#x (thread %d)" % (
        removed.kind, removed.address, removed.thread))
    print("production run: %d events, CORD reported %d data race(s)" % (
        len(trace.events), outcome.raw_count))
    race = outcome.races[0]
    print("first report : thread %d, instruction %d, word %#x (%s)" % (
        race.access[0], race.access[1], race.address, race.detail))
    print("order log    : %d entries (%d bytes, %.3f%% of a MB)" % (
        len(outcome.log), outcome.log_bytes,
        100.0 * outcome.log_bytes / (1 << 20)))

    # Deterministic replay: same injection decision (recorded in
    # interleaving-independent form), log-directed scheduling.
    print("\nreplaying from the order log ...")
    replayed = replay_trace(
        program, outcome.log, ReplayInjection(removed))
    verdict = verify_replay(trace, replayed)
    print("replay verdict: %s" % verdict.detail)
    assert verdict.equivalent

    # The replay reproduces every conflict outcome, so the racy write
    # order -- the bug's effect -- is identical.
    original = summarize_conflicts(trace)
    again = summarize_conflicts(replayed)
    racy_word = race.address
    print("write order on the racy word, recorded : %s" %
          original.write_order.get(racy_word, [])[:6])
    print("write order on the racy word, replayed : %s" %
          again.write_order.get(racy_word, [])[:6])
    assert original.write_order.get(racy_word) == \
        again.write_order.get(racy_word)
    print("\nthe bug reproduces exactly -- debug at will.")


if __name__ == "__main__":
    main()
