"""The detector zoo on one injected bug, side by side.

Runs one injected execution of the fmm analogue through every detector in
this repository -- the Ideal happens-before oracle, its FastTrack-style
epoch optimization, the ReEnact-like limited vector configurations, the
full CORD D-sweep, and the Eraser-style lockset comparator -- and prints
what each reported, with the properties that distinguish them.

    python examples/detector_comparison.py [app] [injection-index]
"""

import sys

from repro import (
    CordConfig,
    CordDetector,
    IdealDetector,
    InjectionInterceptor,
    LimitedVectorDetector,
    WorkloadParams,
    get_workload,
    run_program,
)
from repro.cachesim import CacheGeometry
from repro.common.texttable import format_table
from repro.detectors import EpochDetector, LocksetDetector


def main(app="fmm", target=7):
    program = get_workload(app).build(WorkloadParams())
    interceptor = InjectionInterceptor(target)
    trace = run_program(program, seed=11, interceptor=interceptor)
    removed = interceptor.removed
    print("workload : %s, %d events" % (app, len(trace.events)))
    if removed:
        print("injected : removed %s instance on %#x (thread %d)\n" % (
            removed.kind, removed.address, removed.thread))

    n = program.n_threads
    detectors = [
        ("Ideal (HB oracle)", IdealDetector(n),
         "complete; needs unlimited state"),
        ("Epoch (FastTrack)", EpochDetector(n),
         "same verdicts, O(1) fast path"),
        ("Vector + L2 caches", LimitedVectorDetector(
            n, CacheGeometry(32 * 1024)),
         "ReEnact-like; exact but costly"),
        ("Vector + L1 caches", LimitedVectorDetector(
            n, CacheGeometry(8 * 1024)),
         "severe buffering limit"),
        ("CORD D=1", CordDetector(CordConfig(d=1), n),
         "naive scalar clocks"),
        ("CORD D=16", CordDetector(CordConfig(d=16), n),
         "the paper's mechanism"),
        ("Lockset (Eraser)", LocksetDetector(n),
         "interleaving-independent; false alarms"),
    ]

    oracle = None
    rows = []
    for name, detector, note in detectors:
        outcome = detector.run(trace)
        if oracle is None:
            oracle = outcome
        rows.append([
            name,
            outcome.raw_count,
            "yes" if outcome.problem_detected else "no",
            len(outcome.flagged - oracle.flagged),
            note,
        ])
    print(format_table(
        ["detector", "races", "problem?", "extra vs HB", "character"],
        rows,
    ))
    print("\n'extra vs HB' counts accesses flagged beyond the oracle:")
    print("zero for the vector family always; possibly nonzero for")
    print("scalar CORD only in already-racy runs, and for Lockset on")
    print("barrier/flag-synchronized sharing (its false alarms).")


if __name__ == "__main__":
    app = sys.argv[1] if len(sys.argv) > 1 else "fmm"
    target = int(sys.argv[2]) if len(sys.argv) > 2 else 7
    main(app, target)
