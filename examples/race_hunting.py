"""Race hunting: inject an elusive synchronization bug and catch it.

Reproduces the paper's Section 3.4 protocol on one application: remove a
single dynamic synchronization instance (here, from the volrend analogue),
run the buggy execution, and compare what the Ideal oracle, the
vector-clock configuration, and CORD each report.

    python examples/race_hunting.py [app] [n_injections]
"""

import sys

from repro import (
    CordConfig,
    CordDetector,
    IdealDetector,
    InjectionInterceptor,
    WorkloadParams,
    get_workload,
    run_program,
)
from repro.injection import count_sync_instances


def hunt(app="volrend", n_injections=12):
    spec = get_workload(app)
    program = spec.build(WorkloadParams())
    instances = count_sync_instances(program, seed=1)
    print("workload %r: %d injectable dynamic sync instances" % (
        app, instances))
    print("(each run removes one instance, chosen round-robin here;")
    print(" the benchmark campaigns draw uniformly at random)\n")

    header = "%-6s %-28s %-6s %-10s %-10s" % (
        "run", "removed instance", "hung", "Ideal", "CORD-D16")
    print(header)
    print("-" * len(header))

    manifested = detected = 0
    for run in range(n_injections):
        target = (run * max(1, instances // n_injections)) % instances
        interceptor = InjectionInterceptor(target)
        trace = run_program(program, seed=100 + run,
                            interceptor=interceptor)
        ideal = IdealDetector(program.n_threads).run(trace)
        cord = CordDetector(
            CordConfig(d=16), program.n_threads).run(trace)
        # Soundness: a CORD report implies the run really has races.
        if cord.problem_detected:
            assert ideal.problem_detected

        removed = interceptor.removed
        removed_text = (
            "%s @%#x (t%d)" % (removed.kind, removed.address,
                               removed.thread)
            if removed else "(none landed)"
        )
        print("%-6d %-28s %-6s %-10s %-10s" % (
            run, removed_text, "yes" if trace.hung else "no",
            "%d races" % ideal.raw_count,
            "%d races" % cord.raw_count))
        if ideal.problem_detected:
            manifested += 1
            if cord.problem_detected:
                detected += 1

    print("\n%d/%d injections manifested as data races (Figure 10's"
          " point:" % (manifested, n_injections))
    print("many dynamic sync instances are redundant)")
    if manifested:
        print("CORD caught %d/%d manifested problems (%d%%)" % (
            detected, manifested, round(100 * detected / manifested)))


if __name__ == "__main__":
    app = sys.argv[1] if len(sys.argv) > 1 else "volrend"
    count = int(sys.argv[2]) if len(sys.argv) > 2 else 12
    hunt(app, count)
