"""Quickstart: record, detect, and replay one workload run.

Runs the raytrace analogue on the functional CMP simulator, attaches the
CORD detector (order recording + data race detection), and then replays
the execution deterministically from the order log.

    python examples/quickstart.py
"""

from repro import (
    CordConfig,
    CordDetector,
    WorkloadParams,
    compute_stats,
    get_workload,
    replay_trace,
    run_program,
    verify_replay,
)


def main():
    # 1. Build a workload (Table 1's raytrace analogue) and execute it
    #    under a seeded random interleaving.
    program = get_workload("raytrace").build(WorkloadParams())
    trace = run_program(program, seed=42)
    stats = compute_stats(trace)
    print("executed %d shared-memory accesses on %d threads" % (
        stats.n_events, trace.n_threads))
    print("  %.1f%% synchronization accesses, %d shared words" % (
        100 * stats.sync_fraction, stats.shared_words))

    # 2. Run the CORD mechanism over the execution.
    detector = CordDetector(CordConfig(d=16), program.n_threads)
    outcome = detector.run(trace)
    print("\nCORD results:")
    print("  data races reported : %d" % outcome.raw_count)
    print("  order log           : %d entries, %d bytes" % (
        len(outcome.log), outcome.log_bytes))
    print("  race checks / fast  : %d / %d" % (
        outcome.counters["race_checks"], outcome.counters["fast_hits"]))

    # This is a correctly synchronized program: CORD reports nothing
    # (no false positives is the paper's headline guarantee).
    assert outcome.raw_count == 0

    # 3. Deterministic replay from the order log.
    replayed = replay_trace(program, outcome.log)
    verdict = verify_replay(trace, replayed)
    print("\nreplay: %s" % verdict.detail)
    assert verdict.equivalent


if __name__ == "__main__":
    main()
