"""Automated recovery from a detected race (Section 2.7.6, realized).

A production run with a missing lock corrupts a shared counter (a lost
update).  CORD detects the race and has the order log; recovery replays
deterministically to the start of the racy thread's atomic region and
continues with conservative serialized scheduling -- the region executes
atomically this time and the corruption is masked.

    python examples/recovery_demo.py
"""

from repro import (
    CordConfig,
    CordDetector,
    InjectionInterceptor,
    ReplayInjection,
    run_program,
)
from repro.program import AddressSpace, Program
from repro.program.ops import ComputeOp, ReadOp, WriteOp
from repro.recovery import atomic_region_start, recover_with_serialization
from repro.sync import Mutex, acquire, release

ROUNDS = 6
THREADS = 4


def build_program():
    space = AddressSpace()
    mutex = Mutex.allocate(space, "m")
    counter = space.alloc("counter", align_to_line=True)

    def body(tid):
        for _ in range(ROUNDS):
            yield from acquire(mutex)
            value = yield ReadOp(counter)
            yield ComputeOp(4)
            yield WriteOp(counter, (value or 0) + 1)
            yield from release(mutex)

    return Program([body] * THREADS, space, name="bank"), counter


def final_counter(trace, address):
    writes = [
        e.value for e in trace.events
        if e.is_write and e.address == address
    ]
    return writes[-1] if writes else 0


def main():
    program, counter = build_program()
    expected = ROUNDS * THREADS

    # Find a "production run" whose injected missing lock loses an update.
    for target in range(40):
        interceptor = InjectionInterceptor(target)
        trace = run_program(program, seed=31, interceptor=interceptor)
        if trace.hung or interceptor.removed is None:
            continue
        outcome = CordDetector(CordConfig(d=16), THREADS).run(trace)
        observed = final_counter(trace, counter)
        if outcome.problem_detected and observed != expected:
            break
    else:
        raise SystemExit("no corrupting injection found")

    removed = interceptor.removed
    print("injected defect : missing %s on %#x (thread %d)" % (
        removed.kind, removed.address, removed.thread))
    print("production run  : counter = %d (expected %d)  <-- corrupted"
          % (observed, expected))
    race = sorted(outcome.flagged)[0]
    print("CORD detected   : race at thread %d, instruction %d" % race)
    rollback = atomic_region_start(trace, race)
    print("rollback point  : thread %d, instruction %d "
          "(start of the racy atomic region)" % rollback)

    result = recover_with_serialization(
        program,
        outcome.log,
        race,
        ReplayInjection(removed),
        trace=trace,
    )
    recovered = final_counter(result.trace, counter)
    print("recovered run   : counter = %d (expected %d)  <-- consistent"
          % (recovered, expected))
    assert recovered == expected
    print("\nreplayed %d prefix steps, then serialized; the defect is"
          % result.prefix_steps)
    print("still in the code, but this execution survived it.")


if __name__ == "__main__":
    main()
