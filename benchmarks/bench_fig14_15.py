"""Figures 14/15: impact of limited access histories (vector clocks).

Paper: few problems are lost to the two-timestamps-per-line limit
(InfCache), limiting histories to the L2 adds a small further loss, and
the severe L1-only restriction degrades detection noticeably; raw race
rates lose more than problem rates at every step (InfCache alone misses
18 % of races).
"""

from repro.experiments import figure14, figure15


def test_figure14_problem_detection(benchmark, suite):
    fig = benchmark(figure14, suite)
    print()
    print(fig.render())
    averages = dict(zip(fig.series, fig.average))
    # Monotone degradation with tighter buffering.
    assert averages["InfCache"] >= averages["L2Cache"]
    assert averages["L2Cache"] >= averages["L1Cache"]
    # Even the severe restriction detects most problems.
    assert averages["L1Cache"] >= 0.6


def test_figure15_raw_detection(benchmark, suite):
    fig = benchmark(figure15, suite)
    print()
    print(fig.render())
    averages = dict(zip(fig.series, fig.average))
    assert averages["InfCache"] >= averages["L2Cache"]
    assert averages["L2Cache"] >= averages["L1Cache"]
    # The two-entry limit alone costs real races (paper: 18 %).
    assert averages["InfCache"] < 1.0


def test_raw_loss_exceeds_problem_loss(suite):
    f14 = figure14(suite)
    f15 = figure15(suite)
    for series in ("InfCache", "L2Cache", "L1Cache"):
        assert f15.average_of(series) <= f14.average_of(series) + 1e-9
