"""Section 3.3: order-recording size and replay verification.

Paper: order logs stay under 1 MB per run, and every run -- with and
without injections -- replays accurately.
"""

from repro.experiments import order_recording_summary
from repro.workloads import WorkloadParams


def test_order_recording_and_replay(benchmark):
    summary = benchmark.pedantic(
        order_recording_summary,
        kwargs={"params": WorkloadParams()},
        rounds=1,
        iterations=1,
    )
    print()
    print(summary.render())
    assert summary.all_ok
    for row in summary.rows:
        assert row.log_bytes_clean < (1 << 20), row.app
        assert row.clean_replay_ok, row.app
        assert row.injected_replay_ok, row.app
