"""Campaign-service micro-benchmarks: submit-to-result overhead.

Measures the service *plane*, not the simulator: a warm job (the result
document already durable) isolates protocol + WAL + scheduling overhead
per round trip, and a cold job measures end-to-end latency for a small
real campaign through the server against the same campaign run
in-process (the service tax).

``CORD_SVC_THROUGHPUT_MIN`` (warm submit->result round trips per
second, default 20) gates the warm path so protocol or WAL regressions
fail loudly in CI rather than drifting.
"""

import asyncio
import os
import threading
import time

import pytest

from repro.injection.campaign import CampaignConfig, run_campaign
from repro.service.client import ServiceClient
from repro.workloads import WorkloadParams, get_workload

THROUGHPUT_MIN_ENV = "CORD_SVC_THROUGHPUT_MIN"
_DEFAULT_THROUGHPUT_MIN = 20.0

WARM_ROUNDTRIPS = 30
SPEC = dict(runs=3, seed=77, scale=0.5)


def _throughput_min() -> float:
    raw = os.environ.get(THROUGHPUT_MIN_ENV, "").strip()
    if raw:
        try:
            return float(raw)
        except ValueError:
            pass
    return _DEFAULT_THROUGHPUT_MIN


@pytest.fixture(scope="module")
def service(tmp_path_factory):
    """One in-process server on a unix socket, drained at teardown."""
    root = tmp_path_factory.mktemp("svc-bench")
    os.environ.setdefault("REPRO_FSYNC", "0")

    def _serve():
        from repro.service.server import serve

        # Constructed inside the thread so the event loop owning the
        # server's primitives is the one asyncio.run creates here.
        asyncio.run(serve(root=root, concurrency=2))

    thread = threading.Thread(target=_serve, daemon=True)
    thread.start()
    client = ServiceClient(socket_path=root / "service.sock")
    client.wait_ready()
    yield client
    client.drain()
    thread.join(timeout=60)


def test_service_cold_job_latency(benchmark, bench_log, service):
    """End-to-end cold campaign through the server vs in-process."""

    def cold_job():
        response = service.submit("fft", **SPEC)
        assert response["ok"], response
        final = service.result(response["job"])
        assert final["state"] == "committed"
        return final

    final = benchmark(
        bench_log.timed, "components", "service_cold_job", cold_job,
        events=SPEC["runs"],
    )
    # The service path must agree with the in-process campaign to the
    # byte -- the overhead being measured buys fault tolerance, not a
    # different answer.
    from repro.injection.campaign import format_campaign_report

    workload = get_workload("fft")
    campaign = run_campaign(
        workload.program_factory(WorkloadParams(scale=SPEC["scale"])),
        "fft",
        CampaignConfig(n_runs=SPEC["runs"], base_seed=SPEC["seed"]),
    )
    assert final["report"] == format_campaign_report(campaign)


def test_service_warm_roundtrip_throughput(benchmark, bench_log, service):
    """Warm submit->result round trips per second (gated)."""
    # Ensure the result document is durable before timing.
    first = service.submit("fft", **SPEC)
    job = first.get("job") or first
    assert service.result(job)["state"] == "committed"

    def roundtrips():
        for _ in range(WARM_ROUNDTRIPS):
            response = service.submit("fft", **SPEC)
            assert response["ok"], response
            final = service.result(response["job"])
            assert final["state"] == "committed"
            assert final["stats"]["result_hit"] == 1
        return WARM_ROUNDTRIPS

    start = time.perf_counter()
    count = benchmark(
        bench_log.timed, "components", "service_warm_roundtrip",
        roundtrips, events=WARM_ROUNDTRIPS,
    )
    elapsed = time.perf_counter() - start
    throughput = count / elapsed
    floor = _throughput_min()
    print("\nwarm service throughput: %.1f jobs/s (floor %.1f)"
          % (throughput, floor))
    assert throughput >= floor, (
        "warm submit->result throughput %.1f jobs/s fell below %s=%.1f"
        % (throughput, THROUGHPUT_MIN_ENV, floor)
    )
