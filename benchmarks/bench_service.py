"""Campaign-service micro-benchmarks: submit-to-result overhead.

Measures the service *plane*, not the simulator: a warm job (the result
document already durable) isolates protocol + WAL + scheduling overhead
per round trip, and a cold job measures end-to-end latency for a small
real campaign through the server against the same campaign run
in-process (the service tax).

``CORD_SVC_THROUGHPUT_MIN`` (warm submit->result round trips per
second, default 20) gates the warm path so protocol or WAL regressions
fail loudly in CI rather than drifting.
"""

import asyncio
import os
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.injection.campaign import CampaignConfig, run_campaign
from repro.service.client import ServiceClient
from repro.workloads import WorkloadParams, get_workload

THROUGHPUT_MIN_ENV = "CORD_SVC_THROUGHPUT_MIN"
_DEFAULT_THROUGHPUT_MIN = 20.0

#: Distributed floor is end-to-end cold jobs (record + analyze + full
#: store replication over the socket) per second -- deliberately
#: conservative so only a stall/livelock regression trips it.
DIST_THROUGHPUT_MIN_ENV = "CORD_SVC_DIST_THROUGHPUT_MIN"
_DEFAULT_DIST_THROUGHPUT_MIN = 0.05

WARM_ROUNDTRIPS = 30
DIST_JOBS = 3
DIST_WORKERS = 2
SPEC = dict(runs=3, seed=77, scale=0.5)

_SRC = str(Path(__file__).resolve().parents[1] / "src")


def _floor(env_name: str, default: float) -> float:
    raw = os.environ.get(env_name, "").strip()
    if raw:
        try:
            return float(raw)
        except ValueError:
            pass
    return default


def _throughput_min() -> float:
    return _floor(THROUGHPUT_MIN_ENV, _DEFAULT_THROUGHPUT_MIN)


@pytest.fixture(scope="module")
def service(tmp_path_factory):
    """One in-process server on a unix socket, drained at teardown."""
    root = tmp_path_factory.mktemp("svc-bench")
    os.environ.setdefault("REPRO_FSYNC", "0")

    def _serve():
        from repro.service.server import serve

        # Constructed inside the thread so the event loop owning the
        # server's primitives is the one asyncio.run creates here.
        asyncio.run(serve(root=root, concurrency=2))

    thread = threading.Thread(target=_serve, daemon=True)
    thread.start()
    client = ServiceClient(socket_path=root / "service.sock")
    client.wait_ready()
    yield client
    client.drain()
    thread.join(timeout=60)


def test_service_cold_job_latency(benchmark, bench_log, service):
    """End-to-end cold campaign through the server vs in-process."""

    def cold_job():
        response = service.submit("fft", **SPEC)
        assert response["ok"], response
        final = service.result(response["job"])
        assert final["state"] == "committed"
        return final

    final = benchmark(
        bench_log.timed, "components", "service_cold_job", cold_job,
        events=SPEC["runs"],
    )
    # The service path must agree with the in-process campaign to the
    # byte -- the overhead being measured buys fault tolerance, not a
    # different answer.
    from repro.injection.campaign import format_campaign_report

    workload = get_workload("fft")
    campaign = run_campaign(
        workload.program_factory(WorkloadParams(scale=SPEC["scale"])),
        "fft",
        CampaignConfig(n_runs=SPEC["runs"], base_seed=SPEC["seed"]),
    )
    assert final["report"] == format_campaign_report(campaign)


def test_service_warm_roundtrip_throughput(benchmark, bench_log, service):
    """Warm submit->result round trips per second (gated)."""
    # Ensure the result document is durable before timing.
    first = service.submit("fft", **SPEC)
    job = first.get("job") or first
    assert service.result(job)["state"] == "committed"

    def roundtrips():
        for _ in range(WARM_ROUNDTRIPS):
            response = service.submit("fft", **SPEC)
            assert response["ok"], response
            final = service.result(response["job"])
            assert final["state"] == "committed"
            assert final["stats"]["result_hit"] == 1
        return WARM_ROUNDTRIPS

    start = time.perf_counter()
    count = benchmark(
        bench_log.timed, "components", "service_warm_roundtrip",
        roundtrips, events=WARM_ROUNDTRIPS,
    )
    elapsed = time.perf_counter() - start
    throughput = count / elapsed
    floor = _throughput_min()
    print("\nwarm service throughput: %.1f jobs/s (floor %.1f)"
          % (throughput, floor))
    assert throughput >= floor, (
        "warm submit->result throughput %.1f jobs/s fell below %s=%.1f"
        % (throughput, THROUGHPUT_MIN_ENV, floor)
    )


def test_service_distributed_throughput(benchmark, bench_log, service,
                                        tmp_path):
    """Cold submit->result jobs per second through remote workers.

    The in-process server leases every stage task to ``DIST_WORKERS``
    ``cord-worker`` subprocesses with private trace stores, so each
    job's recordings and outcome bundles cross the replication
    sub-protocol twice.  Gated by ``CORD_SVC_DIST_THROUGHPUT_MIN``.
    """
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [_SRC]
        + [p for p in env.get("PYTHONPATH", "").split(os.pathsep) if p]
    )
    env.setdefault("REPRO_FSYNC", "0")
    env.pop("REPRO_FAULTS", None)
    socket_path = service.socket_path
    workers = []
    for index in range(DIST_WORKERS):
        worker_root = tmp_path / ("wk%d" % index)
        worker_root.mkdir()
        workers.append(subprocess.Popen(
            [sys.executable, "-m", "repro.service", "worker",
             "--socket", str(socket_path),
             "--root", str(worker_root),
             "--name", "bench%d" % index,
             "--connect-timeout", "10"],
            env=env,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        ))
    try:
        deadline = time.monotonic() + 30
        while time.monotonic() < deadline:
            if service.health()["workers"]["live"] >= DIST_WORKERS:
                break
            time.sleep(0.05)
        else:
            raise AssertionError("bench workers never attached")

        def cold_jobs():
            remote = 0
            for index in range(DIST_JOBS):
                response = service.submit(
                    "fft", runs=SPEC["runs"], seed=9000 + index,
                    scale=SPEC["scale"],
                )
                assert response["ok"], response
                final = service.result(response["job"])
                assert final["state"] == "committed"
                remote += final["stats"].get("remote", {}).get(
                    "remote_completions", 0
                )
            assert remote > 0, "no stage task ever ran on a worker"
            return DIST_JOBS

        start = time.perf_counter()
        count = benchmark(
            bench_log.timed, "components", "service_distributed_job",
            cold_jobs, events=DIST_JOBS * SPEC["runs"],
        )
        elapsed = time.perf_counter() - start
        throughput = count / elapsed
        floor = _floor(DIST_THROUGHPUT_MIN_ENV,
                       _DEFAULT_DIST_THROUGHPUT_MIN)
        print("\ndistributed service throughput: %.2f jobs/s "
              "(%d workers, floor %.2f)"
              % (throughput, DIST_WORKERS, floor))
        assert throughput >= floor, (
            "distributed submit->result throughput %.2f jobs/s fell "
            "below %s=%.2f"
            % (throughput, DIST_THROUGHPUT_MIN_ENV, floor)
        )
    finally:
        for worker in workers:
            if worker.poll() is None:
                worker.send_signal(signal.SIGTERM)
        for worker in workers:
            try:
                worker.wait(timeout=30)
            except subprocess.TimeoutExpired:
                worker.kill()
                worker.wait(timeout=10)
