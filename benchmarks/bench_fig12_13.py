"""Figures 12/13: CORD vs the vector-clock scheme and vs Ideal.

Paper: CORD detects 83 % of the problems the vector-clock configuration
finds and 77 % of what Ideal finds (Figure 12), while its *raw* race
detection is only ~20 % of Ideal (Figure 13) -- simplification sacrificed
the less valuable raw capability but kept problem detection.
"""

from repro.experiments import figure12, figure13


def test_figure12_problem_detection(benchmark, suite):
    fig = benchmark(figure12, suite)
    print()
    print(fig.render())
    vs_ideal = fig.average_of("vs Ideal")
    vs_vector = fig.average_of("vs Vector Clock")
    # CORD finds the majority of problems...
    assert vs_ideal >= 0.45
    assert vs_vector >= 0.45
    # ...but not all of them (scalar clocks genuinely lose some).
    assert vs_ideal < 1.0
    # At least one app defeats scalar clocks almost completely (the
    # paper's water-n2 phenomenon).
    assert min(v[1] for v in fig.rows.values()) <= 0.25


def test_figure13_raw_detection(benchmark, suite):
    fig = benchmark(figure13, suite)
    print()
    print(fig.render())
    vs_ideal = fig.average_of("vs Ideal")
    # The paper's headline: raw detection collapses to ~20 % of Ideal.
    assert 0.08 <= vs_ideal <= 0.45


def test_problem_rate_exceeds_raw_rate(suite):
    # "Little clustering": one problem causes several races, so losing
    # most races still catches most problems.
    f12 = figure12(suite)
    f13 = figure13(suite)
    assert f12.average_of("vs Ideal") > 2 * f13.average_of("vs Ideal")
