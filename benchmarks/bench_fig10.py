"""Figure 10: % of injected sync removals that cause >= 1 data race.

Paper shape: only a fraction of injections manifest -- "in several
applications most dynamic instances of synchronization are redundant" --
with a wide per-application spread.
"""

from repro.experiments import figure10


def test_figure10(benchmark, suite):
    fig = benchmark(figure10, suite)
    print()
    print(fig.render())
    # Shape: a real average strictly inside (0, 1) ...
    assert 0.2 <= fig.average[0] <= 0.95
    # ... and genuine spread across applications (redundant-sync apps
    # vs. always-manifesting apps).
    values = [v[0] for v in fig.rows.values()]
    assert min(values) <= 0.6
    assert max(values) >= 0.7
