"""Directory-vs-snooping CORD: equivalence and traffic comparison.

Not a paper figure -- the paper defers directory systems with "a
straightforward extension ... is possible" (Section 2.5).  This bench
realizes the extension and quantifies its point-to-point traffic against
the broadcast protocol on every workload.
"""

from repro.cord import CordConfig, CordDetector, DirectoryCordDetector
from repro.engine import run_program
from repro.workloads import WorkloadParams, all_workloads

PARAMS = WorkloadParams(scale=0.5)


def run_all():
    rows = []
    for spec in all_workloads():
        program = spec.build(PARAMS)
        trace = run_program(program, seed=2)
        snoop = CordDetector(
            CordConfig(), program.n_threads
        ).run(trace)
        directory = DirectoryCordDetector(
            CordConfig(), program.n_threads
        ).run(trace)
        assert snoop.flagged == directory.flagged, spec.name
        broadcast_tx = (
            snoop.counters["race_checks"]
            + snoop.counters["memts_update_broadcasts"]
        )
        rows.append(
            (
                spec.name,
                broadcast_tx,
                directory.counters["directory_messages"],
                directory.counters["sharer_forwards"],
            )
        )
    return rows


def test_directory_equivalence_and_traffic(benchmark):
    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    print()
    print("%-10s %12s %12s %10s" % (
        "app", "bus tx", "dir msgs", "forwards"))
    for name, bus_tx, messages, forwards in rows:
        print("%-10s %12d %12d %10d" % (name, bus_tx, messages, forwards))
    # Every workload: detection equivalence was asserted inside run_all;
    # the directory's per-check sharer forwards stay below the broadcast
    # equivalent (every check disturbing P-1 = 3 remote caches).
    for name, bus_tx, _messages, forwards in rows:
        assert forwards <= 3 * bus_tx, name
