"""Figures 16/17: scalar-clock window sweep (D = 1 / 4 / 16 / 256).

Paper: the naive scalar scheme (D=1) loses most raw detection and much
problem detection; the sync-read window recovers a large share (the paper
reports 62 % more problems found at D=16 than D=1), with little further
gain beyond D=16.
"""

from repro.experiments import figure16, figure17


def test_figure16_problem_detection(benchmark, suite):
    fig = benchmark(figure16, suite)
    print()
    print(fig.render())
    averages = dict(zip(fig.series, fig.average))
    assert averages["CORD-D1"] <= averages["CORD-D4"]
    assert averages["CORD-D4"] <= averages["CORD-D16"] + 1e-9
    assert averages["CORD-D16"] <= averages["CORD-D256"] + 1e-9
    # The window mechanism recovers a substantial share of problems.
    assert averages["CORD-D16"] >= 1.15 * averages["CORD-D1"]
    # Diminishing returns past D=16 (paper: only barnes improves).
    assert averages["CORD-D256"] <= averages["CORD-D16"] * 1.15


def test_figure17_raw_detection(benchmark, suite):
    fig = benchmark(figure17, suite)
    print()
    print(fig.render())
    averages = dict(zip(fig.series, fig.average))
    assert averages["CORD-D1"] <= averages["CORD-D4"]
    assert averages["CORD-D4"] <= averages["CORD-D16"] + 1e-9
    # Raw detection gains from D are dramatic (paper's Figure 17).
    assert averages["CORD-D16"] >= 2 * averages["CORD-D1"]
