"""Ablation sweeps: dense D and cache-capacity sensitivity curves.

Extends Figures 14-17's four sample points per axis into full curves:
the D knee must sit at small D with a plateau after (the paper found
D=16 saturating), and detection must grow monotonically with metadata
capacity up to a plateau (the paper's InfCache ~ L2Cache finding).

Sweeps run in record-once / analyze-many mode: each injected run is
simulated once and every sweep point analyzes the shared packed trace.
``test_record_once_speedup`` measures that mode against the legacy
per-configuration protocol on the same 8-point D sweep and asserts the
end-to-end speedup (threshold ``CORD_BENCH_SPEEDUP_MIN``, default 3;
results are bit-identical by construction and asserted here too).
"""

import os
import time

from repro.experiments.sensitivity import cache_sensitivity, d_sensitivity
from repro.workloads import WorkloadParams

PARAMS = WorkloadParams(scale=0.6)

#: The 8-point D axis (the paper samples 4 of these).
D_SWEEP = (1, 2, 4, 8, 16, 32, 64, 256)

_SWEEP_WORKLOADS = ("fft", "ocean", "fmm")


def test_d_sensitivity_curve(benchmark, bench_log):
    sweep = benchmark.pedantic(
        bench_log.timed,
        args=("sweeps", "d_sweep_8pt_shared", d_sensitivity),
        kwargs=dict(
            workloads=_SWEEP_WORKLOADS,
            d_values=D_SWEEP,
            runs_per_app=8,
            params=PARAMS,
        ),
        rounds=1,
        iterations=1,
    )
    print()
    print(sweep.render())
    assert sweep.is_monotone_nondecreasing()
    # The knee: most of the gain arrives by D=4..16; the tail is flat.
    assert sweep.problem_rates[2] >= 0.9 * sweep.problem_rates[-1]
    assert sweep.problem_rates[0] < sweep.problem_rates[-1]


def test_cache_sensitivity_curve(benchmark, bench_log):
    sweep = benchmark.pedantic(
        bench_log.timed,
        args=("sweeps", "cache_sweep_shared", cache_sensitivity),
        kwargs=dict(
            workloads=("fft", "lu", "barnes"),
            cache_sizes=(2048, 4096, 8192, 32768, None),
            runs_per_app=8,
            params=PARAMS,
        ),
        rounds=1,
        iterations=1,
    )
    print()
    print(sweep.render())
    assert sweep.is_monotone_nondecreasing()
    # The paper's finding: the paper-size cache (32 KB) is already at
    # the plateau (InfCache adds nothing).
    assert sweep.problem_rates[-2] == sweep.problem_rates[-1]


def test_kernel_speedup(bench_log):
    """Vectorized kernels vs the pure-python packed loops: >= 1.5x.

    Both arms use record-once mode on the same 8-point D sweep; the
    scalar arm runs under ``REPRO_NO_NUMPY=1``, which also disables the
    interval-fused sweep pass (it interprets the same plans).  Reports
    must be bit-identical -- the kernels are accelerators, not
    approximations.  Threshold ``CORD_KERNEL_SPEEDUP_MIN`` (default
    1.5).
    """
    from repro.trace.kernels import NO_NUMPY_ENV, kernels_enabled

    assert kernels_enabled(), (
        "kernel speedup gate needs numpy; do not run this benchmark "
        "in the no-numpy environment"
    )
    kwargs = dict(
        workloads=_SWEEP_WORKLOADS,
        d_values=D_SWEEP,
        runs_per_app=4,
        params=PARAMS,
    )
    start = time.perf_counter()
    kernel = d_sensitivity(**kwargs)
    kernel_s = time.perf_counter() - start

    saved = os.environ.get(NO_NUMPY_ENV)
    os.environ[NO_NUMPY_ENV] = "1"
    try:
        start = time.perf_counter()
        scalar = d_sensitivity(**kwargs)
        scalar_s = time.perf_counter() - start
    finally:
        if saved is None:
            os.environ.pop(NO_NUMPY_ENV, None)
        else:
            os.environ[NO_NUMPY_ENV] = saved

    # Same sweep, same reports -- the kernels change cost only.
    assert kernel.points == scalar.points
    assert kernel.problem_rates == scalar.problem_rates
    assert kernel.raw_rates == scalar.raw_rates

    speedup = scalar_s / kernel_s
    bench_log.record(
        "sweeps",
        "d_sweep_4run_kernels",
        kernel_s,
        extra={"speedup_vs_python": round(speedup, 2)},
    )
    bench_log.record("sweeps", "d_sweep_4run_python", scalar_s)
    print()
    print(
        "kernels %.2fs vs pure python %.2fs: %.2fx"
        % (kernel_s, scalar_s, speedup)
    )
    minimum = float(os.environ.get("CORD_KERNEL_SPEEDUP_MIN", "1.5"))
    assert speedup >= minimum, (
        "kernel speedup %.2fx below required %.1fx" % (speedup, minimum)
    )


def test_record_once_speedup(bench_log):
    """Record-once vs per-config on the 8-point D sweep: >= 3x, identical."""
    kwargs = dict(
        workloads=_SWEEP_WORKLOADS,
        d_values=D_SWEEP,
        runs_per_app=4,
        params=PARAMS,
    )
    start = time.perf_counter()
    shared = d_sensitivity(**kwargs)
    shared_s = time.perf_counter() - start

    start = time.perf_counter()
    legacy = d_sensitivity(mode="per-config", **kwargs)
    legacy_s = time.perf_counter() - start

    # Same sweep, same reports -- sharing recordings changes cost only.
    assert shared.points == legacy.points
    assert shared.problem_rates == legacy.problem_rates
    assert shared.raw_rates == legacy.raw_rates

    speedup = legacy_s / shared_s
    bench_log.record(
        "sweeps",
        "d_sweep_8pt_per_config",
        legacy_s,
        extra={"speedup_vs_shared": round(speedup, 2)},
    )
    print()
    print(
        "record-once %.2fs vs per-config %.2fs: %.2fx"
        % (shared_s, legacy_s, speedup)
    )
    minimum = float(os.environ.get("CORD_BENCH_SPEEDUP_MIN", "3"))
    assert speedup >= minimum, (
        "record-once speedup %.2fx below required %.1fx"
        % (speedup, minimum)
    )
