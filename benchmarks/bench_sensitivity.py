"""Ablation sweeps: dense D and cache-capacity sensitivity curves.

Extends Figures 14-17's four sample points per axis into full curves:
the D knee must sit at small D with a plateau after (the paper found
D=16 saturating), and detection must grow monotonically with metadata
capacity up to a plateau (the paper's InfCache ~ L2Cache finding).

Sweeps run in record-once / analyze-many mode: each injected run is
simulated once and every sweep point analyzes the shared packed trace.
``test_record_once_speedup`` measures that mode against the legacy
per-configuration protocol on the same 8-point D sweep and asserts the
end-to-end speedup (threshold ``CORD_BENCH_SPEEDUP_MIN``, default 3;
results are bit-identical by construction and asserted here too).

The zero-copy trace plane adds two store-backed gates on the same
sweep: ``test_cold_sweep_speedup`` (cold store-backed vs per-config,
threshold ``CORD_SWEEP_SPEEDUP_MIN``, default 2) and
``test_warm_sweep_zero_copy`` (a warm re-run serves every recording as
an mmap hit with zero eager deserializations, threshold
``CORD_WARM_SWEEP_SPEEDUP_MIN``, default 2, again vs per-config).
"""

import os
import shutil
import tempfile
import time
from pathlib import Path

import pytest

from repro.experiments.sensitivity import cache_sensitivity, d_sensitivity
from repro.workloads import WorkloadParams

PARAMS = WorkloadParams(scale=0.6)

#: The 8-point D axis (the paper samples 4 of these).
D_SWEEP = (1, 2, 4, 8, 16, 32, 64, 256)

_SWEEP_WORKLOADS = ("fft", "ocean", "fmm")


def test_d_sensitivity_curve(benchmark, bench_log):
    sweep = benchmark.pedantic(
        bench_log.timed,
        args=("sweeps", "d_sweep_8pt_shared", d_sensitivity),
        kwargs=dict(
            workloads=_SWEEP_WORKLOADS,
            d_values=D_SWEEP,
            runs_per_app=8,
            params=PARAMS,
        ),
        rounds=1,
        iterations=1,
    )
    print()
    print(sweep.render())
    assert sweep.is_monotone_nondecreasing()
    # The knee: most of the gain arrives by D=4..16; the tail is flat.
    assert sweep.problem_rates[2] >= 0.9 * sweep.problem_rates[-1]
    assert sweep.problem_rates[0] < sweep.problem_rates[-1]


def test_cache_sensitivity_curve(benchmark, bench_log):
    sweep = benchmark.pedantic(
        bench_log.timed,
        args=("sweeps", "cache_sweep_shared", cache_sensitivity),
        kwargs=dict(
            workloads=("fft", "lu", "barnes"),
            cache_sizes=(2048, 4096, 8192, 32768, None),
            runs_per_app=8,
            params=PARAMS,
        ),
        rounds=1,
        iterations=1,
    )
    print()
    print(sweep.render())
    assert sweep.is_monotone_nondecreasing()
    # The paper's finding: the paper-size cache (32 KB) is already at
    # the plateau (InfCache adds nothing).
    assert sweep.problem_rates[-2] == sweep.problem_rates[-1]


def test_kernel_speedup(bench_log):
    """Vectorized kernels vs the pure-python packed loops: >= 1.5x.

    Both arms use record-once mode on the same 8-point D sweep; the
    scalar arm runs under ``REPRO_NO_NUMPY=1``, which also disables the
    interval-fused sweep pass (it interprets the same plans).  Reports
    must be bit-identical -- the kernels are accelerators, not
    approximations.  Threshold ``CORD_KERNEL_SPEEDUP_MIN`` (default
    1.5).
    """
    from repro.trace.kernels import NO_NUMPY_ENV, kernels_enabled

    assert kernels_enabled(), (
        "kernel speedup gate needs numpy; do not run this benchmark "
        "in the no-numpy environment"
    )
    kwargs = dict(
        workloads=_SWEEP_WORKLOADS,
        d_values=D_SWEEP,
        runs_per_app=4,
        params=PARAMS,
    )
    start = time.perf_counter()
    kernel = d_sensitivity(**kwargs)
    kernel_s = time.perf_counter() - start

    saved = os.environ.get(NO_NUMPY_ENV)
    os.environ[NO_NUMPY_ENV] = "1"
    try:
        start = time.perf_counter()
        scalar = d_sensitivity(**kwargs)
        scalar_s = time.perf_counter() - start
    finally:
        if saved is None:
            os.environ.pop(NO_NUMPY_ENV, None)
        else:
            os.environ[NO_NUMPY_ENV] = saved

    # Same sweep, same reports -- the kernels change cost only.
    assert kernel.points == scalar.points
    assert kernel.problem_rates == scalar.problem_rates
    assert kernel.raw_rates == scalar.raw_rates

    speedup = scalar_s / kernel_s
    bench_log.record(
        "sweeps",
        "d_sweep_4run_kernels",
        kernel_s,
        extra={"speedup_vs_python": round(speedup, 2)},
    )
    bench_log.record("sweeps", "d_sweep_4run_python", scalar_s)
    print()
    print(
        "kernels %.2fs vs pure python %.2fs: %.2fx"
        % (kernel_s, scalar_s, speedup)
    )
    minimum = float(os.environ.get("CORD_KERNEL_SPEEDUP_MIN", "1.5"))
    assert speedup >= minimum, (
        "kernel speedup %.2fx below required %.1fx" % (speedup, minimum)
    )


def test_record_once_speedup(bench_log):
    """Record-once vs per-config on the 8-point D sweep: >= 3x, identical."""
    kwargs = dict(
        workloads=_SWEEP_WORKLOADS,
        d_values=D_SWEEP,
        runs_per_app=4,
        params=PARAMS,
    )
    start = time.perf_counter()
    shared = d_sensitivity(**kwargs)
    shared_s = time.perf_counter() - start

    start = time.perf_counter()
    legacy = d_sensitivity(mode="per-config", **kwargs)
    legacy_s = time.perf_counter() - start

    # Same sweep, same reports -- sharing recordings changes cost only.
    assert shared.points == legacy.points
    assert shared.problem_rates == legacy.problem_rates
    assert shared.raw_rates == legacy.raw_rates

    speedup = legacy_s / shared_s
    bench_log.record(
        "sweeps",
        "d_sweep_8pt_per_config",
        legacy_s,
        extra={"speedup_vs_shared": round(speedup, 2)},
    )
    print()
    print(
        "record-once %.2fs vs per-config %.2fs: %.2fx"
        % (shared_s, legacy_s, speedup)
    )
    minimum = float(os.environ.get("CORD_BENCH_SPEEDUP_MIN", "3"))
    assert speedup >= minimum, (
        "record-once speedup %.2fx below required %.1fx"
        % (speedup, minimum)
    )


def test_cold_sweep_speedup(bench_log):
    """Cold store-backed sweep vs per-config on the 8-point D axis.

    The cold arm records each injected run once into a fresh
    :class:`PackedTraceStore` (v3 column-aligned frames) and analyzes
    every sweep point against the shared recording; the legacy arm
    re-simulates per configuration.  Reports must be bit-identical --
    the store changes cost, never results.  Threshold
    ``CORD_SWEEP_SPEEDUP_MIN`` (default 2).
    """
    from repro.trace.store import PackedTraceStore

    kwargs = dict(
        workloads=_SWEEP_WORKLOADS,
        d_values=D_SWEEP,
        runs_per_app=4,
        params=PARAMS,
    )
    root = Path(tempfile.mkdtemp(prefix="cord-bench-zerocopy-"))
    try:
        store = PackedTraceStore(root / "traces")
        start = time.perf_counter()
        cold = d_sensitivity(trace_store=store, **kwargs)
        cold_s = time.perf_counter() - start
    finally:
        shutil.rmtree(root, ignore_errors=True)

    start = time.perf_counter()
    legacy = d_sensitivity(mode="per-config", **kwargs)
    legacy_s = time.perf_counter() - start

    assert cold.points == legacy.points
    assert cold.problem_rates == legacy.problem_rates
    assert cold.raw_rates == legacy.raw_rates

    speedup = legacy_s / cold_s
    bench_log.record(
        "sweeps",
        "d_sweep_8pt_cold_store",
        cold_s,
        extra={"speedup_vs_per_config": round(speedup, 2)},
    )
    print()
    print(
        "cold store-backed %.2fs vs per-config %.2fs: %.2fx"
        % (cold_s, legacy_s, speedup)
    )
    minimum = float(os.environ.get("CORD_SWEEP_SPEEDUP_MIN", "2"))
    assert speedup >= minimum, (
        "cold sweep speedup %.2fx below required %.1fx"
        % (speedup, minimum)
    )


def test_warm_sweep_zero_copy(bench_log):
    """Warm store-backed sweeps re-read every recording zero-copy.

    A cold pass populates the store; the warm pass (a fresh store
    instance over the same directory, so its counters start clean) must
    serve every run as an mmap hit -- zero per-task full
    deserializations, zero re-simulations -- and keep the record-once
    speedup over the per-config protocol (threshold
    ``CORD_WARM_SWEEP_SPEEDUP_MIN``, default 2).  At the benchmark's
    trace sizes mapping is not meaningfully faster than one eager
    decode, so the zero-copy claim is gated on the store's counters,
    not on the mmap-vs-eager wall delta.
    """
    from repro.trace.store import PackedTraceStore, mmap_enabled

    assert mmap_enabled(), (
        "warm zero-copy gate needs mmap reads; do not run this "
        "benchmark with REPRO_NO_MMAP set"
    )
    kwargs = dict(
        workloads=_SWEEP_WORKLOADS,
        d_values=D_SWEEP,
        runs_per_app=4,
        params=PARAMS,
    )
    root = Path(tempfile.mkdtemp(prefix="cord-bench-zerocopy-"))
    try:
        cold = d_sensitivity(
            trace_store=PackedTraceStore(root / "traces"), **kwargs
        )
        warm_store = PackedTraceStore(root / "traces")
        start = time.perf_counter()
        warm = d_sensitivity(trace_store=warm_store, **kwargs)
        warm_s = time.perf_counter() - start
        stats = dict(warm_store.stats)
    finally:
        shutil.rmtree(root, ignore_errors=True)

    start = time.perf_counter()
    legacy = d_sensitivity(mode="per-config", **kwargs)
    legacy_s = time.perf_counter() - start

    # The acceptance criterion: the warm pass performed zero per-task
    # full deserializations and zero re-simulations.
    assert stats.get("run_misses", 0) == 0, stats
    assert stats.get("eager_decodes", 0) == 0, stats
    assert stats.get("mmap_hits", 0) > 0, stats

    assert warm.points == cold.points == legacy.points
    assert warm.problem_rates == cold.problem_rates
    assert warm.problem_rates == legacy.problem_rates
    assert warm.raw_rates == cold.raw_rates
    assert warm.raw_rates == legacy.raw_rates

    speedup = legacy_s / warm_s
    bench_log.record(
        "sweeps",
        "d_sweep_8pt_warm_store",
        warm_s,
        extra={
            "speedup_vs_per_config": round(speedup, 2),
            "mmap_hits": stats.get("mmap_hits", 0),
        },
    )
    print()
    print(
        "warm store-backed %.2fs vs per-config %.2fs: %.2fx "
        "(%d mmap hits, 0 eager decodes)"
        % (warm_s, legacy_s, speedup, stats.get("mmap_hits", 0))
    )
    minimum = float(
        os.environ.get("CORD_WARM_SWEEP_SPEEDUP_MIN", "2")
    )
    assert speedup >= minimum, (
        "warm sweep speedup %.2fx below required %.1fx"
        % (speedup, minimum)
    )


def test_pipeline_speedup(bench_log):
    """Run-level pipelining vs campaign-level pooling: >= 1.5x.

    Three cold arms compute the same multi-workload suite on a
    deliberately imbalanced mix (ocean is several times heavier than
    fft or lu, so campaign-level pooling idles every worker behind the
    ocean campaign while run-level scheduling keeps them fed): serial,
    campaign-per-task pooling, and the run-level pipelined scheduler,
    each on a fresh cache directory.  Campaign caches must be
    byte-identical across all three arms -- the scheduler changes
    *where* work runs, never what it computes -- and the pipelined
    wall clock must beat campaign pooling by
    ``CORD_PIPELINE_SPEEDUP_MIN`` (default 1.5).

    The gate needs real parallel hardware: below 4 CPUs the pool arms
    mostly timeshare one core and the comparison measures scheduler
    overhead, not pipelining, so the test skips (set
    ``CORD_PIPELINE_BENCH_FORCE=1`` to run the byte-identity checks
    anyway, e.g. with ``CORD_PIPELINE_SPEEDUP_MIN=0``).
    """
    from repro.experiments.runner import Suite, SuiteConfig

    cpus = os.cpu_count() or 1
    if cpus < 4 and not os.environ.get("CORD_PIPELINE_BENCH_FORCE"):
        pytest.skip(
            "pipeline speedup gate needs >= 4 CPUs (have %d)" % cpus
        )
    jobs = min(4, cpus)
    config = SuiteConfig(
        runs_per_app=6,
        workloads=("ocean", "fft", "lu"),
        params=PARAMS,
    )
    saved_fsync = os.environ.get("REPRO_FSYNC")
    os.environ["REPRO_FSYNC"] = "0"

    def run_arm(arm_jobs, scheduler):
        root = Path(tempfile.mkdtemp(prefix="cord-bench-pipeline-"))
        try:
            suite = Suite(
                config, jobs=arm_jobs, cache_dir=str(root),
                scheduler=scheduler,
            )
            start = time.perf_counter()
            suite.campaigns()
            wall = time.perf_counter() - start
            caches = {
                p.name: p.read_bytes()
                for p in root.iterdir()
                if p.is_file()
            }
            return wall, caches
        finally:
            shutil.rmtree(root, ignore_errors=True)

    try:
        serial_s, serial_caches = run_arm(1, "campaigns")
        pooled_s, pooled_caches = run_arm(jobs, "campaigns")
        pipelined_s, pipelined_caches = run_arm(jobs, "runs")
    finally:
        if saved_fsync is None:
            os.environ.pop("REPRO_FSYNC", None)
        else:
            os.environ["REPRO_FSYNC"] = saved_fsync

    # The scheduler contract: all three arms leave identical bytes.
    assert serial_caches
    assert pooled_caches == serial_caches
    assert pipelined_caches == serial_caches

    speedup = pooled_s / pipelined_s
    bench_log.record(
        "sweeps",
        "suite_run_pipelined",
        pipelined_s,
        extra={"pipeline_speedup": round(speedup, 2)},
    )
    bench_log.record("sweeps", "suite_campaign_pool", pooled_s)
    bench_log.record("sweeps", "suite_serial", serial_s)
    print()
    print(
        "run-pipelined %.2fs vs campaign-pooled %.2fs "
        "(serial %.2fs, %d jobs): %.2fx"
        % (pipelined_s, pooled_s, serial_s, jobs, speedup)
    )
    minimum = float(os.environ.get("CORD_PIPELINE_SPEEDUP_MIN", "1.5"))
    assert speedup >= minimum, (
        "pipeline speedup %.2fx below required %.1fx"
        % (speedup, minimum)
    )


def test_checkpoint_overhead(bench_log):
    """Crash-consistency is nearly free: journaling a store-backed
    8-point D sweep costs <= ``CORD_CHECKPOINT_OVERHEAD_MAX`` (default
    2%) of the sweep's application time.

    Ambient load on a shared machine moves whole-run wall time by far
    more than the sub-2% effect under test, so the overhead is measured
    *inside* the journaled run instead of by differencing two noisy
    walls: every checkpoint-layer call (journal appends, outcome-bundle
    store traffic, and run-checkpoint open/finish housekeeping) is
    timed, and the gate compares that total against the remaining
    (application) time of the same run -- numerator and denominator
    share whatever slowdown the machine imposed, so the ratio is
    load-invariant.  The minimum over
    ``CORD_CHECKPOINT_BENCH_ROUNDS`` (default 3) rounds is the quiet
    estimate.

    Arms run cold on fresh cache directories with a trace store (the
    store is the shared baseline: the journal rides on it) and fsync
    off (the kernel's durability tax varies with the filesystem and is
    not what this gate is about).  A plain store-backed arm still runs
    each round: its wall time is the recorded baseline, and its report
    must be bit-identical to the journaled arm's -- the journal changes
    cost, never results.
    """
    from repro.resilience import journal as journal_mod
    from repro.resilience.journal import RunCheckpoint
    from repro.trace.store import PackedTraceStore

    kwargs = dict(
        workloads=_SWEEP_WORKLOADS,
        d_values=D_SWEEP,
        runs_per_app=8,
        params=PARAMS,
    )
    rounds = int(os.environ.get("CORD_CHECKPOINT_BENCH_ROUNDS", "3"))
    saved_fsync = os.environ.get("REPRO_FSYNC")
    os.environ["REPRO_FSYNC"] = "0"

    ckpt_cost = [0.0]

    def timed(fn):
        def wrapper(*args, **kw):
            start = time.perf_counter()
            try:
                return fn(*args, **kw)
            finally:
                ckpt_cost[0] += time.perf_counter() - start
        return wrapper

    def timed_value_io(fn):
        # Only the checkpoint layer's own store traffic counts: the
        # per-run outcome bundles.  Sizing entries and trace frames are
        # store costs both arms pay identically.
        def wrapper(self, namespace, key, *args, **kw):
            if not (isinstance(key, tuple) and key[:1] == ("outcomes",)):
                return fn(self, namespace, key, *args, **kw)
            start = time.perf_counter()
            try:
                return fn(self, namespace, key, *args, **kw)
            finally:
                ckpt_cost[0] += time.perf_counter() - start
        return wrapper

    def run_arm(checkpointed):
        root = Path(tempfile.mkdtemp(prefix="cord-bench-ckpt-"))
        try:
            store = PackedTraceStore(root / "traces")
            ckpt = None
            ckpt_cost[0] = 0.0
            if checkpointed:
                open_timed = timed(
                    lambda: RunCheckpoint.open(
                        root, identity=("bench-checkpoint",), kind="sweep"
                    )
                )
                ckpt = open_timed()
            start = time.perf_counter()
            sweep = d_sensitivity(
                trace_store=store, checkpoint=ckpt, **kwargs
            )
            elapsed = time.perf_counter() - start
            if ckpt is not None:
                timed(ckpt.finish)()
                timed(ckpt.close)()
            return elapsed, ckpt_cost[0], sweep
        finally:
            shutil.rmtree(root, ignore_errors=True)

    orig_append = journal_mod.Journal.append
    orig_store = PackedTraceStore.store_value
    orig_load = PackedTraceStore.load_value
    journal_mod.Journal.append = timed(orig_append)
    PackedTraceStore.store_value = timed_value_io(orig_store)
    PackedTraceStore.load_value = timed_value_io(orig_load)
    try:
        plain_s = []
        overheads = []
        journaled_s = []
        plain = journaled = None
        for _ in range(rounds):
            elapsed, _cost, plain = run_arm(checkpointed=False)
            plain_s.append(elapsed)
            elapsed, cost, journaled = run_arm(checkpointed=True)
            journaled_s.append(elapsed)
            overheads.append(cost / (elapsed - cost))
    finally:
        journal_mod.Journal.append = orig_append
        PackedTraceStore.store_value = orig_store
        PackedTraceStore.load_value = orig_load
        if saved_fsync is None:
            os.environ.pop("REPRO_FSYNC", None)
        else:
            os.environ["REPRO_FSYNC"] = saved_fsync

    # Same sweep, same reports -- the journal changes cost only.
    assert journaled.points == plain.points
    assert journaled.problem_rates == plain.problem_rates
    assert journaled.raw_rates == plain.raw_rates

    overhead = min(overheads)
    bench_log.record(
        "sweeps",
        "d_sweep_8pt_checkpointed",
        min(journaled_s),
        extra={
            "plain_store_wall_s": round(min(plain_s), 6),
            "journal_overhead": round(overhead, 4),
        },
    )
    print()
    print(
        "checkpointed %.3fs (plain store %.3fs), checkpoint layer "
        "%+.2f%% of application time"
        % (min(journaled_s), min(plain_s), 100.0 * overhead)
    )
    maximum = float(
        os.environ.get("CORD_CHECKPOINT_OVERHEAD_MAX", "0.02")
    )
    assert overhead <= maximum, (
        "journaling overhead %.2f%% above the %.1f%% budget"
        % (100.0 * overhead, 100.0 * maximum)
    )
