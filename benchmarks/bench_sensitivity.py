"""Ablation sweeps: dense D and cache-capacity sensitivity curves.

Extends Figures 14-17's four sample points per axis into full curves:
the D knee must sit at small D with a plateau after (the paper found
D=16 saturating), and detection must grow monotonically with metadata
capacity up to a plateau (the paper's InfCache ~ L2Cache finding).
"""

from repro.experiments.sensitivity import cache_sensitivity, d_sensitivity
from repro.workloads import WorkloadParams

PARAMS = WorkloadParams(scale=0.6)


def test_d_sensitivity_curve(benchmark):
    sweep = benchmark.pedantic(
        d_sensitivity,
        kwargs=dict(
            workloads=("fft", "ocean", "fmm"),
            d_values=(1, 2, 4, 8, 16, 64),
            runs_per_app=8,
            params=PARAMS,
        ),
        rounds=1,
        iterations=1,
    )
    print()
    print(sweep.render())
    assert sweep.is_monotone_nondecreasing()
    # The knee: most of the gain arrives by D=4..16; the tail is flat.
    assert sweep.problem_rates[2] >= 0.9 * sweep.problem_rates[-1]
    assert sweep.problem_rates[0] < sweep.problem_rates[-1]


def test_cache_sensitivity_curve(benchmark):
    sweep = benchmark.pedantic(
        cache_sensitivity,
        kwargs=dict(
            workloads=("fft", "lu", "barnes"),
            cache_sizes=(2048, 4096, 8192, 32768, None),
            runs_per_app=8,
            params=PARAMS,
        ),
        rounds=1,
        iterations=1,
    )
    print()
    print(sweep.render())
    assert sweep.is_monotone_nondecreasing()
    # The paper's finding: the paper-size cache (32 KB) is already at
    # the plateau (InfCache adds nothing).
    assert sweep.problem_rates[-2] == sweep.problem_rates[-1]
