"""Component micro-benchmarks: engine, detectors, codec throughput.

Not a paper figure -- these quantify the reproduction's own simulator so
users can size their campaigns (events/second per component).  Detector
and codec components are measured on both paths where both exist: the
legacy per-event-object path and the columnar packed path the record-once
pipeline uses.
"""

import time

import pytest

from repro.cord import CordConfig, CordDetector, OrderLog
from repro.detectors import IdealDetector, LimitedVectorDetector
from repro.cachesim import CacheGeometry
from repro.engine import run_program
from repro.timingsim import estimate_overhead
from repro.trace import (
    decode_packed_trace,
    encode_packed_trace,
    view_packed_trace,
)
from repro.workloads import WorkloadParams, get_workload

PARAMS = WorkloadParams(scale=0.5)


@pytest.fixture(scope="module")
def trace():
    return run_program(get_workload("fmm").build(PARAMS), seed=1)


def _n_events(trace):
    return len(trace.packed)


def test_engine_throughput(benchmark, bench_log):
    program = get_workload("fmm").build(PARAMS)
    result = benchmark(
        bench_log.timed,
        "components",
        "engine",
        run_program,
        program,
        1,
        events=_n_events,
    )
    assert len(result.events) > 500


def test_cord_detector_throughput(benchmark, trace, bench_log):
    def detect():
        return CordDetector(CordConfig(), trace.n_threads).run(trace)

    outcome = benchmark(
        bench_log.timed,
        "components",
        "cord_object_path",
        detect,
        events=_n_events(trace),
    )
    assert outcome.raw_count == 0  # clean run


def test_cord_detector_packed_throughput(benchmark, trace, bench_log):
    packed = trace.packed

    def detect():
        return CordDetector(CordConfig(), trace.n_threads).run_packed(
            packed
        )

    outcome = benchmark(
        bench_log.timed,
        "components",
        "cord_packed_path",
        detect,
        events=len(packed),
    )
    assert outcome.raw_count == 0


def test_ideal_detector_throughput(benchmark, trace, bench_log):
    def detect():
        return IdealDetector(trace.n_threads).run(trace)

    outcome = benchmark(
        bench_log.timed,
        "components",
        "ideal_object_path",
        detect,
        events=_n_events(trace),
    )
    assert outcome.raw_count == 0


def test_ideal_detector_packed_throughput(benchmark, trace, bench_log):
    packed = trace.packed

    def detect():
        return IdealDetector(trace.n_threads).run_packed(packed)

    outcome = benchmark(
        bench_log.timed,
        "components",
        "ideal_packed_path",
        detect,
        events=len(packed),
    )
    assert outcome.raw_count == 0


def test_vector_detector_throughput(benchmark, trace, bench_log):
    def detect():
        return LimitedVectorDetector(
            trace.n_threads, CacheGeometry(32 * 1024)
        ).run(trace)

    outcome = benchmark(
        bench_log.timed,
        "components",
        "vector_object_path",
        detect,
        events=_n_events(trace),
    )
    assert outcome.raw_count == 0


def test_timing_model_throughput(benchmark, trace, bench_log):
    result = benchmark(
        bench_log.timed,
        "components",
        "timing_model",
        estimate_overhead,
        trace,
        events=_n_events(trace),
    )
    assert result.relative_time >= 1.0


def test_log_codec_throughput(benchmark, trace, bench_log):
    outcome = CordDetector(CordConfig(), trace.n_threads).run(trace)
    encoded = outcome.log.encode()

    def roundtrip():
        return OrderLog.decode(encoded)

    decoded = benchmark(
        bench_log.timed, "components", "order_log_decode", roundtrip
    )
    assert len(decoded) == len(outcome.log)


def test_trace_codec_packed_throughput(benchmark, trace, bench_log):
    packed = trace.packed

    def roundtrip():
        return decode_packed_trace(encode_packed_trace(packed))

    restored = benchmark(
        bench_log.timed,
        "components",
        "trace_codec_roundtrip",
        roundtrip,
        events=len(packed),
    )
    assert restored.columns_equal(packed)
    # The encode alone, actually timed (this entry used to report a
    # wall_s of 0.0 because the encode ran outside any timer).
    start = time.perf_counter()
    encoded = encode_packed_trace(packed)
    elapsed = time.perf_counter() - start
    bench_log.record(
        "components",
        "trace_codec_bytes_per_event",
        elapsed,
        events=len(packed),
        extra={"bytes_per_event": round(len(encoded) / len(packed), 2)},
    )


def test_trace_codec_view_throughput(benchmark, trace, bench_log):
    """Zero-copy view construction over a v3 blob: no column copies."""
    packed = trace.packed
    encoded = encode_packed_trace(packed)

    def view():
        return view_packed_trace(encoded)

    restored = benchmark(
        bench_log.timed,
        "components",
        "trace_codec_view",
        view,
        events=len(packed),
    )
    assert restored.zero_copy
    assert restored.columns_equal(packed)


def test_epoch_oracle_throughput(benchmark, trace, bench_log):
    """FastTrack-style epochs vs the full vector oracle (same verdicts)."""
    from repro.detectors import EpochDetector

    def detect():
        return EpochDetector(trace.n_threads).run(trace)

    outcome = benchmark(
        bench_log.timed,
        "components",
        "epoch_object_path",
        detect,
        events=_n_events(trace),
    )
    assert outcome.raw_count == 0


def test_analysis_kernel_timings(trace, bench_log):
    """Per-kernel wall time of the plan builders (PR 3's pre-passes).

    Each product is built once per trace and shared by every sweep
    configuration, so these are per-trace (not per-config) costs.  The
    builders are called directly -- bypassing the per-trace caches --
    to time the actual construction.
    """
    import time as _time

    from repro.cord.coherence import build_coherence_plan
    from repro.trace.kernels import (
        build_line_residual,
        build_segment_plan,
        build_word_residual,
        kernel_backend,
    )

    packed = trace.packed
    probe = CordDetector(CordConfig(), trace.n_threads)
    line_mask = probe._line_mask
    set_shift = probe._set_shift
    set_mask = probe._set_mask
    capacity = probe.snoop.caches[0]._capacity

    def timed(name, fn):
        start = _time.perf_counter()
        result = fn()
        bench_log.record(
            "components",
            name,
            _time.perf_counter() - start,
            events=len(packed),
            extra={"backend": kernel_backend()},
        )
        return result

    seg_plan = timed(
        "kernel_segment_plan",
        lambda: build_segment_plan(packed, line_mask),
    )
    assert seg_plan is not None and seg_plan.n_segments > 0
    residual = timed("kernel_word_residual",
                     lambda: build_word_residual(packed))
    assert residual is not None and len(residual) <= len(packed)
    timed("kernel_line_residual",
          lambda: build_line_residual(packed, line_mask))
    u64 = 0xFFFFFFFFFFFFFFFF
    packed._views.pop(
        ("geom", line_mask & u64, set_shift, set_mask & u64), None
    )
    timed(
        "kernel_geometry_columns",
        lambda: packed.geometry_columns(line_mask, set_shift, set_mask),
    )
    coh = timed(
        "kernel_coherence_plan",
        lambda: build_coherence_plan(
            packed,
            seg_plan,
            line_mask,
            set_shift,
            set_mask,
            capacity,
            probe.config.n_processors,
            probe.thread_proc,
        ),
    )
    assert coh.n_slots > 0


def test_lockset_throughput(benchmark, trace, bench_log):
    from repro.detectors import LocksetDetector

    def detect():
        return LocksetDetector(trace.n_threads).run(trace)

    benchmark(
        bench_log.timed,
        "components",
        "lockset",
        detect,
        events=_n_events(trace),
    )
