"""Component micro-benchmarks: engine, detectors, codec throughput.

Not a paper figure -- these quantify the reproduction's own simulator so
users can size their campaigns (events/second per component).
"""

import pytest

from repro.cord import CordConfig, CordDetector, OrderLog
from repro.detectors import IdealDetector, LimitedVectorDetector
from repro.cachesim import CacheGeometry
from repro.engine import run_program
from repro.timingsim import estimate_overhead
from repro.workloads import WorkloadParams, get_workload

PARAMS = WorkloadParams(scale=0.5)


@pytest.fixture(scope="module")
def trace():
    return run_program(get_workload("fmm").build(PARAMS), seed=1)


def test_engine_throughput(benchmark):
    program = get_workload("fmm").build(PARAMS)
    result = benchmark(run_program, program, 1)
    assert len(result.events) > 500


def test_cord_detector_throughput(benchmark, trace):
    def detect():
        return CordDetector(CordConfig(), trace.n_threads).run(trace)

    outcome = benchmark(detect)
    assert outcome.raw_count == 0  # clean run


def test_ideal_detector_throughput(benchmark, trace):
    def detect():
        return IdealDetector(trace.n_threads).run(trace)

    outcome = benchmark(detect)
    assert outcome.raw_count == 0


def test_vector_detector_throughput(benchmark, trace):
    def detect():
        return LimitedVectorDetector(
            trace.n_threads, CacheGeometry(32 * 1024)
        ).run(trace)

    outcome = benchmark(detect)
    assert outcome.raw_count == 0


def test_timing_model_throughput(benchmark, trace):
    result = benchmark(estimate_overhead, trace)
    assert result.relative_time >= 1.0


def test_log_codec_throughput(benchmark, trace):
    outcome = CordDetector(CordConfig(), trace.n_threads).run(trace)
    encoded = outcome.log.encode()

    def roundtrip():
        return OrderLog.decode(encoded)

    decoded = benchmark(roundtrip)
    assert len(decoded) == len(outcome.log)


def test_epoch_oracle_throughput(benchmark, trace):
    """FastTrack-style epochs vs the full vector oracle (same verdicts)."""
    from repro.detectors import EpochDetector

    def detect():
        return EpochDetector(trace.n_threads).run(trace)

    outcome = benchmark(detect)
    assert outcome.raw_count == 0


def test_lockset_throughput(benchmark, trace):
    from repro.detectors import LocksetDetector

    def detect():
        return LocksetDetector(trace.n_threads).run(trace)

    benchmark(detect)
