"""Ablation benches: quantify the design choices DESIGN.md calls out.

Not paper figures, but each corresponds to a design argument in the
paper's Section 2:

* **Timestamp entries per line** (Figure 2): a single entry erases line
  history on every clock change; two entries recover most of it.
* **Main-memory timestamps** (Figures 6/7): without them, displaced
  synchronization produces false data races -- the one thing CORD must
  never do.
"""

from repro.cord.config import CordConfig
from repro.cord.detector import CordDetector
from repro.detectors.base import DetectionOutcome
from repro.detectors.ideal import IdealDetector
from repro.engine import run_program
from repro.injection import InjectionInterceptor
from repro.workloads import WorkloadParams, get_workload

PARAMS = WorkloadParams(scale=0.6)
APPS = ("fft", "fmm", "ocean")


def injected_traces(app, n=6):
    program = get_workload(app).build(PARAMS)
    traces = []
    for run in range(n):
        interceptor = InjectionInterceptor(run * 5)
        traces.append(
            run_program(program, seed=50 + run, interceptor=interceptor)
        )
    return program, traces


def test_entries_per_line_ablation(benchmark):
    """Detection improves monotonically with history entries per line."""

    def sweep():
        totals = {}
        for entries in (1, 2, 4):
            flagged = 0
            for app in APPS:
                program, traces = injected_traces(app)
                for trace in traces:
                    outcome = CordDetector(
                        CordConfig(entries_per_line=entries),
                        program.n_threads,
                    ).run(trace)
                    flagged += outcome.raw_count
            totals[entries] = flagged
        return totals

    totals = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print("\nraces detected by entries/line:", totals)
    assert totals[1] <= totals[2] <= totals[4]
    # Figure 2's point: a second entry recovers history that a single
    # timestamp erases on every clock change.
    if totals[2]:
        assert totals[2] > totals[1]


def test_memory_timestamp_ablation(benchmark):
    """Without memory timestamps, false positives appear."""

    def sweep():
        false_with = 0
        false_without = 0
        for app in APPS:
            program, traces = injected_traces(app)
            for trace in traces:
                oracle = IdealDetector(program.n_threads).run(trace)
                with_memts = CordDetector(
                    CordConfig(), program.n_threads
                ).run(trace)
                without = CordDetector(
                    CordConfig(use_memory_timestamps=False),
                    program.n_threads,
                ).run(trace)
                false_with += len(with_memts.flagged - oracle.flagged)
                false_without += len(without.flagged - oracle.flagged)
        return false_with, false_without

    false_with, false_without = benchmark.pedantic(
        sweep, rounds=1, iterations=1
    )
    print("\nfalse positives with/without memory timestamps: %d / %d"
          % (false_with, false_without))
    assert false_with == 0          # the paper's guarantee holds
    assert false_without > 0        # and this is the mechanism it needs
