"""Figure 11: execution time with CORD relative to the baseline machine.

Paper: 0.4 % average overhead, 3 % worst case (cholesky, due to
address/timestamp-bus contention from bursts of race checks).  Our
reproduction preserves the shape: near-zero overhead for most apps, the
largest overhead on the synchronization-heavy cholesky analogue, average
well under a few percent.
"""

from repro.experiments import figure11


def test_figure11(benchmark):
    fig = benchmark.pedantic(figure11, rounds=1, iterations=1)
    print()
    print(fig.render())
    average = fig.average[0]
    worst_app = max(fig.rows, key=lambda app: fig.rows[app][0])
    worst = fig.rows[worst_app][0]
    # Average overhead well under a few percent.
    assert 1.0 <= average < 1.02
    # Worst case stays single-digit percent and exceeds the average.
    assert worst < 1.10
    assert worst > average
    # The synchronization-heavy apps pay the most.
    assert worst_app in ("cholesky", "water-n2", "fmm")
