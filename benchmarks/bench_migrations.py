"""Section 2.7.4's migration claim, quantified.

The paper: thread migration advances the migrating thread's clock by D
(to kill false self-races) and "in our experiments, no data races are
missed solely due to clock increments on thread migration".  We re-run
injected traces with an aggressive migration schedule (every thread
bounced mid-run) and compare problem detection against the unmigrated
analysis of the *same* traces.
"""

from repro.cord import CordConfig, CordDetector
from repro.detectors import IdealDetector
from repro.engine import run_program
from repro.injection import InjectionInterceptor
from repro.workloads import WorkloadParams, get_workload

PARAMS = WorkloadParams(scale=0.6)
APPS = ("fft", "ocean", "fmm", "raytrace")


def migration_schedule(trace):
    """Bounce every thread to a different processor mid-run."""
    n = len(trace.events)
    return [
        (n // 4, 0, 1),
        (n // 3, 1, 2),
        (n // 2, 2, 3),
        (2 * n // 3, 3, 0),
        (3 * n // 4, 0, 2),
    ]


def run_comparison():
    plain_detected = 0
    migrated_detected = 0
    manifested = 0
    for app in APPS:
        program = get_workload(app).build(PARAMS)
        for run in range(6):
            interceptor = InjectionInterceptor(run * 5 + 1)
            trace = run_program(
                program, seed=70 + run, interceptor=interceptor
            )
            ideal = IdealDetector(program.n_threads).run(trace)
            if not ideal.problem_detected:
                continue
            manifested += 1
            plain = CordDetector(
                CordConfig(d=16), program.n_threads
            ).run(trace)
            migrated_detector = CordDetector(
                CordConfig(d=16), program.n_threads
            )
            migrated = migrated_detector.run_with_migrations(
                trace, migration_schedule(trace)
            )
            # Soundness under migration (run level).
            if migrated.problem_detected:
                assert ideal.problem_detected
            plain_detected += plain.problem_detected
            migrated_detected += migrated.problem_detected
    return manifested, plain_detected, migrated_detected


def test_migration_rarely_costs_detection(benchmark):
    manifested, plain, migrated = benchmark.pedantic(
        run_comparison, rounds=1, iterations=1
    )
    print()
    print("manifested runs          : %d" % manifested)
    print("problems caught, pinned  : %d" % plain)
    print("problems caught, bounced : %d" % migrated)
    assert manifested >= 8
    # The paper's claim: migration increments cost (almost) nothing --
    # allow at most a small absolute loss under our aggressive schedule.
    assert migrated >= plain - max(2, plain // 5)
