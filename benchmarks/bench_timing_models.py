"""Cross-validation of the two timing models (Figure 11's machinery).

The analytic windowed-queueing model and the event-driven two-phase model
must agree on the *shape* of Figure 11: tiny overheads everywhere, the
synchronization-heavy apps paying the most, the embarrassingly parallel
apps paying the least.
"""

from repro.engine import run_program
from repro.timingsim import estimate_overhead, estimate_overhead_detailed
from repro.workloads import WorkloadParams, all_workloads

PARAMS = WorkloadParams()


def run_both():
    rows = []
    for spec in all_workloads():
        trace = run_program(spec.build(PARAMS), seed=1)
        analytic = estimate_overhead(trace).relative_time
        detailed = estimate_overhead_detailed(trace)
        rows.append(
            (spec.name, analytic, detailed.relative_time,
             detailed.retirement_stalls)
        )
    return rows


def test_timing_models_agree_on_shape(benchmark):
    rows = benchmark.pedantic(run_both, rounds=1, iterations=1)
    print()
    print("%-10s %10s %10s %8s" % ("app", "analytic", "detailed",
                                   "stalls"))
    for name, analytic, detailed, stalls in rows:
        print("%-10s %10.4f %10.4f %8d" % (name, analytic, detailed,
                                           stalls))
    by_name = {row[0]: row for row in rows}
    for _name, analytic, detailed, _stalls in rows:
        assert 1.0 <= analytic < 1.05
        assert 1.0 <= detailed < 1.12
    # Both models: raytrace (embarrassingly parallel) cheaper than
    # cholesky (the paper's sync-heavy worst case).
    assert by_name["raytrace"][1] < by_name["cholesky"][1]
    assert by_name["raytrace"][2] < by_name["cholesky"][2]
    # Averages stay in the sub-few-percent regime in both models.
    mean_analytic = sum(r[1] for r in rows) / len(rows)
    mean_detailed = sum(r[2] for r in rows) / len(rows)
    assert mean_analytic < 1.01
    assert mean_detailed < 1.03
    # The paper's "rare" retirement delays stay rare.
    total_stalls = sum(r[3] for r in rows)
    assert total_stalls < 1000
