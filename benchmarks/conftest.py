"""Shared benchmark fixtures.

The detection figures (10, 12-17) all derive from one injection-campaign
suite over the twelve applications; it is computed once per benchmark
session.  Set ``CORD_BENCH_RUNS`` to change the number of injected runs
per application (default 8; the paper used 20-100 -- raise it for tighter
per-app numbers at proportional cost) and ``CORD_BENCH_JOBS`` (or
``REPRO_JOBS``) to fan the per-application campaigns out over worker
processes.

Besides pytest-benchmark's own stats, the session writes two
machine-readable trajectory files next to this module --
``BENCH_components.json`` (component throughput: wall time, event
counts, events/second) and ``BENCH_sweeps.json`` (end-to-end sweep wall
times and the record-once speedup).  Each session appends (or replaces)
one entry keyed by ``CORD_BENCH_LABEL``, stamped with the date, kernel
backend, and git short sha; the committed entries track how the
simulator's performance moves PR over PR.  The explicit wall-clock
measurement is what makes the files exist even under
``--benchmark-disable`` (the CI smoke mode).
"""

import json
import os
import subprocess
import time
from pathlib import Path

import pytest

from repro.experiments import Suite, SuiteConfig
from repro.resilience.checkpoint import atomic_write_json
from repro.workloads import WorkloadParams

RUNS_PER_APP = int(os.environ.get("CORD_BENCH_RUNS", "8"))
JOBS = int(os.environ.get("CORD_BENCH_JOBS", "0")) or None  # None: REPRO_JOBS

_BENCH_DIR = Path(__file__).resolve().parent
_SCHEMA = 1


@pytest.fixture(scope="session")
def suite():
    """The full 12-application campaign suite (computed once)."""
    config = SuiteConfig(
        runs_per_app=RUNS_PER_APP,
        params=WorkloadParams(),
    )
    instance = Suite(config, jobs=JOBS)
    instance.campaigns()
    return instance


class BenchLog:
    """Collects named measurements, flushed to the trajectory files.

    ``kind`` routes an entry to ``BENCH_components.json`` or
    ``BENCH_sweeps.json``.  Repeated measurements of one name within a
    session (pytest-benchmark rounds) keep the fastest run.
    """

    def __init__(self):
        self._results = {"components": {}, "sweeps": {}}

    def record(self, kind, name, seconds, events=None, extra=None):
        entry = {"wall_s": round(seconds, 6)}
        if events is not None:
            entry["events"] = int(events)
            if seconds > 0:
                entry["events_per_s"] = int(events / seconds)
        if extra:
            entry.update(extra)
        previous = self._results[kind].get(name)
        if previous is None or entry["wall_s"] < previous["wall_s"]:
            self._results[kind][name] = entry

    def timed(self, kind, name, fn, *args, events=None, **kwargs):
        """Run ``fn`` once, recording its wall time (and event count).

        ``events`` may be a number or a callable over the result.
        """
        start = time.perf_counter()
        result = fn(*args, **kwargs)
        elapsed = time.perf_counter() - start
        count = events(result) if callable(events) else events
        self.record(kind, name, elapsed, events=count)
        return result

    def flush(self):
        label = os.environ.get("CORD_BENCH_LABEL", "").strip() or (
            "local-%s" % time.strftime("%Y%m%d")
        )
        commit = _git_short_sha()
        for kind, results in self._results.items():
            if not results:
                continue
            from repro.trace.kernels import kernel_backend

            entry = {
                "label": label,
                "date": time.strftime("%Y-%m-%d"),
                "runs_per_app": RUNS_PER_APP,
                "backend": kernel_backend(),
                "results": results,
            }
            if commit:
                entry["commit"] = commit
            _append_entry(_BENCH_DIR / ("BENCH_%s.json" % kind), entry)


def _git_short_sha():
    """The working tree's short commit sha, or None outside git."""
    try:
        probe = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=_BENCH_DIR,
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    sha = probe.stdout.strip()
    return sha if probe.returncode == 0 and sha else None


def _append_entry(path, entry):
    """Append (or replace, by label) one entry in a trajectory file."""
    payload = {"schema": _SCHEMA, "entries": []}
    if path.exists():
        try:
            loaded = json.loads(path.read_text())
            if loaded.get("schema") == _SCHEMA:
                payload = loaded
        except (ValueError, OSError):
            pass  # unreadable trajectory: start fresh
    payload["entries"] = [
        existing
        for existing in payload["entries"]
        if existing.get("label") != entry["label"]
    ] + [entry]
    # Atomic (tmp -> fsync -> rename): a benchmark session killed
    # mid-flush must not tear the committed trajectory history.
    atomic_write_json(path, payload, indent=2, sort_keys=True)


@pytest.fixture(scope="session", autouse=True)
def announce_analysis_backend():
    """Say once which analysis paths this benchmark session exercises."""
    from repro.cord.fused import fusion_enabled
    from repro.trace.kernels import kernel_backend

    print(
        "\n[repro] analysis kernels: %s; interval-fused sweeps: %s"
        % (kernel_backend(), "on" if fusion_enabled() else "off")
    )


@pytest.fixture(scope="session")
def bench_log():
    log = BenchLog()
    yield log
    log.flush()
