"""Shared benchmark fixtures.

The detection figures (10, 12-17) all derive from one injection-campaign
suite over the twelve applications; it is computed once per benchmark
session.  Set ``CORD_BENCH_RUNS`` to change the number of injected runs
per application (default 8; the paper used 20-100 -- raise it for tighter
per-app numbers at proportional cost) and ``CORD_BENCH_JOBS`` (or
``REPRO_JOBS``) to fan the per-application campaigns out over worker
processes.
"""

import os

import pytest

from repro.experiments import Suite, SuiteConfig
from repro.workloads import WorkloadParams

RUNS_PER_APP = int(os.environ.get("CORD_BENCH_RUNS", "8"))
JOBS = int(os.environ.get("CORD_BENCH_JOBS", "0")) or None  # None: REPRO_JOBS


@pytest.fixture(scope="session")
def suite():
    """The full 12-application campaign suite (computed once)."""
    config = SuiteConfig(
        runs_per_app=RUNS_PER_APP,
        params=WorkloadParams(),
    )
    instance = Suite(config, jobs=JOBS)
    instance.campaigns()
    return instance
