"""Table 1: applications and input sets."""

from repro.experiments import table1


def test_table1(benchmark):
    table = benchmark(table1)
    rendered = table.render()
    print()
    print(rendered)
    assert len(table.rows) == 12
    # Spot-check paper input labels.
    labels = {row[0]: row[1] for row in table.rows}
    assert labels["raytrace"] == "teapot"
    assert labels["cholesky"].startswith("tk23")
    assert labels["volrend"] == "head-sd2"
