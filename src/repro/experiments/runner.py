"""The shared experiment suite: campaigns once, figures many.

A :class:`Suite` lazily runs one injection campaign per workload (with the
full detector suite) and caches the :class:`CampaignResult`; Figures 10 and
12-17 are all views over the same campaign data, exactly as the paper's
per-configuration columns are views over its injection runs.

Campaigns are embarrassingly parallel -- every (workload, config) pair is
an independent deterministic computation -- so :meth:`Suite.campaigns`
fans missing campaigns out over a :mod:`multiprocessing` pool
(``jobs`` argument, or the ``REPRO_JOBS`` environment variable).  Results
are bit-identical regardless of ``jobs``: each campaign derives its seeds
from ``(base_seed, workload)`` alone, and the pool only changes *where* a
campaign runs, never what it computes.

An optional on-disk cache (``cache_dir`` argument, or ``REPRO_CACHE_DIR``)
persists finished campaigns keyed by the full parameter tuple, so
re-running a figure script after an interruption -- or a second script
over the same configuration -- skips straight to the views.
"""

from __future__ import annotations

import hashlib
import multiprocessing
import os
import pickle
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.injection.campaign import (
    CampaignConfig,
    CampaignResult,
    run_campaign,
)
from repro.trace.store import PackedTraceStore
from repro.workloads.base import WorkloadParams
from repro.workloads.registry import all_workloads, get_workload

#: Bump when CampaignResult's pickle layout changes incompatibly; stale
#: cache entries then miss instead of unpickling garbage.
_CACHE_SCHEMA = 1


def default_jobs() -> int:
    """Worker-process count from ``REPRO_JOBS`` (default: 1, serial)."""
    raw = os.environ.get("REPRO_JOBS", "").strip()
    if raw:
        try:
            return max(1, int(raw))
        except ValueError:
            pass
    return 1


def default_cache_dir() -> Optional[Path]:
    """On-disk campaign cache from ``REPRO_CACHE_DIR`` (default: off)."""
    raw = os.environ.get("REPRO_CACHE_DIR", "").strip()
    return Path(raw) if raw else None


@dataclass(frozen=True)
class SuiteConfig:
    """Suite-wide knobs.

    Attributes:
        runs_per_app: injection runs per application.  The paper uses
            20-100 per app; the default here keeps the full 12-app suite
            in benchmark-friendly time while preserving the aggregate
            shapes (averages over all apps rest on 100+ runs).
        base_seed: master seed.
        workloads: subset of application names (default: all twelve).
        params: workload scaling parameters.
    """

    runs_per_app: int = 12
    base_seed: int = 2006
    workloads: Optional[Sequence[str]] = None
    params: WorkloadParams = field(default_factory=WorkloadParams)

    def workload_names(self) -> List[str]:
        if self.workloads is not None:
            return list(self.workloads)
        return [spec.name for spec in all_workloads()]


def trace_namespace(workload: str, params: WorkloadParams) -> str:
    """Trace-store namespace for one (workload, parameters) program.

    Every caller that records traces for a workload program must key
    them this way (workload name plus the full parameter repr), so a
    sweep, a campaign, and a figure script all hit each other's
    recordings -- and a parameter change misses cleanly.
    """
    return "%s/%r" % (workload, params)


#: One unit of pool work: everything a worker needs to rebuild the
#: campaign (must stay picklable for spawn-based platforms).  The last
#: element is the trace-store directory (or None): workers rebuild the
#: store from the path because the store itself holds no state worth
#: shipping.
_CampaignTask = Tuple[str, int, int, WorkloadParams, Optional[str]]


def _run_campaign_task(task: _CampaignTask) -> Tuple[str, CampaignResult]:
    """Pool worker: run one workload's campaign (module-level, picklable)."""
    name, n_runs, base_seed, params, store_dir = task
    spec = get_workload(name)
    result = run_campaign(
        spec.program_factory(params),
        name,
        CampaignConfig(n_runs=n_runs, base_seed=base_seed),
        trace_store=(
            PackedTraceStore(store_dir) if store_dir is not None else None
        ),
        trace_namespace=trace_namespace(name, params),
    )
    return name, result


class Suite:
    """Runs and caches the per-workload injection campaigns.

    Args:
        config: suite configuration.
        jobs: campaign worker processes; ``None`` reads ``REPRO_JOBS``
            (default 1 = serial in-process, no pool spawned).
        cache_dir: directory for pickled campaign results; ``None`` reads
            ``REPRO_CACHE_DIR`` (default: no on-disk cache).
    """

    def __init__(
        self,
        config: Optional[SuiteConfig] = None,
        jobs: Optional[int] = None,
        cache_dir: Optional[os.PathLike] = None,
    ):
        self.config = config or SuiteConfig()
        self.jobs = default_jobs() if jobs is None else max(1, int(jobs))
        self.cache_dir = (
            Path(cache_dir) if cache_dir is not None else default_cache_dir()
        )
        self._campaigns: Dict[str, CampaignResult] = {}

    @property
    def trace_store_dir(self) -> Optional[Path]:
        """Recorded-trace store directory (under the campaign cache)."""
        if self.cache_dir is None:
            return None
        return self.cache_dir / "traces"

    def trace_store(self) -> Optional[PackedTraceStore]:
        """The suite's recorded-trace store, or None (no cache dir)."""
        root = self.trace_store_dir
        return PackedTraceStore(root) if root is not None else None

    # -- on-disk cache -------------------------------------------------------

    def _cache_key(self, workload: str) -> str:
        """Digest over everything that determines a campaign's result."""
        ident = repr((
            _CACHE_SCHEMA,
            workload,
            self.config.runs_per_app,
            self.config.base_seed,
            self.config.params,
        ))
        return hashlib.sha256(ident.encode()).hexdigest()[:16]

    def _cache_path(self, workload: str) -> Optional[Path]:
        if self.cache_dir is None:
            return None
        return self.cache_dir / (
            "campaign-%s-%s.pkl" % (workload, self._cache_key(workload))
        )

    def _cache_load(self, workload: str) -> Optional[CampaignResult]:
        path = self._cache_path(workload)
        if path is None or not path.exists():
            return None
        try:
            with path.open("rb") as fh:
                result = pickle.load(fh)
        except Exception:
            return None  # stale or truncated entry: recompute
        return result if isinstance(result, CampaignResult) else None

    def _cache_store(self, workload: str, result: CampaignResult) -> None:
        path = self._cache_path(workload)
        if path is None:
            return
        path.parent.mkdir(parents=True, exist_ok=True)
        # Write-then-rename so a concurrent reader (or a crash) never
        # sees a half-written pickle.
        tmp = path.with_suffix(".tmp.%d" % os.getpid())
        with tmp.open("wb") as fh:
            pickle.dump(result, fh, protocol=pickle.HIGHEST_PROTOCOL)
        os.replace(tmp, path)

    # -- campaign execution --------------------------------------------------

    def _task(self, workload: str) -> _CampaignTask:
        store_dir = self.trace_store_dir
        return (
            workload,
            self.config.runs_per_app,
            self.config.base_seed,
            self.config.params,
            str(store_dir) if store_dir is not None else None,
        )

    def campaign(self, workload: str) -> CampaignResult:
        """The (cached) campaign for one application."""
        if workload not in self._campaigns:
            cached = self._cache_load(workload)
            if cached is None:
                _, cached = _run_campaign_task(self._task(workload))
                self._cache_store(workload, cached)
            self._campaigns[workload] = cached
        return self._campaigns[workload]

    def campaigns(self) -> Dict[str, CampaignResult]:
        """All campaigns (running any that have not run yet).

        Missing campaigns run on a process pool when ``jobs > 1``; disk
        cache hits never occupy a worker.
        """
        missing = [
            name
            for name in self.config.workload_names()
            if name not in self._campaigns
        ]
        pending: List[str] = []
        for name in missing:
            cached = self._cache_load(name)
            if cached is not None:
                self._campaigns[name] = cached
            else:
                pending.append(name)
        if len(pending) > 1 and self.jobs > 1:
            try:
                context = multiprocessing.get_context("fork")
            except ValueError:  # platforms without fork
                context = multiprocessing.get_context()
            n_workers = min(self.jobs, len(pending))
            with context.Pool(n_workers) as pool:
                finished = pool.map(
                    _run_campaign_task,
                    [self._task(name) for name in pending],
                    chunksize=1,
                )
            for name, result in finished:
                self._campaigns[name] = result
                self._cache_store(name, result)
        else:
            for name in pending:
                self.campaign(name)
        # Canonical workload order, independent of which entries were
        # cache hits: figure tables iterate this dict, and their row
        # order must not depend on cache state.
        ordered = {
            name: self._campaigns[name]
            for name in self.config.workload_names()
            if name in self._campaigns
        }
        for name, result in self._campaigns.items():
            if name not in ordered:
                ordered[name] = result
        return ordered

    # -- cross-app aggregates --------------------------------------------------

    def average_problem_rate(self, detector: str, baseline: str) -> float:
        """Problem-detection rate pooled over all manifested runs."""
        detected = 0
        base = 0
        for campaign in self.campaigns().values():
            detected += campaign.problems_detected(detector)
            base += campaign.problems_detected(baseline)
        return detected / base if base else 0.0

    def average_raw_rate(self, detector: str, baseline: str) -> float:
        """Raw race-detection rate pooled over all runs."""
        detected = 0
        base = 0
        for campaign in self.campaigns().values():
            detected += campaign.races_detected(detector)
            base += campaign.races_detected(baseline)
        return detected / base if base else 0.0
