"""The shared experiment suite: campaigns once, figures many.

A :class:`Suite` lazily runs one injection campaign per workload (with the
full detector suite) and caches the :class:`CampaignResult`; Figures 10 and
12-17 are all views over the same campaign data, exactly as the paper's
per-configuration columns are views over its injection runs.

Campaigns are embarrassingly parallel -- every (workload, config) pair is
an independent deterministic computation -- so :meth:`Suite.campaigns`
fans missing campaigns out over a :mod:`multiprocessing` pool
(``jobs`` argument, or the ``REPRO_JOBS`` environment variable).  Results
are bit-identical regardless of ``jobs``: each campaign derives its seeds
from ``(base_seed, workload)`` alone, and the pool only changes *where* a
campaign runs, never what it computes.  When a trace store already holds
a campaign's recordings, the parent publishes them once over
:mod:`multiprocessing.shared_memory` (:mod:`repro.trace.sharedmem`) and
workers attach zero-copy after verifying each segment's digest, so N
workers replaying one workload share one physical copy of its traces
(``REPRO_NO_SHM=1`` disables publication; every fallback is counted in
:attr:`Suite.warnings`).

An optional on-disk cache (``cache_dir`` argument, or ``REPRO_CACHE_DIR``)
persists finished campaigns keyed by the full parameter tuple, so
re-running a figure script after an interruption -- or a second script
over the same configuration -- skips straight to the views.

Resilience: the fan-out runs under the supervisor
(:mod:`repro.resilience.supervisor`) -- per-task deadlines
(``REPRO_TASK_TIMEOUT``), retries with backoff (``REPRO_MAX_RETRIES``),
and an in-process serial fallback when the pool is poisoned -- and every
cache entry is wrapped in the checksummed frame from
:mod:`repro.trace.store`, so a torn or bit-flipped pickle is detected,
quarantined under ``<cache>/quarantine/``, counted in
:attr:`Suite.warnings`, and recomputed.  Results stay bit-identical no
matter which path (first try, retry, or serial fallback) computed them;
see ``docs/resilience.md``.

Crash consistency: with a cache directory the suite is *checkpointed*
(:mod:`repro.resilience.journal`): every campaign's lifecycle is logged
to a per-run write-ahead journal under ``<cache>/journal/``, all cache
writes are atomic (tmp -> fsync -> rename), SIGTERM/SIGINT drain the
fan-out and raise :class:`~repro.common.errors.InterruptedRunError`
(exit code 71 at the CLI -- "interrupted, resumable"), and a re-run over
the same cache directory resumes to bit-identical results.  Startup
garbage-collects the litter a killed process leaves behind (orphaned
``*.tmp.*`` files, stale journals, oversized quarantines), counted in
:attr:`Suite.warnings`.  Journaling is per-workload here; the serial
sweep path journals at per-run/per-config granularity (see
:func:`repro.injection.campaign.run_campaign`).
"""

from __future__ import annotations

import hashlib
import logging
import os
import pickle
from collections import Counter
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.common.errors import (
    InterruptedRunError,
    SimulationError,
    StoreCorruptError,
)
from repro.injection.campaign import (
    CampaignConfig,
    CampaignResult,
    campaign_run_keys,
    campaign_sizing_seed,
    plan_campaign_runs,
    run_campaign,
)
from repro.resilience.checkpoint import (
    GracefulShutdown,
    atomic_write_bytes,
    canonicalize,
)
from repro.resilience.journal import RunCheckpoint
from repro.resilience.supervisor import RunReport, Supervisor, TaskOutcome
from repro.trace.sharedmem import (
    SharedTraceMap,
    publish_trace,
    sharedmem_available,
    unpublish_trace,
)
from repro.trace.store import (
    PackedTraceStore,
    frame_payload,
    unframe_payload,
)
from repro.workloads.base import WorkloadParams
from repro.workloads.registry import all_workloads, get_workload

logger = logging.getLogger("repro.experiments.runner")

#: Bump when CampaignResult's pickle layout changes incompatibly; stale
#: cache entries then miss instead of unpickling garbage.  2 = entries
#: carry the checksummed store frame.
_CACHE_SCHEMA = 2

#: Unpickle failures that mean version skew (stale code), not damage:
#: the frame already vouched for the bytes.
_STALE_ERRORS = (AttributeError, ImportError, TypeError, ValueError,
                 pickle.UnpicklingError, EOFError, IndexError)


def default_jobs() -> int:
    """Worker-process count from ``REPRO_JOBS`` (default: 1, serial)."""
    raw = os.environ.get("REPRO_JOBS", "").strip()
    if raw:
        try:
            return max(1, int(raw))
        except ValueError:
            pass
    return 1


def default_cache_dir() -> Optional[Path]:
    """On-disk campaign cache from ``REPRO_CACHE_DIR`` (default: off)."""
    raw = os.environ.get("REPRO_CACHE_DIR", "").strip()
    return Path(raw) if raw else None


#: Valid scheduler modes (the ``scheduler`` argument / ``REPRO_SCHED``).
#:
#: ``"auto"``       run-level pipelining when a pool and a cache
#:                  directory are both available, else the serial
#:                  checkpointed path;
#: ``"campaigns"``  the coarse one-task-per-campaign fan-out (PR <= 7
#:                  behavior; the pipeline bench's comparison arm);
#: ``"runs"``       force run-level pipelining (requires a cache
#:                  directory -- the stages meet in the trace store).
SCHEDULER_MODES = ("auto", "campaigns", "runs")


def default_scheduler() -> str:
    """Scheduler mode from ``REPRO_SCHED`` (default: ``"auto"``)."""
    raw = os.environ.get("REPRO_SCHED", "").strip()
    return raw or "auto"


@dataclass(frozen=True)
class SuiteConfig:
    """Suite-wide knobs.

    Attributes:
        runs_per_app: injection runs per application.  The paper uses
            20-100 per app; the default here keeps the full 12-app suite
            in benchmark-friendly time while preserving the aggregate
            shapes (averages over all apps rest on 100+ runs).
        base_seed: master seed.
        workloads: subset of application names (default: all twelve).
        params: workload scaling parameters.
    """

    runs_per_app: int = 12
    base_seed: int = 2006
    workloads: Optional[Sequence[str]] = None
    params: WorkloadParams = field(default_factory=WorkloadParams)

    def workload_names(self) -> List[str]:
        if self.workloads is not None:
            return list(self.workloads)
        return [spec.name for spec in all_workloads()]


def trace_namespace(workload: str, params: WorkloadParams) -> str:
    """Trace-store namespace for one (workload, parameters) program.

    Every caller that records traces for a workload program must key
    them this way (workload name plus the full parameter repr), so a
    sweep, a campaign, and a figure script all hit each other's
    recordings -- and a parameter change misses cleanly.
    """
    return "%s/%r" % (workload, params)


#: One unit of pool work: everything a worker needs to rebuild the
#: campaign (must stay picklable for spawn-based platforms).  The
#: trace-store directory (or None) comes fifth: workers rebuild the
#: store from the path because the store itself holds no state worth
#: shipping.  The last element is the shared-trace publication for this
#: workload -- ``{components: (SharedTraceHandle, extra)}`` or None --
#: a few hundred bytes of handles standing in for the recordings
#: themselves, which stay in one shared physical copy.
_CampaignTask = Tuple[
    str, int, int, WorkloadParams, Optional[str], Optional[Dict]
]


def _run_campaign_task(task: _CampaignTask) -> Tuple[str, CampaignResult]:
    """Pool worker: run one workload's campaign (module-level, picklable)."""
    name, n_runs, base_seed, params, store_dir, handles = task
    spec = get_workload(name)
    result = run_campaign(
        spec.program_factory(params),
        name,
        CampaignConfig(n_runs=n_runs, base_seed=base_seed),
        trace_store=(
            PackedTraceStore(store_dir) if store_dir is not None else None
        ),
        trace_namespace=trace_namespace(name, params),
        shared_traces=SharedTraceMap(handles) if handles else None,
    )
    return name, result


class Suite:
    """Runs and caches the per-workload injection campaigns.

    Args:
        config: suite configuration.
        jobs: campaign worker processes; ``None`` reads ``REPRO_JOBS``
            (default 1 = serial in-process, no pool spawned).
        cache_dir: directory for pickled campaign results; ``None`` reads
            ``REPRO_CACHE_DIR`` (default: no on-disk cache).
        scheduler: fan-out granularity, one of :data:`SCHEDULER_MODES`;
            ``None`` reads ``REPRO_SCHED`` (default ``"auto"``: run-level
            pipelining whenever a pool and a cache directory are both
            available).
    """

    def __init__(
        self,
        config: Optional[SuiteConfig] = None,
        jobs: Optional[int] = None,
        cache_dir: Optional[os.PathLike] = None,
        scheduler: Optional[str] = None,
    ):
        self.config = config or SuiteConfig()
        self.jobs = default_jobs() if jobs is None else max(1, int(jobs))
        self.cache_dir = (
            Path(cache_dir) if cache_dir is not None else default_cache_dir()
        )
        self.scheduler = (
            scheduler if scheduler is not None else default_scheduler()
        )
        if self.scheduler not in SCHEDULER_MODES:
            raise ValueError(
                "unknown scheduler mode %r (expected one of %s)"
                % (self.scheduler, ", ".join(SCHEDULER_MODES))
            )
        self._campaigns: Dict[str, CampaignResult] = {}
        #: Cache-health counters (``corrupt``, ``io_errors``, ``stale``):
        #: every swallowed cache problem is counted here, never silent.
        self.warnings: Counter = Counter()
        #: The supervisor's :class:`RunReport` from the most recent
        #: pooled :meth:`campaigns` call (None when nothing fanned out).
        self.last_report: Optional[RunReport] = None

    @property
    def trace_store_dir(self) -> Optional[Path]:
        """Recorded-trace store directory (under the campaign cache)."""
        if self.cache_dir is None:
            return None
        return self.cache_dir / "traces"

    def trace_store(self) -> Optional[PackedTraceStore]:
        """The suite's recorded-trace store, or None (no cache dir)."""
        root = self.trace_store_dir
        return PackedTraceStore(root) if root is not None else None

    # -- on-disk cache -------------------------------------------------------

    def _cache_key(self, workload: str) -> str:
        """Digest over everything that determines a campaign's result."""
        ident = repr((
            _CACHE_SCHEMA,
            workload,
            self.config.runs_per_app,
            self.config.base_seed,
            self.config.params,
        ))
        return hashlib.sha256(ident.encode()).hexdigest()[:16]

    def _cache_path(self, workload: str) -> Optional[Path]:
        if self.cache_dir is None:
            return None
        return self.cache_dir / (
            "campaign-%s-%s.pkl" % (workload, self._cache_key(workload))
        )

    def _quarantine(self, path: Path, exc: Exception) -> None:
        """Move a corrupt cache entry to ``<cache>/quarantine/`` + reason."""
        qdir = self.cache_dir / "quarantine"
        try:
            qdir.mkdir(parents=True, exist_ok=True)
            os.replace(path, qdir / path.name)
            (qdir / (path.name + ".reason.txt")).write_text(
                "quarantined campaign-cache entry\n"
                "original path: %s\n"
                "reason: %s: %s\n" % (path, type(exc).__name__, exc)
            )
        except OSError as move_exc:
            logger.warning(
                "could not quarantine corrupt cache entry %s: %s",
                path, move_exc,
            )
        logger.warning(
            "quarantined corrupt campaign-cache entry %s: %s", path, exc
        )

    def _cache_load(self, workload: str) -> Optional[CampaignResult]:
        """A cached campaign, or None -- counting every swallowed reason.

        Only the *expected* failure set is caught: unreadable files
        (``OSError``), frame/checksum violations
        (:class:`StoreCorruptError`, quarantined), and version-skewed
        pickles (stale).  Anything else is a real bug and propagates.
        """
        path = self._cache_path(workload)
        if path is None:
            return None
        try:
            raw = path.read_bytes()
        except FileNotFoundError:
            return None
        except OSError as exc:
            self.warnings["io_errors"] += 1
            logger.warning("unreadable cache entry %s: %s", path, exc)
            return None
        try:
            result = pickle.loads(
                unframe_payload(raw, "cache entry %s" % path.name)
            )
        except StoreCorruptError as exc:
            self.warnings["corrupt"] += 1
            self._quarantine(path, exc)
            return None
        except _STALE_ERRORS:
            self.warnings["stale"] += 1
            return None
        if not isinstance(result, CampaignResult):
            self.warnings["corrupt"] += 1
            self._quarantine(
                path,
                StoreCorruptError(
                    "cache entry holds %r, not a CampaignResult"
                    % type(result).__name__
                ),
            )
            return None
        return result

    def _cache_store(self, workload: str, result: CampaignResult) -> None:
        path = self._cache_path(workload)
        if path is None:
            return
        # Atomic (tmp -> fsync -> rename) so a concurrent reader or a
        # killed writer never leaves a half-written pickle; the
        # checksummed frame catches the remaining torn-write windows
        # (power loss after the rename).  Canonicalized so a resumed
        # run -- whose results are partly rebuilt from durable slices --
        # writes bytes identical to an uninterrupted run's.
        payload = frame_payload(
            pickle.dumps(
                canonicalize(result), protocol=pickle.HIGHEST_PROTOCOL
            )
        )
        atomic_write_bytes(path, payload)

    # -- campaign execution --------------------------------------------------

    def _task(
        self, workload: str, handles: Optional[Dict] = None
    ) -> _CampaignTask:
        store_dir = self.trace_store_dir
        return (
            workload,
            self.config.runs_per_app,
            self.config.base_seed,
            self.config.params,
            str(store_dir) if store_dir is not None else None,
            handles or None,
        )

    def _publish_traces(
        self, pending: List[str]
    ) -> Tuple[Dict[str, Dict], List]:
        """Publish every warm recording of the pending workloads.

        One shared-memory segment per recorded run, exported from the
        trace store (see :mod:`repro.trace.sharedmem`); workers then
        attach zero-copy instead of each re-reading the store.  Returns
        the per-workload handle maps plus the live segments the caller
        must release (:func:`unpublish_trace`) once the fan-out ends.
        Strictly best-effort: a cold workload, missing recording, or
        failed publication just leaves the store/record fallback to do
        its job, counted in :attr:`warnings`.
        """
        handles_by_workload: Dict[str, Dict] = {}
        segments: List = []
        store = self.trace_store()
        if store is None or not sharedmem_available():
            return handles_by_workload, segments
        config = CampaignConfig(
            n_runs=self.config.runs_per_app,
            base_seed=self.config.base_seed,
        )
        for name in pending:
            namespace = trace_namespace(name, self.config.params)
            plan = plan_campaign_runs(name, config, store, namespace)
            if plan is None:
                # Cold workload: no sizing value, so nothing recorded.
                continue
            handles: Dict = {}
            for components in plan:
                exported = store.export_run(namespace, components)
                if exported is None:
                    continue
                blob, extra = exported
                try:
                    handle, shm = publish_trace(blob)
                except OSError as exc:
                    self.warnings["shm_publish_failed"] += 1
                    logger.warning(
                        "could not publish trace %s%r to shared memory: "
                        "%s", name, components, exc,
                    )
                    continue
                segments.append(shm)
                handles[components] = (handle, extra)
            if handles:
                handles_by_workload[name] = handles
                self.warnings["shm_published"] += len(handles)
        return handles_by_workload, segments

    def campaign(self, workload: str) -> CampaignResult:
        """The (cached) campaign for one application.

        A cache miss runs through the same checkpointed runner as
        :meth:`campaigns` -- journaled, drain-able, and accounted in
        :attr:`last_report` -- so a single-workload script gets the
        identical crash-consistency story (and, with ``jobs > 1``, the
        run-level pipeline's intra-campaign parallelism).  Without a
        cache directory the campaign runs inline, unjournaled, exactly
        as before.
        """
        if workload not in self._campaigns:
            cached = self._cache_load(workload)
            if cached is not None:
                self._campaigns[workload] = cached
            else:
                self._run_pending([workload], [])
        return self._campaigns[workload]

    def campaigns(self) -> Dict[str, CampaignResult]:
        """All campaigns (running any that have not run yet).

        Missing campaigns run under the supervisor when ``jobs > 1``:
        each task gets a deadline, dead or hung workers are detected and
        retried with backoff, and a poisoned pool falls back to
        in-process serial execution (``self.last_report`` holds the
        per-task outcomes).  Disk cache hits never occupy a worker, and
        results land in ``self._campaigns`` -- and in the on-disk cache
        -- in canonical workload order regardless of completion order,
        retries, or fallbacks, so two identical runs leave identical
        state behind.

        With a cache directory the run is *checkpointed*: campaign
        lifecycles are journaled, SIGTERM/SIGINT (or the chaos
        ``sigterm_drain`` fault) drain the workers, commit every
        finished campaign, flush the journal, and raise
        :class:`InterruptedRunError` -- after which re-running over the
        same cache directory resumes and produces bit-identical caches
        and reports.
        """
        missing = [
            name
            for name in self.config.workload_names()
            if name not in self._campaigns
        ]
        pending: List[str] = []
        cache_hits: List[str] = []
        for name in missing:
            cached = self._cache_load(name)
            if cached is not None:
                self._campaigns[name] = cached
                cache_hits.append(name)
            else:
                pending.append(name)
        if pending:
            self._run_pending(pending, cache_hits)
        # Canonical workload order, independent of which entries were
        # cache hits: figure tables iterate this dict, and their row
        # order must not depend on cache state.
        ordered = {
            name: self._campaigns[name]
            for name in self.config.workload_names()
            if name in self._campaigns
        }
        for name, result in self._campaigns.items():
            if name not in ordered:
                ordered[name] = result
        return ordered

    # -- checkpointed execution ------------------------------------------------

    def _identity(self) -> tuple:
        """Everything that pins this suite's results (journal identity)."""
        return (
            "suite",
            _CACHE_SCHEMA,
            self.config.runs_per_app,
            self.config.base_seed,
            tuple(self.config.workload_names()),
            repr(self.config.params),
        )

    def _open_checkpoint(self) -> Optional[RunCheckpoint]:
        """The suite's run checkpoint, or None without a cache dir.

        Opening also performs the startup housekeeping -- orphaned
        ``*.tmp.*`` collection, stale-journal pruning, and quarantine
        GC for both the campaign cache and the trace store -- whose
        counts land in :attr:`warnings` (``tmp_pruned``,
        ``journals_pruned``, ``quarantine_pruned``, ``resumed``).
        """
        if self.cache_dir is None:
            return None
        quarantine_dirs = [self.cache_dir / "quarantine"]
        store_dir = self.trace_store_dir
        if store_dir is not None:
            quarantine_dirs.append(store_dir / "quarantine")
        ckpt = RunCheckpoint.open(
            self.cache_dir,
            identity=self._identity(),
            kind="suite",
            quarantine_dirs=tuple(quarantine_dirs),
        )
        self.warnings.update(ckpt.stats)
        return ckpt

    def _run_pending(
        self, pending: List[str], cache_hits: List[str]
    ) -> None:
        """Run the campaigns no cache could serve (checkpointed if any).

        Scheduler selection: without a cache directory the run-level
        pipeline has nowhere durable for its stages to meet, so the
        legacy paths apply (campaign pool when several campaigns and a
        pool are available, else inline).  With one, ``"auto"`` picks
        run-level pipelining whenever ``jobs > 1``, ``"runs"`` forces
        it, and ``"campaigns"`` pins the coarse per-campaign fan-out.
        """
        ckpt = self._open_checkpoint()
        if ckpt is None:
            if len(pending) > 1 and self.jobs > 1:
                self._run_pool(pending, cache_hits, None, None)
            else:
                for name in pending:
                    _name, result = _run_campaign_task(self._task(name))
                    self._campaigns[name] = result
                    self._cache_store(name, result)
            return
        pipelined = self.scheduler == "runs" or (
            self.scheduler == "auto" and self.jobs > 1
        )
        try:
            with GracefulShutdown() as shutdown:
                if pipelined:
                    self._run_pipelined(pending, cache_hits, ckpt,
                                        shutdown)
                elif len(pending) > 1 and self.jobs > 1:
                    self._run_pool(pending, cache_hits, ckpt, shutdown)
                else:
                    self._run_serial_checkpointed(pending, ckpt)
            ckpt.finish()
        except InterruptedRunError:
            ckpt.interrupt()
            raise
        finally:
            ckpt.close()

    def _run_pool(
        self,
        pending: List[str],
        cache_hits: List[str],
        ckpt: Optional[RunCheckpoint],
        shutdown: Optional[GracefulShutdown],
    ) -> None:
        """Supervised fan-out over the pending campaigns.

        Journaling here is per-workload: pooled workers cannot safely
        append to the shared journal, so the per-run/per-config
        granularity lives in the serial paths -- but every trace a
        worker records is durable in the trace store, so even a drained
        pool's partial progress speeds the resume.
        """
        tasks = {}
        if ckpt is not None:
            for name in pending:
                tasks[name] = ckpt.task(name)
                tasks[name].scheduled()
        supervisor = Supervisor(
            jobs=min(self.jobs, len(pending)),
            seed=self.config.base_seed,
        )
        published, segments = self._publish_traces(pending)
        try:
            finished, report = supervisor.run(
                _run_campaign_task,
                [
                    (name, self._task(name, published.get(name)))
                    for name in pending
                ],
                should_stop=(
                    (lambda: shutdown.requested)
                    if shutdown is not None else None
                ),
            )
        finally:
            # The parent owns every published segment; release them the
            # moment the fan-out ends (workers have exited -- committed
            # results are plain values, not views into the segments).
            for shm in segments:
                unpublish_trace(shm)
        self.last_report = self._account(report, pending, cache_hits,
                                         ckpt is not None)
        if report.degraded:
            logger.warning("campaign fan-out: %s", report.summary())
        # Deterministic submission order for memoization and cache
        # writes -- never the order tasks happened to finish in
        # (retried and serial-fallback results are cached the same
        # as clean pool results).  On a drain, whatever DID finish is
        # committed before the interruption surfaces, so the resumed
        # run starts from it.
        for name in pending:
            if name not in finished:
                continue
            _task_name, result = finished[name]
            self._campaigns[name] = result
            self._cache_store(name, result)
            if name in tasks:
                tasks[name].committed()
        if report.interrupted:
            raise InterruptedRunError(
                ckpt.run_id if ckpt is not None else None
            )

    def _run_pipelined(
        self,
        pending: List[str],
        cache_hits: List[str],
        ckpt: RunCheckpoint,
        shutdown: Optional[GracefulShutdown],
    ) -> None:
        """Run-level streaming fan-out: one work queue, three stages.

        :func:`~repro.injection.campaign.campaign_run_keys` is the unit
        of scheduling: every campaign decomposes into a sizing task,
        per-run record tasks, and batched analyze tasks
        (:mod:`repro.experiments.pipeline`), all flowing through one
        :meth:`~repro.resilience.supervisor.Supervisor.run_stream`
        queue.  Recording of run N+1 overlaps analysis of run N, and
        the pool load-balances across *runs* rather than campaigns, so
        an imbalanced workload mix no longer idles on its slowest
        campaign.

        Everything stays byte-identical to the serial path: stages meet
        only in the trace store (durable, keyed, atomic), results
        assemble in run-index order, campaign caches are written in
        completion order but with canonicalized content, and the
        journal keeps the workload-level tasks of the pooled path plus
        the per-run ``<workload>/run<N>`` tasks of the serial path.
        Shared-memory publication is deliberately absent here: each
        recording has exactly one analyzing consumer, which maps it
        zero-copy off the store's mmap.
        """
        from repro.experiments import pipeline

        store = self.trace_store()
        store_dir = str(self.trace_store_dir)
        n_runs = self.config.runs_per_app
        config = CampaignConfig(
            n_runs=n_runs, base_seed=self.config.base_seed
        )
        switch_probability = config.switch_probability
        detector_names = [
            spec.name for spec in config.detector_suite()
        ]
        batch_runs = pipeline.default_batch_runs()

        wl_tasks = {}
        for name in pending:
            wl_tasks[name] = ckpt.task(name)
            wl_tasks[name].scheduled()

        #: per-workload streaming state
        states: Dict[str, Dict] = {
            name: {
                "namespace": trace_namespace(name, self.config.params),
                "instances": None,
                "keys": {},            # run_index -> (seed, target)
                "pending_records": set(),
                "buffer": [],          # recorded, awaiting an analyze task
                "batches": 0,
                "results": {},         # run_index -> RunResult
            }
            for name in pending
        }
        run_tasks: Dict[str, object] = {}  # "<wl>/run<N>" -> journal task

        def journal(transition) -> None:
            # Journal transitions are observational here; one that loses
            # the race against a drain request just skips its record
            # (the streaming loop surfaces the drain via should_stop,
            # and stores stay the source of truth on resume).
            try:
                transition()
            except InterruptedRunError:
                pass

        def flush(name: str, submit, force: bool) -> None:
            st = states[name]
            while st["buffer"] and (
                len(st["buffer"]) >= batch_runs or force
            ):
                st["buffer"].sort()
                batch = st["buffer"][:batch_runs]
                del st["buffer"][:batch_runs]
                st["batches"] += 1
                submit(
                    "an:%s#%d" % (name, st["batches"]),
                    pipeline.analyze_payload(
                        name, self.config.params, store_dir,
                        st["namespace"],
                        [(ri,) + st["keys"][ri] for ri in batch],
                        switch_probability, config.check_soundness,
                    ),
                )

        def submit_runs(name: str, instances: int, submit) -> None:
            st = states[name]
            if not instances:
                raise SimulationError(
                    "workload %r has no injectable sync instances"
                    % name
                )
            st["instances"] = instances
            for run_index, seed, target in campaign_run_keys(
                name, config, instances
            ):
                st["keys"][run_index] = (seed, target)
                task_name = "%s/run%d" % (name, run_index)
                run_tasks[task_name] = ckpt.task(task_name)
                journal(run_tasks[task_name].scheduled)
                if store.has_run(
                    st["namespace"], (seed, target, switch_probability)
                ):
                    # Durable from a previous (possibly interrupted)
                    # campaign: straight to the analysis buffer.
                    journal(run_tasks[task_name].recorded)
                    st["buffer"].append(run_index)
                else:
                    st["pending_records"].add(run_index)
                    submit(
                        "rec:" + task_name,
                        pipeline.record_payload(
                            name, self.config.params, store_dir,
                            st["namespace"], run_index, seed, target,
                            switch_probability,
                        ),
                    )
            flush(name, submit, force=not st["pending_records"])

        def finalize(name: str) -> None:
            st = states[name]
            result = CampaignResult(
                workload=name,
                detector_names=list(detector_names),
                sync_instances=st["instances"],
                runs=[st["results"][ri] for ri in range(n_runs)],
            )
            # Streamed commit: campaigns become durable as they finish
            # (run-index order inside, completion order across), so a
            # later drain or failure costs none of this one's work.
            self._campaigns[name] = result
            self._cache_store(name, result)
            wl_tasks[name].committed()

        def on_result(outcome, value, submit) -> None:
            if isinstance(value, dict):
                outcome.timings.update(value.get("timings", {}))
            kind, _, rest = outcome.name.partition(":")
            if kind == "size":
                submit_runs(rest, value["instances"], submit)
            elif kind == "rec":
                name = rest.partition("/")[0]
                st = states[name]
                run_index = value["run_index"]
                journal(run_tasks[rest].recorded)
                st["pending_records"].discard(run_index)
                st["buffer"].append(run_index)
                flush(name, submit, force=not st["pending_records"])
            else:  # "an"
                name = rest.rpartition("#")[0]
                st = states[name]
                for run_index, run in value["results"]:
                    st["results"][run_index] = run
                    run_tasks["%s/run%d" % (name, run_index)].committed()
                if len(st["results"]) == n_runs:
                    finalize(name)

        initial: List[Tuple[str, Dict]] = []
        enqueue = lambda task_name, payload: initial.append(  # noqa: E731
            (task_name, payload)
        )
        for name in pending:
            st = states[name]
            sizing_seed = campaign_sizing_seed(
                name, self.config.base_seed
            )
            instances = store.load_value(
                st["namespace"], ("sync_instances", sizing_seed)
            )
            if instances is not None:
                submit_runs(name, instances, enqueue)
            else:
                enqueue(
                    "size:" + name,
                    pipeline.size_payload(
                        name, self.config.params, store_dir,
                        st["namespace"], sizing_seed,
                    ),
                )

        supervisor = Supervisor(
            jobs=self.jobs, seed=self.config.base_seed
        )
        _results, report = supervisor.run_stream(
            pipeline.run_stage_task,
            initial,
            on_result=on_result,
            should_stop=(
                (lambda: shutdown.requested)
                if shutdown is not None else None
            ),
        )
        self.last_report = self._account_tasks(report, cache_hits)
        if report.degraded:
            logger.warning("run-level fan-out: %s", report.summary())
        if report.interrupted:
            raise InterruptedRunError(ckpt.run_id)

    def _account_tasks(
        self, report: RunReport, cache_hits: List[str]
    ) -> RunReport:
        """Cache-hit accounting for the task-level (pipelined) report.

        Same contract as :meth:`_account`, but the pool outcomes here
        are stage tasks, not workloads: cache-served campaigns are
        prepended as ``path="cache"`` rows (canonical workload order)
        ahead of the stage rows, so every workload of the call is
        visible in the report whether it was computed or replayed.
        """
        if not cache_hits:
            return report
        merged = RunReport(
            pool_poisoned=report.pool_poisoned,
            interrupted=report.interrupted,
        )
        merged.outcomes = [
            TaskOutcome(name, status="ok", attempts=0, path="cache")
            for name in self.config.workload_names()
            if name in cache_hits
        ] + report.outcomes
        return merged

    def _run_serial_checkpointed(
        self, pending: List[str], ckpt: RunCheckpoint
    ) -> None:
        """In-process campaigns with full per-run/per-config journaling."""
        store = self.trace_store()
        for name in pending:
            task = ckpt.task(name)
            task.scheduled()
            if task.was_committed:
                cached = self._cache_load(name)
                if cached is not None:
                    self._campaigns[name] = cached
                    continue
            spec = get_workload(name)
            result = run_campaign(
                spec.program_factory(self.config.params),
                name,
                CampaignConfig(
                    n_runs=self.config.runs_per_app,
                    base_seed=self.config.base_seed,
                ),
                trace_store=store,
                trace_namespace=trace_namespace(name, self.config.params),
                checkpoint=ckpt,
            )
            self._campaigns[name] = result
            self._cache_store(name, result)
            task.committed()

    def _account(
        self,
        report: RunReport,
        pending: List[str],
        cache_hits: List[str],
        checkpointed: bool,
    ) -> RunReport:
        """The fan-out report, with cache hits accounted when journaled.

        A checkpointed resume serves committed campaigns from the cache,
        so its pool runs fewer tasks; folding the hits in (status
        ``"ok"``, path ``"cache"``, zero attempts) keeps the per-task
        accounting complete: every workload of the call appears exactly
        once whether it was computed or replayed, in canonical workload
        order either way.
        """
        if not checkpointed or not cache_hits:
            return report
        merged = RunReport(
            pool_poisoned=report.pool_poisoned,
            interrupted=report.interrupted,
        )
        by_name = {out.name: out for out in report.outcomes}
        for name in cache_hits:
            by_name[name] = TaskOutcome(
                name, status="ok", attempts=0, path="cache"
            )
        merged.outcomes = [
            by_name[name]
            for name in self.config.workload_names()
            if name in by_name
        ]
        return merged

    # -- cross-app aggregates --------------------------------------------------

    def average_problem_rate(self, detector: str, baseline: str) -> float:
        """Problem-detection rate pooled over all manifested runs."""
        detected = 0
        base = 0
        for campaign in self.campaigns().values():
            detected += campaign.problems_detected(detector)
            base += campaign.problems_detected(baseline)
        return detected / base if base else 0.0

    def average_raw_rate(self, detector: str, baseline: str) -> float:
        """Raw race-detection rate pooled over all runs."""
        detected = 0
        base = 0
        for campaign in self.campaigns().values():
            detected += campaign.races_detected(detector)
            base += campaign.races_detected(baseline)
        return detected / base if base else 0.0
