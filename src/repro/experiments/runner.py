"""The shared experiment suite: campaigns once, figures many.

A :class:`Suite` lazily runs one injection campaign per workload (with the
full detector suite) and caches the :class:`CampaignResult`; Figures 10 and
12-17 are all views over the same campaign data, exactly as the paper's
per-configuration columns are views over its injection runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.injection.campaign import (
    CampaignConfig,
    CampaignResult,
    run_campaign,
)
from repro.workloads.base import WorkloadParams
from repro.workloads.registry import all_workloads, get_workload


@dataclass(frozen=True)
class SuiteConfig:
    """Suite-wide knobs.

    Attributes:
        runs_per_app: injection runs per application.  The paper uses
            20-100 per app; the default here keeps the full 12-app suite
            in benchmark-friendly time while preserving the aggregate
            shapes (averages over all apps rest on 100+ runs).
        base_seed: master seed.
        workloads: subset of application names (default: all twelve).
        params: workload scaling parameters.
    """

    runs_per_app: int = 12
    base_seed: int = 2006
    workloads: Optional[Sequence[str]] = None
    params: WorkloadParams = field(default_factory=WorkloadParams)

    def workload_names(self) -> List[str]:
        if self.workloads is not None:
            return list(self.workloads)
        return [spec.name for spec in all_workloads()]


class Suite:
    """Runs and caches the per-workload injection campaigns."""

    def __init__(self, config: Optional[SuiteConfig] = None):
        self.config = config or SuiteConfig()
        self._campaigns: Dict[str, CampaignResult] = {}

    def campaign(self, workload: str) -> CampaignResult:
        """The (cached) campaign for one application."""
        if workload not in self._campaigns:
            spec = get_workload(workload)
            self._campaigns[workload] = run_campaign(
                spec.program_factory(self.config.params),
                workload,
                CampaignConfig(
                    n_runs=self.config.runs_per_app,
                    base_seed=self.config.base_seed,
                ),
            )
        return self._campaigns[workload]

    def campaigns(self) -> Dict[str, CampaignResult]:
        """All campaigns (running any that have not run yet)."""
        for name in self.config.workload_names():
            self.campaign(name)
        return dict(self._campaigns)

    # -- cross-app aggregates --------------------------------------------------

    def average_problem_rate(self, detector: str, baseline: str) -> float:
        """Problem-detection rate pooled over all manifested runs."""
        detected = 0
        base = 0
        for campaign in self.campaigns().values():
            detected += campaign.problems_detected(detector)
            base += campaign.problems_detected(baseline)
        return detected / base if base else 0.0

    def average_raw_rate(self, detector: str, baseline: str) -> float:
        """Raw race-detection rate pooled over all runs."""
        detected = 0
        base = 0
        for campaign in self.campaigns().values():
            detected += campaign.races_detected(detector)
            base += campaign.races_detected(baseline)
        return detected / base if base else 0.0
