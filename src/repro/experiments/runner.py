"""The shared experiment suite: campaigns once, figures many.

A :class:`Suite` lazily runs one injection campaign per workload (with the
full detector suite) and caches the :class:`CampaignResult`; Figures 10 and
12-17 are all views over the same campaign data, exactly as the paper's
per-configuration columns are views over its injection runs.

Campaigns are embarrassingly parallel -- every (workload, config) pair is
an independent deterministic computation -- so :meth:`Suite.campaigns`
fans missing campaigns out over a :mod:`multiprocessing` pool
(``jobs`` argument, or the ``REPRO_JOBS`` environment variable).  Results
are bit-identical regardless of ``jobs``: each campaign derives its seeds
from ``(base_seed, workload)`` alone, and the pool only changes *where* a
campaign runs, never what it computes.  When a trace store already holds
a campaign's recordings, the parent publishes them once over
:mod:`multiprocessing.shared_memory` (:mod:`repro.trace.sharedmem`) and
workers attach zero-copy after verifying each segment's digest, so N
workers replaying one workload share one physical copy of its traces
(``REPRO_NO_SHM=1`` disables publication; every fallback is counted in
:attr:`Suite.warnings`).

An optional on-disk cache (``cache_dir`` argument, or ``REPRO_CACHE_DIR``)
persists finished campaigns keyed by the full parameter tuple, so
re-running a figure script after an interruption -- or a second script
over the same configuration -- skips straight to the views.

Resilience: the fan-out runs under the supervisor
(:mod:`repro.resilience.supervisor`) -- per-task deadlines
(``REPRO_TASK_TIMEOUT``), retries with backoff (``REPRO_MAX_RETRIES``),
and an in-process serial fallback when the pool is poisoned -- and every
cache entry is wrapped in the checksummed frame from
:mod:`repro.trace.store`, so a torn or bit-flipped pickle is detected,
quarantined under ``<cache>/quarantine/``, counted in
:attr:`Suite.warnings`, and recomputed.  Results stay bit-identical no
matter which path (first try, retry, or serial fallback) computed them;
see ``docs/resilience.md``.

Crash consistency: with a cache directory the suite is *checkpointed*
(:mod:`repro.resilience.journal`): every campaign's lifecycle is logged
to a per-run write-ahead journal under ``<cache>/journal/``, all cache
writes are atomic (tmp -> fsync -> rename), SIGTERM/SIGINT drain the
fan-out and raise :class:`~repro.common.errors.InterruptedRunError`
(exit code 71 at the CLI -- "interrupted, resumable"), and a re-run over
the same cache directory resumes to bit-identical results.  Startup
garbage-collects the litter a killed process leaves behind (orphaned
``*.tmp.*`` files, stale journals, oversized quarantines), counted in
:attr:`Suite.warnings`.  Journaling is per-workload here; the serial
sweep path journals at per-run/per-config granularity (see
:func:`repro.injection.campaign.run_campaign`).
"""

from __future__ import annotations

import hashlib
import logging
import os
import pickle
from collections import Counter
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.common.errors import InterruptedRunError, StoreCorruptError
from repro.injection.campaign import (
    CampaignConfig,
    CampaignResult,
    plan_campaign_runs,
    run_campaign,
)
from repro.resilience.checkpoint import (
    GracefulShutdown,
    atomic_write_bytes,
    canonicalize,
)
from repro.resilience.journal import RunCheckpoint
from repro.resilience.supervisor import RunReport, Supervisor, TaskOutcome
from repro.trace.sharedmem import (
    SharedTraceMap,
    publish_trace,
    sharedmem_available,
    unpublish_trace,
)
from repro.trace.store import (
    PackedTraceStore,
    frame_payload,
    unframe_payload,
)
from repro.workloads.base import WorkloadParams
from repro.workloads.registry import all_workloads, get_workload

logger = logging.getLogger("repro.experiments.runner")

#: Bump when CampaignResult's pickle layout changes incompatibly; stale
#: cache entries then miss instead of unpickling garbage.  2 = entries
#: carry the checksummed store frame.
_CACHE_SCHEMA = 2

#: Unpickle failures that mean version skew (stale code), not damage:
#: the frame already vouched for the bytes.
_STALE_ERRORS = (AttributeError, ImportError, TypeError, ValueError,
                 pickle.UnpicklingError, EOFError, IndexError)


def default_jobs() -> int:
    """Worker-process count from ``REPRO_JOBS`` (default: 1, serial)."""
    raw = os.environ.get("REPRO_JOBS", "").strip()
    if raw:
        try:
            return max(1, int(raw))
        except ValueError:
            pass
    return 1


def default_cache_dir() -> Optional[Path]:
    """On-disk campaign cache from ``REPRO_CACHE_DIR`` (default: off)."""
    raw = os.environ.get("REPRO_CACHE_DIR", "").strip()
    return Path(raw) if raw else None


@dataclass(frozen=True)
class SuiteConfig:
    """Suite-wide knobs.

    Attributes:
        runs_per_app: injection runs per application.  The paper uses
            20-100 per app; the default here keeps the full 12-app suite
            in benchmark-friendly time while preserving the aggregate
            shapes (averages over all apps rest on 100+ runs).
        base_seed: master seed.
        workloads: subset of application names (default: all twelve).
        params: workload scaling parameters.
    """

    runs_per_app: int = 12
    base_seed: int = 2006
    workloads: Optional[Sequence[str]] = None
    params: WorkloadParams = field(default_factory=WorkloadParams)

    def workload_names(self) -> List[str]:
        if self.workloads is not None:
            return list(self.workloads)
        return [spec.name for spec in all_workloads()]


def trace_namespace(workload: str, params: WorkloadParams) -> str:
    """Trace-store namespace for one (workload, parameters) program.

    Every caller that records traces for a workload program must key
    them this way (workload name plus the full parameter repr), so a
    sweep, a campaign, and a figure script all hit each other's
    recordings -- and a parameter change misses cleanly.
    """
    return "%s/%r" % (workload, params)


#: One unit of pool work: everything a worker needs to rebuild the
#: campaign (must stay picklable for spawn-based platforms).  The
#: trace-store directory (or None) comes fifth: workers rebuild the
#: store from the path because the store itself holds no state worth
#: shipping.  The last element is the shared-trace publication for this
#: workload -- ``{components: (SharedTraceHandle, extra)}`` or None --
#: a few hundred bytes of handles standing in for the recordings
#: themselves, which stay in one shared physical copy.
_CampaignTask = Tuple[
    str, int, int, WorkloadParams, Optional[str], Optional[Dict]
]


def _run_campaign_task(task: _CampaignTask) -> Tuple[str, CampaignResult]:
    """Pool worker: run one workload's campaign (module-level, picklable)."""
    name, n_runs, base_seed, params, store_dir, handles = task
    spec = get_workload(name)
    result = run_campaign(
        spec.program_factory(params),
        name,
        CampaignConfig(n_runs=n_runs, base_seed=base_seed),
        trace_store=(
            PackedTraceStore(store_dir) if store_dir is not None else None
        ),
        trace_namespace=trace_namespace(name, params),
        shared_traces=SharedTraceMap(handles) if handles else None,
    )
    return name, result


class Suite:
    """Runs and caches the per-workload injection campaigns.

    Args:
        config: suite configuration.
        jobs: campaign worker processes; ``None`` reads ``REPRO_JOBS``
            (default 1 = serial in-process, no pool spawned).
        cache_dir: directory for pickled campaign results; ``None`` reads
            ``REPRO_CACHE_DIR`` (default: no on-disk cache).
    """

    def __init__(
        self,
        config: Optional[SuiteConfig] = None,
        jobs: Optional[int] = None,
        cache_dir: Optional[os.PathLike] = None,
    ):
        self.config = config or SuiteConfig()
        self.jobs = default_jobs() if jobs is None else max(1, int(jobs))
        self.cache_dir = (
            Path(cache_dir) if cache_dir is not None else default_cache_dir()
        )
        self._campaigns: Dict[str, CampaignResult] = {}
        #: Cache-health counters (``corrupt``, ``io_errors``, ``stale``):
        #: every swallowed cache problem is counted here, never silent.
        self.warnings: Counter = Counter()
        #: The supervisor's :class:`RunReport` from the most recent
        #: pooled :meth:`campaigns` call (None when nothing fanned out).
        self.last_report: Optional[RunReport] = None

    @property
    def trace_store_dir(self) -> Optional[Path]:
        """Recorded-trace store directory (under the campaign cache)."""
        if self.cache_dir is None:
            return None
        return self.cache_dir / "traces"

    def trace_store(self) -> Optional[PackedTraceStore]:
        """The suite's recorded-trace store, or None (no cache dir)."""
        root = self.trace_store_dir
        return PackedTraceStore(root) if root is not None else None

    # -- on-disk cache -------------------------------------------------------

    def _cache_key(self, workload: str) -> str:
        """Digest over everything that determines a campaign's result."""
        ident = repr((
            _CACHE_SCHEMA,
            workload,
            self.config.runs_per_app,
            self.config.base_seed,
            self.config.params,
        ))
        return hashlib.sha256(ident.encode()).hexdigest()[:16]

    def _cache_path(self, workload: str) -> Optional[Path]:
        if self.cache_dir is None:
            return None
        return self.cache_dir / (
            "campaign-%s-%s.pkl" % (workload, self._cache_key(workload))
        )

    def _quarantine(self, path: Path, exc: Exception) -> None:
        """Move a corrupt cache entry to ``<cache>/quarantine/`` + reason."""
        qdir = self.cache_dir / "quarantine"
        try:
            qdir.mkdir(parents=True, exist_ok=True)
            os.replace(path, qdir / path.name)
            (qdir / (path.name + ".reason.txt")).write_text(
                "quarantined campaign-cache entry\n"
                "original path: %s\n"
                "reason: %s: %s\n" % (path, type(exc).__name__, exc)
            )
        except OSError as move_exc:
            logger.warning(
                "could not quarantine corrupt cache entry %s: %s",
                path, move_exc,
            )
        logger.warning(
            "quarantined corrupt campaign-cache entry %s: %s", path, exc
        )

    def _cache_load(self, workload: str) -> Optional[CampaignResult]:
        """A cached campaign, or None -- counting every swallowed reason.

        Only the *expected* failure set is caught: unreadable files
        (``OSError``), frame/checksum violations
        (:class:`StoreCorruptError`, quarantined), and version-skewed
        pickles (stale).  Anything else is a real bug and propagates.
        """
        path = self._cache_path(workload)
        if path is None:
            return None
        try:
            raw = path.read_bytes()
        except FileNotFoundError:
            return None
        except OSError as exc:
            self.warnings["io_errors"] += 1
            logger.warning("unreadable cache entry %s: %s", path, exc)
            return None
        try:
            result = pickle.loads(
                unframe_payload(raw, "cache entry %s" % path.name)
            )
        except StoreCorruptError as exc:
            self.warnings["corrupt"] += 1
            self._quarantine(path, exc)
            return None
        except _STALE_ERRORS:
            self.warnings["stale"] += 1
            return None
        if not isinstance(result, CampaignResult):
            self.warnings["corrupt"] += 1
            self._quarantine(
                path,
                StoreCorruptError(
                    "cache entry holds %r, not a CampaignResult"
                    % type(result).__name__
                ),
            )
            return None
        return result

    def _cache_store(self, workload: str, result: CampaignResult) -> None:
        path = self._cache_path(workload)
        if path is None:
            return
        # Atomic (tmp -> fsync -> rename) so a concurrent reader or a
        # killed writer never leaves a half-written pickle; the
        # checksummed frame catches the remaining torn-write windows
        # (power loss after the rename).  Canonicalized so a resumed
        # run -- whose results are partly rebuilt from durable slices --
        # writes bytes identical to an uninterrupted run's.
        payload = frame_payload(
            pickle.dumps(
                canonicalize(result), protocol=pickle.HIGHEST_PROTOCOL
            )
        )
        atomic_write_bytes(path, payload)

    # -- campaign execution --------------------------------------------------

    def _task(
        self, workload: str, handles: Optional[Dict] = None
    ) -> _CampaignTask:
        store_dir = self.trace_store_dir
        return (
            workload,
            self.config.runs_per_app,
            self.config.base_seed,
            self.config.params,
            str(store_dir) if store_dir is not None else None,
            handles or None,
        )

    def _publish_traces(
        self, pending: List[str]
    ) -> Tuple[Dict[str, Dict], List]:
        """Publish every warm recording of the pending workloads.

        One shared-memory segment per recorded run, exported from the
        trace store (see :mod:`repro.trace.sharedmem`); workers then
        attach zero-copy instead of each re-reading the store.  Returns
        the per-workload handle maps plus the live segments the caller
        must release (:func:`unpublish_trace`) once the fan-out ends.
        Strictly best-effort: a cold workload, missing recording, or
        failed publication just leaves the store/record fallback to do
        its job, counted in :attr:`warnings`.
        """
        handles_by_workload: Dict[str, Dict] = {}
        segments: List = []
        store = self.trace_store()
        if store is None or not sharedmem_available():
            return handles_by_workload, segments
        config = CampaignConfig(
            n_runs=self.config.runs_per_app,
            base_seed=self.config.base_seed,
        )
        for name in pending:
            namespace = trace_namespace(name, self.config.params)
            plan = plan_campaign_runs(name, config, store, namespace)
            if plan is None:
                # Cold workload: no sizing value, so nothing recorded.
                continue
            handles: Dict = {}
            for components in plan:
                exported = store.export_run(namespace, components)
                if exported is None:
                    continue
                blob, extra = exported
                try:
                    handle, shm = publish_trace(blob)
                except OSError as exc:
                    self.warnings["shm_publish_failed"] += 1
                    logger.warning(
                        "could not publish trace %s%r to shared memory: "
                        "%s", name, components, exc,
                    )
                    continue
                segments.append(shm)
                handles[components] = (handle, extra)
            if handles:
                handles_by_workload[name] = handles
                self.warnings["shm_published"] += len(handles)
        return handles_by_workload, segments

    def campaign(self, workload: str) -> CampaignResult:
        """The (cached) campaign for one application."""
        if workload not in self._campaigns:
            cached = self._cache_load(workload)
            if cached is None:
                _, cached = _run_campaign_task(self._task(workload))
                self._cache_store(workload, cached)
            self._campaigns[workload] = cached
        return self._campaigns[workload]

    def campaigns(self) -> Dict[str, CampaignResult]:
        """All campaigns (running any that have not run yet).

        Missing campaigns run under the supervisor when ``jobs > 1``:
        each task gets a deadline, dead or hung workers are detected and
        retried with backoff, and a poisoned pool falls back to
        in-process serial execution (``self.last_report`` holds the
        per-task outcomes).  Disk cache hits never occupy a worker, and
        results land in ``self._campaigns`` -- and in the on-disk cache
        -- in canonical workload order regardless of completion order,
        retries, or fallbacks, so two identical runs leave identical
        state behind.

        With a cache directory the run is *checkpointed*: campaign
        lifecycles are journaled, SIGTERM/SIGINT (or the chaos
        ``sigterm_drain`` fault) drain the workers, commit every
        finished campaign, flush the journal, and raise
        :class:`InterruptedRunError` -- after which re-running over the
        same cache directory resumes and produces bit-identical caches
        and reports.
        """
        missing = [
            name
            for name in self.config.workload_names()
            if name not in self._campaigns
        ]
        pending: List[str] = []
        cache_hits: List[str] = []
        for name in missing:
            cached = self._cache_load(name)
            if cached is not None:
                self._campaigns[name] = cached
                cache_hits.append(name)
            else:
                pending.append(name)
        if pending:
            self._run_pending(pending, cache_hits)
        # Canonical workload order, independent of which entries were
        # cache hits: figure tables iterate this dict, and their row
        # order must not depend on cache state.
        ordered = {
            name: self._campaigns[name]
            for name in self.config.workload_names()
            if name in self._campaigns
        }
        for name, result in self._campaigns.items():
            if name not in ordered:
                ordered[name] = result
        return ordered

    # -- checkpointed execution ------------------------------------------------

    def _identity(self) -> tuple:
        """Everything that pins this suite's results (journal identity)."""
        return (
            "suite",
            _CACHE_SCHEMA,
            self.config.runs_per_app,
            self.config.base_seed,
            tuple(self.config.workload_names()),
            repr(self.config.params),
        )

    def _open_checkpoint(self) -> Optional[RunCheckpoint]:
        """The suite's run checkpoint, or None without a cache dir.

        Opening also performs the startup housekeeping -- orphaned
        ``*.tmp.*`` collection, stale-journal pruning, and quarantine
        GC for both the campaign cache and the trace store -- whose
        counts land in :attr:`warnings` (``tmp_pruned``,
        ``journals_pruned``, ``quarantine_pruned``, ``resumed``).
        """
        if self.cache_dir is None:
            return None
        quarantine_dirs = [self.cache_dir / "quarantine"]
        store_dir = self.trace_store_dir
        if store_dir is not None:
            quarantine_dirs.append(store_dir / "quarantine")
        ckpt = RunCheckpoint.open(
            self.cache_dir,
            identity=self._identity(),
            kind="suite",
            quarantine_dirs=tuple(quarantine_dirs),
        )
        self.warnings.update(ckpt.stats)
        return ckpt

    def _run_pending(
        self, pending: List[str], cache_hits: List[str]
    ) -> None:
        """Run the campaigns no cache could serve (checkpointed if any)."""
        ckpt = self._open_checkpoint()
        if ckpt is None:
            if len(pending) > 1 and self.jobs > 1:
                self._run_pool(pending, cache_hits, None, None)
            else:
                for name in pending:
                    self.campaign(name)
            return
        try:
            with GracefulShutdown() as shutdown:
                if len(pending) > 1 and self.jobs > 1:
                    self._run_pool(pending, cache_hits, ckpt, shutdown)
                else:
                    self._run_serial_checkpointed(pending, ckpt)
            ckpt.finish()
        except InterruptedRunError:
            ckpt.interrupt()
            raise
        finally:
            ckpt.close()

    def _run_pool(
        self,
        pending: List[str],
        cache_hits: List[str],
        ckpt: Optional[RunCheckpoint],
        shutdown: Optional[GracefulShutdown],
    ) -> None:
        """Supervised fan-out over the pending campaigns.

        Journaling here is per-workload: pooled workers cannot safely
        append to the shared journal, so the per-run/per-config
        granularity lives in the serial paths -- but every trace a
        worker records is durable in the trace store, so even a drained
        pool's partial progress speeds the resume.
        """
        tasks = {}
        if ckpt is not None:
            for name in pending:
                tasks[name] = ckpt.task(name)
                tasks[name].scheduled()
        supervisor = Supervisor(
            jobs=min(self.jobs, len(pending)),
            seed=self.config.base_seed,
        )
        published, segments = self._publish_traces(pending)
        try:
            finished, report = supervisor.run(
                _run_campaign_task,
                [
                    (name, self._task(name, published.get(name)))
                    for name in pending
                ],
                should_stop=(
                    (lambda: shutdown.requested)
                    if shutdown is not None else None
                ),
            )
        finally:
            # The parent owns every published segment; release them the
            # moment the fan-out ends (workers have exited -- committed
            # results are plain values, not views into the segments).
            for shm in segments:
                unpublish_trace(shm)
        self.last_report = self._account(report, pending, cache_hits,
                                         ckpt is not None)
        if report.degraded:
            logger.warning("campaign fan-out: %s", report.summary())
        # Deterministic submission order for memoization and cache
        # writes -- never the order tasks happened to finish in
        # (retried and serial-fallback results are cached the same
        # as clean pool results).  On a drain, whatever DID finish is
        # committed before the interruption surfaces, so the resumed
        # run starts from it.
        for name in pending:
            if name not in finished:
                continue
            _task_name, result = finished[name]
            self._campaigns[name] = result
            self._cache_store(name, result)
            if name in tasks:
                tasks[name].committed()
        if report.interrupted:
            raise InterruptedRunError(
                ckpt.run_id if ckpt is not None else None
            )

    def _run_serial_checkpointed(
        self, pending: List[str], ckpt: RunCheckpoint
    ) -> None:
        """In-process campaigns with full per-run/per-config journaling."""
        store = self.trace_store()
        for name in pending:
            task = ckpt.task(name)
            task.scheduled()
            if task.was_committed:
                cached = self._cache_load(name)
                if cached is not None:
                    self._campaigns[name] = cached
                    continue
            spec = get_workload(name)
            result = run_campaign(
                spec.program_factory(self.config.params),
                name,
                CampaignConfig(
                    n_runs=self.config.runs_per_app,
                    base_seed=self.config.base_seed,
                ),
                trace_store=store,
                trace_namespace=trace_namespace(name, self.config.params),
                checkpoint=ckpt,
            )
            self._campaigns[name] = result
            self._cache_store(name, result)
            task.committed()

    def _account(
        self,
        report: RunReport,
        pending: List[str],
        cache_hits: List[str],
        checkpointed: bool,
    ) -> RunReport:
        """The fan-out report, with cache hits accounted when journaled.

        A checkpointed resume serves committed campaigns from the cache,
        so its pool runs fewer tasks; folding the hits in (status
        ``"ok"``, path ``"cache"``, zero attempts) keeps the per-task
        accounting complete: every workload of the call appears exactly
        once whether it was computed or replayed, in canonical workload
        order either way.
        """
        if not checkpointed or not cache_hits:
            return report
        merged = RunReport(
            pool_poisoned=report.pool_poisoned,
            interrupted=report.interrupted,
        )
        by_name = {out.name: out for out in report.outcomes}
        for name in cache_hits:
            by_name[name] = TaskOutcome(
                name, status="ok", attempts=0, path="cache"
            )
        merged.outcomes = [
            by_name[name]
            for name in self.config.workload_names()
            if name in by_name
        ]
        return merged

    # -- cross-app aggregates --------------------------------------------------

    def average_problem_rate(self, detector: str, baseline: str) -> float:
        """Problem-detection rate pooled over all manifested runs."""
        detected = 0
        base = 0
        for campaign in self.campaigns().values():
            detected += campaign.problems_detected(detector)
            base += campaign.problems_detected(baseline)
        return detected / base if base else 0.0

    def average_raw_rate(self, detector: str, baseline: str) -> float:
        """Raw race-detection rate pooled over all runs."""
        detected = 0
        base = 0
        for campaign in self.campaigns().values():
            detected += campaign.races_detected(detector)
            base += campaign.races_detected(baseline)
        return detected / base if base else 0.0
