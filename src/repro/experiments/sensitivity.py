"""Parameter-sensitivity sweeps (extending Sections 4.3/4.4).

The paper samples its design space at four points per axis (D ∈ {1, 4,
16, 256}; caches ∈ {L1, L2, Inf}).  These drivers sweep the axes densely
so the knees are visible:

* :func:`d_sensitivity` -- problem/raw detection rate as a function of
  the sync-read window ``D``;
* :func:`cache_sensitivity` -- CORD detection as a function of metadata
  capacity, from severely constrained to unlimited.

Both reuse the injection-campaign machinery with custom detector suites;
the Ideal oracle anchors every sweep point to the same denominators.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.common.texttable import format_percent, format_table
from repro.detectors.base import Detector
from repro.detectors.ideal import IdealDetector
from repro.detectors.registry import DetectorSpec
from repro.injection.campaign import (
    CampaignConfig,
    run_campaign,
    run_campaign_per_config,
)
from repro.experiments.runner import trace_namespace
from repro.trace.store import PackedTraceStore
from repro.workloads.base import WorkloadParams
from repro.workloads.registry import get_workload

#: Default dense sweeps.
D_VALUES = (1, 2, 4, 8, 16, 32, 64, 256)
CACHE_SIZES = (2048, 4096, 8192, 16384, 32768, 65536, None)


@dataclass
class SweepResult:
    """Detection rates along one parameter axis (pooled over apps)."""

    parameter: str
    points: List[object] = field(default_factory=list)
    problem_rates: List[float] = field(default_factory=list)
    raw_rates: List[float] = field(default_factory=list)

    def render(self) -> str:
        rows = [
            [
                str(point),
                format_percent(problem),
                format_percent(raw),
            ]
            for point, problem, raw in zip(
                self.points, self.problem_rates, self.raw_rates
            )
        ]
        return format_table(
            [self.parameter, "problem rate", "raw rate"],
            rows,
            title="Sensitivity sweep over %s (vs Ideal)" % self.parameter,
        )

    def is_monotone_nondecreasing(self, tolerance: float = 1e-9) -> bool:
        rates = self.problem_rates
        return all(
            later >= earlier - tolerance
            for earlier, later in zip(rates, rates[1:])
        )


def _cord_point_spec(name: str, **config_kwargs) -> DetectorSpec:
    def factory(n_threads: int) -> Detector:
        from repro.cord.config import CordConfig
        from repro.cord.detector import CordDetector

        return CordDetector(CordConfig(**config_kwargs), n_threads)

    return DetectorSpec(name, factory)


def _run_sweep(
    parameter: str,
    specs: List[DetectorSpec],
    labels: Sequence[object],
    workloads: Sequence[str],
    runs_per_app: int,
    params: WorkloadParams,
    base_seed: int,
    mode: str = "shared",
    trace_store: Optional[PackedTraceStore] = None,
    checkpoint=None,
) -> SweepResult:
    """Pooled detection rates along one axis, in one of two modes.

    ``"shared"`` (record-once / analyze-many, the default): one campaign
    per application records each injected run exactly once and every
    sweep point analyzes the shared packed trace; with a ``trace_store``
    the recordings also persist across sweeps.  ``"per-config"``: the
    legacy protocol -- every sweep point gets its own campaign (own
    dry-run, own simulations, per-event-object detector passes), the
    cost model the record-once speedup is measured against.  Both modes
    produce bit-identical results (seeds derive only from the base seed
    and workload; the record-once suite asserts equality).

    With a ``checkpoint`` (a
    :class:`~repro.resilience.journal.RunCheckpoint`; shared mode with a
    ``trace_store`` only), every campaign run's lifecycle is journaled
    at per-config granularity, so an interrupted sweep resumes
    bit-identically, skipping completed configurations.
    """
    if mode not in ("shared", "per-config"):
        raise ValueError("unknown sweep mode %r" % mode)
    ideal_spec = DetectorSpec("Ideal", lambda n: IdealDetector(n))
    result = SweepResult(parameter=parameter, points=list(labels))
    problems: Dict[str, int] = {spec.name: 0 for spec in specs}
    races: Dict[str, int] = {spec.name: 0 for spec in specs}
    ideal_problems = 0
    ideal_races = 0
    for app in workloads:
        factory = get_workload(app).program_factory(params)
        if mode == "shared":
            campaign = run_campaign(
                factory,
                app,
                CampaignConfig(
                    n_runs=runs_per_app,
                    base_seed=base_seed,
                    detectors=[ideal_spec] + specs,
                ),
                trace_store=trace_store,
                trace_namespace=trace_namespace(app, params),
                checkpoint=checkpoint,
            )
            ideal_problems += campaign.problems_detected("Ideal")
            ideal_races += campaign.races_detected("Ideal")
            for spec in specs:
                problems[spec.name] += campaign.problems_detected(
                    spec.name
                )
                races[spec.name] += campaign.races_detected(spec.name)
        else:
            for index, spec in enumerate(specs):
                campaign = run_campaign_per_config(
                    factory,
                    app,
                    CampaignConfig(
                        n_runs=runs_per_app,
                        base_seed=base_seed,
                        detectors=[ideal_spec, spec],
                    ),
                )
                if index == 0:
                    # Every per-config campaign recomputes the same
                    # Ideal pass; count the denominators once.
                    ideal_problems += campaign.problems_detected("Ideal")
                    ideal_races += campaign.races_detected("Ideal")
                problems[spec.name] += campaign.problems_detected(
                    spec.name
                )
                races[spec.name] += campaign.races_detected(spec.name)
    for spec in specs:
        result.problem_rates.append(
            problems[spec.name] / ideal_problems if ideal_problems else 0.0
        )
        result.raw_rates.append(
            races[spec.name] / ideal_races if ideal_races else 0.0
        )
    return result


def d_sensitivity(
    workloads: Sequence[str] = ("fft", "ocean", "fmm"),
    d_values: Sequence[int] = D_VALUES,
    runs_per_app: int = 8,
    params: Optional[WorkloadParams] = None,
    base_seed: int = 2006,
    mode: str = "shared",
    trace_store: Optional[PackedTraceStore] = None,
    checkpoint=None,
) -> SweepResult:
    """Detection rate as a function of the sync-read window ``D``."""
    specs = [
        _cord_point_spec("D=%d" % d, d=d) for d in d_values
    ]
    return _run_sweep(
        "D",
        specs,
        list(d_values),
        workloads,
        runs_per_app,
        params or WorkloadParams(),
        base_seed,
        mode=mode,
        trace_store=trace_store,
        checkpoint=checkpoint,
    )


def cache_sensitivity(
    workloads: Sequence[str] = ("fft", "lu", "barnes"),
    cache_sizes: Sequence[Optional[int]] = CACHE_SIZES,
    runs_per_app: int = 8,
    params: Optional[WorkloadParams] = None,
    base_seed: int = 2006,
    mode: str = "shared",
    trace_store: Optional[PackedTraceStore] = None,
    checkpoint=None,
) -> SweepResult:
    """CORD detection as a function of metadata cache capacity."""
    specs = []
    labels = []
    for size in cache_sizes:
        label = "inf" if size is None else "%dB" % size
        labels.append(label)
        specs.append(
            _cord_point_spec("C=%s" % label, cache_size=size)
        )
    return _run_sweep(
        "cache",
        specs,
        labels,
        workloads,
        runs_per_app,
        params or WorkloadParams(),
        base_seed,
        mode=mode,
        trace_store=trace_store,
        checkpoint=checkpoint,
    )
