"""Experiment drivers: one function per table/figure of the paper.

The heavy work -- injection campaigns over all twelve workloads with the
full detector suite -- is shared: :class:`~repro.experiments.runner.Suite`
runs the campaigns once and every detection figure (10, 12-17) is derived
from the same results, while Figure 11 runs the separate timing passes and
the order-recording summary replays clean and injected runs.

Each driver returns a structured result object with a ``render()`` method
that prints the paper's rows/series as an ASCII table; EXPERIMENTS.md
records paper-vs-measured values for each.
"""

from repro.experiments.export import (
    figure_to_csv,
    read_figure_csv,
    write_figure_csv,
)
from repro.experiments.reportgen import generate_report, write_report
from repro.experiments.runner import Suite, SuiteConfig
from repro.experiments.sensitivity import (
    SweepResult,
    cache_sensitivity,
    d_sensitivity,
)
from repro.experiments.tables import table1
from repro.experiments.figures import (
    figure10,
    figure11,
    figure12,
    figure13,
    figure14,
    figure15,
    figure16,
    figure17,
    order_recording_summary,
)

__all__ = [
    "Suite",
    "SuiteConfig",
    "figure10",
    "figure11",
    "figure12",
    "figure13",
    "figure14",
    "figure15",
    "figure16",
    "figure17",
    "SweepResult",
    "cache_sensitivity",
    "d_sensitivity",
    "figure_to_csv",
    "generate_report",
    "order_recording_summary",
    "read_figure_csv",
    "table1",
    "write_figure_csv",
    "write_report",
]
