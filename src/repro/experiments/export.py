"""CSV export for figures and tables.

Figure results render as ASCII for terminals; downstream plotting wants
CSV.  :func:`figure_to_csv` / :func:`write_figure_csv` emit one row per
application plus the ``Average`` row, matching the rendered table.
"""

from __future__ import annotations

import csv
import io
from pathlib import Path
from typing import Union

from repro.experiments.figures import FigureResult


def figure_to_csv(figure: FigureResult) -> str:
    """Serialize one figure's series as CSV text."""
    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    writer.writerow(["app"] + list(figure.series))
    for app, values in figure.rows.items():
        writer.writerow([app] + ["%.6f" % v for v in values])
    writer.writerow(["Average"] + ["%.6f" % v for v in figure.average])
    return buffer.getvalue()


def write_figure_csv(
    figure: FigureResult, path: Union[str, Path]
) -> Path:
    """Write a figure to ``path`` as CSV; returns the path."""
    path = Path(path)
    path.write_text(figure_to_csv(figure), encoding="utf-8")
    return path


def read_figure_csv(path: Union[str, Path]) -> FigureResult:
    """Load a figure back from CSV (round-trips :func:`write_figure_csv`)."""
    path = Path(path)
    rows = list(csv.reader(io.StringIO(path.read_text("utf-8"))))
    header, *body = rows
    series = header[1:]
    figure = FigureResult(
        figure_id=path.stem, title=path.stem, series=series
    )
    for row in body:
        values = [float(v) for v in row[1:]]
        if row[0] == "Average":
            figure.average = values
        else:
            figure.rows[row[0]] = values
    return figure
