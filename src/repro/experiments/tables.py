"""Table 1: applications evaluated and their input sets."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.common.texttable import format_table
from repro.workloads.registry import all_workloads


@dataclass
class Table1:
    """Rows of Table 1: (application, paper input set, analogue summary)."""

    rows: List[Tuple[str, str, str]]

    def render(self) -> str:
        return format_table(
            ["App.", "Input", "Analogue"],
            self.rows,
            title="Table 1. Applications evaluated and their input sets.",
        )


def table1() -> Table1:
    """Reproduce Table 1 from the workload registry."""
    return Table1(
        rows=[
            (spec.name, spec.input_label, spec.description)
            for spec in all_workloads()
        ]
    )
