"""Table 1: applications evaluated and their input sets."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.common.texttable import format_table
from repro.workloads.registry import all_workloads


@dataclass
class Table1:
    """Rows of Table 1: (application, paper input set, analogue summary)."""

    rows: List[Tuple[str, str, str]]
    title: str = "Table 1. Applications evaluated and their input sets."

    def render(self) -> str:
        return format_table(
            ["App.", "Input", "Analogue"],
            self.rows,
            title=self.title,
        )


def table1() -> Table1:
    """Reproduce Table 1 from the workload registry.

    Table 1 is a paper artifact, so it is scoped to the ``splash2``
    family; other families (the server-shaped generators) are listed by
    :func:`workload_table` instead.
    """
    return Table1(
        rows=[
            (spec.name, spec.input_label, spec.description)
            for spec in all_workloads(family="splash2")
        ]
    )


def workload_table(family: str) -> Table1:
    """Registry listing for any family, in Table 1's format."""
    return Table1(
        rows=[
            (spec.name, spec.input_label, spec.description)
            for spec in all_workloads(family)
        ],
        title="Workloads in family %r." % family,
    )
