"""Run-level pipeline stages: the unit of work under the streaming pool.

:meth:`Suite.campaigns` historically scheduled one *whole campaign* per
supervisor task, so a pool was load-balanced across workloads only --
the slowest campaign bounded the wall clock, and inside each campaign
recording and analysis alternated serially per run.  The record-once /
analyze-many split makes the finer decomposition natural: a campaign is
a *sizing* run, ``n_runs`` independent *record* steps, and analysis
passes over the recorded traces, every one a deterministic pure function
of ``(workload, base_seed)``.

This module holds the worker half of that decomposition: one picklable
payload per stage, dispatched by :func:`run_stage_task` inside a
supervisor child (or inline, on the serial fallback rung).  The parent
half -- streaming results, batching analysis, journaling, canonical
assembly -- lives in :meth:`Suite._run_pipelined`.

Stages (``payload["stage"]``):

``"size"``
    Count the workload's dynamic sync instances (store-cached under the
    sizing seed, exactly like :func:`repro.injection.campaign
    ._run_campaign`); returns the count.

``"record"``
    Record one injected run into the trace store
    (:func:`~repro.injection.campaign.record_injected_once`).  Only the
    ``run_index`` travels back -- the trace stays in the store, where
    the analyze stage maps it zero-copy; nothing multi-megabyte is ever
    pickled through the result pipe.

``"analyze"``
    Load a batch of recorded runs and analyze them through the ladder's
    multi-run batch tier
    (:func:`~repro.injection.campaign.analyze_recorded_batch`); returns
    the per-run :class:`~repro.injection.campaign.RunResult` rows.

Every stage is idempotent and keyed into the store, so supervisor
retries, serial fallbacks, and resumed runs recompute nothing that is
already durable -- and recompute *identically* when they must (the
deterministic-seeding contract).  Per-stage wall times come back in the
``"timings"`` entry (``record_s`` / ``analyze_s`` / ``store_io_s``) and
are merged into the task's :class:`~repro.resilience.supervisor
.TaskOutcome` for :meth:`RunReport.profile`.
"""

from __future__ import annotations

import os
import time
from typing import Dict, List, Tuple

from repro.injection.campaign import (
    analyze_recorded_batch,
    record_injected_once,
)
from repro.injection.injector import count_sync_instances
from repro.trace.store import PackedTraceStore
from repro.workloads.base import WorkloadParams
from repro.workloads.registry import get_workload

#: Analysis batch size: how many recorded runs one analyze task covers
#: (``REPRO_BATCH_RUNS``).  Large enough to amortize arena construction
#: and numpy dispatch, small enough that recording stays ahead of
#: analysis and a retried analyze task re-covers little work.
BATCH_RUNS_ENV = "REPRO_BATCH_RUNS"
_DEFAULT_BATCH_RUNS = 4


def default_batch_runs() -> int:
    raw = os.environ.get(BATCH_RUNS_ENV, "").strip()
    if raw:
        try:
            return max(1, int(raw))
        except ValueError:
            pass
    return _DEFAULT_BATCH_RUNS


def size_payload(
    workload: str, params: WorkloadParams, store_dir: str,
    namespace: str, sizing_seed: int,
) -> Dict:
    return {
        "stage": "size", "workload": workload, "params": params,
        "store_dir": store_dir, "namespace": namespace,
        "sizing_seed": sizing_seed,
    }


def record_payload(
    workload: str, params: WorkloadParams, store_dir: str,
    namespace: str, run_index: int, seed: int, target: int,
    switch_probability: float,
) -> Dict:
    return {
        "stage": "record", "workload": workload, "params": params,
        "store_dir": store_dir, "namespace": namespace,
        "run_index": run_index, "seed": seed, "target": target,
        "switch_probability": switch_probability,
    }


def analyze_payload(
    workload: str, params: WorkloadParams, store_dir: str,
    namespace: str, runs: List[Tuple[int, int, int]],
    switch_probability: float, check_soundness: bool,
) -> Dict:
    return {
        "stage": "analyze", "workload": workload, "params": params,
        "store_dir": store_dir, "namespace": namespace,
        "runs": runs, "switch_probability": switch_probability,
        "check_soundness": check_soundness,
    }


def run_stage_task(payload: Dict, store=None, factory=None) -> Dict:
    """Execute one pipeline stage (module-level, picklable).

    Supervisor children call this with just the payload and rebuild the
    store and program factory from it.  In-process callers (the serial
    fallback rung, the campaign service's inline executor) may pass
    their own ``store``/``factory`` so one instance's stats counters
    aggregate across every stage of a job instead of being discarded
    with each per-call store.
    """
    stage = payload["stage"]
    if store is None:
        store = PackedTraceStore(payload["store_dir"])
    namespace = payload["namespace"]
    if factory is None:
        factory = get_workload(payload["workload"]).program_factory(
            payload["params"]
        )

    if stage == "size":
        started = time.monotonic()
        sizing_seed = payload["sizing_seed"]
        sizing_key = ("sync_instances", sizing_seed)
        # Re-probe before simulating: on a supervisor retry (or a
        # concurrent suite over the same store) the value may have
        # landed since this task was scheduled.
        instances = store.load_value(namespace, sizing_key)
        if instances is None:
            instances = count_sync_instances(
                factory(sizing_seed), sizing_seed
            )
            store.store_value(namespace, sizing_key, instances)
        return {
            "instances": instances,
            "timings": {"record_s": time.monotonic() - started},
        }

    if stage == "record":
        started = time.monotonic()
        record_injected_once(
            factory,
            payload["seed"],
            payload["target"],
            run_index=payload["run_index"],
            switch_probability=payload["switch_probability"],
            store=store,
            namespace=namespace,
        )
        return {
            "run_index": payload["run_index"],
            "timings": {"record_s": time.monotonic() - started},
        }

    if stage != "analyze":
        raise ValueError("unknown pipeline stage %r" % (stage,))

    from repro.injection.campaign import CampaignConfig

    detectors = CampaignConfig().detector_suite()
    switch_probability = payload["switch_probability"]
    started = time.monotonic()
    # Store hits, zero-copy off the mmap; a missing or quarantined entry
    # falls back to deterministic re-recording inside.
    recorded = [
        record_injected_once(
            factory, seed, target,
            run_index=run_index,
            switch_probability=switch_probability,
            store=store,
            namespace=namespace,
        )
        for run_index, seed, target in payload["runs"]
    ]
    loaded = time.monotonic()
    results = analyze_recorded_batch(
        recorded,
        detectors,
        check_soundness=payload["check_soundness"],
        store=store,
        namespace=namespace,
        switch_probability=switch_probability,
    )
    finished = time.monotonic()
    return {
        "results": [
            (run.run_index, run)
            for run in results
        ],
        "timings": {
            "store_io_s": loaded - started,
            "analyze_s": finished - loaded,
        },
    }
