"""Drivers for every figure of the paper's evaluation (Section 4).

Each ``figureNN`` function returns a :class:`FigureResult` whose rows are
the per-application series the paper plots, plus the cross-application
average bar.  Detection figures (10, 12-17) derive from a shared
:class:`~repro.experiments.runner.Suite`; Figure 11 runs the timing model;
the order-recording summary (Section 3.3) records and replays runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.common.texttable import format_percent, format_table
from repro.cord.config import CordConfig
from repro.cord.detector import CordDetector
from repro.cord.replay import replay_trace, verify_replay
from repro.engine.executor import run_program
from repro.experiments.runner import Suite
from repro.injection.injector import InjectionInterceptor, ReplayInjection
from repro.timingsim.overhead import estimate_overhead
from repro.timingsim.params import TimingParams
from repro.workloads.base import WorkloadParams
from repro.workloads.registry import all_workloads, get_workload


@dataclass
class FigureResult:
    """One figure: per-app values for each series plus the average."""

    figure_id: str
    title: str
    series: List[str]
    rows: Dict[str, List[float]] = field(default_factory=dict)
    average: List[float] = field(default_factory=list)
    as_percent: bool = True

    def value(self, app: str, series: str) -> float:
        return self.rows[app][self.series.index(series)]

    def average_of(self, series: str) -> float:
        return self.average[self.series.index(series)]

    def render(self) -> str:
        fmt = format_percent if self.as_percent else (lambda v: "%.4f" % v)
        table_rows = [
            [app] + [fmt(v) for v in values]
            for app, values in self.rows.items()
        ]
        table_rows.append(
            ["Average"] + [fmt(v) for v in self.average]
        )
        return format_table(
            ["App"] + list(self.series),
            table_rows,
            title="%s. %s" % (self.figure_id, self.title),
        )


def _mean(values: Sequence[float]) -> float:
    values = list(values)
    return sum(values) / len(values) if values else 0.0


def _detection_figure(
    suite: Suite,
    figure_id: str,
    title: str,
    series: List[str],
    per_app,
    pooled,
) -> FigureResult:
    """Build a detection figure from per-app and pooled rate functions."""
    result = FigureResult(figure_id, title, series)
    for app, campaign in suite.campaigns().items():
        result.rows[app] = [per_app(campaign, s) for s in series]
    result.average = [pooled(s) for s in series]
    return result


# -- Figure 10 -------------------------------------------------------------------


def figure10(suite: Suite) -> FigureResult:
    """Percentage of injections that resulted in at least one data race.

    The paper observes that, surprisingly, many dynamic sync instances are
    redundant -- most injections manifest no race at all.
    """
    result = FigureResult(
        "Figure 10",
        "Injected sync removals that caused at least one data race "
        "(Ideal verdict)",
        ["manifested"],
    )
    total_runs = 0
    total_manifested = 0
    for app, campaign in suite.campaigns().items():
        result.rows[app] = [campaign.manifestation_rate]
        total_runs += len(campaign.runs)
        total_manifested += campaign.n_manifested
    result.average = [total_manifested / total_runs if total_runs else 0.0]
    return result


def figure10_with_intervals(suite: Suite) -> str:
    """Figure 10 rendered with 95 % Wilson intervals per application.

    The paper warns that per-app counts are small ("100 injection runs
    ... only 3 errors" for fmm); the intervals make that visible.
    """
    from repro.experiments.stats import manifestation_estimate

    rows = []
    for app, campaign in suite.campaigns().items():
        rows.append([app, str(manifestation_estimate(campaign))])
    return format_table(
        ["App", "manifested [95% CI]"],
        rows,
        title="Figure 10 with Wilson intervals",
    )


# -- Figure 11 -------------------------------------------------------------------


def figure11(
    params: Optional[WorkloadParams] = None,
    timing: Optional[TimingParams] = None,
    seed: int = 1,
    workloads: Optional[Sequence[str]] = None,
) -> FigureResult:
    """Execution time with CORD relative to the unmodified baseline.

    The paper reports 0.4 % average overhead with a 3 % worst case
    (cholesky, from address/timestamp-bus contention bursts).
    """
    params = params or WorkloadParams()
    names = list(workloads) if workloads else [
        spec.name for spec in all_workloads()
    ]
    result = FigureResult(
        "Figure 11",
        "Execution time with CORD relative to baseline",
        ["relative time"],
        as_percent=False,
    )
    for name in names:
        spec = get_workload(name)
        trace = run_program(spec.build(params), seed=seed)
        overhead = estimate_overhead(trace, timing)
        result.rows[name] = [overhead.relative_time]
    result.average = [_mean(v[0] for v in result.rows.values())]
    return result


# -- Figures 12/13: CORD vs vector clock and vs Ideal ---------------------------


def figure12(suite: Suite) -> FigureResult:
    """Problem detection rate of CORD (D=16) vs vector clocks and Ideal."""
    return _detection_figure(
        suite,
        "Figure 12",
        "CORD problem detection rate",
        ["vs Vector Clock", "vs Ideal"],
        lambda c, s: c.problem_rate(
            "CORD-D16", "L2Cache" if s == "vs Vector Clock" else "Ideal"
        ),
        lambda s: suite.average_problem_rate(
            "CORD-D16", "L2Cache" if s == "vs Vector Clock" else "Ideal"
        ),
    )


def figure13(suite: Suite) -> FigureResult:
    """Raw data race detection rate of CORD (D=16)."""
    return _detection_figure(
        suite,
        "Figure 13",
        "CORD raw data race detection rate",
        ["vs Vector Clock", "vs Ideal"],
        lambda c, s: c.raw_rate(
            "CORD-D16", "L2Cache" if s == "vs Vector Clock" else "Ideal"
        ),
        lambda s: suite.average_raw_rate(
            "CORD-D16", "L2Cache" if s == "vs Vector Clock" else "Ideal"
        ),
    )


# -- Figures 14/15: access-history limits (vector clocks) ------------------------

_CACHE_SERIES = ["InfCache", "L2Cache", "L1Cache"]


def figure14(suite: Suite) -> FigureResult:
    """Problem detection with limited access histories, vs Ideal."""
    return _detection_figure(
        suite,
        "Figure 14",
        "Problem detection rate with limited access histories",
        list(_CACHE_SERIES),
        lambda c, s: c.problem_rate(s, "Ideal"),
        lambda s: suite.average_problem_rate(s, "Ideal"),
    )


def figure15(suite: Suite) -> FigureResult:
    """Raw race detection with limited access histories, vs Ideal."""
    return _detection_figure(
        suite,
        "Figure 15",
        "Raw data race detection rate with limited access histories",
        list(_CACHE_SERIES),
        lambda c, s: c.raw_rate(s, "Ideal"),
        lambda s: suite.average_raw_rate(s, "Ideal"),
    )


# -- Figures 16/17: scalar clock window sweep -------------------------------------

_D_SERIES = ["CORD-D1", "CORD-D4", "CORD-D16", "CORD-D256"]


def figure16(suite: Suite) -> FigureResult:
    """Problem detection of scalar clocks (D sweep), vs vector clocks."""
    return _detection_figure(
        suite,
        "Figure 16",
        "Synchronization problem detection with scalar clocks",
        list(_D_SERIES),
        lambda c, s: c.problem_rate(s, "L2Cache"),
        lambda s: suite.average_problem_rate(s, "L2Cache"),
    )


def figure17(suite: Suite) -> FigureResult:
    """Raw race detection of scalar clocks (D sweep), vs vector clocks."""
    return _detection_figure(
        suite,
        "Figure 17",
        "Raw data race detection with scalar clocks",
        list(_D_SERIES),
        lambda c, s: c.raw_rate(s, "L2Cache"),
        lambda s: suite.average_raw_rate(s, "L2Cache"),
    )


# -- Section 3.3: order recording and replay --------------------------------------


@dataclass
class OrderRecordingRow:
    """Per-app order-recording verification (Section 3.3)."""

    app: str
    log_bytes_clean: int
    clean_replay_ok: bool
    injected_replay_ok: bool
    log_under_1mb: bool
    bytes_per_kilo_instruction: float = 0.0


@dataclass
class OrderRecordingSummary:
    rows: List[OrderRecordingRow]

    @property
    def all_ok(self) -> bool:
        return all(
            r.clean_replay_ok and r.injected_replay_ok and r.log_under_1mb
            for r in self.rows
        )

    def render(self) -> str:
        return format_table(
            ["App", "log bytes", "B/kinstr", "clean replay",
             "injected replay", "< 1MB"],
            [
                [r.app, r.log_bytes_clean,
                 "%.1f" % r.bytes_per_kilo_instruction,
                 "ok" if r.clean_replay_ok else "FAIL",
                 "ok" if r.injected_replay_ok else "FAIL",
                 "yes" if r.log_under_1mb else "NO"]
                for r in self.rows
            ],
            title="Order-recording verification (Section 3.3)",
        )


def order_recording_summary(
    params: Optional[WorkloadParams] = None,
    workloads: Optional[Sequence[str]] = None,
    seed: int = 7,
) -> OrderRecordingSummary:
    """Record and deterministically replay clean and injected runs.

    The paper verifies that "the entire execution can be accurately
    replayed" with and without injections, and that order logs stay under
    1 MB per run.
    """
    params = params or WorkloadParams()
    names = list(workloads) if workloads else [
        spec.name for spec in all_workloads()
    ]
    rows: List[OrderRecordingRow] = []
    for name in names:
        spec = get_workload(name)
        program = spec.build(params)
        # Clean run.
        trace = run_program(program, seed=seed)
        outcome = CordDetector(CordConfig(), program.n_threads).run(trace)
        replayed = replay_trace(program, outcome.log)
        clean_ok = verify_replay(trace, replayed).equivalent
        # Injected run (first injection target that lands and completes).
        injected_ok = True
        for target in range(0, 40, 7):
            interceptor = InjectionInterceptor(target)
            itrace = run_program(
                program, seed=seed + 1, interceptor=interceptor
            )
            if itrace.hung or interceptor.removed is None:
                continue
            ioutcome = CordDetector(
                CordConfig(), program.n_threads
            ).run(itrace)
            ireplay = replay_trace(
                program,
                ioutcome.log,
                ReplayInjection(interceptor.removed),
            )
            injected_ok = verify_replay(itrace, ireplay).equivalent
            break
        rows.append(
            OrderRecordingRow(
                app=name,
                log_bytes_clean=outcome.log_bytes,
                clean_replay_ok=clean_ok,
                injected_replay_ok=injected_ok,
                log_under_1mb=outcome.log_bytes < (1 << 20),
                bytes_per_kilo_instruction=outcome.log.
                bytes_per_kilo_instruction(sum(trace.final_icounts)),
            )
        )
    return OrderRecordingSummary(rows)
