"""Statistical treatment of campaign rates.

The paper notes its per-application counts can be tiny ("we perform 100
injection runs per configuration in fmm, but get only 3 errors") and
leans on cross-application averages.  This module makes that caveat
quantitative: Wilson score intervals for the binomial rates behind
Figures 10, 12, 14, and 16, so per-app bars can be read with error bars
and the aggregate claims checked for significance.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Tuple

from repro.common.errors import ConfigError
from repro.injection.campaign import CampaignResult

#: z for a 95 % interval.
Z95 = 1.959963984540054


@dataclass(frozen=True)
class RateEstimate:
    """A binomial rate with its Wilson score interval."""

    successes: int
    trials: int
    low: float
    high: float

    @property
    def rate(self) -> float:
        return self.successes / self.trials if self.trials else 0.0

    @property
    def width(self) -> float:
        return self.high - self.low

    def overlaps(self, other: "RateEstimate") -> bool:
        return self.low <= other.high and other.low <= self.high

    def __str__(self):
        return "%.1f%% [%.1f%%, %.1f%%] (n=%d)" % (
            100 * self.rate,
            100 * self.low,
            100 * self.high,
            self.trials,
        )


def wilson_interval(
    successes: int, trials: int, z: float = Z95
) -> Tuple[float, float]:
    """Wilson score interval for a binomial proportion.

    Well-behaved at the extremes (0/n and n/n), unlike the normal
    approximation -- important because campaign cells are often 0 or
    100 %.
    """
    if trials < 0 or successes < 0 or successes > trials:
        raise ConfigError(
            "invalid binomial counts %d/%d" % (successes, trials)
        )
    if trials == 0:
        return (0.0, 1.0)
    p = successes / trials
    denom = 1.0 + z * z / trials
    center = (p + z * z / (2 * trials)) / denom
    margin = (
        z
        * math.sqrt(
            p * (1.0 - p) / trials + z * z / (4.0 * trials * trials)
        )
        / denom
    )
    return (max(0.0, center - margin), min(1.0, center + margin))


def estimate(successes: int, trials: int, z: float = Z95) -> RateEstimate:
    low, high = wilson_interval(successes, trials, z)
    return RateEstimate(successes, trials, low, high)


# -- campaign views --------------------------------------------------------------


def manifestation_estimate(campaign: CampaignResult) -> RateEstimate:
    """Figure 10's rate with its interval."""
    return estimate(campaign.n_manifested, len(campaign.runs))


def problem_rate_estimate(
    campaign: CampaignResult, detector: str, baseline: str = "Ideal"
) -> RateEstimate:
    """A detector's problem-detection rate (vs baseline) with interval."""
    return estimate(
        campaign.problems_detected(detector),
        campaign.problems_detected(baseline),
    )


def pooled_problem_estimate(
    campaigns, detector: str, baseline: str = "Ideal"
) -> RateEstimate:
    """Cross-application pooled rate (what the Average bars report)."""
    detected = sum(c.problems_detected(detector) for c in campaigns)
    base = sum(c.problems_detected(baseline) for c in campaigns)
    return estimate(detected, base)
