"""Set-associative LRU metadata cache.

One :class:`MetadataCache` models one processor's on-chip cache capacity
*as seen by the CORD metadata*: the paper's default keeps timestamps in the
private L1+L2 (32 KB L2 dominates), the ``L1Cache`` configuration restricts
them to 8 KB, and the ``InfCache`` configuration removes the limit.  An
infinite cache is expressed as ``CacheGeometry.infinite()``.

Payloads are opaque to the cache (the detectors store
:class:`~repro.meta.linemeta.LineMeta` objects); evicted payloads are
returned to the caller so CORD can fold their timestamps into the main
memory timestamp pair (Section 2.5).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.common.errors import ConfigError


class CacheGeometry:
    """Size/line-size/associativity triple with derived set mapping.

    Args:
        size: total capacity in bytes, or ``None`` for an infinite cache.
        line_size: line size in bytes (power of two).
        associativity: ways per set (ignored for infinite caches).
    """

    def __init__(
        self,
        size: Optional[int],
        line_size: int = 64,
        associativity: int = 8,
    ):
        if line_size <= 0 or line_size & (line_size - 1):
            raise ConfigError(
                "line size must be a positive power of two, got %d"
                % line_size
            )
        self.line_size = line_size
        self.size = size
        self.associativity = associativity
        if size is None:
            self.n_sets = 0
            return
        if size <= 0 or size % line_size:
            raise ConfigError(
                "cache size must be a positive multiple of the line size"
            )
        if associativity <= 0:
            raise ConfigError("associativity must be >= 1")
        n_lines = size // line_size
        if n_lines % associativity:
            raise ConfigError(
                "cache of %d lines not divisible into %d-way sets"
                % (n_lines, associativity)
            )
        self.n_sets = n_lines // associativity
        if self.n_sets & (self.n_sets - 1):
            raise ConfigError(
                "number of sets must be a power of two, got %d" % self.n_sets
            )

    @classmethod
    def infinite(cls, line_size: int = 64) -> "CacheGeometry":
        """Geometry for an unbounded cache (the paper's InfCache/Ideal)."""
        return cls(None, line_size)

    @property
    def is_infinite(self) -> bool:
        return self.size is None

    def set_index(self, line_address: int) -> int:
        """Which set a line maps to."""
        return (line_address // self.line_size) % self.n_sets

    def line_address(self, address: int) -> int:
        """Base address of the line containing ``address``."""
        return address & ~(self.line_size - 1)

    def __repr__(self):
        if self.is_infinite:
            return "CacheGeometry(infinite, line=%d)" % self.line_size
        return "CacheGeometry(%dB, line=%d, %d-way)" % (
            self.size,
            self.line_size,
            self.associativity,
        )


class MetadataCache:
    """One processor's metadata cache: line address -> payload, LRU per set.

    Args:
        geometry: capacity description.
        payload_factory: builds a fresh payload for a newly inserted line.
    """

    def __init__(
        self,
        geometry: CacheGeometry,
        payload_factory: Callable[[], object],
    ):
        self.geometry = geometry
        self._payload_factory = payload_factory
        # One plain dict per set (or a single one for infinite caches);
        # insertion order doubles as LRU order, most-recently-used last
        # (a re-touch is pop+reinsert).  Plain dicts preserve insertion
        # order and are measurably faster than OrderedDict on the hot
        # peek/access path.
        if geometry.is_infinite:
            self._sets: List[dict] = [{}]
            self._set_shift = 0
            self._set_mask = 0
            self._capacity = float("inf")
        else:
            self._sets = [{} for _ in range(geometry.n_sets)]
            # line_size and n_sets are powers of two (validated above),
            # so set selection is a shift+mask instead of div+mod.
            self._set_shift = geometry.line_size.bit_length() - 1
            self._set_mask = geometry.n_sets - 1
            self._capacity = geometry.associativity
        self.evictions = 0
        self.insertions = 0

    def _set_for(self, line_address: int) -> dict:
        return self._sets[
            (line_address >> self._set_shift) & self._set_mask
        ]

    # -- lookups ----------------------------------------------------------

    def peek(self, line_address: int):
        """Payload for a line if present, *without* touching LRU state.

        Used for snooping lookups from other processors, which must not
        perturb the local replacement order.
        """
        return self._sets[
            (line_address >> self._set_shift) & self._set_mask
        ].get(line_address)

    def contains(self, line_address: int) -> bool:
        return line_address in self._set_for(line_address)

    # -- access path --------------------------------------------------------

    def access(
        self, line_address: int
    ) -> Tuple[object, List[Tuple[int, object]]]:
        """Touch ``line_address`` for a local access.

        Returns ``(payload, evicted)`` where ``evicted`` is a list of
        ``(line_address, payload)`` pairs for lines displaced by this
        access.  The line is inserted if absent (possibly evicting the
        set's LRU line) and moved to MRU.
        """
        cache_set = self._sets[
            (line_address >> self._set_shift) & self._set_mask
        ]
        payload = cache_set.get(line_address)
        evicted: List[Tuple[int, object]] = []
        if payload is None:
            payload = self._payload_factory()
            cache_set[line_address] = payload
            self.insertions += 1
            if len(cache_set) > self._capacity:
                victim_address = next(iter(cache_set))
                evicted.append(
                    (victim_address, cache_set.pop(victim_address))
                )
                self.evictions += 1
        else:
            # Move to MRU: pop + reinsert keeps dict order == LRU order.
            cache_set[line_address] = cache_set.pop(line_address)
        return payload, evicted

    def invalidate_data(self, line_address: int) -> None:
        """Mark a present line's *data* invalid (metadata is retained).

        The paper's race checks can still consult timestamps of lines whose
        data another processor has since overwritten; the metadata leaves
        the cache only on replacement.
        """
        payload = self.peek(line_address)
        if payload is not None:
            payload.data_valid = False

    # -- iteration / maintenance ------------------------------------------------

    def lines(self) -> Dict[int, object]:
        """Snapshot of all resident lines (for the cache walker and tests)."""
        snapshot: Dict[int, object] = {}
        for cache_set in self._sets:
            snapshot.update(cache_set)
        return snapshot

    def drop(self, line_address: int):
        """Remove a line outright, returning its payload (walker evictions)."""
        cache_set = self._set_for(line_address)
        payload = cache_set.pop(line_address, None)
        if payload is not None:
            self.evictions += 1
        return payload

    def __len__(self):
        return sum(len(s) for s in self._sets)
