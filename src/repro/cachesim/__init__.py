"""Set-associative metadata caches and the snooping view.

CORD keeps access histories *only for lines present in the local processor's
caches* (Section 2.3); which lines those are -- and therefore which races
are detectable -- is decided by an ordinary set-associative LRU cache.  This
package models exactly that: per-processor caches keyed by line address
holding opaque per-line metadata payloads, plus a :class:`SnoopDomain` that
groups the caches of all processors for bus-snooping lookups.

The *data values* of lines are irrelevant here (the functional engine owns
values); what matters is presence, eviction order, and data validity
(a remote write invalidates local copies, so the next local access is a
miss that triggers a race-check broadcast).
"""

from repro.cachesim.cache import CacheGeometry, MetadataCache
from repro.cachesim.snoop import SnoopDomain

__all__ = ["CacheGeometry", "MetadataCache", "SnoopDomain"]
