"""The snooping view: all processors' metadata caches on one bus.

CORD's race checks are bus broadcasts: every other processor's cache
examines its copy of the line and answers with conflicting timestamps
(Section 2.7.2).  :class:`SnoopDomain` bundles the per-processor caches and
implements that broadcast as an iteration over remote caches.
"""

from __future__ import annotations

from typing import Callable, Iterator, List, Tuple

from repro.cachesim.cache import CacheGeometry, MetadataCache


class SnoopDomain:
    """The set of per-processor metadata caches sharing a snooping bus.

    Args:
        n_processors: number of processors (the paper simulates 4).
        geometry: per-processor cache geometry.
        payload_factory: per-line payload constructor.
    """

    def __init__(
        self,
        n_processors: int,
        geometry: CacheGeometry,
        payload_factory: Callable[[], object],
    ):
        if n_processors < 1:
            raise ValueError("need at least one processor")
        self.geometry = geometry
        self.caches: List[MetadataCache] = [
            MetadataCache(geometry, payload_factory)
            for _ in range(n_processors)
        ]

    @property
    def n_processors(self) -> int:
        return len(self.caches)

    def cache_of(self, processor: int) -> MetadataCache:
        return self.caches[processor]

    def snoop(
        self, requester: int, line_address: int
    ) -> Iterator[Tuple[int, object]]:
        """Yield ``(processor, payload)`` for every *remote* copy of a line.

        Remote means every processor other than ``requester``; lookups use
        :meth:`MetadataCache.peek` so snoops do not disturb LRU state,
        matching hardware (snoop hits do not refresh replacement info).
        """
        for processor, cache in enumerate(self.caches):
            if processor == requester:
                continue
            payload = cache.peek(line_address)
            if payload is not None:
                yield processor, payload

    def invalidate_remote(self, requester: int, line_address: int) -> None:
        """Invalidate the *data* of every remote copy (a write upgrade)."""
        for processor, cache in enumerate(self.caches):
            if processor != requester:
                cache.invalidate_data(line_address)

    def total_evictions(self) -> int:
        return sum(cache.evictions for cache in self.caches)
