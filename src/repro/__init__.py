"""Reproduction of *CORD: Cost-effective Order-Recording and Data race
detection* (Milos Prvulovic, HPCA-12, 2006).

The package implements the paper's hardware mechanism and the full
evaluation stack around it:

* the CORD detector itself -- scalar logical clocks with the sync-read
  window ``D``, two-timestamp per-cache-line access histories with
  per-word read/write bits, check-filter bits, the main-memory timestamp
  pair, order recording, and deterministic replay (:mod:`repro.cord`);
* comparison detectors -- the Ideal vector-clock oracle and the
  InfCache/L2Cache/L1Cache limited-history vector configurations
  (:mod:`repro.detectors`);
* the simulated testbed -- a functional multithreaded execution engine
  with seeded interleaving, labeled synchronization lowering, twelve
  Splash-2 workload analogues, the Section 3.4 fault injector, and an
  approximate CMP timing model for the overhead experiment
  (:mod:`repro.engine`, :mod:`repro.workloads`, :mod:`repro.injection`,
  :mod:`repro.timingsim`);
* experiment drivers reproducing every table and figure of the paper's
  evaluation (:mod:`repro.experiments`).

Quickstart::

    from repro import (
        CordConfig, CordDetector, run_program, get_workload,
        WorkloadParams, replay_trace, verify_replay,
    )

    program = get_workload("raytrace").build(WorkloadParams())
    trace = run_program(program, seed=42)
    outcome = CordDetector(CordConfig(d=16), program.n_threads).run(trace)
    print("data races:", outcome.raw_count,
          "order log bytes:", outcome.log_bytes)
    replayed = replay_trace(program, outcome.log)
    assert verify_replay(trace, replayed).equivalent
"""

from repro.common.errors import (
    ConfigError,
    CordError,
    DeadlockError,
    LogFormatError,
    ReplayDivergenceError,
    SimulationError,
)
from repro.cord import (
    CordConfig,
    CordDetector,
    CordOutcome,
    OrderLog,
    replay_trace,
    verify_replay,
)
from repro.detectors import (
    DetectionOutcome,
    IdealDetector,
    LimitedVectorDetector,
    standard_suite,
)
from repro.engine import run_program
from repro.injection import (
    CampaignConfig,
    InjectionInterceptor,
    ReplayInjection,
    run_campaign,
)
from repro.program import AddressSpace, Program
from repro.timingsim import TimingParams, estimate_overhead
from repro.trace import Trace, compute_stats
from repro.workloads import (
    WorkloadParams,
    all_workloads,
    get_workload,
    workload_names,
)

__version__ = "1.0.0"

__all__ = [
    "AddressSpace",
    "CampaignConfig",
    "ConfigError",
    "CordConfig",
    "CordDetector",
    "CordError",
    "CordOutcome",
    "DeadlockError",
    "DetectionOutcome",
    "IdealDetector",
    "InjectionInterceptor",
    "LimitedVectorDetector",
    "LogFormatError",
    "OrderLog",
    "Program",
    "ReplayDivergenceError",
    "ReplayInjection",
    "SimulationError",
    "TimingParams",
    "Trace",
    "WorkloadParams",
    "all_workloads",
    "compute_stats",
    "estimate_overhead",
    "get_workload",
    "replay_trace",
    "run_campaign",
    "run_program",
    "standard_suite",
    "verify_replay",
    "workload_names",
]
