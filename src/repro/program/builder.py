"""The :class:`Program` container: thread bodies plus an address space.

A *thread body* is a Python generator function ``body(tid)`` that yields
:class:`~repro.program.ops.Op` objects.  A :class:`Program` binds one body
per thread to the shared :class:`~repro.program.address_space.AddressSpace`
the bodies allocated from.  Programs are *restartable*: instantiating the
generators again re-creates identical behavior given identical read values,
which is what makes recording and replaying the same program meaningful.
"""

from __future__ import annotations

from typing import Callable, Generator, List, Optional, Sequence

from repro.common.errors import ConfigError
from repro.program.address_space import AddressSpace
from repro.program.ops import Op

#: A thread body: called with the thread id, yields ops, receives read
#: values back through ``send``.
ThreadBody = Callable[[int], Generator[Op, Optional[int], None]]


class Program:
    """An executable multi-threaded program.

    Args:
        bodies: one generator function per thread, index = thread id.
        address_space: the space the bodies allocated their variables from.
        name: diagnostic name (workload name, typically).
    """

    def __init__(
        self,
        bodies: Sequence[ThreadBody],
        address_space: AddressSpace,
        name: str = "program",
    ):
        if not bodies:
            raise ConfigError("a program needs at least one thread body")
        self.bodies: List[ThreadBody] = list(bodies)
        self.address_space = address_space
        self.name = name

    @property
    def n_threads(self) -> int:
        return len(self.bodies)

    def instantiate(self) -> List[Generator[Op, Optional[int], None]]:
        """Create fresh generators for all threads (one execution's worth)."""
        return [body(tid) for tid, body in enumerate(self.bodies)]

    def __repr__(self):
        return "Program(name=%r, n_threads=%d)" % (self.name, self.n_threads)
