"""Thread-program intermediate representation.

Workloads in this reproduction are written as Python generator functions
(one per thread) that *yield* operations -- memory reads and writes, lock
and flag primitives, and compute delays -- to the execution engine, which
resumes the generator with the result (for reads).  This mirrors an
execution-driven simulator: control flow can depend on values read from
shared memory, which is essential for lock-protected task queues and for
the barrier implementation whose misbehavior under fault injection the
paper studies.

* :mod:`repro.program.ops` -- the operation vocabulary.
* :mod:`repro.program.address_space` -- shared-address-space allocator.
* :mod:`repro.program.builder` -- the :class:`Program` container binding
  thread generator functions to an address space.
"""

from repro.program.address_space import AddressSpace, Segment
from repro.program.builder import Program, ThreadBody
from repro.program.ops import (
    ComputeOp,
    FlagSetOp,
    FlagWaitOp,
    LockOp,
    Op,
    ReadOp,
    UnlockOp,
    WriteOp,
)

__all__ = [
    "AddressSpace",
    "ComputeOp",
    "FlagSetOp",
    "FlagWaitOp",
    "LockOp",
    "Op",
    "Program",
    "ReadOp",
    "Segment",
    "ThreadBody",
    "UnlockOp",
    "WriteOp",
]
