"""Operations that thread programs yield to the execution engine.

The vocabulary is deliberately small -- it is the set of things the paper's
evaluation needs:

* :class:`ReadOp` / :class:`WriteOp` -- ordinary shared-memory data accesses.
* :class:`LockOp` / :class:`UnlockOp` -- mutex primitives; the engine lowers
  an acquire to a labeled synchronization read followed by a synchronization
  write of the mutex word (test-and-set), and a release to a synchronization
  write, matching Figure 1 of the paper.
* :class:`FlagWaitOp` / :class:`FlagSetOp` -- flag (condition-variable style)
  synchronization; a successful wait is lowered to one synchronization read
  of the flag word, a set to one synchronization write.
* :class:`ComputeOp` -- local computation; consumes instruction slots (and
  cycles in the timing model) but touches no shared memory.

Every op names shared locations by *byte address*, obtained from an
:class:`~repro.program.address_space.AddressSpace`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.types import WORD_SIZE


class Op:
    """Base class for all program operations."""

    __slots__ = ()


def _check_word_address(address: int) -> None:
    if address < 0 or address % WORD_SIZE:
        raise ValueError(
            "operand address %#x is not a non-negative word address"
            % address
        )


@dataclass(frozen=True)
class ReadOp(Op):
    """Read the word at ``address``; the engine sends back its value."""

    address: int

    def __post_init__(self):
        _check_word_address(self.address)


@dataclass(frozen=True)
class WriteOp(Op):
    """Write ``value`` to the word at ``address``."""

    address: int
    value: int = 0

    def __post_init__(self):
        _check_word_address(self.address)


@dataclass(frozen=True)
class LockOp(Op):
    """Acquire the mutex whose word lives at ``address``.

    The issuing thread blocks until the mutex is free.  The engine emits the
    acquire as a synchronization read followed by a synchronization write of
    the mutex word (only the *successful* test-and-set is traced; failed
    spin iterations while blocked are not, as is conventional in
    race-detection modeling).
    """

    address: int

    def __post_init__(self):
        _check_word_address(self.address)


@dataclass(frozen=True)
class UnlockOp(Op):
    """Release the mutex at ``address`` (one synchronization write)."""

    address: int

    def __post_init__(self):
        _check_word_address(self.address)


@dataclass(frozen=True)
class FlagWaitOp(Op):
    """Block until the flag word at ``address`` holds a value >= ``at_least``.

    Lowered to a single synchronization read (the read that observes the
    satisfying value).  Flags are monotonically increasing counters in this
    library, which supports both one-shot event flags (wait for 1) and
    sense-free reusable barrier episodes (wait for episode ``k``).
    """

    address: int
    at_least: int = 1

    def __post_init__(self):
        _check_word_address(self.address)


@dataclass(frozen=True)
class FlagSetOp(Op):
    """Set the flag word at ``address`` to ``value`` (synchronization write).

    ``value`` must not decrease the flag; waiting threads whose threshold is
    now met become runnable.
    """

    address: int
    value: int = 1

    def __post_init__(self):
        _check_word_address(self.address)


@dataclass(frozen=True)
class ComputeOp(Op):
    """Perform ``amount`` units of local computation (no shared accesses)."""

    amount: int = 1

    def __post_init__(self):
        if self.amount < 1:
            raise ValueError(
                "compute amount must be >= 1, got %d" % self.amount
            )


#: Ops that the engine lowers to labeled synchronization accesses.
SYNC_OPS = (LockOp, UnlockOp, FlagWaitOp, FlagSetOp)
