"""Shared-address-space layout for workloads.

Workload generators allocate named variables and arrays from an
:class:`AddressSpace`.  The allocator distinguishes two segments:

* ``sync`` -- synchronization variables (mutex words, flag words).  Keeping
  them in a dedicated segment mirrors real synchronization libraries (and
  lets tests assert that no workload ever issues a *data* access to a sync
  word or vice versa).
* ``data`` -- ordinary shared data.

Allocations are word-granular.  ``align_to_line`` padding lets workloads
decide whether distinct variables share a cache line -- false sharing of
metadata is part of what CORD's per-word access bits are for, so some
workloads deliberately co-locate variables.
"""

from __future__ import annotations

import enum
from typing import Dict, List

from repro.common.errors import ConfigError
from repro.common.types import WORD_SIZE, Address

#: Default cache-line size, matching the paper's 64-byte lines.
DEFAULT_LINE_SIZE = 64


class Segment(enum.Enum):
    """Which region of the shared address space an allocation lives in."""

    DATA = "data"
    SYNC = "sync"


#: Base addresses give each segment disjoint, easily-recognized ranges.
_SEGMENT_BASES = {
    Segment.DATA: 0x0010_0000,
    Segment.SYNC: 0x0800_0000,
}


class AddressSpace:
    """Word-granular bump allocator over disjoint data and sync segments.

    Args:
        line_size: cache line size in bytes (power of two, multiple of the
            word size).  Used for line-alignment requests.
    """

    def __init__(self, line_size: int = DEFAULT_LINE_SIZE):
        if line_size <= 0 or line_size % WORD_SIZE:
            raise ConfigError(
                "line size must be a positive multiple of %d, got %d"
                % (WORD_SIZE, line_size)
            )
        if line_size & (line_size - 1):
            raise ConfigError(
                "line size must be a power of two, got %d" % line_size
            )
        self.line_size = line_size
        self._next: Dict[Segment, Address] = dict(_SEGMENT_BASES)
        self._names: Dict[Address, str] = {}

    # -- allocation ---------------------------------------------------------

    def alloc(
        self,
        name: str,
        words: int = 1,
        segment: Segment = Segment.DATA,
        align_to_line: bool = False,
    ) -> Address:
        """Allocate ``words`` consecutive words; return the base address.

        Args:
            name: diagnostic name recorded for the base address.
            words: number of words (>= 1).
            segment: data or sync segment.
            align_to_line: round the base up to a cache-line boundary, so
                the allocation does not share a line with earlier ones.
        """
        if words < 1:
            raise ConfigError("allocation must be >= 1 word, got %d" % words)
        base = self._next[segment]
        if align_to_line and base % self.line_size:
            base += self.line_size - (base % self.line_size)
        self._next[segment] = base + words * WORD_SIZE
        self._names[base] = name
        return base

    def alloc_array(
        self,
        name: str,
        words: int,
        segment: Segment = Segment.DATA,
    ) -> List[Address]:
        """Allocate a line-aligned array and return per-word addresses."""
        base = self.alloc(name, words, segment, align_to_line=True)
        return [base + i * WORD_SIZE for i in range(words)]

    def alloc_sync(self, name: str) -> Address:
        """Allocate one synchronization word (mutex or flag)."""
        return self.alloc(name, 1, Segment.SYNC)

    # -- queries ------------------------------------------------------------

    def segment_of(self, address: Address) -> Segment:
        """Which segment an address belongs to."""
        if address >= _SEGMENT_BASES[Segment.SYNC]:
            return Segment.SYNC
        return Segment.DATA

    def is_sync_address(self, address: Address) -> bool:
        return self.segment_of(address) is Segment.SYNC

    def name_of(self, address: Address) -> str:
        """Diagnostic name of the allocation base, or hex."""
        return self._names.get(address, hex(address))

    def words_allocated(self, segment: Segment) -> int:
        """Number of words allocated so far in ``segment``."""
        return (self._next[segment] - _SEGMENT_BASES[segment]) // WORD_SIZE
