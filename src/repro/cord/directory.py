"""Directory-based CORD (the paper's Section 2.5 extension, realized).

The paper keeps its evaluation on snooping systems but notes that "a
straightforward extension of this protocol to a directory-based system is
possible".  This module is that extension: detection semantics are
*identical* to the snooping detector -- the directory's sharer list for a
line is by definition the set of caches holding it, i.e. exactly the
caches a broadcast would have snooped -- but the *traffic* is
point-to-point:

* a race check costs one request to the line's home node plus one
  forward/response pair per actual sharer, instead of occupying the
  global address/timestamp bus;
* the main-memory timestamp pair lives at each line's home node (we model
  one logical copy, as the values are identical), so timestamp-displacement
  updates are a single message to the home rather than a broadcast.

:class:`DirectoryCordDetector` maintains real directory state (sharer
bit-vectors per line, kept in sync through the fill/eviction hooks) and
message counters; the equivalence with snooping -- same races, same order
log -- is asserted by the test suite rather than assumed.

Window-mode cache walking is not supported here (the walker drops lines
without notifying the directory); use the snooping detector for the
16-bit window experiments.
"""

from __future__ import annotations

from typing import Dict, Set

from repro.common.errors import ConfigError
from repro.cord.config import CordConfig
from repro.cord.detector import CordDetector, CordOutcome
from repro.trace.events import MemoryEvent
from repro.trace.stream import Trace


class Directory:
    """Sharer tracking: line address -> set of processors holding it."""

    def __init__(self, n_processors: int):
        self.n_processors = n_processors
        self._sharers: Dict[int, Set[int]] = {}

    def sharers(self, line: int) -> Set[int]:
        return self._sharers.get(line, set())

    def add(self, line: int, processor: int) -> None:
        self._sharers.setdefault(line, set()).add(processor)

    def remove(self, line: int, processor: int) -> None:
        sharers = self._sharers.get(line)
        if sharers is not None:
            sharers.discard(processor)
            if not sharers:
                del self._sharers[line]

    def lines_tracked(self) -> int:
        return len(self._sharers)


class DirectoryCordDetector(CordDetector):
    """CORD over a directory protocol: same detection, different traffic."""

    def __init__(self, config: CordConfig, n_threads: int):
        if config.use_window:
            raise ConfigError(
                "window mode (cache walker) is not supported by the "
                "directory detector; use the snooping CordDetector"
            )
        super().__init__(config, n_threads)
        self.name = "Dir" + config.label
        self.outcome.detector_name = self.name
        self.directory = Directory(config.n_processors)
        #: Point-to-point messages: check requests to home nodes,
        #: forwards to sharers, their responses, and memts updates.
        self.messages = 0
        self.home_requests = 0
        self.sharer_forwards = 0

    # -- residency hooks -----------------------------------------------------

    def _on_line_filled(self, processor: int, line: int) -> None:
        self.directory.add(line, processor)

    def _on_line_evicted(self, processor: int, line: int) -> None:
        self.directory.remove(line, processor)
        # Eviction write-back notifies the home (carrying the folded
        # timestamps -- the memts update rides along for free).
        self.messages += 1

    # -- traffic accounting ------------------------------------------------------

    def process_batch(self, events) -> None:
        # The snooping detector's batched loop bypasses process(); the
        # directory model needs the per-event traffic accounting below.
        for event in events:
            self.process(event)

    def process(self, event: MemoryEvent) -> None:
        checks_before = self.race_checks
        processor = self.thread_proc[event.thread]
        line = self.geometry.line_address(event.address)
        sharers_before = set(self.directory.sharers(line))
        super().process(event)
        if self.race_checks > checks_before:
            # One request to the home node, one forward + response per
            # remote sharer at check time.
            remote = sharers_before - {processor}
            self.home_requests += 1
            self.sharer_forwards += len(remote)
            self.messages += 1 + 2 * len(remote)

    # -- invariants ---------------------------------------------------------------

    def verify_directory(self) -> None:
        """Assert the directory matches actual cache residency."""
        for proc, cache in enumerate(self.snoop.caches):
            for line in cache.lines():
                if proc not in self.directory.sharers(line):
                    raise AssertionError(
                        "directory lost sharer P%d of line %#x"
                        % (proc, line)
                    )
        for line, sharers in list(self.directory._sharers.items()):
            for proc in sharers:
                if not self.snoop.caches[proc].contains(line):
                    raise AssertionError(
                        "directory has stale sharer P%d of line %#x"
                        % (proc, line)
                    )

    def finish(self, trace: Trace) -> CordOutcome:
        outcome = super().finish(trace)
        outcome.counters.update(
            directory_messages=self.messages,
            home_requests=self.home_requests,
            sharer_forwards=self.sharer_forwards,
            lines_tracked=self.directory.lines_tracked(),
        )
        return outcome
