"""Config-independent coherence replay plans for the CORD packed kernel.

The observation that makes the analyze-many side of the sweep pipeline
cheap: everything *coherence-shaped* in a CORD simulation is a pure
function of the access sequence and the cache geometry -- it does not
depend on ``D``, the initial clock, or any timestamp value.  Concretely,
for a fixed trace and geometry the following evolve identically in every
detector configuration of a D sweep:

* cache contents, metadata slot assignments, MRU order, eviction
  victims, and the residency hint bits (every access -- fast-path hit or
  race check -- moves its line to MRU, and insertions/evictions depend
  only on hits and misses);
* the data-valid and write-permission flag bits.  A write holding the
  write permission snoops no remote copy that still has entries (the
  permission was granted by a write race check that invalidated every
  remote copy, and any later remote access would have revoked it before
  creating new entries), so *effective* invalidations happen only at
  accesses that are ineligible for the fast path -- and ineligible
  accesses race-check in every configuration;
* therefore also each slot's has-entries state (every timestamp entry is
  born with at least one access bit, so "some entry has a nonzero mask"
  is exactly "accessed since the last invalidation"), which is what the
  race check's ``clean_line`` verdict and its candidate set are made of.

:func:`build_coherence_plan` runs that coherence machine once per
(trace, geometry) and records, per event: the local metadata slot, a hit
flag, fast-path eligibility, the resolved remote candidate slots (with
their processors, in snoop order), and the eviction victims.  The
per-configuration interpreter (``CordDetector._process_packed_kernel``)
then touches only configuration-dependent state -- clocks, timestamp
entries, check filters, memory timestamps, the order log -- with no
dictionary operations, MRU bookkeeping, or residency math on its hot
path.  Byte-identical outcomes against the scalar loop are pinned by the
kernel equivalence suite.

The plan builder is deliberately pure Python: the coherence machine is
inherently sequential (each step reads the cache state the previous step
wrote), but it runs *once* per recorded trace and is shared by every
configuration that analyzes it, while the parts that do vectorize live
in the numpy kernels (:mod:`repro.trace.kernels`).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

#: ``evb`` bits (per-event classification byte).
EV_ELIGIBLE = 1  #: line cached, data valid, access mode allowed
EV_HIT = 2       #: a local metadata slot existed before the access


class CoherencePlan:
    """One trace's coherence trajectory, shared across configurations.

    Attributes:
        slots: per-event local metadata slot (post-insertion on misses).
        evb: per-event classification byte (``EV_*`` bits).
        cands: per-event tuple of ``(remote_slot, remote_processor)``
            pairs the race check must scan, in snoop (ascending
            processor) order; ``None`` when no remote copy has entries
            -- which is also exactly the scalar loop's ``clean_line``.
        evicts: event index -> victim slot whose entries retire when the
            event's insertion evicts its line.
        collapse_end: per-event segment end when every event from here
            to the end of its run is fast-path eligible, else 0 (the
            segment kernel's collapse precondition).
        n_slots: total slots ever allocated (per-config array sizing).
        insertions / evictions: per-processor fill and eviction counts
            (config-independent; copied onto the caches after a pass).
    """

    __slots__ = (
        "slots",
        "evb",
        "cands",
        "evicts",
        "collapse_end",
        "n_slots",
        "insertions",
        "evictions",
    )

    def __init__(
        self,
        slots: List[int],
        evb: bytearray,
        cands: List[Optional[Tuple[Tuple[int, int], ...]]],
        evicts: Dict[int, int],
        collapse_end: List[int],
        n_slots: int,
        insertions: List[int],
        evictions: List[int],
    ):
        self.slots = slots
        self.evb = evb
        self.cands = cands
        self.evicts = evicts
        self.collapse_end = collapse_end
        self.n_slots = n_slots
        self.insertions = insertions
        self.evictions = evictions


def build_coherence_plan(
    packed,
    seg_plan,
    line_mask: int,
    set_shift: int,
    set_mask: int,
    capacity: int,
    n_processors: int,
    thread_proc: List[int],
) -> CoherencePlan:
    """Replay the coherence machine once for ``packed``.

    Mirrors the scalar loop's cache and flag transitions exactly -- the
    same MRU movement, the same LIFO slot reuse, the same residency-hint
    sharer resolution -- but applies remote side effects only at
    ineligible accesses (see the module docstring for why eligible ones
    have none).

    The replay walks the stream segment by segment (the segment plan's
    same-thread/same-line data runs).  Only a segment's *head* event can
    move cache state: the events after it hit the same already-MRU line
    with no intervening access from any other processor, so their
    residency, MRU order, and candidate sets are the head's -- except
    across the segment's first write upgrade (a write without the
    permission race-checks once, invalidating every remote candidate).
    The per-event outputs are identical to a plain per-event replay;
    only the redundant dictionary and residency work is skipped.
    """
    threads, _addresses, flag_col, _icounts = packed.hot_columns()
    lines, _words, _wbits, set_indexes = packed.geometry_columns(
        line_mask, set_shift, set_mask
    )
    n = len(threads)
    remote_masks = [
        ((1 << n_processors) - 1) ^ (1 << p) for p in range(n_processors)
    ]
    sets_by_proc = [
        [dict() for _ in range(set_mask + 1)] for _ in range(n_processors)
    ]
    sets_by_thread = [sets_by_proc[p] for p in thread_proc]
    remote_by_thread = [remote_masks[p] for p in thread_proc]
    residency: Dict[int, int] = {}
    valid = bytearray()
    perm = bytearray()
    has_entries = bytearray()
    free: List[int] = []
    n_slots = 0
    slots_col = [0] * n
    evb = bytearray(n)
    cands_col: List[Optional[Tuple[Tuple[int, int], ...]]] = [None] * n
    evicts: Dict[int, int] = {}
    insertions = [0] * n_processors
    evictions = [0] * n_processors

    starts = seg_plan.starts
    seg_sync = seg_plan.sync
    for k in range(len(starts) - 1):
        head = starts[k]
        seg_end = starts[k + 1]
        if seg_sync[k]:
            # Synchronization run: take the per-event path (sync reads
            # are never eligible; sync writes follow the write rules).
            lo, hi = head, seg_end
            per_event = True
        else:
            lo, hi = head, head + 1
            per_event = False
        for i in range(lo, hi):
            thread = threads[i]
            eflags = flag_col[i]
            line = lines[i]
            set_index = set_indexes[i]
            local_set = sets_by_thread[thread][set_index]
            local = local_set.get(line)
            is_write = eflags & 1
            if local is None:
                eligible = False
            elif is_write:
                eligible = valid[local] and perm[local]
            else:
                eligible = valid[local] and not eflags & 2

            cand = None
            sharers = residency.get(line, 0) & remote_by_thread[thread]
            while sharers:
                low = sharers & -sharers
                sharers ^= low
                remote = low.bit_length() - 1
                rslot = sets_by_proc[remote][set_index].get(line)
                if rslot is None or not has_entries[rslot]:
                    continue
                if cand is None:
                    cand = [(rslot, remote)]
                else:
                    cand.append((rslot, remote))
            if cand is not None:
                cand = tuple(cand)
                cands_col[i] = cand

            if eligible:
                # Fast in some configurations, a race check in others --
                # either way no shared state changes: any remote
                # permission or write filter is already gone while the
                # local copy is valid, and an eligible write implies no
                # remote copy has entries at all.
                evb[i] = EV_ELIGIBLE | EV_HIT
                local_set[line] = local_set.pop(line)  # MRU
                slots_col[i] = local
                continue

            # Ineligible: a race check in every configuration, so its
            # coherence side effects are configuration-independent.
            if cand is not None:
                if is_write:
                    for rslot, _remote in cand:
                        valid[rslot] = 0
                        perm[rslot] = 0
                        has_entries[rslot] = 0
                else:
                    for rslot, _remote in cand:
                        perm[rslot] = 0
            if local is None:
                processor = thread_proc[thread]
                if free:
                    local = free.pop()
                else:
                    local = n_slots
                    n_slots += 1
                    valid.append(0)
                    perm.append(0)
                    has_entries.append(0)
                local_set[line] = local
                insertions[processor] += 1
                pbit = 1 << processor
                residency[line] = residency.get(line, 0) | pbit
                if len(local_set) > capacity:
                    victim_line = next(iter(local_set))
                    victim_slot = local_set.pop(victim_line)
                    evictions[processor] += 1
                    remaining = residency.get(victim_line, 0) & ~pbit
                    if remaining:
                        residency[victim_line] = remaining
                    else:
                        residency.pop(victim_line, None)
                    evicts[i] = victim_slot
                    free.append(victim_slot)
                    valid[victim_slot] = 0
                    perm[victim_slot] = 0
                    has_entries[victim_slot] = 0
            else:
                evb[i] = EV_HIT
                local_set[line] = local_set.pop(line)  # MRU
            valid[local] = 1
            if is_write:
                perm[local] = 1
            has_entries[local] = 1
            slots_col[i] = local

        if per_event or seg_end - head < 2:
            continue
        # Tail of a data run: the head left the line local, valid, and
        # MRU, and nothing else runs between these events, so residency,
        # the MRU order, and every remote slot are exactly as the head
        # left them.  Reads (valid line) and permitted writes are
        # eligible with the head's candidate tuple; the run's first
        # write *without* the permission race-checks in every
        # configuration, invalidates every remote candidate (after which
        # the candidate set is empty), and takes the permission, making
        # the rest of the run eligible.
        sl = slots_col[head]
        seg_cand = None if (flag_col[head] & 1 and not evb[head] & 1) \
            else cands_col[head]
        for i in range(head + 1, seg_end):
            slots_col[i] = sl
            cands_col[i] = seg_cand
            if flag_col[i] & 1 and not perm[sl]:
                evb[i] = EV_HIT
                if seg_cand is not None:
                    for rslot, _remote in seg_cand:
                        valid[rslot] = 0
                        perm[rslot] = 0
                        has_entries[rslot] = 0
                    seg_cand = None
                perm[sl] = 1
            else:
                evb[i] = EV_ELIGIBLE | EV_HIT

    # Collapse precondition per event: every event from here to the end
    # of its run is eligible.  (The per-config pass still checks that
    # the filter or the recorded word bits cover the run's masks.)
    collapse_end = [0] * n
    starts = seg_plan.starts
    sync = seg_plan.sync
    for k in range(len(starts) - 1):
        if sync[k]:
            continue
        end = starts[k + 1]
        ok = True
        for i in range(end - 1, starts[k] - 1, -1):
            if ok and evb[i] & EV_ELIGIBLE:
                collapse_end[i] = end
            else:
                ok = False

    return CoherencePlan(
        slots_col,
        evb,
        cands_col,
        evicts,
        collapse_end,
        n_slots,
        insertions,
        evictions,
    )
