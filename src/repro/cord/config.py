"""CORD hardware configuration.

Defaults follow the paper's evaluated machine (Section 3.1): a 4-processor
CMP with private caches reduced to 32 KB (L2) / 8 KB (L1) to preserve
realistic hit rates on reduced inputs, 64-byte lines, two timestamp entries
per line, and the headline window parameter ``D = 16`` (Figures 16/17 show
the sweep over 1/4/16/256).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from repro.cachesim.cache import CacheGeometry
from repro.common.errors import ConfigError

#: Paper cache sizes (Section 3.1).
L2_CACHE_BYTES = 32 * 1024
L1_CACHE_BYTES = 8 * 1024


@dataclass(frozen=True)
class CordConfig:
    """All parameters of one CORD instance.

    Attributes:
        d: sync-read clock-update window (Section 2.6); >= 1.
        n_processors: processors on the snooping bus.
        cache_size: per-processor metadata capacity in bytes; ``None``
            means unlimited (the InfCache-style configuration).  The
            default models histories kept in the private L2.
        line_size: cache line size in bytes.
        associativity: cache ways per set.
        entries_per_line: timestamp entries per cached line (paper: 2; a
            single entry still order-records correctly but degrades
            detection, Figure 2's erased-history problem).
        use_window: enable the 16-bit sliding-window machinery -- the
            cache walker runs and window invariants are checked.
        clock_bits: hardware clock width for window mode.
        walker_period: events between cache-walker passes (window mode).
        walker_stale_lag: staleness threshold for walker evictions.
        initial_clock: starting logical time for every thread.
        use_memory_timestamps: ablation switch for the Section 2.5
            mechanism.  Disabling it reproduces the Figure 6 failure
            mode: displaced synchronization is lost, order recording goes
            wrong, and false data races appear.  Only ever disable it to
            demonstrate why it exists (``benchmarks/bench_ablations.py``).
        migration_fix: ablation switch for the Section 2.7.4 rule
            (``clk += D`` on migration).  Disabling it reproduces the
            self-race false positives the rule eliminates.
    """

    d: int = 16
    n_processors: int = 4
    cache_size: Optional[int] = L2_CACHE_BYTES
    line_size: int = 64
    associativity: int = 8
    entries_per_line: int = 2
    use_window: bool = False
    clock_bits: int = 16
    walker_period: int = 4096
    walker_stale_lag: int = 1 << 13
    initial_clock: int = 1
    use_memory_timestamps: bool = True
    migration_fix: bool = True

    def __post_init__(self):
        if self.d < 1:
            raise ConfigError("D must be >= 1, got %d" % self.d)
        if self.n_processors < 1:
            raise ConfigError(
                "need >= 1 processor, got %d" % self.n_processors
            )
        if self.entries_per_line < 1:
            raise ConfigError(
                "need >= 1 timestamp entry per line, got %d"
                % self.entries_per_line
            )
        if self.initial_clock < 0:
            raise ConfigError("initial clock must be >= 0")
        if self.use_window and self.walker_stale_lag >= (
            1 << (self.clock_bits - 1)
        ):
            raise ConfigError(
                "walker_stale_lag must be below the sliding window"
            )
        # Validate geometry eagerly (raises ConfigError on bad shapes).
        self.geometry()

    def geometry(self) -> CacheGeometry:
        """Per-processor metadata cache geometry."""
        if self.cache_size is None:
            return CacheGeometry.infinite(self.line_size)
        return CacheGeometry(
            self.cache_size, self.line_size, self.associativity
        )

    def with_d(self, d: int) -> "CordConfig":
        """Copy with a different window parameter (the Figure 16/17 sweep)."""
        return replace(self, d=d)

    def with_cache_size(self, cache_size: Optional[int]) -> "CordConfig":
        """Copy with a different metadata capacity (Figure 14/15 sweep)."""
        return replace(self, cache_size=cache_size)

    @property
    def label(self) -> str:
        return "CORD(D=%d)" % self.d

    @property
    def words_per_line(self) -> int:
        return self.line_size // 4
