"""The CORD mechanism (Section 2 of the paper).

One :class:`CordDetector` instance observes one execution trace and
performs, per memory access, what the paper's hardware does:

1. **Fast path** (Section 2.7.2): if the line is locally cached with valid
   data and either the mode's check-filter bit is set or the word's access
   bit is already set at the thread's current clock value, no race check is
   broadcast.
2. **Race check** otherwise: snoop every remote cache's metadata for the
   line.  Entries whose per-word bits conflict with the access yield
   candidate timestamps; the local copy of the main-memory timestamp pair
   is consulted as well (the word's displaced history, if any, was folded
   there -- Figure 6's correctness argument).
3. **Clock updates** (Sections 2.4-2.6): a synchronization read becomes at
   least ``D`` larger than the conflicting write timestamp; every other
   race outcome with ``clk <= ts`` updates to ``ts + 1``.  Updates through
   main-memory timestamps use ``+1``, except that sync *reads* take the
   full ``+D`` window -- required to preserve the no-false-positive
   guarantee when a release write was displaced to memory (see DESIGN.md).
4. **Data race reporting**: a data access is flagged when a cached
   conflicting timestamp satisfies ``clk < ts + D`` -- even if already
   ordered (``clk > ts``), the ordering was not through synchronization
   (Figure 9).  Comparisons against main-memory timestamps are never
   reported (Figure 7), so CORD reports no false positives.
5. **Metadata recording**: the access sets its per-word bit under the
   thread's (possibly updated) clock; allocating a new timestamp entry
   retires the line's oldest, folding it into the main-memory timestamps,
   as does line eviction.
6. **Order recording**: every clock change appends a log entry
   (Section 2.7.1); a sync write additionally increments the clock after
   retiring.

Counters for race-check and memory-timestamp-update broadcasts feed the
timing model (Figure 11's overhead comes almost entirely from this extra
address/timestamp-bus traffic).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.cachesim.snoop import SnoopDomain
from repro.clocks.window import SlidingWindowComparator
from repro.common.errors import ConfigError
from repro.cord.config import CordConfig
from repro.cord.log import OrderLog
from repro.cord.recorder import OrderRecorder
from repro.detectors.base import (
    DataRace,
    DetectionOutcome,
    Detector,
    default_thread_to_processor,
)
from repro.meta.linemeta import LineMeta
from repro.meta.memts import MainMemoryTimestamps
from repro.meta.walker import CacheWalker
from repro.trace.events import MemoryEvent
from repro.trace.stream import Trace


@dataclass
class CordOutcome(DetectionOutcome):
    """CORD's per-run result: detection outcome plus the order log."""

    log: Optional[OrderLog] = None
    final_clocks: List[int] = field(default_factory=list)

    @property
    def log_bytes(self) -> int:
        return self.log.size_bytes if self.log is not None else 0


class CordDetector(Detector):
    """The combined order-recorder and data race detector."""

    def __init__(self, config: CordConfig, n_threads: int):
        if n_threads > config.n_processors:
            # With several threads per processor their mutual conflicts
            # are invisible to snooping (local metadata is "mine"), which
            # would silently break order-recording soundness.  The paper's
            # hardware time-multiplexes threads and applies the migration
            # rule on every reschedule; model that explicitly with
            # migrate_thread() instead of overcommitting processors.
            raise ConfigError(
                "%d threads exceed %d processors; CORD metadata is "
                "per-processor -- use migrate_thread() to model "
                "time-multiplexing" % (n_threads, config.n_processors)
            )
        self.config = config
        self.name = config.label
        super().__init__()
        self.outcome = CordOutcome(detector_name=self.name)
        self.n_threads = n_threads
        self.clocks: List[int] = [config.initial_clock] * n_threads
        self.recorder = OrderRecorder(n_threads, config.initial_clock)
        self.memory_ts = MainMemoryTimestamps(0)
        self.geometry = config.geometry()
        self.snoop = SnoopDomain(
            config.n_processors,
            self.geometry,
            lambda: LineMeta(config.entries_per_line),
        )
        self.thread_proc = default_thread_to_processor(
            n_threads, config.n_processors
        )
        # Counters feeding the timing model and the figures.
        self.race_checks = 0
        self.fast_hits = 0
        self.memts_orderings = 0
        self.clock_changes = 0
        self._walkers: Optional[List[CacheWalker]] = None
        self._window: Optional[SlidingWindowComparator] = None
        if config.use_window:
            self._window = SlidingWindowComparator(config.clock_bits)
            self._walkers = [
                CacheWalker(
                    cache,
                    self.memory_ts,
                    stale_lag=config.walker_stale_lag,
                    period=config.walker_period,
                )
                for cache in self.snoop.caches
            ]
        self.window_violations = 0

    # -- public control -----------------------------------------------------

    def migrate_thread(self, thread: int, processor: int,
                       icount: int) -> None:
        """Move a thread to another processor (Section 2.7.4).

        The thread's clock advances by ``D`` so its own stale timestamps on
        the old processor cannot be mistaken for a conflicting thread's.
        """
        if not 0 <= processor < self.config.n_processors:
            raise ValueError("no processor %d" % processor)
        self.thread_proc[thread] = processor
        if not self.config.migration_fix:
            return  # ablation: reproduce the self-race problem
        new_clock = self.clocks[thread] + self.config.d
        self.recorder.clock_changed_before(thread, new_clock, icount)
        self.clocks[thread] = new_clock
        self.clock_changes += 1

    # -- the access pipeline ---------------------------------------------------

    def process(self, event: MemoryEvent) -> None:
        thread = event.thread
        processor = self.thread_proc[thread]
        is_write = event.is_write
        is_sync = event.is_sync
        d = self.config.d
        clk0 = self.clocks[thread]
        line = self.geometry.line_address(event.address)
        word = (event.address - line) // 4
        cache = self.snoop.cache_of(processor)

        # Instruction-count overflow guard (Section 2.7.1).
        if self.recorder.count_would_overflow(thread, event.icount):
            self._change_clock_before(thread, clk0 + 1, event.icount)
            clk0 = self.clocks[thread]

        local = cache.peek(line)
        fast = (
            local is not None
            and local.data_valid
            # Synchronization reads always check: Section 2.6's rule --
            # the thread's clock must become at least D larger than the
            # sync variable's latest write timestamp -- is unconditional,
            # and that timestamp may live only in the memory-timestamp
            # pair.  (Sync instructions are already special-cased in the
            # paper's hardware via labeling.)
            and not (is_sync and not is_write)
            # A write additionally needs coherence write permission: a
            # remote read since our last write means the next write is a
            # bus upgrade, which is a race-check opportunity hardware
            # cannot skip.
            and (not is_write or local.write_permission)
            and (
                local.filter_allows(is_write)
                or self._bit_already_set(local, clk0, word, is_write)
            )
        )

        new_clock = clk0
        if fast:
            self.fast_hits += 1
            clean_line = False
        else:
            self.race_checks += 1
            clean_line = True
            reported = False
            for remote, meta in self.snoop.snoop(processor, line):
                if meta.any_conflict_in_line(is_write):
                    clean_line = False
                meta.revoke_filters(is_write)
                remote_candidates = list(
                    meta.conflicting_timestamps(word, is_write)
                )
                if is_write:
                    # Write upgrade: the remote copy is invalidated and
                    # its history retired.  The ordering it carried is
                    # absorbed right here (the candidates below); keeping
                    # the stale access bits would let a later refetch
                    # fast-path past a conflict (found by the
                    # replay-equivalence property test).
                    retired = meta.retire_all()
                    if self.config.use_memory_timestamps:
                        self.memory_ts.fold_entries(retired)
                    meta.data_valid = False
                for ts in remote_candidates:
                    if is_sync:
                        if is_write:
                            if clk0 <= ts:
                                new_clock = max(new_clock, ts + 1)
                        else:
                            # Sync read: at least D past the write ts.
                            new_clock = max(new_clock, ts + d)
                    else:
                        if clk0 <= ts:
                            new_clock = max(new_clock, ts + 1)
                        if clk0 < ts + d and not reported:
                            reported = True
                            self.outcome.record_race(
                                DataRace(
                                    access=(thread, event.icount),
                                    address=event.address,
                                    other_thread=None,
                                    detail="clk=%d ts=%d P%d"
                                    % (clk0, ts, remote),
                                )
                            )
            # Main-memory timestamp comparison (never reported as a race).
            # Sync reads take the full +D window so that synchronization
            # whose release write was displaced to memory still suppresses
            # later false data races (the Figure 7 update, strengthened by
            # Section 2.6's rule); everything else takes the +1 ordering
            # update.
            if self.config.use_memory_timestamps:
                mem_ts = self.memory_ts.conflicting_timestamp(is_write)
                if is_sync and not is_write:
                    if mem_ts + d > new_clock:
                        new_clock = mem_ts + d
                        self.memts_orderings += 1
                elif clk0 <= mem_ts:
                    if mem_ts + 1 > new_clock:
                        new_clock = mem_ts + 1
                        self.memts_orderings += 1

        if new_clock != clk0:
            self._change_clock_before(thread, new_clock, event.icount)

        # Record the access in local metadata.
        meta, evicted = cache.access(line)
        if local is None:
            self._on_line_filled(processor, line)
        for victim_line, victim in evicted:
            retired_entries = victim.retire_all()
            if self.config.use_memory_timestamps:
                self.memory_ts.fold_entries(retired_entries)
            self._on_line_evicted(processor, victim_line)
        meta.data_valid = True
        if is_write and not fast:
            # Remote copies were invalidated (and their metadata retired)
            # during the snoop above; the local copy is now exclusive.
            meta.write_permission = True
        retired = meta.record_access(
            self.clocks[thread], word, is_write
        )
        if retired is not None and self.config.use_memory_timestamps:
            self.memory_ts.fold_entry(retired)
        if not fast and clean_line:
            meta.grant_filter(is_write)

        # Post-retirement increment after synchronization writes.
        if is_sync and is_write:
            self._change_clock_after(
                thread, self.clocks[thread] + 1, event.icount
            )

        if self._walkers is not None:
            self._run_walker(processor)

    # -- helpers ---------------------------------------------------------------

    def _on_line_evicted(self, processor: int, line: int) -> None:
        """Hook for subclasses tracking residency (directory protocols)."""

    def _on_line_filled(self, processor: int, line: int) -> None:
        """Hook for subclasses tracking residency (directory protocols)."""

    @staticmethod
    def _bit_already_set(
        meta: LineMeta, clock: int, word: int, is_write: bool
    ) -> bool:
        """Was this word already accessed in this mode at this clock value?

        If so, the race check for it already happened ("an access that
        finds the corresponding access bit to be zero results in
        broadcasting a special race check request" -- a set bit means no
        new request).
        """
        for entry in meta.entries:
            if entry.ts == clock:
                mask = entry.write_mask if is_write else entry.read_mask
                return bool((mask >> word) & 1)
        return False

    def _change_clock_before(self, thread: int, new_clock: int,
                             icount: int) -> None:
        self.recorder.clock_changed_before(thread, new_clock, icount)
        self.clocks[thread] = new_clock
        self.clock_changes += 1

    def _change_clock_after(self, thread: int, new_clock: int,
                            icount: int) -> None:
        self.recorder.clock_changed_after(thread, new_clock, icount)
        self.clocks[thread] = new_clock
        self.clock_changes += 1

    def _run_walker(self, processor: int) -> None:
        walker = self._walkers[processor]
        max_clock = max(self.clocks)
        if walker.tick(max_clock):
            headroom = walker.window_headroom(
                max_clock, self._window.window
            )
            if headroom is not None and headroom <= 0:
                # The paper's stall condition; never observed in practice.
                self.window_violations += 1

    # -- completion ---------------------------------------------------------------

    def run_with_migrations(
        self, trace: Trace, schedule
    ) -> "CordOutcome":
        """Process a trace while applying scheduled thread migrations.

        Args:
            trace: the execution to analyze.
            schedule: iterable of ``(event_index, thread, processor)``
                triples, sorted by event index; each migration is applied
                *before* the event at that index is processed, modeling
                the OS rescheduling the thread between instructions.
        """
        pending = sorted(schedule)
        cursor = 0
        per_thread_icount = [0] * self.n_threads
        for event in trace.events:
            while cursor < len(pending) and \
                    pending[cursor][0] <= event.index:
                _, thread, processor = pending[cursor]
                self.migrate_thread(
                    thread, processor, per_thread_icount[thread]
                )
                cursor += 1
            self.process(event)
            per_thread_icount[event.thread] = event.icount + 1
        return self.finish(trace)

    def finish(self, trace: Trace) -> CordOutcome:
        self.outcome.log = self.recorder.finalize(trace.final_icounts)
        self.outcome.final_clocks = list(self.clocks)
        self.outcome.counters.update(
            race_checks=self.race_checks,
            fast_hits=self.fast_hits,
            memts_orderings=self.memts_orderings,
            memts_update_broadcasts=self.memory_ts.update_broadcasts,
            clock_changes=self.clock_changes,
            log_entries=len(self.outcome.log),
            log_bytes=self.outcome.log.size_bytes,
            evictions=self.snoop.total_evictions(),
            window_violations=self.window_violations,
        )
        return self.outcome
