"""The CORD mechanism (Section 2 of the paper).

One :class:`CordDetector` instance observes one execution trace and
performs, per memory access, what the paper's hardware does:

1. **Fast path** (Section 2.7.2): if the line is locally cached with valid
   data and either the mode's check-filter bit is set or the word's access
   bit is already set at the thread's current clock value, no race check is
   broadcast.
2. **Race check** otherwise: snoop every remote cache's metadata for the
   line.  Entries whose per-word bits conflict with the access yield
   candidate timestamps; the local copy of the main-memory timestamp pair
   is consulted as well (the word's displaced history, if any, was folded
   there -- Figure 6's correctness argument).
3. **Clock updates** (Sections 2.4-2.6): a synchronization read becomes at
   least ``D`` larger than the conflicting write timestamp; every other
   race outcome with ``clk <= ts`` updates to ``ts + 1``.  Updates through
   main-memory timestamps use ``+1``, except that sync *reads* take the
   full ``+D`` window -- required to preserve the no-false-positive
   guarantee when a release write was displaced to memory (see DESIGN.md).
4. **Data race reporting**: a data access is flagged when a cached
   conflicting timestamp satisfies ``clk < ts + D`` -- even if already
   ordered (``clk > ts``), the ordering was not through synchronization
   (Figure 9).  Comparisons against main-memory timestamps are never
   reported (Figure 7), so CORD reports no false positives.
5. **Metadata recording**: the access sets its per-word bit under the
   thread's (possibly updated) clock; allocating a new timestamp entry
   retires the line's oldest, folding it into the main-memory timestamps,
   as does line eviction.
6. **Order recording**: every clock change appends a log entry
   (Section 2.7.1); a sync write additionally increments the clock after
   retiring.

Counters for race-check and memory-timestamp-update broadcasts feed the
timing model (Figure 11's overhead comes almost entirely from this extra
address/timestamp-bus traffic).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.cachesim.snoop import SnoopDomain
from repro.clocks.window import SlidingWindowComparator
from repro.common.errors import ConfigError
from repro.cord.coherence import build_coherence_plan
from repro.cord.config import CordConfig
from repro.cord.log import OrderLog
from repro.cord.log import LogEntry as _LogEntry
from repro.cord.recorder import OrderRecorder
from repro.detectors.base import (
    DataRace,
    DetectionOutcome,
    Detector,
    default_thread_to_processor,
)
from repro.meta.linestore import ScalarLineStore
from repro.meta.memts import MainMemoryTimestamps
from repro.meta.walker import CacheWalker
from repro.trace.events import MemoryEvent
from repro.trace.stream import Trace


@dataclass
class CordOutcome(DetectionOutcome):
    """CORD's per-run result: detection outcome plus the order log."""

    log: Optional[OrderLog] = None
    final_clocks: List[int] = field(default_factory=list)

    @property
    def log_bytes(self) -> int:
        return self.log.size_bytes if self.log is not None else 0


class CordDetector(Detector):
    """The combined order-recorder and data race detector."""

    def __init__(self, config: CordConfig, n_threads: int):
        if n_threads > config.n_processors:
            # With several threads per processor their mutual conflicts
            # are invisible to snooping (local metadata is "mine"), which
            # would silently break order-recording soundness.  The paper's
            # hardware time-multiplexes threads and applies the migration
            # rule on every reschedule; model that explicitly with
            # migrate_thread() instead of overcommitting processors.
            raise ConfigError(
                "%d threads exceed %d processors; CORD metadata is "
                "per-processor -- use migrate_thread() to model "
                "time-multiplexing" % (n_threads, config.n_processors)
            )
        self.config = config
        self.name = config.label
        super().__init__()
        self.outcome = CordOutcome(detector_name=self.name)
        self.n_threads = n_threads
        self.clocks: List[int] = [config.initial_clock] * n_threads
        self.recorder = OrderRecorder(n_threads, config.initial_clock)
        self.memory_ts = MainMemoryTimestamps(0)
        self.geometry = config.geometry()
        #: Flat array-backed metadata shared by all caches of the domain;
        #: cache payloads are integer slots into this store.
        self.store = ScalarLineStore(
            config.entries_per_line,
            self.geometry.line_size // 4,
        )
        self.snoop = SnoopDomain(
            config.n_processors,
            self.geometry,
            self.store.alloc,
        )
        # Hot-path constants (the geometry is immutable).  All caches of
        # the domain share one geometry, so a line's set index is the
        # same everywhere; process() indexes the per-cache set dicts
        # directly instead of calling through MetadataCache per snoop.
        self._line_mask = ~(self.geometry.line_size - 1)
        self._entries_per_line = config.entries_per_line
        self._d = config.d
        self._use_mem = config.use_memory_timestamps
        self._cache_sets = [cache._sets for cache in self.snoop.caches]
        self._set_shift = self.snoop.caches[0]._set_shift
        self._set_mask = self.snoop.caches[0]._set_mask
        self._frag_start = self.recorder._fragment_start
        # Residency hint: line address -> bitmask of processors whose
        # cache *may* hold the line.  Bits are set on fill and cleared on
        # the inline eviction path; drops the cache walker performs are
        # not mirrored, so the mask may overcount -- a race check still
        # verifies each hinted cache with a real lookup, it just skips
        # caches that provably never held the line (about half of all
        # remote lookups in the SPLASH-style workloads).
        self._residency: dict = {}
        self._remote_masks = [
            ((1 << config.n_processors) - 1) ^ (1 << p)
            for p in range(config.n_processors)
        ]
        self.thread_proc = default_thread_to_processor(
            n_threads, config.n_processors
        )
        # Counters feeding the timing model and the figures.
        self.race_checks = 0
        self.fast_hits = 0
        self.memts_orderings = 0
        self.clock_changes = 0
        # The plan-driven packed kernel runs from a cold cache model and
        # leaves metadata in pass-local arrays; once spent, later calls
        # fall back to the scalar loop (nothing reuses a detector across
        # traces, but fail safe rather than replay from a wrong state).
        self._kernel_spent = False
        # Sweep drivers that know this config's geometry is unique in
        # the sweep clear this; the kernel path then requires an
        # already-cached coherence plan (see process_packed).
        self._plan_amortized = True
        self._walkers: Optional[List[CacheWalker]] = None
        self._window: Optional[SlidingWindowComparator] = None
        if config.use_window:
            self._window = SlidingWindowComparator(config.clock_bits)
            self._walkers = [
                CacheWalker(
                    cache,
                    self.memory_ts,
                    stale_lag=config.walker_stale_lag,
                    period=config.walker_period,
                    store=self.store,
                )
                for cache in self.snoop.caches
            ]
        self.window_violations = 0

    # -- public control -----------------------------------------------------

    def migrate_thread(self, thread: int, processor: int,
                       icount: int) -> None:
        """Move a thread to another processor (Section 2.7.4).

        The thread's clock advances by ``D`` so its own stale timestamps on
        the old processor cannot be mistaken for a conflicting thread's.
        """
        if not 0 <= processor < self.config.n_processors:
            raise ValueError("no processor %d" % processor)
        self.thread_proc[thread] = processor
        if not self.config.migration_fix:
            return  # ablation: reproduce the self-race problem
        new_clock = self.clocks[thread] + self.config.d
        self.recorder.clock_changed_before(thread, new_clock, icount)
        self.clocks[thread] = new_clock
        self.clock_changes += 1

    # -- the access pipeline ---------------------------------------------------

    def process(self, event: MemoryEvent) -> None:
        """Process one event: a batch of one (see :meth:`process_batch`).

        Dispatches to this class's batch loop explicitly: subclasses that
        override ``process_batch`` to wrap ``process`` (the directory
        detector) must not recurse through it.
        """
        CordDetector.process_batch(self, (event,))

    def process_batch(self, events) -> None:
        # The hottest loop in the repository: a campaign pushes millions
        # of events through here.  All per-line state lives in the flat
        # ScalarLineStore columns; everything invariant across events --
        # the store's columns, the cache set dicts, geometry constants --
        # is bound to locals once, outside the per-event loop.
        d = self._d
        use_mem = self._use_mem
        store = self.store
        entries_per_line = self._entries_per_line
        line_mask = self._line_mask
        set_shift = self._set_shift
        set_mask = self._set_mask
        tsa = store.ts
        rma = store.rmask
        wma = store.wmask
        cnt = store.count
        flg = store.flags
        fclock = store.fclock
        cache_sets = self._cache_sets
        residency = self._residency
        remote_masks = self._remote_masks
        clocks = self.clocks
        thread_proc = self.thread_proc
        frag_start = self._frag_start
        frag_clock = self.recorder._fragment_clock
        log_append = self.recorder.log.entries.append
        memts = self.memory_ts
        record_race = self.outcome.record_race
        walkers = self._walkers
        fast_hits = 0
        race_checks = 0
        memts_orderings = 0
        clock_changes = 0

        for event in events:
            thread = event.thread
            processor = thread_proc[thread]
            is_write = event.is_write
            is_sync = event.is_sync
            clk0 = clocks[thread]
            address = event.address
            line = address & line_mask
            word = (address - line) >> 2
            wbit = 1 << word
            set_index = (line >> set_shift) & set_mask
            local_set = cache_sets[processor][set_index]

            # Instruction-count overflow guard (Section 2.7.1).
            if event.icount - frag_start[thread] >= 0xFFFFFFFF:
                self._change_clock_before(thread, clk0 + 1, event.icount)
                clk0 = clocks[thread]

            local = local_set.get(line)
            # Fast path (Section 2.7.2), cheapest test first: one flags
            # byte answers data-valid, write-permission, and the filter
            # bits before any timestamp is touched.
            fast = False
            if local is not None:
                fl = flg[local]
                # Synchronization reads always check: Section 2.6's rule
                # -- the thread's clock must become at least D larger
                # than the sync variable's latest write timestamp -- is
                # unconditional, and that timestamp may live only in the
                # memory-timestamp pair.  A write additionally needs
                # coherence write permission: a remote read since our
                # last write makes the next write a bus upgrade, a
                # race-check opportunity hardware cannot skip.
                if is_write:
                    eligible = fl & 12 == 12  # valid + write permission
                    fbit = 2
                else:
                    eligible = fl & 4 and not is_sync
                    fbit = 1
                if eligible:
                    if fl & fbit and fclock[local] == clk0:
                        fast = True
                    else:
                        # Word access bit already set at this clock?
                        # Newest entry first -- it matches nearly always.
                        base = local * entries_per_line
                        n = cnt[local]
                        if n and tsa[base] == clk0:
                            mask = wma[base] if is_write else rma[base]
                            fast = bool((mask >> word) & 1)
                        elif n > 1:
                            for e in range(base + 1, base + n):
                                if tsa[e] == clk0:
                                    mask = (
                                        wma[e] if is_write else rma[e]
                                    )
                                    fast = bool((mask >> word) & 1)
                                    break

            new_clock = clk0
            if fast:
                fast_hits += 1
                clean_line = False
            else:
                race_checks += 1
                clean_line = True
                reported = False
                # Ascending-bit iteration over caches that may hold the
                # line (same visit order as scanning all processors).
                sharers = (
                    residency.get(line, 0) & remote_masks[processor]
                )
                while sharers:
                    low = sharers & -sharers
                    sharers ^= low
                    remote = low.bit_length() - 1
                    rslot = cache_sets[remote][set_index].get(line)
                    if rslot is None:
                        continue  # stale hint (walker drop)
                    n_resident = cnt[rslot]
                    if not n_resident:
                        # Nothing to conflict with, fold, or revoke: a
                        # slot can only be empty right after a write
                        # upgrade, which also cleared every flag bit.
                        continue
                    base = rslot * entries_per_line
                    # One pass gathers both the line-level conflict
                    # verdict (check-filter establishment) and the
                    # per-word candidate timestamps, newest first.
                    candidates = None
                    if is_write:
                        for e in range(base, base + n_resident):
                            rm = rma[e]
                            wm = wma[e]
                            if rm or wm:
                                clean_line = False
                                if (rm | wm) & wbit:
                                    if candidates is None:
                                        candidates = [tsa[e]]
                                    else:
                                        candidates.append(tsa[e])
                    else:
                        for e in range(base, base + n_resident):
                            wm = wma[e]
                            if wm:
                                clean_line = False
                                if wm & wbit:
                                    if candidates is None:
                                        candidates = [tsa[e]]
                                    else:
                                        candidates.append(tsa[e])
                    if is_write:
                        # Write upgrade: revoke the remote filters,
                        # retire its history into the memory timestamps,
                        # and invalidate its data copy.  Keeping the
                        # stale access bits would let a later refetch
                        # fast-path past a conflict (found by the
                        # replay-equivalence property test).
                        if use_mem:
                            for e in range(base, base + n_resident):
                                memts.fold_raw(
                                    tsa[e], rma[e] != 0, wma[e] != 0
                                )
                        cnt[rslot] = 0
                        # Clear read/write filters, data-valid, and
                        # write permission in one mask.
                        flg[rslot] &= 0xF0
                    else:
                        # A remote read revokes write filter+permission.
                        flg[rslot] &= 0xF5
                    if candidates is None:
                        continue
                    for ts in candidates:
                        if is_sync:
                            # Any sync access: at least D past the
                            # conflicting sync timestamp (Section
                            # 2.6's rule).  Writes take the same +D
                            # jump as reads: the ground-truth HB
                            # relation orders same-variable sync
                            # write pairs, and the scalar clock must
                            # over-order every edge it honors or a
                            # later data comparison inside the D
                            # window misreports a race.
                            if ts + d > new_clock:
                                new_clock = ts + d
                        else:
                            if clk0 <= ts and ts + 1 > new_clock:
                                new_clock = ts + 1
                            if clk0 < ts + d and not reported:
                                reported = True
                                record_race(
                                    DataRace(
                                        access=(thread, event.icount),
                                        address=address,
                                        other_thread=None,
                                        detail="clk=%d ts=%d P%d"
                                        % (clk0, ts, remote),
                                    )
                                )
                # Main-memory timestamp comparison (never reported as a
                # race).  Sync accesses take the full +D window so that
                # Main-memory timestamp comparison (never reported as a
                # race).  Sync reads take the full +D window so that
                # synchronization whose release write was displaced to
                # memory still suppresses later false data races (the
                # Figure 7 update, strengthened by Section 2.6's rule);
                # everything else takes the +1 ordering update.  (The
                # snoop path above gives sync *writes* the +D jump too;
                # here the summary is global and starts at 0, so a +D
                # write rule would jump fresh threads' clocks on
                # untouched sync variables.)
                if use_mem:
                    if is_write:
                        mem_ts = memts.read_ts
                        if memts.write_ts > mem_ts:
                            mem_ts = memts.write_ts
                    else:
                        mem_ts = memts.write_ts
                    if is_sync and not is_write:
                        if mem_ts + d > new_clock:
                            new_clock = mem_ts + d
                            memts_orderings += 1
                    elif clk0 <= mem_ts:
                        if mem_ts + 1 > new_clock:
                            new_clock = mem_ts + 1
                            memts_orderings += 1

            if new_clock != clk0:
                # _change_clock_before inlined: flush the completed
                # fragment (pre-instruction boundary -- the triggering
                # access runs at the new clock, so the fragment excludes
                # it).  OrderLog.append's range checks are vacuous here:
                # boundaries are monotone and the overflow guard above
                # ticks the clock before a count can reach 2^32.
                icount = event.icount
                log_append(
                    _LogEntry(
                        frag_clock[thread],
                        thread,
                        icount - frag_start[thread],
                    )
                )
                frag_clock[thread] = new_clock
                frag_start[thread] = icount
                clocks[thread] = new_clock
                clock_changes += 1

            # Record the access in local metadata (inlined MetadataCache
            # insert/MRU-touch; dict order doubles as LRU order).
            if local is None:
                cache = self.snoop.caches[processor]
                slot = store.alloc()
                local_set[line] = slot
                cache.insertions += 1
                pbit = 1 << processor
                residency[line] = residency.get(line, 0) | pbit
                self._on_line_filled(processor, line)
                if len(local_set) > cache._capacity:
                    victim_line = next(iter(local_set))
                    victim_slot = local_set.pop(victim_line)
                    cache.evictions += 1
                    remaining = residency.get(victim_line, 0) & ~pbit
                    if remaining:
                        residency[victim_line] = remaining
                    else:
                        residency.pop(victim_line, None)
                    if use_mem:
                        vbase = victim_slot * entries_per_line
                        for e in range(vbase, vbase + cnt[victim_slot]):
                            memts.fold_raw(
                                tsa[e], rma[e] != 0, wma[e] != 0
                            )
                    self._on_line_evicted(processor, victim_line)
                    store.free(victim_slot)
            else:
                slot = local
                local_set[line] = local_set.pop(line)  # move to MRU
            clock = clocks[thread]
            fl = flg[slot] | 4  # data valid
            if is_write and not fast:
                # Remote copies were invalidated (and their metadata
                # retired) during the snoop above; the local copy is now
                # exclusive.
                fl |= 8
            if not fast and clean_line:
                # Check filter granted at the (possibly updated) clock;
                # any later clock change invalidates it.
                fl |= 3 if is_write else 1
                fclock[slot] = clock
            flg[slot] = fl
            # Common case inline: the word joins an entry already at
            # this clock value.  Allocation of a new entry (and the
            # possible retirement it causes) stays in
            # ScalarLineStore.record_access.
            base = slot * entries_per_line
            n = cnt[slot]
            if n and tsa[base] == clock:
                # Newest entry first: accesses cluster within an epoch,
                # so the front entry matches nearly always.
                if is_write:
                    wma[base] |= wbit
                else:
                    rma[base] |= wbit
            else:
                merged = False
                if n > 1:
                    for e in range(base + 1, base + n):
                        if tsa[e] == clock:
                            if is_write:
                                wma[e] |= wbit
                            else:
                                rma[e] |= wbit
                            merged = True
                            break
                if not merged:
                    # Insertion path: ScalarLineStore.record_access with
                    # its merge scan elided (the scan above already
                    # failed).  A full line retires its oldest entry
                    # into the main-memory timestamps.
                    if n == entries_per_line:
                        last = base + n - 1
                        if use_mem:
                            memts.fold_raw(
                                tsa[last], rma[last] != 0, wma[last] != 0
                            )
                        shift_from = base + n - 1
                    else:
                        cnt[slot] = n + 1
                        shift_from = base + n
                    for e in range(shift_from, base, -1):
                        tsa[e] = tsa[e - 1]
                        rma[e] = rma[e - 1]
                        wma[e] = wma[e - 1]
                    tsa[base] = clock
                    if is_write:
                        rma[base] = 0
                        wma[base] = wbit
                    else:
                        rma[base] = wbit
                        wma[base] = 0

            # Post-retirement increment after synchronization writes
            # (_change_clock_after inlined; post-instruction boundary,
            # so the completed fragment includes the write).
            if is_sync and is_write:
                boundary = event.icount + 1
                log_append(
                    _LogEntry(
                        frag_clock[thread],
                        thread,
                        boundary - frag_start[thread],
                    )
                )
                new_clock = clock + 1
                frag_clock[thread] = new_clock
                frag_start[thread] = boundary
                clocks[thread] = new_clock
                clock_changes += 1

            if walkers is not None:
                self._run_walker(processor)

        self.fast_hits += fast_hits
        self.race_checks += race_checks
        self.memts_orderings += memts_orderings
        self.clock_changes += clock_changes

    def process_packed(self, packed) -> None:
        """The :meth:`process_batch` pipeline over raw trace columns.

        Dispatches to the plan-driven kernel when the trace's analysis
        plans are available (numpy present, plain-geometry line masks,
        no cache walker) and this detector starts cold (no metadata from
        earlier events -- the coherence plan replays the trace from an
        empty cache model), else to the scalar columnar loop.  Both
        paths produce byte-identical outcomes -- reports, order log, and
        counters -- to :meth:`process_batch` on the object view (locked
        in by the packed- and kernel-equivalence suites).
        """
        if self.__class__.process_batch is not CordDetector.process_batch:
            # Subclasses that wrap process() per event (the directory
            # detector's traffic accounting) must keep their hooks:
            # feed them lazily materialized events instead.
            self.process_batch(packed.iter_events())
            return
        plan = None
        if (
            self._walkers is None
            # The walker ticks once per interpreted event; collapsing a
            # run would starve it, so window mode stays on the scalar
            # per-event loop.
            and not self.store.count
            and not self._kernel_spent
            # The kernel keeps per-slot metadata in pass-local arrays
            # (finish() only reads counters, clocks, and the recorder),
            # so it requires -- and does not leave behind -- a live
            # cache model; warm detectors take the scalar loop.
            and self.__class__._on_line_filled
            is CordDetector._on_line_filled
            and self.__class__._on_line_evicted
            is CordDetector._on_line_evicted
        ):
            plan = packed.segment_plan(self._line_mask)
        if plan is None or self._kernel_unsafe(packed):
            self._process_packed_scalar(packed)
            return
        coh_key = self._coherence_key()
        coh = packed.derived_cached(coh_key)
        if coh is None and not self._plan_amortized:
            # Building a coherence plan nobody else will reuse costs
            # about as much as the scalar pass it would accelerate; a
            # sweep driver that knows this geometry appears once (see
            # injection.campaign) clears the hint and we stay scalar.
            self._process_packed_scalar(packed)
            return
        if coh is None:
            line_mask = self._line_mask
            set_shift = self._set_shift
            set_mask = self._set_mask
            capacity = self.snoop.caches[0]._capacity
            coh = packed.derived(
                coh_key,
                lambda: build_coherence_plan(
                    packed,
                    plan,
                    line_mask,
                    set_shift,
                    set_mask,
                    capacity,
                    self.config.n_processors,
                    self.thread_proc,
                ),
            )
        self._process_packed_kernel(packed, plan, coh)
        self._kernel_spent = True

    def _coherence_key(self):
        """The per-trace cache key of this config's coherence plan.

        Everything the replay depends on: geometry, capacity, processor
        count, and the thread placement -- and nothing clock- or
        D-shaped.  Must stay in sync across every builder call site
        (kernel dispatch, the fused sweep pass, the campaign's sharing
        marker); they share it by calling this.
        """
        return (
            "coh",
            self._line_mask & 0xFFFFFFFFFFFFFFFF,
            self._set_shift,
            self._set_mask,
            self.snoop.caches[0]._capacity,
            self.config.n_processors,
            tuple(self.thread_proc),
        )

    def _kernel_unsafe(self, packed) -> bool:
        """Traces the segment kernel must not collapse.

        The instruction-count overflow guard (Section 2.7.1) has to be
        evaluated before every event; such traces (counts at 2^32 and
        beyond) take the scalar loop, which carries the guard inline.
        """
        icounts = packed.hot_columns()[3]
        return bool(icounts) and max(icounts) >= 0xFFFFFFFF

    def _process_packed_scalar(self, packed) -> None:
        """The scalar columnar loop (the kernel path's reference).

        Iterates pre-boxed column lists plus the trace's cached derived
        geometry columns -- no :class:`MemoryEvent` objects exist on
        this path.  The pipeline is :meth:`process_batch`'s, with the
        filter/word-bit hit case split into a dedicated tail that skips
        the provably dead work (no clock change, no flag transition);
        outcomes are byte-identical (locked in by the packed-equivalence
        property and golden-workload tests, counters included).
        """
        d = self._d
        use_mem = self._use_mem
        store = self.store
        entries_per_line = self._entries_per_line
        line_mask = self._line_mask
        set_shift = self._set_shift
        set_mask = self._set_mask
        tsa = store.ts
        rma = store.rmask
        wma = store.wmask
        cnt = store.count
        flg = store.flags
        fclock = store.fclock
        cache_sets = self._cache_sets
        residency = self._residency
        remote_masks = self._remote_masks
        clocks = self.clocks
        thread_proc = self.thread_proc
        frag_start = self._frag_start
        frag_clock = self.recorder._fragment_clock
        log_append = self.recorder.log.entries.append
        memts = self.memory_ts
        record_race = self.outcome.record_race
        walkers = self._walkers
        race_checks = 0
        memts_orderings = 0
        clock_changes = 0
        sets_by_thread = [cache_sets[p] for p in thread_proc]

        threads, addresses, flag_col, icounts = packed.hot_columns()
        lines, words, wbits, set_indexes = packed.geometry_columns(
            line_mask, set_shift, set_mask
        )
        # The overflow guard can only ever fire when some instruction
        # count reaches 2^32 - 1 (fragment starts are non-negative);
        # hoist the test out of the loop for the common case.
        may_overflow = bool(icounts) and max(icounts) >= 0xFFFFFFFF

        for thread, address, eflags, icount, line, word, wbit, \
                set_index in zip(
            threads, addresses, flag_col, icounts,
            lines, words, wbits, set_indexes,
        ):
            clk0 = clocks[thread]
            local_set = sets_by_thread[thread][set_index]

            # Instruction-count overflow guard (Section 2.7.1).
            if may_overflow and icount - frag_start[thread] >= 0xFFFFFFFF:
                self._change_clock_before(thread, clk0 + 1, icount)
                clk0 = clocks[thread]

            local = local_set.get(line)
            is_write = eflags & 1
            # Fast path (Section 2.7.2), cheapest test first: one flags
            # byte answers data-valid, write-permission, and the filter
            # bits before any timestamp is touched.
            if local is not None:
                fast = False
                fl = flg[local]
                if is_write:
                    eligible = fl & 12 == 12  # valid + write permission
                    fbit = 2
                else:
                    eligible = fl & 4 and not eflags & 2
                    fbit = 1
                if eligible:
                    if fl & fbit and fclock[local] == clk0:
                        fast = True
                    else:
                        # Word access bit already set at this clock?
                        # Newest entry first -- it matches nearly always.
                        base = local * entries_per_line
                        n = cnt[local]
                        if n and tsa[base] == clk0:
                            mask = wma[base] if is_write else rma[base]
                            fast = bool((mask >> word) & 1)
                        elif n > 1:
                            for e in range(base + 1, base + n):
                                if tsa[e] == clk0:
                                    mask = (
                                        wma[e] if is_write else rma[e]
                                    )
                                    fast = bool((mask >> word) & 1)
                                    break
                if fast:
                    # Dedicated fast-path tail.  No clock change is
                    # possible here, and the flags byte provably keeps
                    # its value (data-valid -- and write permission for
                    # writes -- were preconditions; filters are only
                    # granted on clean race checks), so all that
                    # remains of the shared tail is the MRU touch, the
                    # word bit at clk0, and the sync-write increment.
                    local_set[line] = local_set.pop(line)  # move to MRU
                    base = local * entries_per_line
                    n = cnt[local]
                    if n and tsa[base] == clk0:
                        if is_write:
                            wma[base] |= wbit
                        else:
                            rma[base] |= wbit
                    else:
                        merged = False
                        if n > 1:
                            for e in range(base + 1, base + n):
                                if tsa[e] == clk0:
                                    if is_write:
                                        wma[e] |= wbit
                                    else:
                                        rma[e] |= wbit
                                    merged = True
                                    break
                        if not merged:
                            if n == entries_per_line:
                                last = base + n - 1
                                if use_mem:
                                    memts.fold_raw(
                                        tsa[last],
                                        rma[last] != 0,
                                        wma[last] != 0,
                                    )
                                shift_from = base + n - 1
                            else:
                                cnt[local] = n + 1
                                shift_from = base + n
                            for e in range(shift_from, base, -1):
                                tsa[e] = tsa[e - 1]
                                rma[e] = rma[e - 1]
                                wma[e] = wma[e - 1]
                            tsa[base] = clk0
                            if is_write:
                                rma[base] = 0
                                wma[base] = wbit
                            else:
                                rma[base] = wbit
                                wma[base] = 0
                    # Post-retirement increment after sync writes.
                    if eflags & 3 == 3:
                        boundary = icount + 1
                        log_append(
                            _LogEntry(
                                frag_clock[thread],
                                thread,
                                boundary - frag_start[thread],
                            )
                        )
                        new_clock = clk0 + 1
                        frag_clock[thread] = new_clock
                        frag_start[thread] = boundary
                        clocks[thread] = new_clock
                        clock_changes += 1
                    if walkers is not None:
                        self._run_walker(thread_proc[thread])
                    continue

            # Race check (the slow path).
            processor = thread_proc[thread]
            is_sync = eflags & 2
            new_clock = clk0
            race_checks += 1
            clean_line = True
            reported = False
            # Ascending-bit iteration over caches that may hold the
            # line (same visit order as scanning all processors).
            sharers = residency.get(line, 0) & remote_masks[processor]
            while sharers:
                low = sharers & -sharers
                sharers ^= low
                remote = low.bit_length() - 1
                rslot = cache_sets[remote][set_index].get(line)
                if rslot is None:
                    continue  # stale hint (walker drop)
                n_resident = cnt[rslot]
                if not n_resident:
                    continue
                base = rslot * entries_per_line
                # One pass gathers both the line-level conflict
                # verdict (check-filter establishment) and the
                # per-word candidate timestamps, newest first.
                candidates = None
                if is_write:
                    for e in range(base, base + n_resident):
                        rm = rma[e]
                        wm = wma[e]
                        if rm or wm:
                            clean_line = False
                            if (rm | wm) & wbit:
                                if candidates is None:
                                    candidates = [tsa[e]]
                                else:
                                    candidates.append(tsa[e])
                else:
                    for e in range(base, base + n_resident):
                        wm = wma[e]
                        if wm:
                            clean_line = False
                            if wm & wbit:
                                if candidates is None:
                                    candidates = [tsa[e]]
                                else:
                                    candidates.append(tsa[e])
                if is_write:
                    if use_mem:
                        for e in range(base, base + n_resident):
                            memts.fold_raw(
                                tsa[e], rma[e] != 0, wma[e] != 0
                            )
                    cnt[rslot] = 0
                    flg[rslot] &= 0xF0
                else:
                    flg[rslot] &= 0xF5
                if candidates is None:
                    continue
                for ts in candidates:
                    if is_sync:
                        # Sync read or write: at least D past the
                        # conflicting sync timestamp (see the object
                        # path for the write rationale).
                        if ts + d > new_clock:
                            new_clock = ts + d
                    else:
                        if clk0 <= ts and ts + 1 > new_clock:
                            new_clock = ts + 1
                        if clk0 < ts + d and not reported:
                            reported = True
                            record_race(
                                DataRace(
                                    access=(thread, icount),
                                    address=address,
                                    other_thread=None,
                                    detail="clk=%d ts=%d P%d"
                                    % (clk0, ts, remote),
                                )
                            )
            if use_mem:
                if is_write:
                    mem_ts = memts.read_ts
                    if memts.write_ts > mem_ts:
                        mem_ts = memts.write_ts
                else:
                    mem_ts = memts.write_ts
                if is_sync and not is_write:
                    if mem_ts + d > new_clock:
                        new_clock = mem_ts + d
                        memts_orderings += 1
                elif clk0 <= mem_ts:
                    if mem_ts + 1 > new_clock:
                        new_clock = mem_ts + 1
                        memts_orderings += 1

            if new_clock != clk0:
                log_append(
                    _LogEntry(
                        frag_clock[thread],
                        thread,
                        icount - frag_start[thread],
                    )
                )
                frag_clock[thread] = new_clock
                frag_start[thread] = icount
                clocks[thread] = new_clock
                clock_changes += 1

            # Record the access in local metadata (inlined MetadataCache
            # insert/MRU-touch; dict order doubles as LRU order).
            if local is None:
                cache = self.snoop.caches[processor]
                slot = store.alloc()
                local_set[line] = slot
                cache.insertions += 1
                pbit = 1 << processor
                residency[line] = residency.get(line, 0) | pbit
                self._on_line_filled(processor, line)
                if len(local_set) > cache._capacity:
                    victim_line = next(iter(local_set))
                    victim_slot = local_set.pop(victim_line)
                    cache.evictions += 1
                    remaining = residency.get(victim_line, 0) & ~pbit
                    if remaining:
                        residency[victim_line] = remaining
                    else:
                        residency.pop(victim_line, None)
                    if use_mem:
                        vbase = victim_slot * entries_per_line
                        for e in range(vbase, vbase + cnt[victim_slot]):
                            memts.fold_raw(
                                tsa[e], rma[e] != 0, wma[e] != 0
                            )
                    self._on_line_evicted(processor, victim_line)
                    store.free(victim_slot)
            else:
                slot = local
                local_set[line] = local_set.pop(line)  # move to MRU
            clock = new_clock  # == clocks[thread] on both update branches
            fl = flg[slot] | 4  # data valid
            if is_write:
                fl |= 8  # write permission
            if clean_line:
                fl |= 3 if is_write else 1
                fclock[slot] = clock
            flg[slot] = fl
            base = slot * entries_per_line
            n = cnt[slot]
            if n and tsa[base] == clock:
                if is_write:
                    wma[base] |= wbit
                else:
                    rma[base] |= wbit
            else:
                merged = False
                if n > 1:
                    for e in range(base + 1, base + n):
                        if tsa[e] == clock:
                            if is_write:
                                wma[e] |= wbit
                            else:
                                rma[e] |= wbit
                            merged = True
                            break
                if not merged:
                    if n == entries_per_line:
                        last = base + n - 1
                        if use_mem:
                            memts.fold_raw(
                                tsa[last], rma[last] != 0, wma[last] != 0
                            )
                        shift_from = base + n - 1
                    else:
                        cnt[slot] = n + 1
                        shift_from = base + n
                    for e in range(shift_from, base, -1):
                        tsa[e] = tsa[e - 1]
                        rma[e] = rma[e - 1]
                        wma[e] = wma[e - 1]
                    tsa[base] = clock
                    if is_write:
                        rma[base] = 0
                        wma[base] = wbit
                    else:
                        rma[base] = wbit
                        wma[base] = 0

            # Post-retirement increment after synchronization writes.
            if is_sync and is_write:
                boundary = icount + 1
                log_append(
                    _LogEntry(
                        frag_clock[thread],
                        thread,
                        boundary - frag_start[thread],
                    )
                )
                new_clock = clock + 1
                frag_clock[thread] = new_clock
                frag_start[thread] = boundary
                clocks[thread] = new_clock
                clock_changes += 1

            if walkers is not None:
                self._run_walker(processor)

        # Every event is either a filter/word-bit hit or a race check.
        self.fast_hits += len(threads) - race_checks
        self.race_checks += race_checks
        self.memts_orderings += memts_orderings
        self.clock_changes += clock_changes

    def _process_packed_kernel(self, packed, plan, coh) -> None:
        """Plan-driven interpretation: coherence precomputed, only the
        configuration-dependent state simulated.

        Two plans, both cached on the trace and shared by every
        configuration of a sweep, strip the per-pass loop down to what
        actually varies with the configuration:

        * the segment plan (:meth:`PackedTrace.segment_plan`) cuts the
          stream into maximal same-thread/same-line data runs with
          their read/write word masks pre-ORed;
        * the coherence plan (:mod:`repro.cord.coherence`) replays the
          cache machine once and hands the pass, per event: the local
          metadata slot, hit and fast-path-eligibility flags, the
          resolved remote candidate slots in snoop order, and the
          eviction victims.

        The pass therefore performs no cache-dictionary operations, no
        MRU bookkeeping, and no residency math; per-slot metadata
        (timestamp entries, check filters) lives in pass-local arrays
        indexed by plan slots, and the memory-timestamp pair is carried
        in locals and written back at the end.  Runs whose events are
        all eligible collapse to two mask ORs when a filter or a
        recorded entry at the current clock covers their masks -- the
        net effect of the scalar fast-path tail replayed ``len(run)``
        times; a run that fails interprets events until a clean race
        check grants the filter, then retries the remainder.

        Never entered in window mode (the walker must tick per event),
        near instruction-count overflow (:meth:`_kernel_unsafe`), or on
        a warm detector (the coherence plan assumes a cold cache
        model); outputs are byte-identical to the scalar paths,
        counters included (kernel-equivalence suite).

        Exceptions raised here (the ``kernel_raise`` chaos fault, or a
        real kernel bug) are caught by the degradation ladder
        (:mod:`repro.resilience.guard`), which rebuilds the detector and
        re-runs the configuration on a slower tier.
        """
        from repro.resilience import faults

        if faults.active() and faults.fire("kernel_raise"):
            raise RuntimeError(
                "chaos: injected kernel-path fault (kernel_raise)"
            )
        d = self._d
        use_mem = self._use_mem
        entries_per_line = self._entries_per_line
        clocks = self.clocks
        frag_start = self._frag_start
        frag_clock = self.recorder._fragment_clock
        log_append = self.recorder.log.entries.append
        memts = self.memory_ts
        record_race = self.outcome.record_race
        fast_hits = 0
        race_checks = 0
        memts_orderings = 0
        clock_changes = 0

        threads, addresses, flag_col, icounts = packed.hot_columns()
        wbits = packed.geometry_columns(
            self._line_mask, self._set_shift, self._set_mask
        )[2]
        starts = plan.starts
        seg_rmasks = plan.read_masks
        seg_wmasks = plan.write_masks
        slots = coh.slots
        cands_col = coh.cands
        evicts = coh.evicts
        collapse_end = coh.collapse_end

        # Pass-local metadata, indexed by plan slots: the flat-store
        # layout (entries_per_line entries per slot, newest first) with
        # the flags byte reduced to its per-configuration part -- the
        # check-filter bits (1 = read, 2 = write).  Data-valid and
        # write-permission live in the plan's eligibility bits.
        n_entries = coh.n_slots * entries_per_line
        tsa = [0] * n_entries
        rma = [0] * n_entries
        wma = [0] * n_entries
        cnt = [0] * coh.n_slots
        filters = bytearray(coh.n_slots)
        fclockp = [0] * coh.n_slots

        # The memory-timestamp pair in locals (fold_raw inlined; folds
        # and update_broadcasts must match the scalar loop exactly).
        mem_read = memts.read_ts
        mem_write = memts.write_ts
        mem_folds = memts.folds
        mem_bcasts = memts.update_broadcasts

        evbs = coh.evb
        for k in range(len(starts) - 1):
            i = starts[k]
            j = starts[k + 1]
            thread = threads[i]
            # The slot is segment-constant: the first access makes the
            # line MRU, so it cannot be evicted by the run's own misses
            # (there are none after the first event).
            sl = slots[i]
            idx = i
            # Attempt collapse only while the remainder plausibly *is*
            # all-fast: on segment entry when the plan marks every
            # event eligible, and again after an interpreted event
            # whose clean race check just granted the check filter.
            attempt = j - i >= 2 and collapse_end[i] == j
            while idx < j:
                if attempt:
                    attempt = False
                    # Collapse attempt for [idx, j).  On the first try
                    # the plan's pre-ORed masks apply; after an
                    # interpreted event the remainder's masks are
                    # re-ORed (the interpreted bits may now live under
                    # a different clock and must not be re-recorded).
                    if idx == i:
                        rmask_seg = seg_rmasks[k]
                        wmask_seg = seg_wmasks[k]
                    else:
                        rmask_seg = 0
                        wmask_seg = 0
                        for r in range(idx, j):
                            if flag_col[r] & 1:
                                wmask_seg |= wbits[r]
                            else:
                                rmask_seg |= wbits[r]
                    # Every event in [idx, j) is eligible (plan
                    # precondition); the run is all-fast when a filter
                    # bit at the current clock or an entry recorded
                    # under it covers each access mode's mask.
                    clk0 = clocks[thread]
                    fl = filters[sl]
                    base = sl * entries_per_line
                    n_ent = cnt[sl]
                    e_at = -1
                    if n_ent:
                        if tsa[base] == clk0:
                            e_at = base
                        else:
                            for e in range(base + 1, base + n_ent):
                                if tsa[e] == clk0:
                                    e_at = e
                                    break
                    filters_now = fclockp[sl] == clk0
                    if (
                        not wmask_seg
                        or (filters_now and fl & 2)
                        or (e_at >= 0 and not wmask_seg & ~wma[e_at])
                    ) and (
                        not rmask_seg
                        or (filters_now and fl & 1)
                        or (e_at >= 0 and not rmask_seg & ~rma[e_at])
                    ):
                        # Whole remainder is fast: OR the masks under
                        # clk0 (the net effect of the scalar fast tail
                        # replayed per event), done.
                        fast_hits += j - idx
                        if e_at < 0:
                            if n_ent == entries_per_line:
                                last = base + n_ent - 1
                                if use_mem:
                                    mem_folds += 1
                                    changed = False
                                    ts = tsa[last]
                                    if rma[last] and ts > mem_read:
                                        mem_read = ts
                                        changed = True
                                    if wma[last] and ts > mem_write:
                                        mem_write = ts
                                        changed = True
                                    if changed:
                                        mem_bcasts += 1
                                shift_from = last
                            else:
                                cnt[sl] = n_ent + 1
                                shift_from = base + n_ent
                            for e in range(shift_from, base, -1):
                                tsa[e] = tsa[e - 1]
                                rma[e] = rma[e - 1]
                                wma[e] = wma[e - 1]
                            tsa[base] = clk0
                            rma[base] = rmask_seg
                            wma[base] = wmask_seg
                        else:
                            rma[e_at] |= rmask_seg
                            wma[e_at] |= wmask_seg
                        break

                # Interpret one event (the scalar pipeline body, with
                # the cache model replaced by plan lookups; no overflow
                # guard -- _kernel_unsafe excluded it -- and no
                # walker).
                cur = idx
                idx += 1
                eflags = flag_col[cur]
                evb = evbs[cur]
                wbit = wbits[cur]
                clk0 = clocks[thread]
                is_write = eflags & 1
                if evb & 1:  # eligible: valid line, mode allowed
                    fast = False
                    fl = filters[sl]
                    if fl & (2 if is_write else 1) \
                            and fclockp[sl] == clk0:
                        fast = True
                    else:
                        # Word access bit already set at this clock?
                        # Newest entry first -- it matches nearly
                        # always.
                        base = sl * entries_per_line
                        n = cnt[sl]
                        if n and tsa[base] == clk0:
                            mask = wma[base] if is_write else rma[base]
                            fast = bool(mask & wbit)
                        elif n > 1:
                            for e in range(base + 1, base + n):
                                if tsa[e] == clk0:
                                    mask = (
                                        wma[e] if is_write else rma[e]
                                    )
                                    fast = bool(mask & wbit)
                                    break
                    if fast:
                        fast_hits += 1
                        base = sl * entries_per_line
                        n = cnt[sl]
                        if n and tsa[base] == clk0:
                            if is_write:
                                wma[base] |= wbit
                            else:
                                rma[base] |= wbit
                        else:
                            merged = False
                            if n > 1:
                                for e in range(base + 1, base + n):
                                    if tsa[e] == clk0:
                                        if is_write:
                                            wma[e] |= wbit
                                        else:
                                            rma[e] |= wbit
                                        merged = True
                                        break
                            if not merged:
                                if n == entries_per_line:
                                    last = base + n - 1
                                    if use_mem:
                                        mem_folds += 1
                                        changed = False
                                        ts = tsa[last]
                                        if rma[last] and ts > mem_read:
                                            mem_read = ts
                                            changed = True
                                        if wma[last] \
                                                and ts > mem_write:
                                            mem_write = ts
                                            changed = True
                                        if changed:
                                            mem_bcasts += 1
                                    shift_from = base + n - 1
                                else:
                                    cnt[sl] = n + 1
                                    shift_from = base + n
                                for e in range(shift_from, base, -1):
                                    tsa[e] = tsa[e - 1]
                                    rma[e] = rma[e - 1]
                                    wma[e] = wma[e - 1]
                                tsa[base] = clk0
                                if is_write:
                                    rma[base] = 0
                                    wma[base] = wbit
                                else:
                                    rma[base] = wbit
                                    wma[base] = 0
                        # Post-retirement increment after sync writes.
                        if eflags & 3 == 3:
                            boundary = icounts[cur] + 1
                            log_append(
                                _LogEntry(
                                    frag_clock[thread],
                                    thread,
                                    boundary - frag_start[thread],
                                )
                            )
                            new_clock = clk0 + 1
                            frag_clock[thread] = new_clock
                            frag_start[thread] = boundary
                            clocks[thread] = new_clock
                            clock_changes += 1
                        continue

                # Race check (the slow path).  Remote candidates come
                # resolved from the plan, in snoop (ascending
                # processor) order; remote coherence flags are plan
                # state, so only the per-configuration effects remain:
                # entry invalidation, filter revocation, and the
                # timestamp comparisons.
                is_sync = eflags & 2
                new_clock = clk0
                race_checks += 1
                clean_line = True
                reported = False
                cand = cands_col[cur]
                if cand is not None:
                    for rslot, remote in cand:
                        n_resident = cnt[rslot]
                        base = rslot * entries_per_line
                        candidates = None
                        if is_write:
                            for e in range(base, base + n_resident):
                                rm = rma[e]
                                wm = wma[e]
                                if rm or wm:
                                    clean_line = False
                                    if (rm | wm) & wbit:
                                        if candidates is None:
                                            candidates = [tsa[e]]
                                        else:
                                            candidates.append(tsa[e])
                            if use_mem:
                                for e in range(
                                    base, base + n_resident
                                ):
                                    mem_folds += 1
                                    changed = False
                                    ts = tsa[e]
                                    if rma[e] and ts > mem_read:
                                        mem_read = ts
                                        changed = True
                                    if wma[e] and ts > mem_write:
                                        mem_write = ts
                                        changed = True
                                    if changed:
                                        mem_bcasts += 1
                            cnt[rslot] = 0
                            filters[rslot] = 0
                        else:
                            for e in range(base, base + n_resident):
                                wm = wma[e]
                                if wm:
                                    clean_line = False
                                    if wm & wbit:
                                        if candidates is None:
                                            candidates = [tsa[e]]
                                        else:
                                            candidates.append(tsa[e])
                            # Revoke the remote write filter.
                            filters[rslot] &= 1
                        if candidates is None:
                            continue
                        for ts in candidates:
                            if is_sync:
                                # Sync read or write: at least D past
                                # the conflicting sync timestamp (see
                                # the object path for the write
                                # rationale).
                                if ts + d > new_clock:
                                    new_clock = ts + d
                            else:
                                if clk0 <= ts and ts + 1 > new_clock:
                                    new_clock = ts + 1
                                if clk0 < ts + d and not reported:
                                    reported = True
                                    record_race(
                                        DataRace(
                                            access=(
                                                thread, icounts[cur]
                                            ),
                                            address=addresses[cur],
                                            other_thread=None,
                                            detail="clk=%d ts=%d P%d"
                                            % (clk0, ts, remote),
                                        )
                                    )
                if use_mem:
                    if is_write:
                        mem_ts = mem_read
                        if mem_write > mem_ts:
                            mem_ts = mem_write
                    else:
                        mem_ts = mem_write
                    if is_sync and not is_write:
                        if mem_ts + d > new_clock:
                            new_clock = mem_ts + d
                            memts_orderings += 1
                    elif clk0 <= mem_ts:
                        if mem_ts + 1 > new_clock:
                            new_clock = mem_ts + 1
                            memts_orderings += 1

                if new_clock != clk0:
                    icount = icounts[cur]
                    log_append(
                        _LogEntry(
                            frag_clock[thread],
                            thread,
                            icount - frag_start[thread],
                        )
                    )
                    frag_clock[thread] = new_clock
                    frag_start[thread] = icount
                    clocks[thread] = new_clock
                    clock_changes += 1

                # Record the access in local metadata.  On a miss the
                # plan already assigned the slot (insertion, MRU, and
                # residency are its business); reset the slot's
                # per-configuration state -- store.alloc() zeroes count
                # and flags -- and retire the eviction victim's
                # entries.
                if not evb & 2:
                    victim = evicts.get(cur)
                    if victim is not None:
                        if use_mem:
                            vbase = victim * entries_per_line
                            for e in range(
                                vbase, vbase + cnt[victim]
                            ):
                                mem_folds += 1
                                changed = False
                                ts = tsa[e]
                                if rma[e] and ts > mem_read:
                                    mem_read = ts
                                    changed = True
                                if wma[e] and ts > mem_write:
                                    mem_write = ts
                                    changed = True
                                if changed:
                                    mem_bcasts += 1
                        cnt[victim] = 0
                        filters[victim] = 0
                    cnt[sl] = 0
                    filters[sl] = 0
                clock = new_clock  # == clocks[thread] on both branches
                if clean_line:
                    filters[sl] |= 3 if is_write else 1
                    fclockp[sl] = clock
                base = sl * entries_per_line
                n = cnt[sl]
                if n and tsa[base] == clock:
                    if is_write:
                        wma[base] |= wbit
                    else:
                        rma[base] |= wbit
                else:
                    merged = False
                    if n > 1:
                        for e in range(base + 1, base + n):
                            if tsa[e] == clock:
                                if is_write:
                                    wma[e] |= wbit
                                else:
                                    rma[e] |= wbit
                                merged = True
                                break
                    if not merged:
                        if n == entries_per_line:
                            last = base + n - 1
                            if use_mem:
                                mem_folds += 1
                                changed = False
                                ts = tsa[last]
                                if rma[last] and ts > mem_read:
                                    mem_read = ts
                                    changed = True
                                if wma[last] and ts > mem_write:
                                    mem_write = ts
                                    changed = True
                                if changed:
                                    mem_bcasts += 1
                            shift_from = base + n - 1
                        else:
                            cnt[sl] = n + 1
                            shift_from = base + n
                        for e in range(shift_from, base, -1):
                            tsa[e] = tsa[e - 1]
                            rma[e] = rma[e - 1]
                            wma[e] = wma[e - 1]
                        tsa[base] = clock
                        if is_write:
                            rma[base] = 0
                            wma[base] = wbit
                        else:
                            rma[base] = wbit
                            wma[base] = 0

                # Post-retirement increment after synchronization
                # writes.
                if is_sync and is_write:
                    boundary = icounts[cur] + 1
                    log_append(
                        _LogEntry(
                            frag_clock[thread],
                            thread,
                            boundary - frag_start[thread],
                        )
                    )
                    new_clock = clock + 1
                    frag_clock[thread] = new_clock
                    frag_start[thread] = boundary
                    clocks[thread] = new_clock
                    clock_changes += 1
                elif clean_line and j - idx >= 2 \
                        and collapse_end[idx] == j:
                    # A clean race check granted the check filter at
                    # the thread's (possibly updated) clock: retry the
                    # collapse on the remainder.
                    attempt = True

        memts.read_ts = mem_read
        memts.write_ts = mem_write
        memts.folds = mem_folds
        memts.update_broadcasts = mem_bcasts
        caches = self.snoop.caches
        for p in range(len(caches)):
            caches[p].insertions += coh.insertions[p]
            caches[p].evictions += coh.evictions[p]
        self.fast_hits += fast_hits
        self.race_checks += race_checks
        self.memts_orderings += memts_orderings
        self.clock_changes += clock_changes

    # -- helpers ---------------------------------------------------------------

    def _on_line_evicted(self, processor: int, line: int) -> None:
        """Hook for subclasses tracking residency (directory protocols)."""

    def _on_line_filled(self, processor: int, line: int) -> None:
        """Hook for subclasses tracking residency (directory protocols)."""

    def _change_clock_before(self, thread: int, new_clock: int,
                             icount: int) -> None:
        self.recorder.clock_changed_before(thread, new_clock, icount)
        self.clocks[thread] = new_clock
        self.clock_changes += 1

    def _change_clock_after(self, thread: int, new_clock: int,
                            icount: int) -> None:
        self.recorder.clock_changed_after(thread, new_clock, icount)
        self.clocks[thread] = new_clock
        self.clock_changes += 1

    def _run_walker(self, processor: int) -> None:
        walker = self._walkers[processor]
        max_clock = max(self.clocks)
        if walker.tick(max_clock):
            headroom = walker.window_headroom(
                max_clock, self._window.window
            )
            if headroom is not None and headroom <= 0:
                # The paper's stall condition; never observed in practice.
                self.window_violations += 1

    # -- completion ---------------------------------------------------------------

    def run_with_migrations(
        self, trace: Trace, schedule
    ) -> "CordOutcome":
        """Process a trace while applying scheduled thread migrations.

        Args:
            trace: the execution to analyze.
            schedule: iterable of ``(event_index, thread, processor)``
                triples, sorted by event index; each migration is applied
                *before* the event at that index is processed, modeling
                the OS rescheduling the thread between instructions.
        """
        pending = sorted(schedule)
        cursor = 0
        per_thread_icount = [0] * self.n_threads
        for event in trace.events:
            while cursor < len(pending) and \
                    pending[cursor][0] <= event.index:
                _, thread, processor = pending[cursor]
                self.migrate_thread(
                    thread, processor, per_thread_icount[thread]
                )
                cursor += 1
            self.process(event)
            per_thread_icount[event.thread] = event.icount + 1
        return self.finish(trace)

    def finish(self, trace: Trace) -> CordOutcome:
        self.outcome.log = self.recorder.finalize(trace.final_icounts)
        self.outcome.final_clocks = list(self.clocks)
        self.outcome.counters.update(
            race_checks=self.race_checks,
            fast_hits=self.fast_hits,
            memts_orderings=self.memts_orderings,
            memts_update_broadcasts=self.memory_ts.update_broadcasts,
            clock_changes=self.clock_changes,
            log_entries=len(self.outcome.log),
            log_bytes=self.outcome.log.size_bytes,
            evictions=self.snoop.total_evictions(),
            window_violations=self.window_violations,
        )
        return self.outcome
