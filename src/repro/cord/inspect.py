"""Detector-state introspection (the debugging views hardware can't give).

During development of this reproduction, every detector bug was found by
dumping exactly these views: per-thread clocks, the memory-timestamp
pair, and one line's metadata across all caches at a chosen moment.
They are packaged here so users diagnosing a missed or unexpected
detection can do the same without poking at private state.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.common.texttable import format_table
from repro.cord.detector import CordDetector
from repro.program.address_space import AddressSpace


@dataclass
class LineView:
    """One processor's metadata for one line, flattened for display."""

    processor: int
    present: bool
    data_valid: bool = False
    write_permission: bool = False
    read_filter: bool = False
    write_filter: bool = False
    entries: List[tuple] = field(default_factory=list)  # (ts, r, w)


def snapshot_line(detector: CordDetector, address: int) -> List[LineView]:
    """Every cache's view of the line containing ``address``."""
    line = detector.geometry.line_address(address)
    store = detector.store
    views = []
    for processor, cache in enumerate(detector.snoop.caches):
        slot = cache.peek(line)
        if slot is None:
            views.append(LineView(processor, present=False))
            continue
        views.append(
            LineView(
                processor,
                present=True,
                data_valid=store.data_valid(slot),
                write_permission=store.write_permission(slot),
                read_filter=store.read_filter(slot),
                write_filter=store.write_filter(slot),
                entries=store.entries(slot),
            )
        )
    return views


def render_line(
    detector: CordDetector,
    address: int,
    space: Optional[AddressSpace] = None,
) -> str:
    """Human-readable table of a line's metadata across all caches."""
    label = hex(address)
    if space is not None:
        name = space.name_of(address)
        if not name.startswith("0x"):
            label = "%s (%s)" % (name, hex(address))
    rows = []
    for view in snapshot_line(detector, address):
        if not view.present:
            rows.append(["P%d" % view.processor, "-", "-", "-", "-"])
            continue
        flags = "".join(
            [
                "V" if view.data_valid else ".",
                "W" if view.write_permission else ".",
                "r" if view.read_filter else ".",
                "w" if view.write_filter else ".",
            ]
        )
        entries = "; ".join(
            "ts=%s r=%#x w=%#x" % entry for entry in view.entries
        ) or "(empty)"
        rows.append(
            ["P%d" % view.processor, "yes", flags,
             str(len(view.entries)), entries]
        )
    return format_table(
        ["cache", "present", "VWrw", "entries", "history"],
        rows,
        title="Line metadata for %s" % label,
    )


def render_state(detector: CordDetector) -> str:
    """Summary of the detector's global state."""
    lines = [
        "clocks          : %s" % detector.clocks,
        "memory ts (r/w) : %d / %d" % (
            detector.memory_ts.read_ts, detector.memory_ts.write_ts),
        "race checks     : %d (fast hits: %d)" % (
            detector.race_checks, detector.fast_hits),
        "clock changes   : %d (log entries so far: %d)" % (
            detector.clock_changes, len(detector.recorder.log)),
        "races reported  : %d" % detector.outcome.raw_count,
        "thread->proc    : %s" % detector.thread_proc,
    ]
    return "\n".join(lines)


def explain_access(
    detector: CordDetector,
    thread: int,
    address: int,
    is_write: bool,
) -> str:
    """What *would* happen if ``thread`` accessed ``address`` right now.

    A dry-run of the check path against current state (no state change):
    reports the candidate timestamps, the memory-timestamp comparison,
    and the resulting verdict under the configured window ``D``.
    """
    clk = detector.clocks[thread]
    d = detector.config.d
    processor = detector.thread_proc[thread]
    line = detector.geometry.line_address(address)
    word = (address - line) // 4
    out = [
        "thread %d (P%d) %s %#x at clk=%d, D=%d"
        % (thread, processor, "WRITE" if is_write else "READ",
           address, clk, d)
    ]
    store = detector.store
    local = detector.snoop.cache_of(processor).peek(line)
    fast = (
        local is not None
        and store.data_valid(local)
        and (not is_write or store.write_permission(local))
        and (
            store.filter_allows(local, is_write, clk)
            or store.bit_already_set(local, clk, word, is_write)
        )
    )
    out.append("fast path: %s" % ("yes (no check)" if fast else "no"))
    if not fast:
        found = False
        for remote, rslot in detector.snoop.snoop(processor, line):
            for ts in store.conflicting_timestamps(rslot, word, is_write):
                found = True
                if clk >= ts + d:
                    verdict = "synchronized"
                elif clk > ts:
                    verdict = "ordered but inside window -> REPORT"
                else:
                    verdict = "unordered -> REPORT + clock update"
                out.append(
                    "  candidate ts=%d from P%d: %s"
                    % (ts, remote, verdict)
                )
        if not found:
            out.append("  no cached conflicting history")
        mem = detector.memory_ts.conflicting_timestamp(is_write)
        relation = (
            "clk <= mem -> ordering update (never reported)"
            if clk <= mem
            else "clk > mem -> no effect"
        )
        out.append("  memory ts=%d: %s" % (mem, relation))
    return "\n".join(out)
