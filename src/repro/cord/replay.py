"""Deterministic replay from an order log (Section 2.7.1 of the paper).

Replay "orders the log by logical time and then proceeds through log
entries one by one": each entry names a thread, the clock value of a
fragment, and how many instructions that fragment retired.  Fragments with
equal clocks are guaranteed non-conflicting by the recorder (conflicting
accesses always produce a clock update), so any tie order is legal; we
break ties by thread id for determinism.

The replayer drives the same :class:`~repro.engine.executor.ExecutionEngine`
the recorder used -- replay is re-execution under log-directed scheduling.
If a fragment blocks on a sync primitive before exhausting its budget, the
replayer simply runs other ready fragments first (this resolves benign
interleavings within equal-clock regions); if no fragment can make
progress, or a thread retires more or fewer instructions than recorded,
a :class:`~repro.common.errors.ReplayDivergenceError` is raised.

:func:`verify_replay` checks the paper's correctness property: the replayed
execution must order every pair of conflicting accesses exactly as the
recorded one did (write order per word, and the write each read observes),
and each thread must perform the identical access sequence.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, Optional

from repro.common.errors import ReplayDivergenceError
from repro.cord.log import OrderLog
from repro.engine.executor import ExecutionEngine
from repro.engine.interceptor import SyncInterceptor
from repro.program.builder import Program
from repro.trace.conflicts import summarize_conflicts
from repro.trace.stream import Trace

#: Safety valve on total replay steps.
DEFAULT_MAX_STEPS = 10_000_000


def replay_trace(
    program: Program,
    log: OrderLog,
    interceptor: Optional[SyncInterceptor] = None,
    max_steps: int = DEFAULT_MAX_STEPS,
) -> Trace:
    """Re-execute ``program`` following ``log``; return the replayed trace.

    Args:
        program: the recorded program (same build, same parameters).
        log: the order log produced by :class:`CordDetector` for the run.
        interceptor: the same fault-injection decisions the recorded run
            used, in replay-deterministic (per-thread indexed) form --
            see :class:`repro.injection.injector.ReplayInjection`.
        max_steps: safety valve.
    """
    fragments: Dict[int, deque] = {
        t: deque() for t in range(program.n_threads)
    }
    for entry in log.entries:
        if entry.thread >= program.n_threads:
            raise ReplayDivergenceError(
                entry.thread, "log names a thread the program lacks"
            )
        fragments[entry.thread].append([entry.clock, entry.count])

    engine = ExecutionEngine(program, interceptor)
    steps = 0
    while any(fragments[t] for t in fragments):
        candidates = sorted(
            (queue[0][0], t)
            for t, queue in fragments.items()
            if queue
        )
        progressed = False
        for _clock, thread in candidates:
            if engine.finished(thread):
                raise ReplayDivergenceError(
                    thread, "log has fragments after the thread finished"
                )
            fragment = fragments[thread][0]
            start = engine.icount(thread)
            target = start + fragment[1]
            blocked = False
            while engine.icount(thread) < target:
                steps += 1
                if steps > max_steps:
                    raise ReplayDivergenceError(
                        thread, "replay exceeded %d steps" % max_steps
                    )
                if engine.finished(thread):
                    raise ReplayDivergenceError(
                        thread,
                        "finished %d instructions early"
                        % (target - engine.icount(thread)),
                    )
                if not engine.step(thread):
                    blocked = True
                    break
            if engine.icount(thread) > start:
                progressed = True
            if blocked:
                fragment[1] = target - engine.icount(thread)
                continue
            fragments[thread].popleft()
            progressed = True
            break
        if not progressed:
            raise ReplayDivergenceError(
                -1, "no fragment can make progress (inconsistent log?)"
            )

    _drain_trailing_steps(engine)
    return engine.build_trace()


def _drain_trailing_steps(engine: ExecutionEngine) -> None:
    """Let generators run to StopIteration after their last logged op.

    Only zero-instruction work may remain (generator epilogue, injected
    skips); retiring a real instruction here means the log was short.
    """
    for thread in range(engine.n_threads):
        while not engine.finished(thread):
            before = engine.icount(thread)
            if not engine.step(thread):
                raise ReplayDivergenceError(
                    thread, "blocked after its last logged fragment"
                )
            if engine.icount(thread) != before:
                raise ReplayDivergenceError(
                    thread, "retired instructions beyond the order log"
                )


@dataclass
class ReplayVerification:
    """Result of comparing a replayed trace against the recorded one."""

    equivalent: bool
    detail: str = ""


def verify_replay(recorded: Trace, replayed: Trace) -> ReplayVerification:
    """Check replay correctness: same per-thread behavior, same conflicts.

    Non-conflicting accesses may reorder globally (concurrent fragments
    with equal clocks), so global event order is *not* compared.
    """
    if recorded.per_thread_sequences() != replayed.per_thread_sequences():
        return ReplayVerification(
            False, "per-thread access sequences differ"
        )
    mine = summarize_conflicts(recorded)
    theirs = summarize_conflicts(replayed)
    if not mine.equivalent_to(theirs):
        return ReplayVerification(
            False, mine.first_difference(theirs) or "conflict orders differ"
        )
    return ReplayVerification(True, "replay equivalent")
