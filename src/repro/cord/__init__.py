"""CORD: the paper's combined order-recording and data-race detector.

* :mod:`repro.cord.config` -- :class:`CordConfig`, all hardware parameters.
* :mod:`repro.cord.detector` -- :class:`CordDetector`, the mechanism itself
  (Section 2): scalar clocks with window ``D``, two-timestamp per-line
  histories with per-word access bits, check filters, main-memory
  timestamps, race-check accounting, and order recording.
* :mod:`repro.cord.log` -- the 8-byte-entry execution-order log format
  (Section 2.7.1) with its binary codec.
* :mod:`repro.cord.recorder` -- clock-change fragment bookkeeping that
  produces the log.
* :mod:`repro.cord.replay` -- deterministic replay from the log, plus the
  equivalence verifier.
"""

from repro.cord.config import CordConfig
from repro.cord.detector import CordDetector, CordOutcome
from repro.cord.directory import DirectoryCordDetector
from repro.cord.inspect import explain_access, render_line, render_state
from repro.cord.log import LogEntry, OrderLog
from repro.cord.recorder import OrderRecorder
from repro.cord.replay import replay_trace, verify_replay

__all__ = [
    "CordConfig",
    "CordDetector",
    "CordOutcome",
    "DirectoryCordDetector",
    "explain_access",
    "render_line",
    "render_state",
    "LogEntry",
    "OrderLog",
    "OrderRecorder",
    "replay_trace",
    "verify_replay",
]
