"""Interval-fused D-sweep analysis: one pass, many CORD configurations.

A D sweep analyzes the same packed trace with detectors that differ in
exactly one integer, the sync-read window ``D``.  Inside one control-flow
trajectory every clock-valued quantity the kernel computes -- thread
clocks, timestamp entries, fragment clocks, memory timestamps -- is an
**affine function of D** (``a + b*D``): values start D-independent, and
every update either copies such a value, adds a constant, or adds ``D``
itself.  The branch decisions, on the other hand, are comparisons of
affine values, and a comparison of two affine (hence linear-in-D)
functions that agrees at both endpoints of an interval agrees everywhere
inside it.

:func:`run_fused_pass` exploits that: it runs the plan-driven kernel
(:meth:`CordDetector._process_packed_kernel`) once, carrying every
clock-valued quantity as a ``(value at D=dlo, value at D=dhi)`` pair and
**guarding every branch** -- a decision that differs between the
endpoints, or an equality test whose sides could cross inside the
interval, raises :class:`Inconsistent` and the caller falls back to
per-configuration passes.  On success the endpoint pairs determine each
affine exactly (two points, slope ``(hi-lo)/(dhi-dlo)``), and
:func:`_materialize` writes bit-exact results -- clocks, order log,
memory timestamps, counters, and race reports -- into every detector of
the group, interior D values included.

Race reports are the one place the pass must not guard: the reporting
predicate ``clk0 < ts + D`` feeds no simulated state (only the report
stream), so differing verdicts between endpoints are *expected* -- they
are the sweep's entire signal.  The pass records every candidate that
fires at either endpoint (linearity: a candidate silent at both
endpoints is silent everywhere inside) in snoop-scan order, and the
materializer replays each site per configuration with the kernel's
first-firing-candidate-per-event semantics.

The fusion entry point (:func:`fuse_cord_detectors`) groups freshly
built detectors that differ only in ``D``, tries the largest sweep
suffix first (trajectories are piecewise in D with splits concentrated
at small D: typically ``{1},{2},{4..}`` or ``{1},{2},{4},{8..}``), and
narrows on aborts; configurations left out of a fused suffix simply take
their normal per-configuration kernel pass.  Everything here is gated
the same way as the kernel (numpy-backed plans available, cold detector,
no window walker) plus ``REPRO_NO_FUSED=1`` as an escape hatch, and is
pinned byte-identical by the kernel-equivalence suites.
"""

from __future__ import annotations

import os
from dataclasses import replace
from typing import Dict, List, Optional, Tuple

from repro.detectors.base import DataRace

__all__ = ["Inconsistent", "fuse_cord_detectors", "fusion_enabled"]


class Inconsistent(Exception):
    """The trajectory is not D-uniform over the attempted interval.

    Attributes:
        progress: fraction of the trace interpreted before the abort
            (drives the caller's narrowing heuristic).
    """

    def __init__(self, progress: float):
        super().__init__("fused pass diverged at %.0f%%" % (100 * progress))
        self.progress = progress


class _Diverged(Exception):
    """Internal guard-failure signal; converted to :class:`Inconsistent`.

    A fresh instance per raise, never a preallocated one: re-raising a
    shared exception instance *chains* tracebacks, pinning every
    aborted pass's frame (and through it the trace, plans, and detector
    group) for the life of the process.  Guard failures are rare, so
    the per-raise allocation is irrelevant.
    """


def fusion_enabled() -> bool:
    """Is the fused sweep pass allowed (``REPRO_NO_FUSED`` unset)?"""
    return os.environ.get("REPRO_NO_FUSED", "") != "1"


class _FusedResult:
    """Endpoint-pair final state of one successful fused pass."""

    __slots__ = (
        "dlo",
        "dhi",
        "clocks_l",
        "clocks_h",
        "frag_clock_l",
        "frag_clock_h",
        "frag_start",
        "log",
        "race_sites",
        "mem_read_l",
        "mem_read_h",
        "mem_write_l",
        "mem_write_h",
        "mem_folds",
        "mem_bcasts",
        "fast_hits",
        "race_checks",
        "memts_orderings",
        "clock_changes",
        # The coherence plan's cache counters, carried so _materialize
        # reads everything from one place.
        "_coh_insertions",
        "_coh_evictions",
    )


def _group_key(det):
    """Detectors fuse when everything but ``D`` matches.

    The configuration (minus ``d``) pins geometry, entry count, window
    mode, and memory-timestamp use; the state snapshot pins "identically
    cold" (fresh builds -- the only callers -- always match it).
    """
    memts = det.memory_ts
    return (
        replace(det.config, d=1),
        det.n_threads,
        tuple(det.clocks),
        tuple(det.recorder._fragment_clock),
        tuple(det.recorder._fragment_start),
        memts.read_ts,
        memts.write_ts,
        memts.folds,
        memts.update_broadcasts,
        len(det.recorder.log.entries),
    )


#: The threshold ladder: each entry bounds the fused range to
#: ``[threshold, max(D)]``; tried in order, narrowing on aborts.
_THRESHOLDS = (4, 8, 16, 32)


def fuse_cord_detectors(detectors, packed, hints=None) -> frozenset:
    """Fuse D-sweep groups among ``detectors`` over ``packed``.

    Returns the ``id()`` set of detectors whose pass was performed here;
    the caller must skip ``process_packed`` for them (their ``finish()``
    still runs normally).  Detectors that cannot fuse -- wrong type,
    warm, windowed, plans unavailable, or trajectory splits -- are left
    untouched.

    ``hints`` is the run-batch axis' cost memo: a mutable dict mapping a
    group signature (group key plus its D values) to the threshold that
    last succeeded for that signature.  Same-suite runs of a campaign
    almost always partition their trajectories the same way, so starting
    the ladder at the remembered threshold skips the aborted attempts
    run 1 already paid for.  Purely a cost policy: every threshold
    materializes exact results, so a stale hint can never change a
    report -- if the hinted range aborts, the ladder narrows as usual.
    """
    from repro.cord.coherence import build_coherence_plan
    from repro.cord.detector import CordDetector

    from repro.resilience import faults

    fused: set = set()
    if not fusion_enabled():
        return frozenset()
    if faults.active() and faults.fire("fused_raise"):
        # Chaos harness: an unexpected crash in the fused tier.  The
        # degradation ladder (repro.resilience.guard) must catch it,
        # rebuild the group, and re-run on the kernel tier.
        raise RuntimeError(
            "chaos: injected fused-path fault (fused_raise)"
        )
    groups: Dict[tuple, List[CordDetector]] = {}
    for det in detectors:
        if type(det) is not CordDetector:
            # Subclasses hook per-event processing; same exclusion as
            # the kernel dispatch.
            continue
        if (
            det._walkers is not None
            or det.store.count
            or det._kernel_spent
            or det.recorder._finalized
        ):
            continue
        groups.setdefault(_group_key(det), []).append(det)

    for gkey, group in groups.items():
        if len(group) < 2:
            continue
        group.sort(key=lambda det: det._d)
        proto = group[0]
        if proto._kernel_unsafe(packed):
            continue
        plan = packed.segment_plan(proto._line_mask)
        if plan is None:  # kernels disabled (no numpy / escape hatch)
            continue
        coh = packed.derived(
            proto._coherence_key(),
            lambda: build_coherence_plan(
                packed,
                plan,
                proto._line_mask,
                proto._set_shift,
                proto._set_mask,
                proto.snoop.caches[0]._capacity,
                proto.config.n_processors,
                proto.thread_proc,
            ),
        )
        # Largest-suffix-first: splits concentrate at small D
        # (trajectories partition as {1},{2},{4..} with occasional
        # {8,16},{32..} tails), so try [4..] and narrow on aborts.  An
        # aborted attempt wastes only its interpreted prefix; success
        # replaces len(suffix) kernel passes with one ~2x pass.
        sig = (gkey, tuple(det._d for det in group))
        ladder = _THRESHOLDS
        if hints is not None:
            hint = hints.get(sig)
            if hint is not None:
                # Start where the last run of this signature succeeded.
                # A wider range than an aborted one would abort too (its
                # trajectories contain the split), so only narrower
                # thresholds remain worth trying after the hinted one.
                ladder = (hint,) + tuple(
                    t for t in _THRESHOLDS if t > hint
                )
        tried = None
        for threshold in ladder:
            suffix = [det for det in group if det._d >= threshold]
            if len(suffix) < 2 or suffix[0]._d == suffix[-1]._d:
                break
            key = (suffix[0]._d, suffix[-1]._d)
            if key == tried:
                continue
            tried = key
            try:
                result = _fused_pass(
                    proto, packed, plan, coh, suffix[0]._d, suffix[-1]._d
                )
            except Inconsistent:
                continue
            if hints is not None:
                hints[sig] = threshold
            for det in suffix:
                _materialize(det, result)
                fused.add(id(det))
            break
    return frozenset(fused)


def _materialize(det, result: _FusedResult) -> None:
    """Write one configuration's exact results out of the endpoint pairs.

    Every pair ``(lo, hi)`` is an affine ``a + b*D`` sampled at ``dlo``
    and ``dhi``; with ``span = dhi - dlo`` the slope is ``(hi-lo)/span``
    (exact by construction -- a remainder would mean the pass's guards
    let a non-affine value through, so it is asserted).
    """
    from repro.cord.detector import _LogEntry

    d = det._d
    span = result.dhi - result.dlo
    rel = d - result.dlo

    def mat(lo: int, hi: int) -> int:
        b, remainder = divmod(hi - lo, span)
        if remainder:
            raise AssertionError(
                "non-affine fused value: lo=%d hi=%d span=%d"
                % (lo, hi, span)
            )
        return lo + b * rel

    det.clocks[:] = map(mat, result.clocks_l, result.clocks_h)
    recorder = det.recorder
    recorder._fragment_clock[:] = map(
        mat, result.frag_clock_l, result.frag_clock_h
    )
    recorder._fragment_start[:] = result.frag_start
    entries = recorder.log.entries
    for flo, fhi, thread, count in result.log:
        entries.append(_LogEntry(mat(flo, fhi), thread, count))

    record_race = det.outcome.record_race
    for thread, icount, address, cl, ch, cands in result.race_sites:
        clk0 = mat(cl, ch)
        for remote, tl, th in cands:
            ts = mat(tl, th)
            if clk0 < ts + d:
                record_race(
                    DataRace(
                        access=(thread, icount),
                        address=address,
                        other_thread=None,
                        detail="clk=%d ts=%d P%d" % (clk0, ts, remote),
                    )
                )
                break

    memts = det.memory_ts
    memts.read_ts = mat(result.mem_read_l, result.mem_read_h)
    memts.write_ts = mat(result.mem_write_l, result.mem_write_h)
    memts.folds = result.mem_folds
    memts.update_broadcasts = result.mem_bcasts
    caches = det.snoop.caches
    coh_ins = result._coh_insertions
    coh_ev = result._coh_evictions
    for p in range(len(caches)):
        caches[p].insertions += coh_ins[p]
        caches[p].evictions += coh_ev[p]
    det.fast_hits += result.fast_hits
    det.race_checks += result.race_checks
    det.memts_orderings += result.memts_orderings
    det.clock_changes += result.clock_changes
    det._kernel_spent = True


def _fused_pass(
    proto, packed, plan, coh, dlo: int, dhi: int
) -> _FusedResult:
    """One endpoint-pair run of the plan-driven kernel over [dlo, dhi].

    Structure-for-structure the same interpretation as
    ``CordDetector._process_packed_kernel`` (keep the two in sync!),
    with every clock-valued variable carried as a lo/hi pair and every
    evaluated comparison guarded:

    * an **ordering** of affine values that agrees at both endpoints
      holds on the whole interval (the difference is linear in D), so
      truth equality between the endpoints is the full guard;
    * an **equality** that holds at both endpoints is an identity (two
      affines agreeing at two points coincide); one that *fails* at both
      endpoints additionally needs the same sign on both differences,
      else the sides could cross -- and be momentarily equal -- inside;
    * guards mirror the concrete loop's short-circuiting exactly: a
      comparison the concrete pass would not evaluate is not guarded
      (no spurious aborts, no missed divergence).

    Word masks, entry counts, check-filter bits, fragment starts, and
    every counter are decision-shaped (identical across the interval
    once all guards pass) and carried once.  Raises :class:`Inconsistent`
    -- with no detector state touched -- when a guard fails.
    """
    d_l = dlo
    d_h = dhi
    use_mem = proto._use_mem
    entries_per_line = proto._entries_per_line
    n_threads = proto.n_threads
    initial = proto.clocks  # group key pinned all members to this state
    clocks_l = list(initial)
    clocks_h = list(initial)
    frag_clock_l = list(proto.recorder._fragment_clock)
    frag_clock_h = list(proto.recorder._fragment_clock)
    frag_start = list(proto.recorder._fragment_start)
    log: List[Tuple[int, int, int, int]] = []
    log_append = log.append
    race_sites: List[tuple] = []
    fast_hits = 0
    race_checks = 0
    memts_orderings = 0
    clock_changes = 0

    threads, addresses, flag_col, icounts = packed.hot_columns()
    wbits = packed.geometry_columns(
        proto._line_mask, proto._set_shift, proto._set_mask
    )[2]
    starts = plan.starts
    seg_rmasks = plan.read_masks
    seg_wmasks = plan.write_masks
    slots = coh.slots
    cands_col = coh.cands
    evicts = coh.evicts
    collapse_end = coh.collapse_end

    n_entries = coh.n_slots * entries_per_line
    tsa_l = [0] * n_entries
    tsa_h = [0] * n_entries
    rma = [0] * n_entries
    wma = [0] * n_entries
    cnt = [0] * coh.n_slots
    filters = bytearray(coh.n_slots)
    fclockp_l = [0] * coh.n_slots
    fclockp_h = [0] * coh.n_slots

    memts = proto.memory_ts
    mem_read_l = mem_read_h = memts.read_ts
    mem_write_l = mem_write_h = memts.write_ts
    mem_folds = memts.folds
    mem_bcasts = memts.update_broadcasts

    abort = _Diverged
    evbs = coh.evb
    k = 0
    try:
        for k in range(len(starts) - 1):
            i = starts[k]
            j = starts[k + 1]
            thread = threads[i]
            sl = slots[i]
            idx = i
            attempt = j - i >= 2 and collapse_end[i] == j
            while idx < j:
                if attempt:
                    attempt = False
                    if idx == i:
                        rmask_seg = seg_rmasks[k]
                        wmask_seg = seg_wmasks[k]
                    else:
                        rmask_seg = 0
                        wmask_seg = 0
                        for r in range(idx, j):
                            if flag_col[r] & 1:
                                wmask_seg |= wbits[r]
                            else:
                                rmask_seg |= wbits[r]
                    cl = clocks_l[thread]
                    ch = clocks_h[thread]
                    fl = filters[sl]
                    base = sl * entries_per_line
                    n_ent = cnt[sl]
                    e_at = -1
                    if n_ent:
                        tl = tsa_l[base]
                        th = tsa_h[base]
                        eq = tl == cl
                        if eq != (th == ch):
                            raise abort
                        if eq:
                            e_at = base
                        else:
                            if (tl < cl) != (th < ch):
                                raise abort
                            for e in range(base + 1, base + n_ent):
                                tl = tsa_l[e]
                                th = tsa_h[e]
                                eq = tl == cl
                                if eq != (th == ch):
                                    raise abort
                                if eq:
                                    e_at = e
                                    break
                                if (tl < cl) != (th < ch):
                                    raise abort
                    filters_now = fclockp_l[sl] == cl
                    if filters_now != (fclockp_h[sl] == ch):
                        raise abort
                    if not filters_now and (fclockp_l[sl] < cl) != (
                        fclockp_h[sl] < ch
                    ):
                        raise abort
                    if (
                        not wmask_seg
                        or (filters_now and fl & 2)
                        or (e_at >= 0 and not wmask_seg & ~wma[e_at])
                    ) and (
                        not rmask_seg
                        or (filters_now and fl & 1)
                        or (e_at >= 0 and not rmask_seg & ~rma[e_at])
                    ):
                        fast_hits += j - idx
                        if e_at < 0:
                            if n_ent == entries_per_line:
                                last = base + n_ent - 1
                                if use_mem:
                                    mem_folds += 1
                                    changed = False
                                    tl = tsa_l[last]
                                    th = tsa_h[last]
                                    if rma[last]:
                                        t = tl > mem_read_l
                                        if t != (th > mem_read_h):
                                            raise abort
                                        if t:
                                            mem_read_l = tl
                                            mem_read_h = th
                                            changed = True
                                    if wma[last]:
                                        t = tl > mem_write_l
                                        if t != (th > mem_write_h):
                                            raise abort
                                        if t:
                                            mem_write_l = tl
                                            mem_write_h = th
                                            changed = True
                                    if changed:
                                        mem_bcasts += 1
                                shift_from = last
                            else:
                                cnt[sl] = n_ent + 1
                                shift_from = base + n_ent
                            for e in range(shift_from, base, -1):
                                tsa_l[e] = tsa_l[e - 1]
                                tsa_h[e] = tsa_h[e - 1]
                                rma[e] = rma[e - 1]
                                wma[e] = wma[e - 1]
                            tsa_l[base] = cl
                            tsa_h[base] = ch
                            rma[base] = rmask_seg
                            wma[base] = wmask_seg
                        else:
                            rma[e_at] |= rmask_seg
                            wma[e_at] |= wmask_seg
                        break

                cur = idx
                idx += 1
                eflags = flag_col[cur]
                evb = evbs[cur]
                wbit = wbits[cur]
                cl = clocks_l[thread]
                ch = clocks_h[thread]
                is_write = eflags & 1
                if evb & 1:
                    fast = False
                    fl = filters[sl]
                    if fl & (2 if is_write else 1):
                        fast = fclockp_l[sl] == cl
                        if fast != (fclockp_h[sl] == ch):
                            raise abort
                        if not fast and (fclockp_l[sl] < cl) != (
                            fclockp_h[sl] < ch
                        ):
                            raise abort
                    if not fast:
                        base = sl * entries_per_line
                        n = cnt[sl]
                        if n:
                            tl = tsa_l[base]
                            th = tsa_h[base]
                            eq = tl == cl
                            if eq != (th == ch):
                                raise abort
                            if eq:
                                mask = wma[base] if is_write else rma[base]
                                fast = bool(mask & wbit)
                            else:
                                if (tl < cl) != (th < ch):
                                    raise abort
                                for e in range(base + 1, base + n):
                                    tl = tsa_l[e]
                                    th = tsa_h[e]
                                    eq = tl == cl
                                    if eq != (th == ch):
                                        raise abort
                                    if eq:
                                        mask = (
                                            wma[e] if is_write else rma[e]
                                        )
                                        fast = bool(mask & wbit)
                                        break
                                    if (tl < cl) != (th < ch):
                                        raise abort
                    if fast:
                        fast_hits += 1
                        base = sl * entries_per_line
                        n = cnt[sl]
                        # Record-search: guarded like the check above
                        # (when ``fast`` came from the filter the check
                        # skipped the entry scan, so these comparisons
                        # are evaluated here for the first time).
                        hit = False
                        if n:
                            tl = tsa_l[base]
                            th = tsa_h[base]
                            eq = tl == cl
                            if eq != (th == ch):
                                raise abort
                            if eq:
                                hit = True
                                if is_write:
                                    wma[base] |= wbit
                                else:
                                    rma[base] |= wbit
                            elif (tl < cl) != (th < ch):
                                raise abort
                        if not hit:
                            merged = False
                            if n > 1:
                                for e in range(base + 1, base + n):
                                    tl = tsa_l[e]
                                    th = tsa_h[e]
                                    eq = tl == cl
                                    if eq != (th == ch):
                                        raise abort
                                    if eq:
                                        if is_write:
                                            wma[e] |= wbit
                                        else:
                                            rma[e] |= wbit
                                        merged = True
                                        break
                                    if (tl < cl) != (th < ch):
                                        raise abort
                            if not merged:
                                if n == entries_per_line:
                                    last = base + n - 1
                                    if use_mem:
                                        mem_folds += 1
                                        changed = False
                                        tl = tsa_l[last]
                                        th = tsa_h[last]
                                        if rma[last]:
                                            t = tl > mem_read_l
                                            if t != (th > mem_read_h):
                                                raise abort
                                            if t:
                                                mem_read_l = tl
                                                mem_read_h = th
                                                changed = True
                                        if wma[last]:
                                            t = tl > mem_write_l
                                            if t != (th > mem_write_h):
                                                raise abort
                                            if t:
                                                mem_write_l = tl
                                                mem_write_h = th
                                                changed = True
                                        if changed:
                                            mem_bcasts += 1
                                    shift_from = base + n - 1
                                else:
                                    cnt[sl] = n + 1
                                    shift_from = base + n
                                for e in range(shift_from, base, -1):
                                    tsa_l[e] = tsa_l[e - 1]
                                    tsa_h[e] = tsa_h[e - 1]
                                    rma[e] = rma[e - 1]
                                    wma[e] = wma[e - 1]
                                tsa_l[base] = cl
                                tsa_h[base] = ch
                                if is_write:
                                    rma[base] = 0
                                    wma[base] = wbit
                                else:
                                    rma[base] = wbit
                                    wma[base] = 0
                        if eflags & 3 == 3:
                            boundary = icounts[cur] + 1
                            log_append(
                                (
                                    frag_clock_l[thread],
                                    frag_clock_h[thread],
                                    thread,
                                    boundary - frag_start[thread],
                                )
                            )
                            new_l = cl + 1
                            new_h = ch + 1
                            frag_clock_l[thread] = new_l
                            frag_clock_h[thread] = new_h
                            frag_start[thread] = boundary
                            clocks_l[thread] = new_l
                            clocks_h[thread] = new_h
                            clock_changes += 1
                        continue

                is_sync = eflags & 2
                new_l = cl
                new_h = ch
                race_checks += 1
                clean_line = True
                site_cands = None
                cand = cands_col[cur]
                if cand is not None:
                    for rslot, remote in cand:
                        n_resident = cnt[rslot]
                        base = rslot * entries_per_line
                        candidates = None
                        if is_write:
                            for e in range(base, base + n_resident):
                                rm = rma[e]
                                wm = wma[e]
                                if rm or wm:
                                    clean_line = False
                                    if (rm | wm) & wbit:
                                        pair = (tsa_l[e], tsa_h[e])
                                        if candidates is None:
                                            candidates = [pair]
                                        else:
                                            candidates.append(pair)
                            if use_mem:
                                for e in range(base, base + n_resident):
                                    mem_folds += 1
                                    changed = False
                                    tl = tsa_l[e]
                                    th = tsa_h[e]
                                    if rma[e]:
                                        t = tl > mem_read_l
                                        if t != (th > mem_read_h):
                                            raise abort
                                        if t:
                                            mem_read_l = tl
                                            mem_read_h = th
                                            changed = True
                                    if wma[e]:
                                        t = tl > mem_write_l
                                        if t != (th > mem_write_h):
                                            raise abort
                                        if t:
                                            mem_write_l = tl
                                            mem_write_h = th
                                            changed = True
                                    if changed:
                                        mem_bcasts += 1
                            cnt[rslot] = 0
                            filters[rslot] = 0
                        else:
                            for e in range(base, base + n_resident):
                                wm = wma[e]
                                if wm:
                                    clean_line = False
                                    if wm & wbit:
                                        pair = (tsa_l[e], tsa_h[e])
                                        if candidates is None:
                                            candidates = [pair]
                                        else:
                                            candidates.append(pair)
                            filters[rslot] &= 1
                        if candidates is None:
                            continue
                        for tl, th in candidates:
                            if is_sync:
                                # Sync read or write: at least D past
                                # the conflicting sync timestamp (see
                                # the scalar object path for the write
                                # rationale).
                                t = tl + d_l > new_l
                                if t != (th + d_h > new_h):
                                    raise abort
                                if t:
                                    new_l = tl + d_l
                                    new_h = th + d_h
                            else:
                                t = cl <= tl
                                if t != (ch <= th):
                                    raise abort
                                if t:
                                    t2 = tl + 1 > new_l
                                    if t2 != (th + 1 > new_h):
                                        raise abort
                                    if t2:
                                        new_l = tl + 1
                                        new_h = th + 1
                                # The report predicate feeds no state:
                                # unguarded by design (see module doc).
                                if cl < tl + d_l or ch < th + d_h:
                                    if site_cands is None:
                                        site_cands = []
                                    site_cands.append((remote, tl, th))
                    if site_cands is not None:
                        race_sites.append(
                            (
                                thread,
                                icounts[cur],
                                addresses[cur],
                                cl,
                                ch,
                                site_cands,
                            )
                        )
                if use_mem:
                    if is_write:
                        mem_l = mem_read_l
                        mem_h = mem_read_h
                        t = mem_write_l > mem_l
                        if t != (mem_write_h > mem_h):
                            raise abort
                        if t:
                            mem_l = mem_write_l
                            mem_h = mem_write_h
                    else:
                        mem_l = mem_write_l
                        mem_h = mem_write_h
                    if is_sync and not is_write:
                        t = mem_l + d_l > new_l
                        if t != (mem_h + d_h > new_h):
                            raise abort
                        if t:
                            new_l = mem_l + d_l
                            new_h = mem_h + d_h
                            memts_orderings += 1
                    else:
                        t = cl <= mem_l
                        if t != (ch <= mem_h):
                            raise abort
                        if t:
                            t2 = mem_l + 1 > new_l
                            if t2 != (mem_h + 1 > new_h):
                                raise abort
                            if t2:
                                new_l = mem_l + 1
                                new_h = mem_h + 1
                                memts_orderings += 1

                # new_clock >= clk0 always (it only ever rises), so the
                # != below is an ordering and truth equality suffices.
                t = new_l != cl
                if t != (new_h != ch):
                    raise abort
                if t:
                    icount = icounts[cur]
                    log_append(
                        (
                            frag_clock_l[thread],
                            frag_clock_h[thread],
                            thread,
                            icount - frag_start[thread],
                        )
                    )
                    frag_clock_l[thread] = new_l
                    frag_clock_h[thread] = new_h
                    frag_start[thread] = icount
                    clocks_l[thread] = new_l
                    clocks_h[thread] = new_h
                    clock_changes += 1

                if not evb & 2:
                    victim = evicts.get(cur)
                    if victim is not None:
                        if use_mem:
                            vbase = victim * entries_per_line
                            for e in range(vbase, vbase + cnt[victim]):
                                mem_folds += 1
                                changed = False
                                tl = tsa_l[e]
                                th = tsa_h[e]
                                if rma[e]:
                                    t = tl > mem_read_l
                                    if t != (th > mem_read_h):
                                        raise abort
                                    if t:
                                        mem_read_l = tl
                                        mem_read_h = th
                                        changed = True
                                if wma[e]:
                                    t = tl > mem_write_l
                                    if t != (th > mem_write_h):
                                        raise abort
                                    if t:
                                        mem_write_l = tl
                                        mem_write_h = th
                                        changed = True
                                if changed:
                                    mem_bcasts += 1
                        cnt[victim] = 0
                        filters[victim] = 0
                    cnt[sl] = 0
                    filters[sl] = 0
                clo = new_l
                chi = new_h
                if clean_line:
                    filters[sl] |= 3 if is_write else 1
                    fclockp_l[sl] = clo
                    fclockp_h[sl] = chi
                base = sl * entries_per_line
                n = cnt[sl]
                hit = False
                if n:
                    tl = tsa_l[base]
                    th = tsa_h[base]
                    eq = tl == clo
                    if eq != (th == chi):
                        raise abort
                    if eq:
                        hit = True
                        if is_write:
                            wma[base] |= wbit
                        else:
                            rma[base] |= wbit
                    elif (tl < clo) != (th < chi):
                        raise abort
                if not hit:
                    merged = False
                    if n > 1:
                        for e in range(base + 1, base + n):
                            tl = tsa_l[e]
                            th = tsa_h[e]
                            eq = tl == clo
                            if eq != (th == chi):
                                raise abort
                            if eq:
                                if is_write:
                                    wma[e] |= wbit
                                else:
                                    rma[e] |= wbit
                                merged = True
                                break
                            if (tl < clo) != (th < chi):
                                raise abort
                    if not merged:
                        if n == entries_per_line:
                            last = base + n - 1
                            if use_mem:
                                mem_folds += 1
                                changed = False
                                tl = tsa_l[last]
                                th = tsa_h[last]
                                if rma[last]:
                                    t = tl > mem_read_l
                                    if t != (th > mem_read_h):
                                        raise abort
                                    if t:
                                        mem_read_l = tl
                                        mem_read_h = th
                                        changed = True
                                if wma[last]:
                                    t = tl > mem_write_l
                                    if t != (th > mem_write_h):
                                        raise abort
                                    if t:
                                        mem_write_l = tl
                                        mem_write_h = th
                                        changed = True
                                if changed:
                                    mem_bcasts += 1
                            shift_from = base + n - 1
                        else:
                            cnt[sl] = n + 1
                            shift_from = base + n
                        for e in range(shift_from, base, -1):
                            tsa_l[e] = tsa_l[e - 1]
                            tsa_h[e] = tsa_h[e - 1]
                            rma[e] = rma[e - 1]
                            wma[e] = wma[e - 1]
                        tsa_l[base] = clo
                        tsa_h[base] = chi
                        if is_write:
                            rma[base] = 0
                            wma[base] = wbit
                        else:
                            rma[base] = wbit
                            wma[base] = 0

                if is_sync and is_write:
                    boundary = icounts[cur] + 1
                    log_append(
                        (
                            frag_clock_l[thread],
                            frag_clock_h[thread],
                            thread,
                            boundary - frag_start[thread],
                        )
                    )
                    new_l = clo + 1
                    new_h = chi + 1
                    frag_clock_l[thread] = new_l
                    frag_clock_h[thread] = new_h
                    frag_start[thread] = boundary
                    clocks_l[thread] = new_l
                    clocks_h[thread] = new_h
                    clock_changes += 1
                elif clean_line and j - idx >= 2 \
                        and collapse_end[idx] == j:
                    attempt = True
    except _Diverged:
        n = len(threads)
        raise Inconsistent(starts[k] / n if n else 1.0) from None

    result = _FusedResult()
    result.dlo = dlo
    result.dhi = dhi
    result.clocks_l = clocks_l
    result.clocks_h = clocks_h
    result.frag_clock_l = frag_clock_l
    result.frag_clock_h = frag_clock_h
    result.frag_start = frag_start
    result.log = log
    result.race_sites = race_sites
    result.mem_read_l = mem_read_l
    result.mem_read_h = mem_read_h
    result.mem_write_l = mem_write_l
    result.mem_write_h = mem_write_h
    result.mem_folds = mem_folds
    result.mem_bcasts = mem_bcasts
    result.fast_hits = fast_hits
    result.race_checks = race_checks
    result.memts_orderings = memts_orderings
    result.clock_changes = clock_changes
    result._coh_insertions = coh.insertions
    result._coh_evictions = coh.evictions
    return result
