"""Order recording: fragments between clock changes.

The recorder tracks, per thread, the clock value of the *current fragment*
and the instruction count at which that fragment started.  When the
detector changes a thread's clock it tells the recorder, which appends a
log entry covering the completed fragment (Section 2.7.1).

Two boundary flavors exist, both derived from where the paper timestamps
accesses:

* A **pre-instruction** change (race update or sync-read window update):
  the triggering access executes at the *new* clock -- it is the first
  instruction of the new fragment -- so the completed fragment excludes it.
* A **post-instruction** change (the increment following a synchronization
  write): the write executed at the old clock, so the completed fragment
  includes it.

The 32-bit instruction-count field can overflow; the paper simply ticks
the clock when the count is about to wrap.  The recorder implements the
same guard.
"""

from __future__ import annotations

from typing import List

from repro.common.errors import SimulationError
from repro.cord.log import OrderLog

_COUNT_GUARD = (1 << 32) - 1


class OrderRecorder:
    """Per-thread fragment bookkeeping feeding an :class:`OrderLog`."""

    def __init__(self, n_threads: int, initial_clock: int = 1):
        self.log = OrderLog(initial_clock)
        self._fragment_clock: List[int] = [initial_clock] * n_threads
        self._fragment_start: List[int] = [0] * n_threads
        self._finalized = False

    def fragment_clock(self, thread: int) -> int:
        """Clock value the thread's current fragment runs at."""
        return self._fragment_clock[thread]

    # -- boundaries -----------------------------------------------------------

    def clock_changed_before(
        self, thread: int, new_clock: int, icount: int
    ) -> None:
        """Clock changed just before the instruction at ``icount`` executes."""
        self._boundary(thread, new_clock, icount)

    def clock_changed_after(
        self, thread: int, new_clock: int, icount: int
    ) -> None:
        """Clock changed just after the instruction at ``icount`` retired."""
        self._boundary(thread, new_clock, icount + 1)

    def _boundary(self, thread: int, new_clock: int, boundary: int) -> None:
        if self._finalized:
            raise SimulationError("recorder already finalized")
        count = boundary - self._fragment_start[thread]
        if count < 0:
            raise SimulationError(
                "fragment boundary moved backwards in thread %d" % thread
            )
        self.log.append(self._fragment_clock[thread], thread, count)
        self._fragment_clock[thread] = new_clock
        self._fragment_start[thread] = boundary

    def count_would_overflow(self, thread: int, icount: int) -> bool:
        """Is the current fragment's instruction count at the 32-bit limit?

        When true, the detector ticks the thread's clock (a benign change
        that is "compatible with correct order-recording", Section 2.7.1).
        """
        return icount - self._fragment_start[thread] >= _COUNT_GUARD

    # -- termination ------------------------------------------------------------

    def finalize(self, final_icounts: List[int]) -> OrderLog:
        """Flush every thread's last fragment and return the log."""
        if self._finalized:
            return self.log
        for thread, final in enumerate(final_icounts):
            count = final - self._fragment_start[thread]
            if count > 0:
                self.log.append(
                    self._fragment_clock[thread], thread, count
                )
        self._finalized = True
        return self.log
