"""The execution-order log (Section 2.7.1 of the paper).

When a thread's logical clock changes, CORD appends an entry containing the
*previous* clock value, the thread id, and the number of instructions
executed with that clock value.  The hardware format is eight bytes per
entry: 16-bit thread id, 16-bit clock value, 32-bit instruction count.

The in-memory :class:`OrderLog` keeps unbounded clock values (the
functional model never truncates), and the binary codec reproduces the
hardware format: clocks are truncated to 16 bits on encode and expanded on
decode with per-thread sliding-window arithmetic, which is exact as long as
consecutive clock values of a thread advance by less than 2^16 -- the
invariant the cache walker maintains in real hardware.  Round-trip equality
is asserted by the test suite on every experiment log.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Dict, Iterator, List

from repro.common.errors import LogFormatError

#: struct layout: little-endian u16 thread, u16 clock, u32 count.
_ENTRY_STRUCT = struct.Struct("<HHI")

#: Bytes per log entry (the paper's figure).
ENTRY_BYTES = _ENTRY_STRUCT.size

_CLOCK_MOD = 1 << 16
_COUNT_LIMIT = 1 << 32
_THREAD_LIMIT = 1 << 16


@dataclass(frozen=True)
class LogEntry:
    """One order-log record.

    Attributes:
        clock: the clock value the fragment executed with (unbounded form).
        thread: thread id.
        count: instructions executed at that clock value.
    """

    clock: int
    thread: int
    count: int


class OrderLog:
    """Append-only execution-order log with the 8-byte binary codec."""

    def __init__(self, initial_clock: int = 1):
        self.entries: List[LogEntry] = []
        #: Clock value threads start at; the decoder anchors expansion here.
        self.initial_clock = initial_clock

    def append(self, clock: int, thread: int, count: int) -> None:
        if count < 0:
            raise LogFormatError("negative instruction count %d" % count)
        if count >= _COUNT_LIMIT:
            raise LogFormatError(
                "instruction count %d overflows 32 bits; the recorder must "
                "tick the clock before this happens (Section 2.7.1)" % count
            )
        if not 0 <= thread < _THREAD_LIMIT:
            raise LogFormatError("thread id %d overflows 16 bits" % thread)
        self.entries.append(LogEntry(clock, thread, count))

    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self) -> Iterator[LogEntry]:
        return iter(self.entries)

    @property
    def size_bytes(self) -> int:
        """Size of the binary form (the paper reports < 1 MB per run)."""
        return len(self.entries) * ENTRY_BYTES

    def bytes_per_kilo_instruction(self, total_instructions: int) -> float:
        """Log growth rate: bytes per thousand executed instructions.

        The paper's compactness claim in rate form -- a Splash-2 run of
        hundreds of millions of instructions stays under 1 MB, i.e. a
        few bytes per kilo-instruction; this accessor lets users check
        their own workloads against that budget.
        """
        if total_instructions <= 0:
            return 0.0
        return 1000.0 * self.size_bytes / total_instructions

    def entries_of_thread(self, thread: int) -> List[LogEntry]:
        return [e for e in self.entries if e.thread == thread]

    # -- binary codec ----------------------------------------------------------

    def encode(self) -> bytes:
        """Hardware binary form: 16-bit truncated clocks."""
        parts = []
        for entry in self.entries:
            parts.append(
                _ENTRY_STRUCT.pack(
                    entry.thread, entry.clock % _CLOCK_MOD, entry.count
                )
            )
        return b"".join(parts)

    @classmethod
    def decode(cls, data: bytes, initial_clock: int = 1) -> "OrderLog":
        """Expand a binary log back to unbounded clock values.

        Per-thread clocks are strictly increasing, and hardware guarantees
        consecutive values differ by less than 2^16 (sliding window), so
        each truncated value expands to ``prev + ((trunc - prev) mod 2^16)``
        with a zero delta meaning "unchanged" (repeated clock values do not
        occur per thread: every entry is emitted by a clock *change*, but
        the first fragment may run at the initial clock).
        """
        if len(data) % ENTRY_BYTES:
            raise LogFormatError(
                "log length %d is not a multiple of %d bytes"
                % (len(data), ENTRY_BYTES)
            )
        log = cls(initial_clock)
        prev: Dict[int, int] = {}
        for offset in range(0, len(data), ENTRY_BYTES):
            thread, trunc, count = _ENTRY_STRUCT.unpack_from(data, offset)
            anchor = prev.get(thread, initial_clock)
            delta = (trunc - anchor) % _CLOCK_MOD
            clock = anchor + delta
            prev[thread] = clock
            log.append(clock, thread, count)
        return log
