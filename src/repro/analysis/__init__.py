"""Analysis utilities for detection results.

Turns raw :class:`~repro.detectors.base.DetectionOutcome` objects into the
reports a developer debugging a real program would want: races grouped by
the *variable* (allocation name) they occurred on, per-thread breakdowns,
and a rendered summary -- the "replayed, analyzed, and the problem
repaired" step the paper's problem-detection metric is about.
"""

from repro.analysis.area import (
    AreaModel,
    cord_area,
    per_line_vector_area,
    per_word_vector_area,
    scaling_table,
)
from repro.analysis.report import RaceGroup, RaceReport, build_report

__all__ = [
    "AreaModel",
    "RaceGroup",
    "RaceReport",
    "build_report",
    "cord_area",
    "per_line_vector_area",
    "per_word_vector_area",
    "scaling_table",
]
