"""Hardware area-overhead arithmetic (Sections 2.3-2.4 of the paper).

The paper justifies its design with cache-area numbers:

* per-word vector timestamps (4 x 16-bit components) are a **200 %**
  overhead over the cache's data area;
* per-line vector timestamps -- two 4x16-bit entries per 64-byte line,
  each with per-word read/write access bits -- cost **38 %**;
* CORD's scalar scheme -- two 16-bit timestamps per line with the same
  access bits -- costs **19 %**, independent of the thread count.

This module reproduces that arithmetic as a parametric model so the
claims are checkable (and so the scaling argument -- vector state grows
linearly with supported threads, scalar state does not -- is executable).
All figures are metadata bits relative to data bits; tags/valid/coherence
state are excluded on both sides, as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import ConfigError

#: Paper baseline: 64-byte lines, 4-byte words, 16-bit timestamp scalars.
PAPER_LINE_BYTES = 64
PAPER_WORD_BYTES = 4
PAPER_TIMESTAMP_BITS = 16
PAPER_ENTRIES_PER_LINE = 2


@dataclass(frozen=True)
class AreaModel:
    """Metadata-area calculator for one timestamping scheme.

    Attributes:
        line_bytes: cache line size.
        word_bytes: word granularity of access bits.
        timestamp_bits: width of one scalar timestamp component.
        n_threads: vector width (1 for scalar schemes).
        entries: timestamp entries kept (per word or per line).
        per_word: True for per-word timestamps, False for per-line
            timestamps with per-word access bits.
        access_bits_per_word: read/write bits per word per entry (2 in
            the paper; 0 for the per-word scheme, whose timestamps are
            already word-granular).
        check_filter_bits: per-line filter bits (CORD has 2; the paper's
            area figures exclude them, so the default here is 0 and
            :func:`cord_area` reports both variants).
    """

    line_bytes: int = PAPER_LINE_BYTES
    word_bytes: int = PAPER_WORD_BYTES
    timestamp_bits: int = PAPER_TIMESTAMP_BITS
    n_threads: int = 1
    entries: int = PAPER_ENTRIES_PER_LINE
    per_word: bool = False
    access_bits_per_word: int = 2
    check_filter_bits: int = 0

    def __post_init__(self):
        if self.line_bytes <= 0 or self.line_bytes % self.word_bytes:
            raise ConfigError("line size must be a multiple of word size")
        if self.n_threads < 1 or self.entries < 1:
            raise ConfigError("threads and entries must be >= 1")

    @property
    def words_per_line(self) -> int:
        return self.line_bytes // self.word_bytes

    @property
    def data_bits_per_line(self) -> int:
        return self.line_bytes * 8

    @property
    def timestamp_bits_per_stamp(self) -> int:
        """One full timestamp: scalar, or one component per thread."""
        return self.timestamp_bits * self.n_threads

    @property
    def metadata_bits_per_line(self) -> int:
        if self.per_word:
            stamps = (
                self.words_per_line
                * self.entries
                * self.timestamp_bits_per_stamp
            )
            bits = self.words_per_line * self.access_bits_per_word * \
                self.entries if self.access_bits_per_word else 0
            return stamps + bits + self.check_filter_bits
        stamps = self.entries * self.timestamp_bits_per_stamp
        access = (
            self.entries
            * self.words_per_line
            * self.access_bits_per_word
        )
        return stamps + access + self.check_filter_bits

    @property
    def overhead(self) -> float:
        """Metadata bits as a fraction of the line's data bits."""
        return self.metadata_bits_per_line / self.data_bits_per_line


def per_word_vector_area(n_threads: int = 4) -> AreaModel:
    """The rejected baseline: one vector timestamp per word.

    With four 16-bit components this is the paper's "200 % cache area
    overhead" (Section 2.3): one 64-bit stamp per 32-bit word.
    """
    return AreaModel(
        n_threads=n_threads,
        per_word=True,
        entries=1,
        access_bits_per_word=0,
    )


def per_line_vector_area(n_threads: int = 4) -> AreaModel:
    """Two per-line vector timestamps + per-word access bits: 38 %."""
    return AreaModel(n_threads=n_threads)


def cord_area(include_filters: bool = False) -> AreaModel:
    """CORD's scalar scheme: 19 %, independent of thread count."""
    return AreaModel(
        n_threads=1,
        check_filter_bits=2 if include_filters else 0,
    )


def scaling_table(max_threads: int = 32):
    """Vector-vs-scalar area as supported thread count grows.

    The paper's point: vector state must grow linearly with the number of
    supported threads, while CORD's scalar state is constant -- "the same
    amount of state to support only two threads".
    """
    rows = []
    for n_threads in (2, 4, 8, 16, max_threads):
        rows.append(
            (
                n_threads,
                per_line_vector_area(n_threads).overhead,
                cord_area().overhead,
            )
        )
    return rows
