"""Race reports: group detections by variable and thread.

A dynamic problem usually causes several races on a handful of variables;
grouping by the containing allocation (resolved through the program's
:class:`~repro.program.address_space.AddressSpace`) is how a developer
reads the output.  Allocation resolution is name-prefix based: the report
walks addresses downward to the nearest allocation base recorded by the
address space.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.common.texttable import format_table
from repro.common.types import WORD_SIZE
from repro.detectors.base import DetectionOutcome
from repro.program.address_space import AddressSpace

#: How far below an address to search for its allocation base.
_MAX_ALLOCATION_WORDS = 1 << 16


def resolve_allocation(space: AddressSpace, address: int) -> str:
    """Name of the allocation containing ``address`` (best effort)."""
    probe = address
    for _ in range(_MAX_ALLOCATION_WORDS):
        name = space.name_of(probe)
        if not name.startswith("0x"):
            if probe == address:
                return name
            return "%s[+%d]" % (name, (address - probe) // WORD_SIZE)
        probe -= WORD_SIZE
        if probe < 0:
            break
    return hex(address)


@dataclass
class RaceGroup:
    """All reported races on one allocation."""

    allocation: str
    addresses: List[int] = field(default_factory=list)
    accesses: List[tuple] = field(default_factory=list)
    threads: set = field(default_factory=set)

    @property
    def count(self) -> int:
        return len(self.accesses)


@dataclass
class RaceReport:
    """A grouped, human-readable view of one detection outcome."""

    detector_name: str
    groups: List[RaceGroup]
    total_flagged: int

    @property
    def n_variables(self) -> int:
        return len(self.groups)

    def render(self) -> str:
        if not self.groups:
            return "%s: no data races detected" % self.detector_name
        rows = [
            [
                group.allocation,
                group.count,
                len(group.threads),
                ", ".join(
                    "t%d@%d" % access for access in group.accesses[:3]
                ),
            ]
            for group in self.groups
        ]
        return format_table(
            ["variable", "races", "threads", "first accesses"],
            rows,
            title="%s: %d racy accesses on %d variable(s)"
            % (self.detector_name, self.total_flagged, len(self.groups)),
        )


def build_report(
    outcome: DetectionOutcome,
    space: Optional[AddressSpace] = None,
) -> RaceReport:
    """Group an outcome's races by allocation (largest group first)."""
    by_name: Dict[str, RaceGroup] = {}
    for race in outcome.races:
        name = (
            resolve_allocation(space, race.address)
            if space is not None
            else hex(race.address)
        )
        group = by_name.setdefault(name, RaceGroup(allocation=name))
        group.addresses.append(race.address)
        group.accesses.append(race.access)
        group.threads.add(race.access[0])
    groups = sorted(
        by_name.values(), key=lambda g: g.count, reverse=True
    )
    return RaceReport(
        detector_name=outcome.detector_name,
        groups=groups,
        total_flagged=len(outcome.flagged),
    )
