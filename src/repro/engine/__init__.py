"""Functional execution engine.

Executes a :class:`~repro.program.builder.Program` under a seeded
interleaving scheduler, lowering sync primitives to labeled synchronization
accesses, and produces a :class:`~repro.trace.stream.Trace`.  This plays the
role of the paper's execution-driven simulator front end: it decides *which
interleaving happened*; the detectors and the timing model then observe it.

* :mod:`repro.engine.executor` -- the engine proper (shared memory, mutex
  and flag blocking semantics, instruction counting, deadlock watchdog).
* :mod:`repro.engine.scheduler` -- interleaving policies (seeded random
  with geometric time slices, round-robin for deterministic tests).
* :mod:`repro.engine.interceptor` -- the hook the fault injector uses to
  skip dynamic synchronization instances (Section 3.4 of the paper).
"""

from repro.engine.executor import ExecutionEngine, run_program
from repro.engine.interceptor import NullInterceptor, SyncInterceptor
from repro.engine.scheduler import (
    RandomScheduler,
    RoundRobinScheduler,
    Scheduler,
)

__all__ = [
    "ExecutionEngine",
    "NullInterceptor",
    "RandomScheduler",
    "RoundRobinScheduler",
    "Scheduler",
    "SyncInterceptor",
    "run_program",
]
