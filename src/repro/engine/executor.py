"""The functional execution engine.

:class:`ExecutionEngine` owns all runtime state of one execution: shared
memory values, mutex ownership, flag values, per-thread generators and
instruction counts.  It exposes single-step control (:meth:`step`) so both
the recording driver (:func:`run_program`) and the deterministic replayer
(:mod:`repro.cord.replay`) can drive it; only the *choice of which thread
steps next* differs between them.

Lowering of sync primitives to labeled accesses (what the detectors see):

=================  ====================================================
Primitive          Trace events emitted
=================  ====================================================
``lock``           sync READ of the mutex word, then sync WRITE
``unlock``         sync WRITE of the mutex word
``flag wait``      one sync READ of the flag word (the satisfying read)
``flag set``       sync WRITE of the flag word
=================  ====================================================

A blocked primitive emits nothing until it succeeds, matching the usual
modeling convention (and the paper's Figure 1, where ``lock(L)`` appears as
``RD L`` observing the releasing ``WR L``).

Fault injection can deadlock a run -- e.g. an injected missing barrier lock
loses an arrival-count update, so the barrier never opens.  The engine's
watchdog detects global quiescence, marks the trace ``hung``, and stops;
the races that caused the hang are already in the trace by then.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, List, Optional

from repro.common.errors import DeadlockError, SimulationError
from repro.common.rng import DeterministicRng
from repro.engine.interceptor import NullInterceptor, SyncInterceptor
from repro.engine.scheduler import RandomScheduler, Scheduler
from repro.program.builder import Program
from repro.program.ops import (
    ComputeOp,
    FlagSetOp,
    FlagWaitOp,
    LockOp,
    ReadOp,
    UnlockOp,
    WriteOp,
)
from repro.trace.events import MemoryEvent
from repro.trace.packed import PackedTrace
from repro.trace.stream import Trace

#: Step-count safety valve; generously above any workload in this repo.
DEFAULT_MAX_STEPS = 5_000_000

# Packed-trace flag bytes (bit 0 = write, bit 1 = sync).  The engine
# appends one flags byte per event; recording is five C-level column
# appends, with no per-event object allocation.
_F_DATA_RD = 0
_F_DATA_WR = 1
_F_SYNC_RD = 2
_F_SYNC_WR = 3


class _AcquireWrite:
    """Second half of a lock acquire (the test-and-set write).

    A successful acquire is two labeled accesses -- sync read, then sync
    write -- and the order recorder may place a fragment boundary between
    them (the write can trigger its own clock update).  The engine
    therefore retires them in two separate steps.  Atomicity is preserved
    by reserving the lock at the *read* step: no other thread can acquire
    in between, so no conflicting access can interleave.
    """

    __slots__ = ("address",)

    def __init__(self, address: int):
        self.address = address


class _ThreadRuntime:
    """Book-keeping for one thread's generator."""

    __slots__ = (
        "generator",
        "icount",
        "pending_send",
        "pending_op",
        "finished",
    )

    def __init__(self, generator):
        self.generator = generator
        self.icount = 0
        self.pending_send: Optional[int] = None
        self.pending_op = None  # set while blocked on a sync op
        self.finished = False


class ExecutionEngine:
    """Executes one program instance, one op at a time.

    Args:
        program: the program to execute.
        interceptor: sync-instance hook (fault injection); defaults to a
            no-op interceptor.
    """

    def __init__(
        self,
        program: Program,
        interceptor: Optional[SyncInterceptor] = None,
    ):
        self.program = program
        self.interceptor = interceptor or NullInterceptor()
        self.memory: Dict[int, int] = {}
        self.lock_holder: Dict[int, Optional[int]] = {}
        #: Columnar event record (struct-of-arrays); the object view is
        #: materialized lazily via :attr:`events` / :meth:`build_trace`.
        self.packed = PackedTrace(name=program.name)
        self._ev_thread = self.packed.thread.append
        self._ev_address = self.packed.address.append
        self._ev_flags = self.packed.flags.append
        self._ev_icount = self.packed.icount.append
        self._ev_value = self.packed.value.append
        self._threads = [
            _ThreadRuntime(gen) for gen in program.instantiate()
        ]
        self._skipped_locks: Counter = Counter()

    # -- state queries -------------------------------------------------------

    @property
    def n_threads(self) -> int:
        return len(self._threads)

    @property
    def events(self) -> List[MemoryEvent]:
        """Event-object view of the record so far (diagnostics only).

        Materialized fresh on every access -- the engine's source of
        truth is the columnar :attr:`packed` record.
        """
        return self.packed.materialize_events()

    def finished(self, thread: int) -> bool:
        return self._threads[thread].finished

    def all_finished(self) -> bool:
        return all(t.finished for t in self._threads)

    def icount(self, thread: int) -> int:
        return self._threads[thread].icount

    def runnable_threads(self) -> List[int]:
        """Threads that can make progress right now."""
        return [
            tid
            for tid in range(self.n_threads)
            if not self._threads[tid].finished and self._can_proceed(tid)
        ]

    def _can_proceed(self, thread: int) -> bool:
        op = self._threads[thread].pending_op
        if op is None or isinstance(op, _AcquireWrite):
            return True
        if isinstance(op, LockOp):
            return self.lock_holder.get(op.address) is None
        if isinstance(op, FlagWaitOp):
            return self.memory.get(op.address, 0) >= op.at_least
        raise SimulationError("unexpected pending op %r" % (op,))

    # -- stepping -------------------------------------------------------------

    def step(self, thread: int) -> bool:
        """Advance ``thread`` by one op attempt.

        Returns True if the thread made progress (retired an op or
        finished), False if it blocked on a sync primitive.  The caller is
        expected to pick threads from :meth:`runnable_threads`, in which
        case blocking can still occur transiently only if state changed
        since the runnable query (it cannot, under single-step driving).
        """
        rt = self._threads[thread]
        if rt.finished:
            raise SimulationError("thread %d already finished" % thread)

        if rt.pending_op is not None:
            return self._step_sync(thread, rt, rt.pending_op)
        try:
            op = rt.generator.send(rt.pending_send)
        except StopIteration:
            rt.finished = True
            return True
        rt.pending_send = None

        # Dispatch, hottest ops first, with exact-type tests: the op
        # classes below have no subclasses, and ``is`` beats isinstance()
        # on this path (one dispatch per retired op, millions per
        # campaign).  run_program() inlines this dispatch *and* the
        # column appends; step() itself drives only replay and tests.
        cls = op.__class__
        if cls is ReadOp:
            value = self.memory.get(op.address, 0)
            self._emit(rt, thread, op.address, _F_DATA_RD, value)
            rt.pending_send = value
            return True

        if cls is WriteOp:
            value = op.value
            self.memory[op.address] = value
            self._emit(rt, thread, op.address, _F_DATA_WR, value)
            return True

        if cls is ComputeOp:
            rt.icount += op.amount
            return True

        # Injectable primitives are consulted once per dynamic
        # invocation, on first yield (not on blocked retries).
        if cls is LockOp or cls is FlagWaitOp:
            if self.interceptor.on_sync_instance(thread, op):
                if cls is LockOp:
                    self._skipped_locks[(thread, op.address)] += 1
                return True  # instance removed: no accesses, no block
        return self._step_sync(thread, rt, op)

    def _step_sync(self, thread: int, rt: _ThreadRuntime, op) -> bool:
        """Retire (or block on) a sync primitive.

        ``op`` is either a freshly yielded primitive whose interceptor
        consult already happened, or ``rt.pending_op`` on a blocked retry.
        """
        cls = op.__class__
        if cls is LockOp:
            holder = self.lock_holder.get(op.address)
            if holder == thread:
                raise SimulationError(
                    "thread %d recursively locks %#x" % (thread, op.address)
                )
            if holder is not None:
                rt.pending_op = op
                return False
            # Successful test-and-set, first half: the sync read.  The
            # lock is reserved now; the write retires on the next step.
            old = self.memory.get(op.address, 0)
            self._emit(rt, thread, op.address, _F_SYNC_RD, old)
            self.lock_holder[op.address] = thread
            rt.pending_op = _AcquireWrite(op.address)
            return True

        if cls is _AcquireWrite:
            rt.pending_op = None
            self.memory[op.address] = 1
            self._emit(rt, thread, op.address, _F_SYNC_WR, 1)
            return True

        if cls is UnlockOp:
            if self._skipped_locks[(thread, op.address)]:
                # The matching lock instance was removed by injection, so
                # its unlock is removed too (Section 3.4).
                self._skipped_locks[(thread, op.address)] -= 1
                return True
            if self.lock_holder.get(op.address) != thread:
                raise SimulationError(
                    "thread %d unlocks %#x it does not hold"
                    % (thread, op.address)
                )
            self.memory[op.address] = 0
            self._emit(rt, thread, op.address, _F_SYNC_WR, 0)
            self.lock_holder[op.address] = None
            return True

        if cls is FlagWaitOp:
            value = self.memory.get(op.address, 0)
            if value < op.at_least:
                rt.pending_op = op
                return False
            rt.pending_op = None
            self._emit(rt, thread, op.address, _F_SYNC_RD, value)
            return True

        if cls is FlagSetOp:
            current = self.memory.get(op.address, 0)
            if op.value < current:
                raise SimulationError(
                    "flag %#x set non-monotonically: %d -> %d"
                    % (op.address, current, op.value)
                )
            self.memory[op.address] = op.value
            self._emit(rt, thread, op.address, _F_SYNC_WR, op.value)
            return True

        raise SimulationError("unknown op %r" % (op,))

    def _emit(self, rt, thread, address, flags, value):
        self._ev_thread(thread)
        self._ev_address(address)
        self._ev_flags(flags)
        self._ev_icount(rt.icount)
        self._ev_value(value)
        rt.icount += 1

    # -- trace assembly --------------------------------------------------------

    def build_trace(self, hung: bool = False,
                    seed: Optional[int] = None) -> Trace:
        """Package the record so far as a packed-backed :class:`Trace`."""
        packed = self.packed
        packed.final_icounts = [t.icount for t in self._threads]
        packed.hung = hung
        packed.seed = seed
        return Trace.from_packed(packed)


def run_program(
    program: Program,
    seed: int = 0,
    scheduler: Optional[Scheduler] = None,
    interceptor: Optional[SyncInterceptor] = None,
    max_steps: int = DEFAULT_MAX_STEPS,
    switch_probability: float = 0.1,
    on_deadlock: str = "hang",
) -> Trace:
    """Execute ``program`` to completion and return its trace.

    Args:
        program: program to run.
        seed: seed for the default random scheduler (ignored when an
            explicit ``scheduler`` is passed).
        scheduler: interleaving policy; defaults to a seeded
            :class:`RandomScheduler`.
        interceptor: fault-injection hook.
        max_steps: safety valve on total op attempts.
        switch_probability: slice-end probability for the default scheduler.
        on_deadlock: what the watchdog does when every unfinished thread
            is blocked -- ``"hang"`` (default) returns the truncated trace
            with ``hung=True`` (injection campaigns analyze the events up
            to the hang), ``"raise"`` raises
            :class:`~repro.common.errors.DeadlockError` (library users
            running programs that must never deadlock).

    The run ends when every thread finishes or the watchdog fires.
    """
    if on_deadlock not in ("hang", "raise"):
        raise SimulationError(
            "on_deadlock must be 'hang' or 'raise', got %r"
            % (on_deadlock,)
        )
    if scheduler is None:
        scheduler = RandomScheduler(
            DeterministicRng(seed, "scheduler"),
            switch_probability=switch_probability,
        )
    engine = ExecutionEngine(program, interceptor)
    # The driver loop runs once per op attempt; the runnable scan below
    # is ExecutionEngine.runnable_threads()/_can_proceed() inlined (the
    # scan re-runs every step, so its call overhead is the engine's
    # second-largest cost after dispatch).  Blocked-thread eligibility
    # depends on lock/flag state, which any step may change, so the scan
    # cannot be cached across steps without changing pick sequences.
    threads = engine._threads
    memory = engine.memory
    lock_holder = engine.lock_holder
    ev_thread = engine._ev_thread
    ev_address = engine._ev_address
    ev_flags = engine._ev_flags
    ev_icount = engine._ev_icount
    ev_value = engine._ev_value
    interceptor_hook = engine.interceptor.on_sync_instance
    skipped_locks = engine._skipped_locks
    step_sync = engine._step_sync
    sends = [rt.generator.send for rt in threads]
    pick = scheduler.pick
    # For the stock random scheduler, inline pick() too: its decision is
    # two rng draws at most, and the call frame (plus the DeterministicRng
    # delegation) costs more than the decision.  The rng draw sequence
    # below is exactly RandomScheduler.pick's -- one random() when the
    # current thread is still runnable, one randrange() on a switch -- so
    # traces are bit-identical either way.  Subclasses and custom
    # schedulers keep the virtual call.
    fast_sched = scheduler.__class__ is RandomScheduler
    if fast_sched:
        rng_random = scheduler._rng._random.random
        rng_randrange = scheduler._rng._random.randrange
        switch_probability = scheduler._switch_probability
        current = scheduler._current
    unfinished = len(threads)
    steps = 0
    while unfinished:
        # Stay-on-current fast path: with the stock scheduler, ~90% of
        # steps keep the current thread, and that decision needs only
        # *its* eligibility -- not the full runnable list.  The rng draw
        # sequence matches pick() exactly: one random() whenever the
        # current thread is runnable, one randrange() on a switch.
        tid = -1
        if fast_sched and current is not None:
            rt = threads[current]
            if not rt.finished:
                op = rt.pending_op
                if (
                    op is None
                    or op.__class__ is _AcquireWrite
                    or (
                        lock_holder.get(op.address) is None
                        if op.__class__ is LockOp
                        else memory.get(op.address, 0) >= op.at_least
                    )
                ):
                    if rng_random() >= switch_probability:
                        tid = current
        if tid < 0:
            runnable = []
            for cand, rt in enumerate(threads):
                if rt.finished:
                    continue
                op = rt.pending_op
                if op is None or op.__class__ is _AcquireWrite:
                    runnable.append(cand)
                elif op.__class__ is LockOp:
                    if lock_holder.get(op.address) is None:
                        runnable.append(cand)
                elif memory.get(op.address, 0) >= op.at_least:
                    runnable.append(cand)  # FlagWaitOp whose flag is up
            if not runnable:
                if on_deadlock == "raise":
                    raise DeadlockError(
                        [
                            t
                            for t in range(engine.n_threads)
                            if not engine.finished(t)
                        ]
                    )
                return engine.build_trace(hung=True, seed=seed)
            if fast_sched:
                tid = current = runnable[rng_randrange(len(runnable))]
                scheduler._current = current
            else:
                tid = pick(runnable)
        # Retire one op for ``tid``: ExecutionEngine.step() inlined for
        # the fresh data-op cases (the overwhelming majority of steps);
        # sync primitives fall through to the shared _step_sync().
        rt = threads[tid]
        if rt.pending_op is not None:
            step_sync(tid, rt, rt.pending_op)
        else:
            try:
                op = sends[tid](rt.pending_send)
            except StopIteration:
                rt.finished = True
                unfinished -= 1
                op = None
            if op is not None:
                rt.pending_send = None
                cls = op.__class__
                if cls is ReadOp:
                    value = memory.get(op.address, 0)
                    ev_thread(tid)
                    ev_address(op.address)
                    ev_flags(0)
                    ev_icount(rt.icount)
                    ev_value(value)
                    rt.icount += 1
                    rt.pending_send = value
                elif cls is WriteOp:
                    value = op.value
                    memory[op.address] = value
                    ev_thread(tid)
                    ev_address(op.address)
                    ev_flags(1)
                    ev_icount(rt.icount)
                    ev_value(value)
                    rt.icount += 1
                elif cls is ComputeOp:
                    rt.icount += op.amount
                elif cls is LockOp or cls is FlagWaitOp:
                    if interceptor_hook(tid, op):
                        if cls is LockOp:
                            skipped_locks[(tid, op.address)] += 1
                    else:
                        step_sync(tid, rt, op)
                else:
                    step_sync(tid, rt, op)
        steps += 1
        if steps > max_steps:
            raise SimulationError(
                "exceeded %d steps; runaway program?" % max_steps
            )
    return engine.build_trace(seed=seed)
