"""Interleaving schedulers.

The paper's runs inherit their interleavings from hardware timing; injected
bugs manifest (or not) depending on how threads happen to interleave.  Our
stand-in is a seeded random scheduler with geometric time slices: it keeps
running one thread for a random number of steps, then switches, which
produces both fine-grained interleavings (short slices) and the
long-quantum behavior real systems exhibit.  A deterministic round-robin
scheduler is provided for unit tests.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.common.errors import ConfigError
from repro.common.rng import DeterministicRng


class Scheduler:
    """Interface: pick the next thread to step from the runnable set."""

    def pick(self, runnable: Sequence[int]) -> int:
        """Return the thread id to step next; ``runnable`` is non-empty."""
        raise NotImplementedError


class RoundRobinScheduler(Scheduler):
    """Cycle through threads in id order (deterministic)."""

    def __init__(self):
        self._last: Optional[int] = None

    def pick(self, runnable: Sequence[int]) -> int:
        if self._last is None:
            choice = runnable[0]
        else:
            later = [t for t in runnable if t > self._last]
            choice = later[0] if later else runnable[0]
        self._last = choice
        return choice


class RandomScheduler(Scheduler):
    """Seeded random scheduler with geometric time slices.

    Args:
        rng: deterministic random stream.
        switch_probability: chance, per step, of abandoning the current
            thread's time slice.  Mean slice length is its reciprocal.
    """

    def __init__(
        self,
        rng: DeterministicRng,
        switch_probability: float = 0.1,
    ):
        if not 0.0 < switch_probability <= 1.0:
            raise ConfigError(
                "switch_probability must be in (0, 1], got %r"
                % (switch_probability,)
            )
        self._rng = rng
        self._switch_probability = switch_probability
        self._current: Optional[int] = None

    def pick(self, runnable: Sequence[int]) -> int:
        current = self._current
        if current is not None and current in runnable:
            if self._rng.random() >= self._switch_probability:
                return current
        choice = runnable[self._rng.randrange(len(runnable))]
        self._current = choice
        return choice
