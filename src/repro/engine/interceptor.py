"""Synchronization-op interception hooks.

The fault injector of Section 3.4 removes a single dynamic instance of
synchronization per run.  The engine routes every *injectable* primitive
invocation -- each ``lock`` call and each flag ``wait`` call -- through a
:class:`SyncInterceptor` before executing it.  The interceptor can order the
engine to skip the instance; for a skipped ``lock`` the engine also skips
the corresponding ``unlock`` (the paper removes the pair together).

Flag *set* operations are not injectable: the paper's removal menu is
mutex lock/unlock pairs and flag waits, and removing a set would model a
different (and non-elusive: guaranteed-hang) defect.
"""

from __future__ import annotations

from repro.program.ops import FlagWaitOp, LockOp, Op


class SyncInterceptor:
    """Interface consulted once per injectable dynamic sync instance.

    The engine guarantees :meth:`on_sync_instance` is called exactly once
    per dynamic invocation of a lock or flag-wait primitive, in the order
    the invocations occur in the interleaving (global dynamic numbering,
    which is how the paper's injector indexes instances).
    """

    def on_sync_instance(self, thread: int, op: Op) -> bool:
        """Return True to *remove* this dynamic instance.

        Args:
            thread: the invoking thread.
            op: the :class:`LockOp` or :class:`FlagWaitOp` being invoked.
        """
        raise NotImplementedError


class NullInterceptor(SyncInterceptor):
    """Interceptor that removes nothing (normal, uninjected execution)."""

    def on_sync_instance(self, thread: int, op: Op) -> bool:
        return False


class CountingInterceptor(SyncInterceptor):
    """Removes nothing but counts instances (used to size injection draws).

    After a dry run, :attr:`count` is the number of injectable dynamic
    synchronization instances in that interleaving.
    """

    def __init__(self):
        self.count = 0
        self.lock_instances = 0
        self.wait_instances = 0

    def on_sync_instance(self, thread: int, op: Op) -> bool:
        self.count += 1
        if isinstance(op, LockOp):
            self.lock_instances += 1
        elif isinstance(op, FlagWaitOp):
            self.wait_instances += 1
        return False
