"""Render the benchmark trajectory files as tables.

The benchmark session (``benchmarks/conftest.py``) appends one entry per
``CORD_BENCH_LABEL`` to ``benchmarks/BENCH_components.json`` and
``benchmarks/BENCH_sweeps.json``; the committed entries track how the
simulator's performance moves PR over PR.  This module is the reader
half: it renders each file's *label trajectory* -- one row per benchmark
name, one column per label, in the order the labels were recorded -- so
a regression shows up as a column that got worse, not as a diff buried
in JSON.

.. code-block:: console

    python -m repro.bench_report                      # all metrics
    python -m repro.bench_report --metrics wall_s
    cord-bench-report benchmarks/BENCH_sweeps.json

Files are schema-checked (``"schema": 1``); an unknown schema is
skipped with a warning rather than mis-rendered.
"""

from __future__ import annotations

import argparse
import glob
import json
import os
import sys
from typing import Dict, List, Optional, Sequence

from repro.common.texttable import format_table

_SCHEMA = 1

#: Metrics rendered by default, in this order, when present anywhere in
#: a file.  ``--metrics`` overrides (comma-separated, any recorded key).
_DEFAULT_METRICS = (
    "wall_s",
    "events_per_s",
    "speedup_vs_shared",
    "speedup_vs_python",
    "speedup_vs_per_config",
    "pipeline_speedup",
    "journal_overhead",
)


def default_paths() -> List[str]:
    """The committed trajectory files, relative to the working tree."""
    return sorted(glob.glob(os.path.join("benchmarks", "BENCH_*.json")))


def load_entries(path: str) -> Optional[List[Dict]]:
    """Load one trajectory file's entries; None if it can't be read."""
    try:
        with open(path, "rb") as handle:
            payload = json.load(handle)
    except (OSError, ValueError) as exc:
        print("skipping %s: %s" % (path, exc), file=sys.stderr)
        return None
    if not isinstance(payload, dict) or payload.get("schema", 1) != _SCHEMA:
        print(
            "skipping %s: unknown schema %r"
            % (path, payload.get("schema") if isinstance(payload, dict)
               else type(payload).__name__),
            file=sys.stderr,
        )
        return None
    entries = payload.get("entries")
    if not isinstance(entries, list):
        print("skipping %s: no entries" % path, file=sys.stderr)
        return None
    return [e for e in entries if isinstance(e, dict)]


def _labels(entries: Sequence[Dict]) -> List[str]:
    """Entry labels in recorded (chronological) order, deduplicated."""
    seen: List[str] = []
    for entry in entries:
        label = str(entry.get("label", "?"))
        if label not in seen:
            seen.append(label)
    return seen


def _metrics_present(entries: Sequence[Dict]) -> List[str]:
    present = set()
    for entry in entries:
        for result in entry.get("results", {}).values():
            present.update(
                key for key, value in result.items()
                if isinstance(value, (int, float))
            )
    ordered = [m for m in _DEFAULT_METRICS if m in present]
    ordered += sorted(present - set(ordered) - {"events"})
    return ordered


def trajectory_table(
    entries: Sequence[Dict], metric: str, title: str
) -> Optional[str]:
    """One metric's label-trajectory table, or None if nothing has it."""
    labels = _labels(entries)
    cells: Dict[str, Dict[str, object]] = {}
    for entry in entries:
        label = str(entry.get("label", "?"))
        for name, result in entry.get("results", {}).items():
            if metric in result:
                cells.setdefault(name, {})[label] = result[metric]
    if not cells:
        return None
    used = [lb for lb in labels
            if any(lb in row for row in cells.values())]
    rows = [
        [name] + [cells[name].get(lb, "-") for lb in used]
        for name in sorted(cells)
    ]
    return format_table(
        ["benchmark"] + used, rows, title="%s: %s" % (title, metric)
    )


def render_file(path: str, metrics: Optional[Sequence[str]]) -> bool:
    """Print every requested trajectory table of one file."""
    entries = load_entries(path)
    if not entries:
        return False
    title = os.path.basename(path)
    wanted = list(metrics) if metrics else _metrics_present(entries)
    printed = False
    for metric in wanted:
        table = trajectory_table(entries, metric, title)
        if table is not None:
            print(table)
            print()
            printed = True
    if not printed:
        print(
            "%s: no entries carry %s" % (title, ", ".join(wanted)),
            file=sys.stderr,
        )
    return printed


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="cord-bench-report",
        description="render BENCH_*.json label trajectories as tables",
    )
    parser.add_argument(
        "paths", nargs="*", metavar="FILE",
        help="trajectory files (default: benchmarks/BENCH_*.json)",
    )
    parser.add_argument(
        "--metrics", metavar="M1,M2",
        help="comma-separated metrics to render (default: every "
             "numeric metric present, common ones first)",
    )
    args = parser.parse_args(argv)
    paths = args.paths or default_paths()
    if not paths:
        print("no BENCH_*.json files found", file=sys.stderr)
        return 1
    metrics = None
    if args.metrics:
        metrics = [m.strip() for m in args.metrics.split(",") if m.strip()]
    rendered = 0
    for path in paths:
        if render_file(path, metrics):
            rendered += 1
    return 0 if rendered else 1


if __name__ == "__main__":
    sys.exit(main())
