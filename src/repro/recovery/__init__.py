"""Recovery from detected synchronization problems (Section 2.7.6).

The paper defers recovery but sketches the recipe: combine the order log
with checkpointing, then either repair the dynamic instance or "use
conservative thread scheduling to serialize execution in the vicinity of
the problem" (its reference [27], Xu et al.'s serializability-violation
recovery).  This package implements that recipe on top of the replayer:

* :func:`replay_until` re-executes a recorded run up to (but excluding)
  the log fragment containing a chosen access -- the order log *is* the
  checkpoint, as replay-based checkpointing needs no state snapshots;
* :func:`continue_serialized` then runs the remainder of the program
  under run-to-block serialization, which makes unprotected atomic
  regions effectively atomic again and so masks the manifestation of
  the detected problem.
"""

from repro.recovery.serialized import (
    RecoveryResult,
    SerializedScheduler,
    atomic_region_start,
    continue_serialized,
    recover_with_serialization,
    replay_until,
)

__all__ = [
    "RecoveryResult",
    "SerializedScheduler",
    "atomic_region_start",
    "continue_serialized",
    "recover_with_serialization",
    "replay_until",
]
