"""Replay-to-problem plus serialized continuation.

The recovery flow (paper Section 2.7.6 / its reference [27]):

1. a production run detects a data race at access ``(thread, icount)``
   and has the order log;
2. re-execute deterministically up to just before that access's log
   fragment (:func:`replay_until`) -- the log prefix acts as the
   checkpoint;
3. continue under *conservative serialization*
   (:func:`continue_serialized`): each thread runs until it blocks or
   finishes before another is scheduled, so the unprotected atomic
   region that raced now executes without interleaving and the problem's
   manifestation is masked.

Serialization is a mitigation, not a fix -- the code defect remains --
but it converts a corrupted continuation into a correct one, which is
what an automated-recovery system buys time with.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from repro.common.errors import ReplayDivergenceError, SimulationError
from repro.cord.log import OrderLog
from repro.detectors.base import AccessId
from repro.engine.executor import ExecutionEngine
from repro.engine.interceptor import SyncInterceptor
from repro.engine.scheduler import Scheduler
from repro.program.builder import Program
from repro.trace.stream import Trace

_MAX_STEPS = 10_000_000


class SerializedScheduler(Scheduler):
    """Run-to-block scheduling: maximal serial slices per thread."""

    def __init__(self, order: Optional[Sequence[int]] = None):
        self._current: Optional[int] = None
        self._order = list(order) if order else None

    def pick(self, runnable: Sequence[int]) -> int:
        if self._current is not None and self._current in runnable:
            return self._current
        if self._order:
            for thread in self._order:
                if thread in runnable:
                    self._current = thread
                    return thread
        self._current = runnable[0]
        return self._current


def replay_until(
    program: Program,
    log: OrderLog,
    boundary: AccessId,
    interceptor: Optional[SyncInterceptor] = None,
) -> Tuple[ExecutionEngine, int]:
    """Replay the log prefix that precedes ``boundary``'s fragment.

    Args:
        program: the recorded program.
        log: its order log.
        boundary: ``(thread, icount)`` of the access to stop before --
            typically a detected race's second access.
        interceptor: the recorded run's injection decisions.

    Returns ``(engine, steps)``: the live engine, positioned with every
    fragment whose clock precedes the boundary fragment's clock executed,
    and the boundary thread stopped before its racy fragment.
    """
    target_thread, target_icount = boundary
    fragments = {t: deque() for t in range(program.n_threads)}
    boundary_clock = None
    start = 0
    for entry in log.entries_of_thread(target_thread):
        if start <= target_icount < start + entry.count:
            boundary_clock = entry.clock
            break
        start += entry.count
    if boundary_clock is None:
        raise ReplayDivergenceError(
            target_thread,
            "boundary access %r not covered by the log" % (boundary,),
        )
    for entry in log.entries:
        fragments[entry.thread].append([entry.clock, entry.count])

    engine = ExecutionEngine(program, interceptor)
    steps = 0
    while True:
        candidates = sorted(
            (queue[0][0], thread)
            for thread, queue in fragments.items()
            if queue
        )
        # Stop before anything at or past the boundary fragment's clock
        # (the racy fragment and everything concurrent-or-later with it).
        candidates = [
            (clock, thread)
            for clock, thread in candidates
            if clock < boundary_clock
        ]
        if not candidates:
            return engine, steps
        progressed = False
        for _clock, thread in candidates:
            fragment = fragments[thread][0]
            begin = engine.icount(thread)
            target = begin + fragment[1]
            blocked = False
            while engine.icount(thread) < target:
                steps += 1
                if steps > _MAX_STEPS:
                    raise ReplayDivergenceError(
                        thread, "recovery replay exceeded step budget"
                    )
                if engine.finished(thread):
                    raise ReplayDivergenceError(
                        thread, "finished before its logged fragment"
                    )
                if not engine.step(thread):
                    blocked = True
                    break
            if engine.icount(thread) > begin:
                progressed = True
            if blocked:
                fragment[1] = target - engine.icount(thread)
                continue
            fragments[thread].popleft()
            progressed = True
            break
        if not progressed:
            raise ReplayDivergenceError(
                -1, "no prefix fragment can make progress"
            )


def continue_serialized(
    engine: ExecutionEngine,
    order: Optional[Sequence[int]] = None,
    max_steps: int = _MAX_STEPS,
) -> Trace:
    """Run the remainder of an execution under run-to-block serialization."""
    scheduler = SerializedScheduler(order)
    steps = 0
    while not engine.all_finished():
        runnable = engine.runnable_threads()
        if not runnable:
            return engine.build_trace(hung=True)
        engine.step(scheduler.pick(runnable))
        steps += 1
        if steps > max_steps:
            raise SimulationError("serialized continuation ran away")
    return engine.build_trace()


@dataclass
class RecoveryResult:
    """Outcome of one recover-with-serialization attempt."""

    trace: Trace
    prefix_steps: int
    hung: bool
    rollback: AccessId = (0, 0)

    @property
    def completed(self) -> bool:
        return not self.hung


def atomic_region_start(trace: Trace, race_access: AccessId) -> AccessId:
    """First access of the racy thread's current atomic region.

    An unprotected atomic region (the thing whose interleaving a missing
    lock corrupts) begins after the thread's previous *synchronization*
    access: by the time the race is detected, the region's earlier data
    accesses (e.g. the stale read of a read-modify-write) have already
    executed, so recovery must roll the thread back to the region's
    start, not merely to the racy access.
    """
    thread, icount = race_access
    last_sync = -1
    for event in trace.events:
        if (
            event.thread == thread
            and event.is_sync
            and event.icount < icount
        ):
            last_sync = max(last_sync, event.icount)
    return (thread, last_sync + 1)


def recover_with_serialization(
    program: Program,
    log: OrderLog,
    race_access: AccessId,
    interceptor: Optional[SyncInterceptor] = None,
    trace: Optional[Trace] = None,
) -> RecoveryResult:
    """The full Section 2.7.6 flow: replay to the problem, serialize on.

    Rolls back to the start of the racy thread's atomic region (inferred
    from ``trace`` when given, via :func:`atomic_region_start`), then
    continues with the *other* threads serialized first and the racy
    thread last: in-flight critical sections drain before the
    unprotected region re-executes -- atomically this time.

    Returns the recovered execution's trace; callers can check outcomes
    (e.g. final values of corrupted variables) against expectations.
    """
    rollback = (
        atomic_region_start(trace, race_access)
        if trace is not None
        else race_access
    )
    engine, steps = replay_until(program, log, rollback, interceptor)
    race_thread = race_access[0]
    order = [
        thread
        for thread in range(program.n_threads)
        if thread != race_thread
    ] + [race_thread]
    recovered = continue_serialized(engine, order=order)
    return RecoveryResult(
        trace=recovered,
        prefix_steps=steps,
        hung=recovered.hung,
        rollback=rollback,
    )
