"""Trace statistics: access mix, sharing, and synchronization density.

These figures characterize workloads the way Table 1 / Section 3 of the
paper characterizes Splash-2 inputs, and they feed the timing model's
sanity checks (e.g. "cholesky is the most synchronization-intensive app").
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict

from repro.trace.stream import Trace


@dataclass
class TraceStats:
    """Aggregate statistics for one trace."""

    n_events: int = 0
    n_reads: int = 0
    n_writes: int = 0
    n_sync_reads: int = 0
    n_sync_writes: int = 0
    n_instructions: int = 0
    distinct_words: int = 0
    shared_words: int = 0
    events_per_thread: Dict[int, int] = field(default_factory=dict)

    @property
    def n_data(self) -> int:
        return self.n_events - self.n_sync

    @property
    def n_sync(self) -> int:
        return self.n_sync_reads + self.n_sync_writes

    @property
    def sync_fraction(self) -> float:
        """Fraction of accesses that are synchronization accesses."""
        if not self.n_events:
            return 0.0
        return self.n_sync / self.n_events

    @property
    def write_fraction(self) -> float:
        if not self.n_events:
            return 0.0
        return self.n_writes / self.n_events


def compute_stats(trace: Trace) -> TraceStats:
    """Compute :class:`TraceStats` in one pass over the trace."""
    stats = TraceStats()
    stats.n_events = len(trace.events)
    stats.n_instructions = sum(trace.final_icounts)
    stats.events_per_thread = {t: 0 for t in range(trace.n_threads)}

    toucher_threads: Dict[int, set] = {}
    for event in trace.events:
        stats.events_per_thread[event.thread] += 1
        if event.is_write:
            stats.n_writes += 1
            if event.is_sync:
                stats.n_sync_writes += 1
        else:
            stats.n_reads += 1
            if event.is_sync:
                stats.n_sync_reads += 1
        toucher_threads.setdefault(event.address, set()).add(event.thread)

    stats.distinct_words = len(toucher_threads)
    stats.shared_words = sum(
        1 for threads in toucher_threads.values() if len(threads) > 1
    )
    return stats
