"""On-disk store of recorded packed traces (record-once / analyze-many).

The injection campaigns and sensitivity sweeps decouple *recording* (one
functional simulation per (workload, seed, injection) triple) from
*analysis* (one cheap detector pass per configuration).  This store
persists each recorded run so an N-configuration sweep -- or a re-run of
the same campaign -- performs the simulation exactly once and replays the
packed trace from disk for every other consumer.

Keying: every entry is addressed by a *namespace* (the caller's identity
string for the program being run -- workload name plus its parameters)
plus a tuple of run components (seed, injection target, scheduler knobs).
The digest also folds in the store schema and the trace-format version,
so format bumps miss cleanly instead of decoding garbage.  See
``docs/trace-format.md`` for the full key scheme.

Integrity: every entry is wrapped in a checksummed frame
(:func:`frame_payload`) -- magic, payload length, SHA-256 digest -- so a
torn, truncated, or bit-flipped file is *detected*
(:class:`~repro.common.errors.StoreCorruptError`), never decoded into
garbage.  A corrupt entry is moved to ``<root>/quarantine/`` next to a
``*.reason.txt`` note and the read reports a miss, which makes the
caller transparently re-record through
:func:`repro.injection.campaign.record_injected_once`; per-store
counters (:attr:`PackedTraceStore.stats`) surface how often that
happened instead of staying silent.  See ``docs/resilience.md``.

Entries are written atomically through the shared crash-consistency
helper (:func:`repro.resilience.checkpoint.atomic_write_bytes`: same-dir
temp file, optional fsync, rename), so concurrent sweep processes
sharing one ``REPRO_CACHE_DIR`` never observe torn files and a killed
writer leaves at worst an orphaned ``*.tmp.<pid>`` file for the next
startup's litter collection.

Zero-copy reads: run entries are written as a ``CORDRUN3`` container --
a pickled ``extra`` dict, zero padding, then the v3 trace blob placed so
its column sections land 64-byte aligned in the *file* -- and served
back as ``mmap``-backed :class:`~repro.trace.packed.PackedTrace` views:
the frame checksum is verified over the mapped view (no copy), and the
trace columns are ``memoryview`` casts straight into the page cache.
Per-store counters split ``mmap_hits`` from ``eager_decodes`` (legacy
pickled-dict entries, big-endian hosts, unmappable files, or
``REPRO_NO_MMAP=1``), so a warm sweep can assert it paid zero full
deserializations.
"""

from __future__ import annotations

import hashlib
import logging
import mmap
import os
import pickle
import re
import struct
from collections import Counter
from pathlib import Path
from typing import Any, Dict, Optional, Tuple

from repro.common.errors import LogFormatError, StoreCorruptError
from repro.resilience import faults
from repro.resilience.checkpoint import (
    atomic_write_bytes,
    canonicalize,
    prune_quarantine,
)
from repro.trace.packed import PackedTrace
from repro.trace.serialize import (
    V3_ALIGN,
    decode_packed_trace,
    encode_packed_trace,
    view_packed_trace,
)

logger = logging.getLogger("repro.trace.store")

#: Bump when the entry layout changes incompatibly.  2 = checksummed
#: framing (bumping also renames every key, so pre-frame files are
#: simply never looked up again).
_STORE_SCHEMA = 2

#: Folded into every digest.  Deliberately *not* bumped for the v3
#: codec: this is a key-compatibility tag, not the written format.  The
#: read path sniffs each payload (``CORDRUN3`` container vs. legacy
#: pickled dict), so pre-existing v2 entries keep hitting under the same
#: digest keys instead of being orphaned by a rename.
_FORMAT_TAG = "CORDTRC2"

#: Escape hatch: disable mmap-backed reads (forces eager decode).
NO_MMAP_ENV = "REPRO_NO_MMAP"


def mmap_enabled() -> bool:
    """Whether store reads may serve mmap-backed zero-copy traces."""
    return not os.environ.get(NO_MMAP_ENV)

_SAFE = re.compile(r"[^A-Za-z0-9._-]+")

#: Entry frame: magic | u64 payload length | sha256(payload) | payload.
FRAME_MAGIC = b"CORDSTOR1"
_FRAME_LEN = struct.Struct("<Q")
_DIGEST_SIZE = hashlib.sha256().digest_size
_FRAME_HEADER = len(FRAME_MAGIC) + _FRAME_LEN.size + _DIGEST_SIZE

#: Unpickling errors that mean *version skew*, not file corruption: the
#: frame already proved the bytes are exactly what some past process
#: wrote, so a class that no longer unpickles is stale, not damaged.
_STALE_ERRORS = (AttributeError, ImportError, TypeError, ValueError,
                 pickle.UnpicklingError, EOFError, IndexError)


def frame_payload(payload: bytes) -> bytes:
    """Wrap ``payload`` in the store's checksummed frame."""
    return b"".join((
        FRAME_MAGIC,
        _FRAME_LEN.pack(len(payload)),
        hashlib.sha256(payload).digest(),
        payload,
    ))


def unframe_payload(data: bytes, what: str = "store entry") -> bytes:
    """Validate and strip the frame; raises :class:`StoreCorruptError`.

    Every failure mode of a damaged file maps to a distinct reason:
    short header, wrong magic, length mismatch (torn/truncated write),
    and digest mismatch (bit rot).
    """
    if len(data) < _FRAME_HEADER:
        raise StoreCorruptError(
            "%s is %d bytes, shorter than the %d-byte frame header"
            % (what, len(data), _FRAME_HEADER)
        )
    if data[: len(FRAME_MAGIC)] != FRAME_MAGIC:
        raise StoreCorruptError(
            "%s has bad frame magic %r" % (what, bytes(data[:8]))
        )
    (length,) = _FRAME_LEN.unpack_from(data, len(FRAME_MAGIC))
    payload = data[_FRAME_HEADER:]
    if len(payload) != length:
        raise StoreCorruptError(
            "%s payload is %d bytes, frame promises %d (torn write?)"
            % (what, len(payload), length)
        )
    digest = data[len(FRAME_MAGIC) + _FRAME_LEN.size: _FRAME_HEADER]
    if hashlib.sha256(payload).digest() != digest:
        raise StoreCorruptError(
            "%s failed its payload checksum (bit rot or tampering)"
            % what
        )
    return payload


#: Run-entry container: magic | u32 extra_len | u32 pad_len |
#: pickled extra | zero pad | v3 trace blob.  The pad is sized so the
#: trace blob starts 64-byte aligned *in the file* (the frame header in
#: front of the payload is 49 bytes), which keeps the v3 column
#: sections page-cache aligned when the file is mmapped.
_RUN_MAGIC = b"CORDRUN3"
_RUN_HEADER = struct.Struct("<II")


def encode_run_entry(packed: PackedTrace, extra: Dict[str, Any]) -> bytes:
    """Serialize one recorded run as a ``CORDRUN3`` container payload."""
    trace = encode_packed_trace(packed)
    extra_bytes = pickle.dumps(extra, protocol=pickle.HIGHEST_PROTOCOL)
    prefix = (_FRAME_HEADER + len(_RUN_MAGIC) + _RUN_HEADER.size
              + len(extra_bytes))
    pad = -prefix % V3_ALIGN
    return b"".join((
        _RUN_MAGIC,
        _RUN_HEADER.pack(len(extra_bytes), pad),
        extra_bytes,
        b"\x00" * pad,
        trace,
    ))


class PackedTraceStore:
    """Directory-backed store of recorded runs.

    A *run entry* is one recorded execution: the packed trace plus a
    small picklable ``extra`` dict (e.g. which sync instance the injector
    removed).  A *value entry* is a bare picklable object (e.g. a
    workload's dynamic sync-instance count) keyed the same way.

    Attributes:
        stats: per-instance warning counters -- ``quarantined`` (corrupt
            entries detected and moved aside), ``io_errors`` (unreadable
            files), ``stale`` (healthy frames whose pickled classes no
            longer load), plus the resume-accounting pair ``run_hits`` /
            ``run_misses`` (recorded-trace lookups that were served from
            disk vs. had to be re-recorded -- the kill-anywhere tests
            assert on these).  The zero-copy split: ``mmap_hits`` (run
            entries served as mmap-backed views, no deserialization) vs.
            ``eager_decodes`` (full decode: legacy entries -- also
            counted in ``legacy_entries`` -- big-endian hosts,
            unmappable files, or ``REPRO_NO_MMAP=1``).  Reads never
            raise for any of these; the counters are how the healing
            stops being silent.
    """

    def __init__(self, root: os.PathLike):
        self.root = Path(root)
        self.stats: Counter = Counter()

    # -- keying ---------------------------------------------------------------

    @staticmethod
    def _digest(namespace: str, components: Tuple) -> str:
        ident = repr((_STORE_SCHEMA, _FORMAT_TAG, namespace, components))
        return hashlib.sha256(ident.encode()).hexdigest()[:20]

    def _path(self, kind: str, namespace: str,
              components: Tuple) -> Path:
        # A readable prefix (for humans poking at the cache dir) plus the
        # collision-resistant digest (the actual key).
        prefix = _SAFE.sub("-", namespace)[:40].strip("-") or "run"
        return self.root / (
            "%s-%s-%s.pkl"
            % (kind, prefix, self._digest(namespace, components))
        )

    # -- corruption handling ---------------------------------------------------

    @property
    def quarantine_dir(self) -> Path:
        return self.root / "quarantine"

    def _quarantine(self, path: Path, exc: Exception) -> None:
        """Move a corrupt entry aside with a human-readable reason file.

        The entry keeps its name under ``<root>/quarantine/`` so the
        damaged bytes stay available for a post-mortem; the read path
        then reports a miss and the caller re-records.
        """
        self.stats["quarantined"] += 1
        qdir = self.quarantine_dir
        try:
            qdir.mkdir(parents=True, exist_ok=True)
            os.replace(path, qdir / path.name)
            reason = qdir / (path.name + ".reason.txt")
            reason.write_text(
                "quarantined store entry\n"
                "original path: %s\n"
                "reason: %s: %s\n" % (path, type(exc).__name__, exc)
            )
        except OSError as move_exc:
            # Quarantining is best-effort: a read-only cache directory
            # must not turn a recoverable corrupt entry into a crash.
            self.stats["quarantine_failed"] += 1
            logger.warning(
                "could not quarantine corrupt entry %s: %s",
                path, move_exc,
            )
        logger.warning("quarantined corrupt store entry %s: %s", path, exc)

    def _read_payload(self, path: Path, what: str) -> Optional[bytes]:
        """The checked read path shared by runs and values.

        Returns the verified payload bytes, or ``None`` for a miss --
        which covers unreadable files (counted in ``io_errors``) and
        corrupt ones (quarantined and counted in ``quarantined``).
        """
        try:
            raw = path.read_bytes()
        except FileNotFoundError:
            return None
        except OSError as exc:
            self.stats["io_errors"] += 1
            logger.warning("unreadable store entry %s: %s", path, exc)
            return None
        try:
            return unframe_payload(raw, what)
        except StoreCorruptError as exc:
            self._quarantine(path, exc)
            return None

    def _map_payload(self, path: Path, what: str):
        """Verified payload plus its mmap backing (or ``None`` backing).

        The zero-copy read path: the file is mapped read-only and the
        frame checksum is verified over the mapped view -- no copy into
        a Python ``bytes``.  Callers that keep column views over the
        payload must keep ``backing`` alive (``PackedTrace`` does, via
        its ``_backing`` slot).  Falls back to the eager
        :meth:`_read_payload` when mmap is disabled or the file cannot
        be mapped (e.g. an empty file, which ``mmap`` rejects -- the
        eager path then quarantines it as a short frame).
        """
        if mmap_enabled():
            try:
                with open(path, "rb") as handle:
                    mapped = mmap.mmap(
                        handle.fileno(), 0, access=mmap.ACCESS_READ
                    )
            except FileNotFoundError:
                return None, None
            except (OSError, ValueError) as exc:
                logger.debug(
                    "cannot mmap store entry %s (%s); reading eagerly",
                    path, exc,
                )
            else:
                view = memoryview(mapped)
                try:
                    payload = unframe_payload(view, what)
                except StoreCorruptError as exc:
                    # The in-flight traceback pins views over the map,
                    # so teardown must tolerate outstanding exports.
                    self._release(view, mapped)
                    self._quarantine(path, exc)
                    return None, None
                return payload, mapped
        return self._read_payload(path, what), None

    @staticmethod
    def _release(payload, backing) -> None:
        """Best-effort teardown of an mmap backing we no longer need."""
        if backing is None:
            return
        try:
            if isinstance(payload, memoryview):
                payload.release()
            backing.close()
        except BufferError:
            # Some view over the map is still alive (it will close the
            # map when collected); never let teardown mask the read.
            pass

    # -- run entries -----------------------------------------------------------

    def _decode_run_payload(
        self, payload, backing
    ) -> Tuple[PackedTrace, Dict[str, Any]]:
        """Decode one verified run payload (v3 container or legacy).

        ``CORDRUN3`` containers with an mmap backing come back as
        zero-copy traces (counted in ``mmap_hits``); everything else --
        legacy pickled-dict entries, big-endian hosts, eager reads --
        pays a full decode (counted in ``eager_decodes``).
        """
        magic = bytes(payload[: len(_RUN_MAGIC)])
        if magic == _RUN_MAGIC:
            if len(payload) < len(_RUN_MAGIC) + _RUN_HEADER.size:
                raise LogFormatError("run entry container header truncated")
            extra_len, pad = _RUN_HEADER.unpack_from(
                payload, len(_RUN_MAGIC)
            )
            start = len(_RUN_MAGIC) + _RUN_HEADER.size
            trace_start = start + extra_len + pad
            if trace_start > len(payload):
                raise LogFormatError(
                    "run entry extra section overruns the payload"
                )
            extra = pickle.loads(payload[start: start + extra_len])
            trace_region = payload[trace_start:]
            if backing is not None:
                packed = view_packed_trace(trace_region, backing=backing)
            else:
                packed = decode_packed_trace(bytes(trace_region))
        else:
            # Legacy entry (pickled dict around older trace bytes):
            # still decodes, eagerly, under the same digest key.
            entry = pickle.loads(payload)
            packed = decode_packed_trace(entry["trace"])
            extra = entry["extra"]
            self.stats["legacy_entries"] += 1
        if packed.zero_copy:
            self.stats["mmap_hits"] += 1
        else:
            self.stats["eager_decodes"] += 1
        return packed, extra

    def load_run(
        self, namespace: str, components: Tuple
    ) -> Optional[Tuple[PackedTrace, Dict[str, Any]]]:
        """The recorded run for this key, or None (miss/stale/corrupt).

        Corruption anywhere -- frame, pickle layer, or the trace bytes
        inside -- quarantines the entry and reports a miss, so the
        caller re-records instead of crashing or, worse, analyzing
        garbage.  Served zero-copy off an mmap when the entry is a
        ``CORDRUN3`` container and :func:`mmap_enabled` allows it.
        """
        path = self._path("trace", namespace, components)
        payload, backing = self._map_payload(
            path, "trace entry %s" % path.name
        )
        if payload is None:
            self.stats["run_misses"] += 1
            return None
        try:
            packed, extra = self._decode_run_payload(payload, backing)
        except (LogFormatError, KeyError) as exc:
            # The frame checksum passed, yet the contents are not a
            # valid entry: the *writer* was broken.  Quarantine -- this
            # is corruption, just minted earlier.
            self._release(payload, backing)
            self._quarantine(path, exc)
            self.stats["run_misses"] += 1
            return None
        except _STALE_ERRORS:
            self._release(payload, backing)
            self.stats["stale"] += 1
            self.stats["run_misses"] += 1
            return None
        if not packed.zero_copy:
            # Eager decode copied everything out; the map is dead weight.
            self._release(payload, backing)
        self.stats["run_hits"] += 1
        return packed, extra

    def store_run(
        self,
        namespace: str,
        components: Tuple,
        packed: PackedTrace,
        extra: Dict[str, Any],
    ) -> None:
        self._write(
            self._path("trace", namespace, components),
            encode_run_entry(packed, extra),
        )

    def has_run(self, namespace: str, components: Tuple) -> bool:
        """Is a recording durable under this key?

        Existence only -- no read, no verification (a torn entry still
        quarantines and re-records at load time).  The run-level
        scheduler uses this to skip record tasks for runs a previous
        (possibly interrupted) campaign already recorded.
        """
        return self._path("trace", namespace, components).exists()

    def run_entry_path(self, namespace: str, components: Tuple) -> Path:
        """The on-disk path a run entry lives at (existence not implied).

        Exposed for the chaos harness (the ``store_corrupt_mid_job``
        fault truncates a real durable entry in place) and for tests
        that assert on the cache layout; ordinary readers go through
        :meth:`load_run`.
        """
        return self._path("trace", namespace, components)

    def entry_path(self, kind: str, namespace: str,
                   components: Tuple) -> Path:
        """The on-disk path for any entry ``kind`` (``trace``/``value``).

        The store-replication protocol ships whole framed entry files
        between hosts; because paths are a pure function of the key, the
        receiver lands the bytes at the identical relative path.
        """
        return self._path(kind, namespace, components)

    def quarantine_bytes(self, name: str, raw: bytes,
                         exc: Exception) -> None:
        """Quarantine loose bytes that never made it into the store.

        The replication receive path calls this when an in-flight
        payload fails its sha256 check: the damaged bytes are kept for
        post-mortem under ``<root>/quarantine/`` exactly like a corrupt
        on-disk entry, and counted in ``stats['quarantined']``.
        """
        self.stats["quarantined"] += 1
        qdir = self.quarantine_dir
        try:
            qdir.mkdir(parents=True, exist_ok=True)
            (qdir / name).write_bytes(raw)
            (qdir / (name + ".reason.txt")).write_text(
                "quarantined replication payload\n"
                "reason: %s: %s\n" % (type(exc).__name__, exc)
            )
        except OSError as write_exc:
            self.stats["quarantine_failed"] += 1
            logger.warning(
                "could not quarantine replication payload %s: %s",
                name, write_exc,
            )
        logger.warning("quarantined replication payload %s: %s", name, exc)

    def snapshot(self) -> Dict[str, int]:
        """The stats counters as a plain JSON-safe dict.

        The campaign service's ``health``/``result`` responses embed
        this, so operators see quarantines, stale entries, and the
        hit/miss split without attaching a debugger.
        """
        return {key: int(value) for key, value in sorted(self.stats.items())}

    def export_run(
        self, namespace: str, components: Tuple
    ) -> Optional[Tuple[bytes, Dict[str, Any]]]:
        """Raw v3 trace bytes plus ``extra`` for this key, or ``None``.

        The publishing path for shared-memory fan-out: the returned blob
        is exactly what :func:`~repro.trace.serialize.view_packed_trace`
        consumes, so workers map it zero-copy out of a shared segment.
        Legacy entries are transparently re-encoded to v3.
        """
        loaded = self.load_run(namespace, components)
        if loaded is None:
            return None
        packed, extra = loaded
        return encode_packed_trace(packed), extra

    # -- bare value entries ------------------------------------------------------

    def load_value(self, namespace: str, components: Tuple):
        """A cached picklable value for this key, or None."""
        path = self._path("value", namespace, components)
        payload = self._read_payload(path, "value entry %s" % path.name)
        if payload is None:
            return None
        try:
            return pickle.loads(payload)
        except _STALE_ERRORS:
            self.stats["stale"] += 1
            return None

    def store_value(self, namespace: str, components: Tuple,
                    value) -> None:
        # Canonicalized so that re-storing an equal value -- e.g. a
        # resumed run re-committing a result it rebuilt from durable
        # slices -- rewrites byte-identical files (the kill-anywhere
        # tests compare whole cache trees).
        self._write(
            self._path("value", namespace, components),
            pickle.dumps(
                canonicalize(value), protocol=pickle.HIGHEST_PROTOCOL
            ),
        )

    # -- housekeeping ------------------------------------------------------------

    def prune_quarantine(self, keep=None, max_age_s=None) -> int:
        """Age/count-cap the quarantine directory; counted in ``stats``."""
        pruned = prune_quarantine(
            self.quarantine_dir, keep=keep, max_age_s=max_age_s
        )
        if pruned:
            self.stats["quarantine_pruned"] += pruned
        return pruned

    # -- plumbing ----------------------------------------------------------------

    def _write(self, path: Path, payload: bytes) -> None:
        framed = frame_payload(payload)
        if faults.active() and faults.fire("store_truncate"):
            # Chaos harness: model a torn write by persisting only half
            # the frame.  The next read must detect and quarantine it.
            framed = framed[: max(1, len(framed) // 2)]
        atomic_write_bytes(path, framed)
