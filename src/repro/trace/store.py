"""On-disk store of recorded packed traces (record-once / analyze-many).

The injection campaigns and sensitivity sweeps decouple *recording* (one
functional simulation per (workload, seed, injection) triple) from
*analysis* (one cheap detector pass per configuration).  This store
persists each recorded run so an N-configuration sweep -- or a re-run of
the same campaign -- performs the simulation exactly once and replays the
packed trace from disk for every other consumer.

Keying: every entry is addressed by a *namespace* (the caller's identity
string for the program being run -- workload name plus its parameters)
plus a tuple of run components (seed, injection target, scheduler knobs).
The digest also folds in the store schema and the trace-format version,
so format bumps miss cleanly instead of decoding garbage.  See
``docs/trace-format.md`` for the full key scheme.

Integrity: every entry is wrapped in a checksummed frame
(:func:`frame_payload`) -- magic, payload length, SHA-256 digest -- so a
torn, truncated, or bit-flipped file is *detected*
(:class:`~repro.common.errors.StoreCorruptError`), never decoded into
garbage.  A corrupt entry is moved to ``<root>/quarantine/`` next to a
``*.reason.txt`` note and the read reports a miss, which makes the
caller transparently re-record through
:func:`repro.injection.campaign.record_injected_once`; per-store
counters (:attr:`PackedTraceStore.stats`) surface how often that
happened instead of staying silent.  See ``docs/resilience.md``.

Entries are written atomically through the shared crash-consistency
helper (:func:`repro.resilience.checkpoint.atomic_write_bytes`: same-dir
temp file, optional fsync, rename), so concurrent sweep processes
sharing one ``REPRO_CACHE_DIR`` never observe torn files and a killed
writer leaves at worst an orphaned ``*.tmp.<pid>`` file for the next
startup's litter collection.
"""

from __future__ import annotations

import hashlib
import logging
import os
import pickle
import re
import struct
from collections import Counter
from pathlib import Path
from typing import Any, Dict, Optional, Tuple

from repro.common.errors import LogFormatError, StoreCorruptError
from repro.resilience import faults
from repro.resilience.checkpoint import (
    atomic_write_bytes,
    canonicalize,
    prune_quarantine,
)
from repro.trace.packed import PackedTrace
from repro.trace.serialize import (
    decode_packed_trace,
    encode_packed_trace,
)

logger = logging.getLogger("repro.trace.store")

#: Bump when the entry layout changes incompatibly.  2 = checksummed
#: framing (bumping also renames every key, so pre-frame files are
#: simply never looked up again).
_STORE_SCHEMA = 2

#: Folded into every digest: a v2-format bump must invalidate entries.
_FORMAT_TAG = "CORDTRC2"

_SAFE = re.compile(r"[^A-Za-z0-9._-]+")

#: Entry frame: magic | u64 payload length | sha256(payload) | payload.
FRAME_MAGIC = b"CORDSTOR1"
_FRAME_LEN = struct.Struct("<Q")
_DIGEST_SIZE = hashlib.sha256().digest_size
_FRAME_HEADER = len(FRAME_MAGIC) + _FRAME_LEN.size + _DIGEST_SIZE

#: Unpickling errors that mean *version skew*, not file corruption: the
#: frame already proved the bytes are exactly what some past process
#: wrote, so a class that no longer unpickles is stale, not damaged.
_STALE_ERRORS = (AttributeError, ImportError, TypeError, ValueError,
                 pickle.UnpicklingError, EOFError, IndexError)


def frame_payload(payload: bytes) -> bytes:
    """Wrap ``payload`` in the store's checksummed frame."""
    return b"".join((
        FRAME_MAGIC,
        _FRAME_LEN.pack(len(payload)),
        hashlib.sha256(payload).digest(),
        payload,
    ))


def unframe_payload(data: bytes, what: str = "store entry") -> bytes:
    """Validate and strip the frame; raises :class:`StoreCorruptError`.

    Every failure mode of a damaged file maps to a distinct reason:
    short header, wrong magic, length mismatch (torn/truncated write),
    and digest mismatch (bit rot).
    """
    if len(data) < _FRAME_HEADER:
        raise StoreCorruptError(
            "%s is %d bytes, shorter than the %d-byte frame header"
            % (what, len(data), _FRAME_HEADER)
        )
    if data[: len(FRAME_MAGIC)] != FRAME_MAGIC:
        raise StoreCorruptError(
            "%s has bad frame magic %r" % (what, bytes(data[:8]))
        )
    (length,) = _FRAME_LEN.unpack_from(data, len(FRAME_MAGIC))
    payload = data[_FRAME_HEADER:]
    if len(payload) != length:
        raise StoreCorruptError(
            "%s payload is %d bytes, frame promises %d (torn write?)"
            % (what, len(payload), length)
        )
    digest = data[len(FRAME_MAGIC) + _FRAME_LEN.size: _FRAME_HEADER]
    if hashlib.sha256(payload).digest() != digest:
        raise StoreCorruptError(
            "%s failed its payload checksum (bit rot or tampering)"
            % what
        )
    return payload


class PackedTraceStore:
    """Directory-backed store of recorded runs.

    A *run entry* is one recorded execution: the packed trace plus a
    small picklable ``extra`` dict (e.g. which sync instance the injector
    removed).  A *value entry* is a bare picklable object (e.g. a
    workload's dynamic sync-instance count) keyed the same way.

    Attributes:
        stats: per-instance warning counters -- ``quarantined`` (corrupt
            entries detected and moved aside), ``io_errors`` (unreadable
            files), ``stale`` (healthy frames whose pickled classes no
            longer load), plus the resume-accounting pair ``run_hits`` /
            ``run_misses`` (recorded-trace lookups that were served from
            disk vs. had to be re-recorded -- the kill-anywhere tests
            assert on these).  Reads never raise for any of these; the
            counters are how the healing stops being silent.
    """

    def __init__(self, root: os.PathLike):
        self.root = Path(root)
        self.stats: Counter = Counter()

    # -- keying ---------------------------------------------------------------

    @staticmethod
    def _digest(namespace: str, components: Tuple) -> str:
        ident = repr((_STORE_SCHEMA, _FORMAT_TAG, namespace, components))
        return hashlib.sha256(ident.encode()).hexdigest()[:20]

    def _path(self, kind: str, namespace: str,
              components: Tuple) -> Path:
        # A readable prefix (for humans poking at the cache dir) plus the
        # collision-resistant digest (the actual key).
        prefix = _SAFE.sub("-", namespace)[:40].strip("-") or "run"
        return self.root / (
            "%s-%s-%s.pkl"
            % (kind, prefix, self._digest(namespace, components))
        )

    # -- corruption handling ---------------------------------------------------

    @property
    def quarantine_dir(self) -> Path:
        return self.root / "quarantine"

    def _quarantine(self, path: Path, exc: Exception) -> None:
        """Move a corrupt entry aside with a human-readable reason file.

        The entry keeps its name under ``<root>/quarantine/`` so the
        damaged bytes stay available for a post-mortem; the read path
        then reports a miss and the caller re-records.
        """
        self.stats["quarantined"] += 1
        qdir = self.quarantine_dir
        try:
            qdir.mkdir(parents=True, exist_ok=True)
            os.replace(path, qdir / path.name)
            reason = qdir / (path.name + ".reason.txt")
            reason.write_text(
                "quarantined store entry\n"
                "original path: %s\n"
                "reason: %s: %s\n" % (path, type(exc).__name__, exc)
            )
        except OSError as move_exc:
            # Quarantining is best-effort: a read-only cache directory
            # must not turn a recoverable corrupt entry into a crash.
            self.stats["quarantine_failed"] += 1
            logger.warning(
                "could not quarantine corrupt entry %s: %s",
                path, move_exc,
            )
        logger.warning("quarantined corrupt store entry %s: %s", path, exc)

    def _read_payload(self, path: Path, what: str) -> Optional[bytes]:
        """The checked read path shared by runs and values.

        Returns the verified payload bytes, or ``None`` for a miss --
        which covers unreadable files (counted in ``io_errors``) and
        corrupt ones (quarantined and counted in ``quarantined``).
        """
        try:
            raw = path.read_bytes()
        except FileNotFoundError:
            return None
        except OSError as exc:
            self.stats["io_errors"] += 1
            logger.warning("unreadable store entry %s: %s", path, exc)
            return None
        try:
            return unframe_payload(raw, what)
        except StoreCorruptError as exc:
            self._quarantine(path, exc)
            return None

    # -- run entries -----------------------------------------------------------

    def load_run(
        self, namespace: str, components: Tuple
    ) -> Optional[Tuple[PackedTrace, Dict[str, Any]]]:
        """The recorded run for this key, or None (miss/stale/corrupt).

        Corruption anywhere -- frame, pickle layer, or the CORDTRC2
        trace bytes inside -- quarantines the entry and reports a miss,
        so the caller re-records instead of crashing or, worse,
        analyzing garbage.
        """
        path = self._path("trace", namespace, components)
        payload = self._read_payload(path, "trace entry %s" % path.name)
        if payload is None:
            self.stats["run_misses"] += 1
            return None
        try:
            entry = pickle.loads(payload)
            packed = decode_packed_trace(entry["trace"])
            extra = entry["extra"]
        except (LogFormatError, KeyError) as exc:
            # The frame checksum passed, yet the contents are not a
            # valid entry: the *writer* was broken.  Quarantine -- this
            # is corruption, just minted earlier.
            self._quarantine(path, exc)
            self.stats["run_misses"] += 1
            return None
        except _STALE_ERRORS:
            self.stats["stale"] += 1
            self.stats["run_misses"] += 1
            return None
        self.stats["run_hits"] += 1
        return packed, extra

    def store_run(
        self,
        namespace: str,
        components: Tuple,
        packed: PackedTrace,
        extra: Dict[str, Any],
    ) -> None:
        entry = {"trace": encode_packed_trace(packed), "extra": extra}
        self._write(
            self._path("trace", namespace, components),
            pickle.dumps(entry, protocol=pickle.HIGHEST_PROTOCOL),
        )

    # -- bare value entries ------------------------------------------------------

    def load_value(self, namespace: str, components: Tuple):
        """A cached picklable value for this key, or None."""
        path = self._path("value", namespace, components)
        payload = self._read_payload(path, "value entry %s" % path.name)
        if payload is None:
            return None
        try:
            return pickle.loads(payload)
        except _STALE_ERRORS:
            self.stats["stale"] += 1
            return None

    def store_value(self, namespace: str, components: Tuple,
                    value) -> None:
        # Canonicalized so that re-storing an equal value -- e.g. a
        # resumed run re-committing a result it rebuilt from durable
        # slices -- rewrites byte-identical files (the kill-anywhere
        # tests compare whole cache trees).
        self._write(
            self._path("value", namespace, components),
            pickle.dumps(
                canonicalize(value), protocol=pickle.HIGHEST_PROTOCOL
            ),
        )

    # -- housekeeping ------------------------------------------------------------

    def prune_quarantine(self, keep=None, max_age_s=None) -> int:
        """Age/count-cap the quarantine directory; counted in ``stats``."""
        pruned = prune_quarantine(
            self.quarantine_dir, keep=keep, max_age_s=max_age_s
        )
        if pruned:
            self.stats["quarantine_pruned"] += pruned
        return pruned

    # -- plumbing ----------------------------------------------------------------

    def _write(self, path: Path, payload: bytes) -> None:
        framed = frame_payload(payload)
        if faults.active() and faults.fire("store_truncate"):
            # Chaos harness: model a torn write by persisting only half
            # the frame.  The next read must detect and quarantine it.
            framed = framed[: max(1, len(framed) // 2)]
        atomic_write_bytes(path, framed)
